//! Crash-recovery end-to-end tests of the `roundelim` CLI: a search killed
//! mid-flight (deterministically via a failpoint, or for real via SIGKILL /
//! SIGTERM) must resume from its checkpoint and finish with a certificate
//! **byte-identical** to the one an uninterrupted run produces.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_roundelim"))
}

/// A fresh per-test scratch directory (unique per process so parallel
/// suite runs cannot tamper with each other's fixtures).
fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("roundelim-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn ckpt_file(dir: &Path) -> PathBuf {
    dir.join("search.ckpt.json")
}

/// Polls until `path` exists or the deadline passes.
fn wait_for(path: &Path, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if path.exists() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    false
}

/// Waits for the child with a deadline, SIGKILLing it on timeout so a
/// regression can never hang the suite.
fn wait_with_deadline(child: &mut Child, timeout: Duration) -> std::process::ExitStatus {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(status) = child.try_wait().unwrap() {
            return status;
        }
        if Instant::now() >= deadline {
            child.kill().unwrap();
            let status = child.wait().unwrap();
            panic!("child did not exit within {timeout:?} (killed, status {status})");
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The two zoo problems the recovery tests run end to end: one that leans
/// on searched relaxations (maximal matching) and one plain speedup tower
/// (3-coloring). Both finish in well under a second, so the full
/// kill/resume matrix stays cheap.
const CASES: [(&str, &[&str]); 2] = [
    ("maximal-matching::3", &["--steps", "6", "--beam", "6", "--max-labels", "10"]),
    ("coloring:3:3", &["--steps", "4", "--beam", "4", "--max-labels", "8"]),
];

/// A search killed outright (the `kill` failpoint aborts the process, like
/// SIGKILL, at its second checkpoint write — so the snapshot on disk is the
/// *first* boundary, mid-search) must resume and produce the exact bytes of
/// an uninterrupted run, at 1 worker thread and at 4.
#[test]
fn killed_search_resumes_to_a_byte_identical_certificate() {
    for (spec, args) in CASES {
        for threads in ["1", "4"] {
            let dir = tmp_dir(&format!("kill-{threads}-{}", spec.replace(':', "_")));
            let ck = dir.join("ck");
            let reference = dir.join("ref.cert.json");
            let resumed = dir.join("resumed.cert.json");

            let out = cli()
                .args(["autolb", spec])
                .args(args)
                .args(["--threads", threads, "--cert", reference.to_str().unwrap()])
                .output()
                .unwrap();
            assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

            // The failpoint-chosen crash: abort at the 2nd checkpoint write.
            let out = cli()
                .args(["autolb", spec])
                .args(args)
                .args(["--threads", threads, "--checkpoint", ck.to_str().unwrap()])
                .env("ROUNDELIM_FAILPOINTS", "checkpoint-write=kill@2")
                .output()
                .unwrap();
            assert!(!out.status.success(), "the kill failpoint must abort the search");
            assert!(ckpt_file(&ck).exists(), "the first boundary snapshot must survive");

            let out = cli()
                .args(["autolb", spec])
                .args(args)
                .args([
                    "--threads",
                    threads,
                    "--checkpoint",
                    ck.to_str().unwrap(),
                    "--resume",
                    "--cert",
                    resumed.to_str().unwrap(),
                ])
                .output()
                .unwrap();
            assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
            assert_eq!(
                std::fs::read(&reference).unwrap(),
                std::fs::read(&resumed).unwrap(),
                "resumed certificate differs from the uninterrupted run \
                 ({spec}, {threads} threads)"
            );
            assert!(!ckpt_file(&ck).exists(), "a completed resume must clear its snapshot");
        }
    }
}

/// The real thing: SIGKILL the child at an arbitrary moment mid-search
/// (as soon as its first snapshot appears), then resume. The atomic
/// temp-file + rename write discipline guarantees the snapshot on disk is
/// never torn, whatever instant the kill landed on.
#[test]
fn sigkilled_search_resumes_to_a_byte_identical_certificate() {
    let dir = tmp_dir("sigkill");
    let ck = dir.join("ck");
    let reference = dir.join("ref.cert.json");
    let resumed = dir.join("resumed.cert.json");
    let args = ["--steps", "6", "--beam", "6", "--max-labels", "10", "--threads", "2"];

    let out = cli()
        .args(["autolb", "coloring:3:3"])
        .args(args)
        .args(["--cert", reference.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let mut child = cli()
        .args(["autolb", "coloring:3:3"])
        .args(args)
        .args(["--checkpoint", ck.to_str().unwrap()])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    // Kill as soon as the search persists its first snapshot. If the search
    // outran us and already finished, the run below simply starts fresh —
    // the byte-identity assertion holds either way.
    wait_for(&ckpt_file(&ck), Duration::from_secs(60));
    let _ = child.kill();
    let _ = child.wait();

    let out = cli()
        .args(["autolb", "coloring:3:3"])
        .args(args)
        .args([
            "--checkpoint",
            ck.to_str().unwrap(),
            "--resume",
            "--cert",
            resumed.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(
        std::fs::read(&reference).unwrap(),
        std::fs::read(&resumed).unwrap(),
        "resume after SIGKILL must reproduce the uninterrupted certificate"
    );
}

/// SIGTERM is graceful: the search stops at its next cancellation poll,
/// reports the partial verdict with exit code 3, and leaves its last
/// boundary snapshot on disk for a later resume.
#[cfg(unix)]
#[test]
fn sigterm_stops_gracefully_with_exit_3_and_a_live_snapshot() {
    let dir = tmp_dir("sigterm");
    let ck = dir.join("ck");
    // Heavy enough that the TERM always lands mid-search.
    let mut child = cli()
        .args(["autolb", "coloring:3:3", "--steps", "6", "--beam", "6", "--max-labels", "10"])
        .args(["--threads", "2", "--checkpoint", ck.to_str().unwrap()])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    assert!(
        wait_for(&ckpt_file(&ck), Duration::from_secs(60)),
        "the search never wrote its first snapshot"
    );
    let term = Command::new("kill").args(["-TERM", &child.id().to_string()]).status().unwrap();
    assert!(term.success(), "kill -TERM failed");
    let status = wait_with_deadline(&mut child, Duration::from_secs(120));
    assert_eq!(status.code(), Some(3), "SIGTERM must map to the incomplete exit code");
    assert!(ckpt_file(&ck).exists(), "the boundary snapshot must survive the SIGTERM");
    let mut stdout = String::new();
    std::io::Read::read_to_string(child.stdout.as_mut().unwrap(), &mut stdout).unwrap();
    assert!(stdout.contains("stopped early (interrupted)"), "{stdout}");
}

/// A corrupted snapshot must be rejected by the checksum on resume rather
/// than silently seeding a wrong search state.
#[test]
fn corrupted_snapshot_is_rejected_on_resume() {
    let dir = tmp_dir("corrupt");
    let ck = dir.join("ck");
    let out = cli()
        .args(["autolb", "coloring:3:3", "--steps", "4", "--beam", "4", "--max-labels", "8"])
        .args(["--checkpoint", ck.to_str().unwrap(), "--max-expansions", "1"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "{}", String::from_utf8_lossy(&out.stderr));
    let file = ckpt_file(&ck);
    // Flip one payload byte, keeping the checksum header intact.
    let mut bytes = std::fs::read(&file).unwrap();
    let ix = bytes.len() / 2;
    bytes[ix] = bytes[ix].wrapping_add(1);
    std::fs::write(&file, bytes).unwrap();
    let out = cli()
        .args(["autolb", "coloring:3:3", "--steps", "4", "--beam", "4", "--max-labels", "8"])
        .args(["--checkpoint", ck.to_str().unwrap(), "--resume"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "corruption is a runtime error, not a fresh start");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("checksum"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// One poisoned worker must degrade the beam, not abort the search: the
/// `worker-panic` failpoint blows up exactly one work item, the search
/// completes, reports the capture, and still exits 0 with a verdict.
/// Run at several thread counts — the executor captures panics **per
/// item** (exactly one `worker_panics`, never a whole chunk of them), and
/// stealing must drain the panicked worker's remaining range.
#[test]
fn a_worker_panic_degrades_the_search_instead_of_aborting_it() {
    for threads in ["2", "4"] {
        let out = cli()
            .args(["autolb", "coloring:3:2", "--steps", "6", "--beam", "6", "--max-labels", "10"])
            .args(["--threads", threads, "--json"])
            .env("ROUNDELIM_FAILPOINTS", "worker-panic=panic@1")
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("\"worker_panics\": 1"), "threads={threads}: {stdout}");
        assert!(stdout.contains("\"verdict\""), "threads={threads}: {stdout}");
    }
}
