//! Registry-wide instantiation and text round-trip tests: every family in
//! the zoo must construct at its smallest legal `(k, Δ)` and survive
//! `Problem::to_text` → `Problem::parse` unchanged.

use roundelim::problems::registry::{families, family};
use roundelim_core::problem::Problem;

/// The smallest `(k, delta)` (ordered by `k + delta`, then `delta`) the
/// family accepts within a generous probe window, with the instance.
fn smallest_legal(f: &roundelim::problems::registry::Family) -> Option<(usize, usize, Problem)> {
    let mut candidates: Vec<(usize, usize)> =
        (0..=6).flat_map(|k| (0..=6).map(move |d| (k, d))).collect();
    candidates.sort_by_key(|&(k, d)| (k + d, d));
    for (k, d) in candidates {
        if let Ok(p) = f.instantiate(k, d) {
            return Some((k, d, p));
        }
    }
    None
}

#[test]
fn every_family_has_a_smallest_legal_instance() {
    for f in families() {
        let (k, d, p) = smallest_legal(f)
            .unwrap_or_else(|| panic!("{}: no legal (k, Δ) with k, Δ ≤ 6", f.name));
        assert_eq!(p.delta(), d, "{}: instance disagrees with requested Δ", f.name);
        assert!(!p.alphabet().is_empty(), "{}: empty alphabet at ({k}, {d})", f.name);
        assert!(!p.node().is_empty(), "{}: empty node constraint at ({k}, {d})", f.name);
        assert!(!p.edge().is_empty(), "{}: empty edge constraint at ({k}, {d})", f.name);
    }
}

#[test]
fn every_family_round_trips_through_text() {
    for f in families() {
        let (k, d, p) = smallest_legal(f).expect("legal instance");
        let text = p.to_text();
        let reparsed = Problem::parse(&text).unwrap_or_else(|e| {
            panic!("{}: to_text output failed to parse at ({k}, {d}): {e}\n{text}", f.name)
        });
        assert_eq!(reparsed, p, "{}: parse(to_text) round trip at ({k}, {d})", f.name);
    }
}

#[test]
fn families_reject_degenerate_parameters() {
    for f in families() {
        // Δ = 0 yields no ports at all; no family accepts it.
        assert!(f.instantiate(3, 0).is_err(), "{}: accepted Δ = 0", f.name);
    }
}

#[test]
fn instances_stay_parseable_across_a_parameter_sweep() {
    for f in families() {
        for d in 2..=4 {
            for k in 2..=4 {
                if let Ok(p) = f.instantiate(k, d) {
                    let re = Problem::parse(&p.to_text())
                        .unwrap_or_else(|e| panic!("{} at ({k}, {d}): {e}", f.name));
                    assert_eq!(re, p, "{} at ({k}, {d})", f.name);
                }
            }
        }
    }
}

#[test]
fn registry_lookup_matches_iteration() {
    for f in families() {
        assert_eq!(family(f.name).expect("registered").name, f.name);
    }
    assert!(family("no-such-family").is_err());
}
