//! Property-based tests (proptest) over the core engine's invariants.
//!
//! Determinism: every property pins its case count via
//! `ProptestConfig::with_cases`, and the vendored proptest harness
//! (`crates/compat/proptest`) seeds its RNG from the test name, so CI runs
//! are reproducible and bounded in time with no machine-to-machine drift.
//! Failures print a `PROPTEST_SEED=<n>` line; export that variable to
//! replay the exact failing run. See `proptest-regressions/README.md` for
//! how regressions are pinned when running against crates-io proptest.

use proptest::prelude::*;
use roundelim::core::config::{all_multisets, Config};
use roundelim::core::constraint::Constraint;
use roundelim::core::label::{Alphabet, Label};
use roundelim::core::labelset::LabelSet;
use roundelim::core::problem::Problem;
use roundelim::core::speedup::universal::{
    dominates, line_good, maximal_good_lines, maximal_good_lines_bruteforce,
    maximal_good_lines_threaded,
};
use roundelim::core::speedup::{full_step, half_step_edge};

/// A random small problem: Δ ∈ {2,3}, 2–4 labels, random constraints.
fn arb_problem() -> impl Strategy<Value = Problem> {
    (2usize..=3, 2usize..=4).prop_flat_map(|(delta, n_labels)| {
        let node_space = all_multisets(n_labels, delta);
        let edge_space = all_multisets(n_labels, 2);
        let node_sel = proptest::collection::vec(any::<bool>(), node_space.len());
        let edge_sel = proptest::collection::vec(any::<bool>(), edge_space.len());
        (Just(delta), Just(n_labels), node_sel, edge_sel).prop_filter_map(
            "nonempty constraints",
            |(delta, n_labels, ns, es)| {
                let node_space = all_multisets(n_labels, delta);
                let edge_space = all_multisets(n_labels, 2);
                let node: Vec<Config> = node_space
                    .into_iter()
                    .zip(&ns)
                    .filter(|(_, &keep)| keep)
                    .map(|(c, _)| c)
                    .collect();
                let edge: Vec<Config> = edge_space
                    .into_iter()
                    .zip(&es)
                    .filter(|(_, &keep)| keep)
                    .map(|(c, _)| c)
                    .collect();
                if node.is_empty() || edge.is_empty() {
                    return None;
                }
                let alphabet = Alphabet::from_names((0..n_labels).map(|i| format!("L{i}"))).ok()?;
                let node = Constraint::from_configs(delta, node).ok()?;
                let edge = Constraint::from_configs(2, edge).ok()?;
                Problem::new("random", alphabet, node, edge).ok()
            },
        )
    })
}

/// A random constraint over up to 6 labels and arity up to 4 (the
/// trie-oracle cross-check domain from the hot-core rebuild).
fn arb_constraint() -> impl Strategy<Value = (usize, Constraint)> {
    (2usize..=6, 2usize..=4).prop_flat_map(|(n_labels, arity)| {
        let space = all_multisets(n_labels, arity);
        let sel = proptest::collection::vec(any::<bool>(), space.len());
        (Just(n_labels), Just(arity), sel).prop_filter_map(
            "nonempty constraint",
            |(n_labels, arity, keep)| {
                let cfgs: Vec<Config> = all_multisets(n_labels, arity)
                    .into_iter()
                    .zip(&keep)
                    .filter(|(_, &k)| k)
                    .map(|(c, _)| c)
                    .collect();
                if cfgs.is_empty() {
                    return None;
                }
                Some((n_labels, Constraint::from_configs(arity, cfgs).ok()?))
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The merge-closure engine agrees with brute force on every random
    /// constraint (the core correctness property of the speedup).
    #[test]
    fn maximal_lines_match_bruteforce(p in arb_problem()) {
        let universe = LabelSet::first_n(p.alphabet().len());
        for c in [p.node(), p.edge()] {
            let fast = maximal_good_lines(c);
            let slow = maximal_good_lines_bruteforce(c, &universe);
            prop_assert_eq!(fast, slow);
        }
    }

    /// The trie-backed membership test agrees with the `BTreeSet` oracle
    /// on every multiset over a slightly larger label space (including
    /// out-of-support labels and wrong arities).
    #[test]
    fn trie_contains_matches_btreeset((n_labels, c) in arb_constraint()) {
        for probe in all_multisets(n_labels + 1, c.arity()) {
            prop_assert_eq!(c.contains_sorted(probe.labels()), c.contains(&probe));
        }
        let wrong_arity = all_multisets(n_labels, c.arity() + 1);
        prop_assert!(!c.contains_sorted(wrong_arity[0].labels()));
    }

    /// The trie-backed `line_good` agrees with the brute-force product
    /// oracle (every choice probed individually against the `BTreeSet`)
    /// on random lines, including lines with out-of-support labels.
    #[test]
    fn trie_line_good_matches_product_oracle(
        (n_labels, c) in arb_constraint(),
        seed in 0u64..1 << 48,
    ) {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for _ in 0..8 {
            // Random line over n_labels + 1 labels (one beyond the support).
            let line: Vec<LabelSet> = (0..c.arity())
                .map(|_| {
                    let mut s = LabelSet::empty();
                    for i in 0..=n_labels {
                        if next() % 2 == 0 {
                            s.insert(Label::from_index(i));
                        }
                    }
                    if s.is_empty() {
                        s.insert(Label::from_index(next() % n_labels));
                    }
                    s
                })
                .collect();
            // Oracle: expand the full choice product.
            let mut choices: Vec<Vec<Label>> = vec![Vec::new()];
            for s in &line {
                let mut grown = Vec::new();
                for partial in &choices {
                    for x in s.iter() {
                        let mut p = partial.clone();
                        p.push(x);
                        grown.push(p);
                    }
                }
                choices = grown;
            }
            let oracle = choices.iter().all(|ch| c.contains(&Config::new(ch.clone())));
            prop_assert_eq!(line_good(&line, &c), oracle);
        }
    }

    /// `maximal_good_lines` output is identical — ordering included — for
    /// 1 and N worker threads (the round-parallel closure is deterministic
    /// by construction, not merely up to reordering).
    #[test]
    fn maximal_lines_thread_count_invariant((_n, c) in arb_constraint()) {
        let one = maximal_good_lines_threaded(&c, 1);
        for threads in [2usize, 4, 8] {
            prop_assert_eq!(&maximal_good_lines_threaded(&c, threads), &one);
        }
    }

    /// Every maximal line is good, pairwise non-dominating, and made of
    /// nonempty sets.
    #[test]
    fn maximal_lines_are_a_good_antichain(p in arb_problem()) {
        let lines = maximal_good_lines(p.edge());
        for (i, l) in lines.iter().enumerate() {
            prop_assert!(line_good(l, p.edge()));
            prop_assert!(l.iter().all(|s| !s.is_empty()));
            for (j, m) in lines.iter().enumerate() {
                if i != j {
                    prop_assert!(!dominates(m, l) || !dominates(l, m));
                    prop_assert!(!(dominates(m, l) && m != l));
                }
            }
        }
    }

    /// The derived problem is structurally well-formed and its labels are
    /// exactly the sets occurring in the universal side.
    #[test]
    fn full_step_well_formed(p in arb_problem()) {
        if let Ok(step) = full_step(&p) {
            let q = step.problem();
            prop_assert_eq!(q.delta(), p.delta());
            prop_assert_eq!(q.edge().arity(), 2);
            // provenance meanings are nonempty sets over the half alphabet
            for l in q.alphabet().labels() {
                let sets = step.meaning_in_base(l);
                prop_assert!(!sets.is_empty());
                for s in sets {
                    prop_assert!(!s.is_empty());
                }
            }
            // text round trip (an unsolvable base problem may compress to
            // an empty derived problem, which the text format cannot
            // express — skip those).
            if !q.node().is_empty() && !q.edge().is_empty() {
                let re = Problem::parse(&q.to_text()).unwrap();
                prop_assert_eq!(&re, q);
            }
        }
    }

    /// Speedup is invariant under label renaming: isomorphic inputs give
    /// isomorphic outputs.
    #[test]
    fn speedup_commutes_with_renaming(p in arb_problem()) {
        // Reverse the label order.
        let n = p.alphabet().len();
        let renamed_alphabet = Alphabet::from_names(
            (0..n).rev().map(|i| format!("L{i}"))
        ).unwrap();
        let remap = |l: Label| Label::from_index(n - 1 - l.index());
        let q = Problem::new(
            "renamed",
            renamed_alphabet,
            p.node().map_labels(remap),
            p.edge().map_labels(remap),
        ).unwrap();
        let sp = full_step(&p);
        let sq = full_step(&q);
        match (sp, sq) {
            (Ok(a), Ok(b)) => {
                prop_assert!(roundelim::core::iso::are_isomorphic(a.problem(), b.problem()));
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "asymmetric outcome: {a:?} vs {b:?}"),
        }
    }

    /// The half-step edge constraint always satisfies: every config's two
    /// meaning-sets are cross-compatible under the base edge constraint.
    #[test]
    fn half_step_edge_sound(p in arb_problem()) {
        if let Ok(hs) = half_step_edge(&p) {
            for cfg in hs.problem.edge().iter() {
                let ls = cfg.labels();
                let a = hs.meanings[ls[0].index()];
                let b = hs.meanings[ls[1].index()];
                for x in a.iter() {
                    for y in b.iter() {
                        prop_assert!(p.edge_ok(x, y));
                    }
                }
            }
        }
    }

    /// Zero-round solvability is preserved under renaming.
    #[test]
    fn zero_round_invariant_under_renaming(p in arb_problem()) {
        use roundelim::core::zero_round::zero_round_pn;
        let n = p.alphabet().len();
        let renamed_alphabet = Alphabet::from_names(
            (0..n).rev().map(|i| format!("L{i}"))
        ).unwrap();
        let remap = |l: Label| Label::from_index(n - 1 - l.index());
        let q = Problem::new(
            "renamed",
            renamed_alphabet,
            p.node().map_labels(remap),
            p.edge().map_labels(remap),
        ).unwrap();
        prop_assert_eq!(zero_round_pn(&p).is_some(), zero_round_pn(&q).is_some());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tower arithmetic: pow2 is strictly monotone and log2 inverts it.
    #[test]
    fn tower_laws(a in 0u128..1u128 << 90, b in 0u128..1u128 << 90) {
        use roundelim::superweak::tower::Tower;
        let ta = Tower::from_u128(a);
        let tb = Tower::from_u128(b);
        prop_assert_eq!(a.cmp(&b), ta.cmp(&tb));
        prop_assert_eq!(ta.pow2().cmp(&tb.pow2()), ta.cmp(&tb));
        prop_assert!(ta.pow2() > ta);
        if a >= 1 {
            prop_assert_eq!(ta.pow2().log2().unwrap(), ta.clone());
            // log* decreases by exactly one under log2 (for a ≥ 2).
            if a >= 2 {
                let ls = ta.log_star();
                prop_assert_eq!(ta.pow2().log_star(), ls + 1);
            }
        }
    }

    /// Trit complement is an involution and complementarity is symmetric.
    #[test]
    fn trit_laws(raw in proptest::collection::vec(0u8..=2, 1..6)) {
        use roundelim::superweak::trit::TritSeq;
        let t = TritSeq::new(raw).unwrap();
        prop_assert_eq!(t.complement().complement(), t.clone());
        prop_assert!(t.complementary(&t.complement()));
        prop_assert_eq!(t.complementary(&t), t == t.complement());
    }
}
