//! Property-based tests (proptest) over the core engine's invariants.
//!
//! Determinism: every property pins its case count via
//! `ProptestConfig::with_cases`, and the vendored proptest harness
//! (`crates/compat/proptest`) seeds its RNG from the test name, so CI runs
//! are reproducible and bounded in time with no machine-to-machine drift.
//! Failures print a `PROPTEST_SEED=<n>` line; export that variable to
//! replay the exact failing run. See `proptest-regressions/README.md` for
//! how regressions are pinned when running against crates-io proptest.

use proptest::prelude::*;
use roundelim::core::config::{all_multisets, Config};
use roundelim::core::constraint::Constraint;
use roundelim::core::label::{Alphabet, Label};
use roundelim::core::labelset::LabelSet;
use roundelim::core::problem::Problem;
use roundelim::core::speedup::universal::{
    dominates, line_good, maximal_good_lines, maximal_good_lines_bruteforce,
    maximal_good_lines_threaded,
};
use roundelim::core::speedup::{full_step, half_step_edge};

/// A random small problem: Δ ∈ {2,3}, 2–4 labels, random constraints.
fn arb_problem() -> impl Strategy<Value = Problem> {
    (2usize..=3, 2usize..=4).prop_flat_map(|(delta, n_labels)| {
        let node_space = all_multisets(n_labels, delta);
        let edge_space = all_multisets(n_labels, 2);
        let node_sel = proptest::collection::vec(any::<bool>(), node_space.len());
        let edge_sel = proptest::collection::vec(any::<bool>(), edge_space.len());
        (Just(delta), Just(n_labels), node_sel, edge_sel).prop_filter_map(
            "nonempty constraints",
            |(delta, n_labels, ns, es)| {
                let node_space = all_multisets(n_labels, delta);
                let edge_space = all_multisets(n_labels, 2);
                let node: Vec<Config> = node_space
                    .into_iter()
                    .zip(&ns)
                    .filter(|(_, &keep)| keep)
                    .map(|(c, _)| c)
                    .collect();
                let edge: Vec<Config> = edge_space
                    .into_iter()
                    .zip(&es)
                    .filter(|(_, &keep)| keep)
                    .map(|(c, _)| c)
                    .collect();
                if node.is_empty() || edge.is_empty() {
                    return None;
                }
                let alphabet = Alphabet::from_names((0..n_labels).map(|i| format!("L{i}"))).ok()?;
                let node = Constraint::from_configs(delta, node).ok()?;
                let edge = Constraint::from_configs(2, edge).ok()?;
                Problem::new("random", alphabet, node, edge).ok()
            },
        )
    })
}

/// A random constraint over up to 6 labels and arity up to 4 (the
/// trie-oracle cross-check domain from the hot-core rebuild).
fn arb_constraint() -> impl Strategy<Value = (usize, Constraint)> {
    (2usize..=6, 2usize..=4).prop_flat_map(|(n_labels, arity)| {
        let space = all_multisets(n_labels, arity);
        let sel = proptest::collection::vec(any::<bool>(), space.len());
        (Just(n_labels), Just(arity), sel).prop_filter_map(
            "nonempty constraint",
            |(n_labels, arity, keep)| {
                let cfgs: Vec<Config> = all_multisets(n_labels, arity)
                    .into_iter()
                    .zip(&keep)
                    .filter(|(_, &k)| k)
                    .map(|(c, _)| c)
                    .collect();
                if cfgs.is_empty() {
                    return None;
                }
                Some((n_labels, Constraint::from_configs(arity, cfgs).ok()?))
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The merge-closure engine agrees with brute force on every random
    /// constraint (the core correctness property of the speedup).
    #[test]
    fn maximal_lines_match_bruteforce(p in arb_problem()) {
        let universe = LabelSet::first_n(p.alphabet().len());
        for c in [p.node(), p.edge()] {
            let fast = maximal_good_lines(c);
            let slow = maximal_good_lines_bruteforce(c, &universe);
            prop_assert_eq!(fast, slow);
        }
    }

    /// The trie-backed membership test agrees with the `BTreeSet` oracle
    /// on every multiset over a slightly larger label space (including
    /// out-of-support labels and wrong arities).
    #[test]
    fn trie_contains_matches_btreeset((n_labels, c) in arb_constraint()) {
        for probe in all_multisets(n_labels + 1, c.arity()) {
            prop_assert_eq!(c.contains_sorted(probe.labels()), c.contains(&probe));
        }
        let wrong_arity = all_multisets(n_labels, c.arity() + 1);
        prop_assert!(!c.contains_sorted(wrong_arity[0].labels()));
    }

    /// The trie-backed `line_good` agrees with the brute-force product
    /// oracle (every choice probed individually against the `BTreeSet`)
    /// on random lines, including lines with out-of-support labels.
    #[test]
    fn trie_line_good_matches_product_oracle(
        (n_labels, c) in arb_constraint(),
        seed in 0u64..1 << 48,
    ) {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for _ in 0..8 {
            // Random line over n_labels + 1 labels (one beyond the support).
            let line: Vec<LabelSet> = (0..c.arity())
                .map(|_| {
                    let mut s = LabelSet::empty();
                    for i in 0..=n_labels {
                        if next() % 2 == 0 {
                            s.insert(Label::from_index(i));
                        }
                    }
                    if s.is_empty() {
                        s.insert(Label::from_index(next() % n_labels));
                    }
                    s
                })
                .collect();
            // Oracle: expand the full choice product.
            let mut choices: Vec<Vec<Label>> = vec![Vec::new()];
            for s in &line {
                let mut grown = Vec::new();
                for partial in &choices {
                    for x in s.iter() {
                        let mut p = partial.clone();
                        p.push(x);
                        grown.push(p);
                    }
                }
                choices = grown;
            }
            let oracle = choices.iter().all(|ch| c.contains(&Config::new(ch.clone())));
            prop_assert_eq!(line_good(&line, &c), oracle);
        }
    }

    /// `maximal_good_lines` output is identical — ordering included — for
    /// 1 and N worker threads (the round-parallel closure is deterministic
    /// by construction, not merely up to reordering).
    #[test]
    fn maximal_lines_thread_count_invariant((_n, c) in arb_constraint()) {
        let one = maximal_good_lines_threaded(&c, 1);
        for threads in [2usize, 4, 8] {
            prop_assert_eq!(&maximal_good_lines_threaded(&c, threads), &one);
        }
    }

    /// Every maximal line is good, pairwise non-dominating, and made of
    /// nonempty sets.
    #[test]
    fn maximal_lines_are_a_good_antichain(p in arb_problem()) {
        let lines = maximal_good_lines(p.edge());
        for (i, l) in lines.iter().enumerate() {
            prop_assert!(line_good(l, p.edge()));
            prop_assert!(l.iter().all(|s| !s.is_empty()));
            for (j, m) in lines.iter().enumerate() {
                if i != j {
                    prop_assert!(!dominates(m, l) || !dominates(l, m));
                    prop_assert!(!(dominates(m, l) && m != l));
                }
            }
        }
    }

    /// The derived problem is structurally well-formed and its labels are
    /// exactly the sets occurring in the universal side.
    #[test]
    fn full_step_well_formed(p in arb_problem()) {
        if let Ok(step) = full_step(&p) {
            let q = step.problem();
            prop_assert_eq!(q.delta(), p.delta());
            prop_assert_eq!(q.edge().arity(), 2);
            // provenance meanings are nonempty sets over the half alphabet
            for l in q.alphabet().labels() {
                let sets = step.meaning_in_base(l);
                prop_assert!(!sets.is_empty());
                for s in sets {
                    prop_assert!(!s.is_empty());
                }
            }
            // text round trip (an unsolvable base problem may compress to
            // an empty derived problem, which the text format cannot
            // express — skip those).
            if !q.node().is_empty() && !q.edge().is_empty() {
                let re = Problem::parse(&q.to_text()).unwrap();
                prop_assert_eq!(&re, q);
            }
        }
    }

    /// Speedup is invariant under label renaming: isomorphic inputs give
    /// isomorphic outputs.
    #[test]
    fn speedup_commutes_with_renaming(p in arb_problem()) {
        // Reverse the label order.
        let n = p.alphabet().len();
        let renamed_alphabet = Alphabet::from_names(
            (0..n).rev().map(|i| format!("L{i}"))
        ).unwrap();
        let remap = |l: Label| Label::from_index(n - 1 - l.index());
        let q = Problem::new(
            "renamed",
            renamed_alphabet,
            p.node().map_labels(remap),
            p.edge().map_labels(remap),
        ).unwrap();
        let sp = full_step(&p);
        let sq = full_step(&q);
        match (sp, sq) {
            (Ok(a), Ok(b)) => {
                prop_assert!(roundelim::core::iso::are_isomorphic(a.problem(), b.problem()));
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "asymmetric outcome: {a:?} vs {b:?}"),
        }
    }

    /// The half-step edge constraint always satisfies: every config's two
    /// meaning-sets are cross-compatible under the base edge constraint.
    #[test]
    fn half_step_edge_sound(p in arb_problem()) {
        if let Ok(hs) = half_step_edge(&p) {
            for cfg in hs.problem.edge().iter() {
                let ls = cfg.labels();
                let a = hs.meanings[ls[0].index()];
                let b = hs.meanings[ls[1].index()];
                for x in a.iter() {
                    for y in b.iter() {
                        prop_assert!(p.edge_ok(x, y));
                    }
                }
            }
        }
    }

    /// Zero-round solvability is preserved under renaming.
    #[test]
    fn zero_round_invariant_under_renaming(p in arb_problem()) {
        use roundelim::core::zero_round::zero_round_pn;
        let n = p.alphabet().len();
        let renamed_alphabet = Alphabet::from_names(
            (0..n).rev().map(|i| format!("L{i}"))
        ).unwrap();
        let remap = |l: Label| Label::from_index(n - 1 - l.index());
        let q = Problem::new(
            "renamed",
            renamed_alphabet,
            p.node().map_labels(remap),
            p.edge().map_labels(remap),
        ).unwrap();
        prop_assert_eq!(zero_round_pn(&p).is_some(), zero_round_pn(&q).is_some());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tower arithmetic: pow2 is strictly monotone and log2 inverts it.
    #[test]
    fn tower_laws(a in 0u128..1u128 << 90, b in 0u128..1u128 << 90) {
        use roundelim::superweak::tower::Tower;
        let ta = Tower::from_u128(a);
        let tb = Tower::from_u128(b);
        prop_assert_eq!(a.cmp(&b), ta.cmp(&tb));
        prop_assert_eq!(ta.pow2().cmp(&tb.pow2()), ta.cmp(&tb));
        prop_assert!(ta.pow2() > ta);
        if a >= 1 {
            prop_assert_eq!(ta.pow2().log2().unwrap(), ta.clone());
            // log* decreases by exactly one under log2 (for a ≥ 2).
            if a >= 2 {
                let ls = ta.log_star();
                prop_assert_eq!(ta.pow2().log_star(), ls + 1);
            }
        }
    }

    /// Trit complement is an involution and complementarity is symmetric.
    #[test]
    fn trit_laws(raw in proptest::collection::vec(0u8..=2, 1..6)) {
        use roundelim::superweak::trit::TritSeq;
        let t = TritSeq::new(raw).unwrap();
        prop_assert_eq!(t.complement().complement(), t.clone());
        prop_assert!(t.complementary(&t.complement()));
        prop_assert_eq!(t.complementary(&t), t == t.complement());
    }
}

// ---------------------------------------------------------------------------
// Simulator invariants: the CSR `PortGraph` against a naive edge-list
// oracle, the streaming checker against the materializing one, and
// thread-count / port-numbering invariance of the million-node paths.
// ---------------------------------------------------------------------------

use roundelim::sim::checker::{check, check_stream, CheckOptions, Violation};
use roundelim::sim::generate::random_regular_seeded;
use roundelim::sim::graph::PortGraph;
use roundelim::sim::runner::FlatOutputs;

/// A random simple graph as `(n, deduplicated edge list)`.
fn arb_edge_list() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..=24).prop_flat_map(|n| {
        let pairs: Vec<(usize, usize)> =
            (0..n).flat_map(|u| ((u + 1)..n).map(move |v| (u, v))).collect();
        proptest::collection::vec(any::<bool>(), pairs.len()).prop_map(move |keep| {
            let edges: Vec<(usize, usize)> =
                pairs.iter().zip(&keep).filter(|&(_, &k)| k).map(|(&e, _)| e).collect();
            (n, edges)
        })
    })
}

/// The seed-era nested-Vec port assignment: push each endpoint in edge-list
/// order, recording the reciprocal port. `adj[v]` lists `(neighbor, their
/// port)` in port order. This is the semantics the CSR layout must preserve.
fn oracle_ports(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<(usize, usize)>> {
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for &(u, v) in edges {
        let (pu, pv) = (adj[u].len(), adj[v].len());
        adj[u].push((v, pv));
        adj[v].push((u, pu));
    }
    adj
}

/// Port-order BFS on the oracle adjacency.
fn oracle_bfs(adj: &[Vec<(usize, usize)>], root: usize) -> Vec<u32> {
    let mut seen = vec![false; adj.len()];
    let mut order = vec![root as u32];
    seen[root] = true;
    let mut head = 0;
    while head < order.len() {
        let v = order[head] as usize;
        head += 1;
        for &(w, _) in &adj[v] {
            if !seen[w] {
                seen[w] = true;
                order.push(w as u32);
            }
        }
    }
    order
}

/// Textbook girth: BFS from every root; a non-tree edge `(u, w)` closes a
/// cycle of length `dist[u] + dist[w] + 1`, and the minimum over all roots
/// is exact on simple graphs.
fn oracle_girth(adj: &[Vec<(usize, usize)>]) -> Option<usize> {
    let n = adj.len();
    let mut best: Option<usize> = None;
    for root in 0..n {
        let mut dist = vec![usize::MAX; n];
        let mut parent = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::from([root]);
        dist[root] = 0;
        while let Some(u) = queue.pop_front() {
            for &(w, _) in &adj[u] {
                if dist[w] == usize::MAX {
                    dist[w] = dist[u] + 1;
                    parent[w] = u;
                    queue.push_back(w);
                } else if w != parent[u] {
                    let cycle = dist[u] + dist[w] + 1;
                    if best.is_none_or(|b| cycle < b) {
                        best = Some(cycle);
                    }
                }
            }
        }
    }
    best
}

/// A deterministic label row per node (derived from an LCG so the strategy
/// space stays small), one label per port.
fn lcg_rows(g: &PortGraph, n_labels: usize, seed: u64) -> Vec<Vec<Label>> {
    let mut state = seed | 1;
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    (0..g.node_count())
        .map(|v| (0..g.degree(v)).map(|_| Label::from_index(next() % n_labels)).collect())
        .collect()
}

/// Count `check()` violations by the categories the streaming report keeps.
fn categorize(violations: &[Violation]) -> (u64, u64, u64) {
    let mut counts = (0u64, 0u64, 0u64);
    for v in violations {
        match v {
            Violation::Degree { .. } => counts.0 += 1,
            Violation::Node { .. } => counts.1 += 1,
            Violation::Edge { .. } => counts.2 += 1,
            Violation::OutputArity { .. } => panic!("aligned rows cannot mis-arity"),
        }
    }
    counts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The CSR `PortGraph` reproduces the seed-era nested-Vec edge-list
    /// semantics exactly: degrees, port targets, reciprocal ports, edge
    /// iteration, BFS order, and girth.
    #[test]
    fn csr_matches_edge_list_oracle((n, edges) in arb_edge_list()) {
        let g = PortGraph::from_edges(n, &edges).expect("valid simple graph");
        let adj = oracle_ports(n, &edges);
        prop_assert_eq!(g.node_count(), n);
        prop_assert_eq!(g.edge_count(), edges.len());
        prop_assert_eq!(g.total_ports(), 2 * edges.len());
        for (v, row) in adj.iter().enumerate() {
            prop_assert_eq!(g.degree(v), row.len());
            for (p, &(w, wp)) in row.iter().enumerate() {
                let t = g.neighbor(v, p);
                prop_assert_eq!((t.node_ix(), t.port_ix()), (w, wp));
            }
        }
        let mut listed: Vec<(usize, usize)> = g.edges().map(|(u, _, v, _)| (u, v)).collect();
        listed.sort_unstable();
        let mut expected = edges.clone();
        expected.sort_unstable();
        prop_assert_eq!(listed, expected);
        prop_assert_eq!(g.bfs_order(0), oracle_bfs(&adj, 0));
        prop_assert_eq!(g.girth(), oracle_girth(&adj));
    }

    /// The streaming checker returns the same verdict, the same per-kind
    /// violation counts, and (below one chunk, with an uncapped witness
    /// budget) the same violations in the same order as the materializing
    /// checker — on arbitrary graphs, problems, and outputs.
    #[test]
    fn stream_checker_matches_materializing_checker(
        p in arb_problem(),
        (n, edges) in arb_edge_list(),
        seed in any::<u64>(),
    ) {
        let g = PortGraph::from_edges(n, &edges).expect("valid simple graph");
        let rows = lcg_rows(&g, p.alphabet().len(), seed);
        let flat = FlatOutputs::from_rows(&g, &rows);
        let violations = check(&p, &g, &rows);
        let opts = CheckOptions { max_witnesses: usize::MAX, threads: 1 };
        let report = check_stream(&p, &g, &flat, &opts);
        prop_assert_eq!(report.is_valid(), violations.is_empty());
        prop_assert_eq!(report.nodes_checked, n as u64);
        prop_assert_eq!(
            (report.degree_violations, report.node_violations, report.edge_violations),
            categorize(&violations)
        );
        // n ≤ 24 < STREAM_CHUNK: single chunk, so witnesses are exactly
        // `check`'s violations in `check`'s order.
        prop_assert_eq!(&report.witnesses, &violations);
        // The report is bit-identical for every thread count.
        for threads in [2usize, 4] {
            let again = check_stream(&p, &g, &flat, &CheckOptions { max_witnesses: usize::MAX, threads });
            prop_assert_eq!(&again, &report);
        }
    }

    /// Validity is a property of the labeling, not the port numbering:
    /// renumbering ports (and permuting output rows to match) never changes
    /// the checker's verdict or per-kind counts.
    #[test]
    fn checker_verdict_invariant_under_port_permutation(
        p in arb_problem(),
        (n, edges) in arb_edge_list(),
        seed in any::<u64>(),
    ) {
        let g = PortGraph::from_edges(n, &edges).expect("valid simple graph");
        let rows = lcg_rows(&g, p.alphabet().len(), seed);
        let mut state = seed ^ 0x9E3779B97F4A7C15;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        // A random permutation per node (new port → old port).
        let perms: Vec<Vec<usize>> = (0..n)
            .map(|v| {
                let mut perm: Vec<usize> = (0..g.degree(v)).collect();
                for i in (1..perm.len()).rev() {
                    perm.swap(i, next() % (i + 1));
                }
                perm
            })
            .collect();
        let g2 = g.with_port_permutations(&perms);
        let rows2: Vec<Vec<Label>> = perms
            .iter()
            .enumerate()
            .map(|(v, perm)| perm.iter().map(|&old| rows[v][old]).collect())
            .collect();
        let base = check_stream(&p, &g, &FlatOutputs::from_rows(&g, &rows),
            &CheckOptions { max_witnesses: 0, threads: 1 });
        let permuted = check_stream(&p, &g2, &FlatOutputs::from_rows(&g2, &rows2),
            &CheckOptions { max_witnesses: 0, threads: 1 });
        prop_assert_eq!(base.is_valid(), permuted.is_valid());
        prop_assert_eq!(
            (base.degree_violations, base.node_violations, base.edge_violations),
            (permuted.degree_violations, permuted.node_violations, permuted.edge_violations)
        );
    }

    /// Seeded random-regular generation is a pure function of the seed:
    /// bit-identical for every worker thread count.
    #[test]
    fn random_regular_generation_thread_invariant(
        n in 6usize..=48,
        d in 2usize..=4,
        seed in any::<u64>(),
    ) {
        let n = if (n * d) % 2 == 1 { n + 1 } else { n };
        let one = random_regular_seeded(n, d, 64, seed, 1);
        for threads in [2usize, 4] {
            prop_assert_eq!(&random_regular_seeded(n, d, 64, seed, threads), &one);
        }
        if let Some(g) = &one {
            prop_assert!(g.is_regular(d));
        }
    }
}
