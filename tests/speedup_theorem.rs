//! Integration tests: the speedup theorem across crates (engine ×
//! problems × simulator).

use roundelim::core::iso::are_isomorphic;
use roundelim::core::label::Label;
use roundelim::core::relax::{is_relaxation_of, relaxation_map};
use roundelim::core::sequence::{iterate, StopReason};
use roundelim::core::speedup::{full_step, full_step_unsimplified};
use roundelim::problems::coloring::coloring;
use roundelim::problems::matching::maximal_matching;
use roundelim::problems::mis::mis;
use roundelim::problems::sinkless::{sinkless_coloring, sinkless_orientation};
use roundelim::problems::weak::weak_coloring_pointer;
use roundelim::sim::ring::{
    check_node_algorithm, slowdown, speedup_algorithm, RingClass, WindowAlgorithm,
};

#[test]
fn e1_sinkless_fixed_point_all_deltas() {
    for delta in 3..=7 {
        let sc = sinkless_coloring(delta).unwrap();
        let so = sinkless_orientation(delta).unwrap();
        let step = full_step(&sc).unwrap();
        assert!(are_isomorphic(step.problem(), &sc), "Δ={delta}");
        // and the half step is sinkless orientation
        assert!(are_isomorphic(&step.half.problem, &so), "Δ={delta}");
        // so the driver finds a fixed point
        let seq = iterate(&sc, 5).unwrap();
        assert!(matches!(seq.stop, StopReason::FixedPoint { .. }), "Δ={delta}");
    }
}

#[test]
fn speedup_of_sinkless_orientation_is_sinkless_orientation_shifted() {
    // SO is SC's half step; the full step of SO must again loop.
    let so = sinkless_orientation(3).unwrap();
    let seq = iterate(&so, 5).unwrap();
    assert!(matches!(seq.stop, StopReason::FixedPoint { .. }));
}

#[test]
fn theorem2_simplified_and_unsimplified_agree_in_strength() {
    // On a tiny problem, the simplified and unsimplified derived problems
    // must be mutually relaxable (Theorem 2: the maximality restriction
    // costs nothing).
    let sc = sinkless_coloring(3).unwrap();
    let simp = full_step(&sc).unwrap().problem().clone();
    let unsimp = full_step_unsimplified(&sc).unwrap().problem().clone();
    // unsimplified → simplified: every unsimplified output set extends to
    // a maximal one. The label-map witness search finds this.
    assert!(is_relaxation_of(&simp, &unsimp) || is_relaxation_of(&unsimp, &simp));
}

#[test]
fn coloring_speedup_explodes_without_relaxation() {
    // §2.1: "the description of an inferred problem Π_i is much more
    // complex than the description of the original problem … dealing with
    // this explosion is one of the main challenges". Concretely: the
    // second unaided speedup of 3-coloring on rings needs thousands of
    // labels; the engine reports the overflow instead of looping forever —
    // and the §4.5 relaxation (hardening to k′-coloring) is the paper's
    // documented way around it.
    let c3 = coloring(3, 2).unwrap();
    let step = full_step(&c3).unwrap();
    assert!(step.problem().alphabet().len() <= 64);
    match full_step(step.problem()) {
        Err(roundelim::core::error::Error::AlphabetOverflow { requested }) => {
            assert!(requested > 256, "the explosion is real: {requested} labels");
        }
        Ok(step2) => {
            // If a future engine compresses harder this may fit; both
            // outcomes are acceptable, silence is not.
            assert!(step2.problem().alphabet().len() <= 256);
        }
        Err(e) => panic!("unexpected error: {e}"),
    }
}

#[test]
fn weak_coloring_speedup_structure_is_stable_in_delta() {
    // §4.6: the derived structure (7 half-step labels; 9 node configs in
    // Π'₁ for Δ ≥ 6, fewer for small Δ) stabilizes.
    let mut node_counts = Vec::new();
    for delta in [3usize, 5, 7] {
        let w = weak_coloring_pointer(2, delta).unwrap();
        let half = roundelim::core::speedup::half_step_edge(&w).unwrap();
        assert_eq!(half.meanings.len(), 7, "Δ={delta}: seven usable outputs");
        let step = full_step(&w).unwrap();
        node_counts.push(step.problem().node().len());
    }
    // Stabilization at the paper's 9 elements for large Δ.
    assert_eq!(node_counts[1], node_counts[2], "h₁ size stabilizes");
    assert!(node_counts[2] <= 9);
}

#[test]
fn relaxation_chain_weak_to_superweak() {
    use roundelim::problems::weak::superweak_coloring;
    for delta in [3usize, 4] {
        let w = weak_coloring_pointer(2, delta).unwrap();
        let sw2 = superweak_coloring(2, delta).unwrap();
        let sw3 = superweak_coloring(3, delta).unwrap();
        // weak 2-coloring ⟶ superweak 2-coloring ⟶ superweak 3-coloring.
        assert!(is_relaxation_of(&w, &sw2), "Δ={delta}");
        assert!(is_relaxation_of(&sw2, &sw3), "Δ={delta}");
        // and transitively
        assert!(is_relaxation_of(&w, &sw3), "Δ={delta}");
    }
}

#[test]
fn matching_and_mis_survive_one_speedup() {
    for p in [maximal_matching(3).unwrap(), mis(3).unwrap()] {
        let step = full_step(&p).unwrap();
        let q = step.problem();
        assert!(!q.node().is_empty(), "{}: derived node constraint nonempty", p.name());
        assert!(!q.edge().is_empty(), "{}: derived edge constraint nonempty", p.name());
        // A derived problem of a solvable problem stays solvable: the
        // trivial relaxation to "everything allowed" exists.
    }
}

#[test]
fn e8_ring_round_trip_for_multiple_palettes() {
    // Theorem 1 end-to-end on rings: for input palette c, the one-round
    // top-color reduction solves (c−1)-coloring; speed it up and slow it
    // back down. (Only the *top* class may recolor in a single round —
    // recoloring two classes simultaneously is incorrect, and the checker
    // catches it; see `bogus_simultaneous_reduction_rejected`.)
    for c in [4usize, 5] {
        let class = RingClass::proper_coloring(c);
        let target = coloring(c - 1, 2).unwrap();
        let a = WindowAlgorithm::from_fn(1, &class, |w| {
            let (x, y, z) = (w[0], w[1], w[2]);
            let col =
                if y == c - 1 { (0..c - 1).find(|&k| k != x && k != z).expect("room") } else { y };
            (Label::from_index(col), Label::from_index(col))
        });
        check_node_algorithm(&a, &target, &class).unwrap();
        let step = full_step(&target).unwrap();
        let a1 = speedup_algorithm(&a, &target, &step, &class).unwrap();
        check_node_algorithm(&a1, step.problem(), &class).unwrap();
        let back = slowdown(&a1, &target, &step, &class).unwrap();
        check_node_algorithm(&back, &target, &class).unwrap();
    }
}

#[test]
fn bogus_simultaneous_reduction_rejected() {
    // Recoloring colors 4 and 3 in the same round is wrong (two adjacent
    // recolored nodes can collide); the checker must reject it.
    let class = RingClass::proper_coloring(5);
    let p3 = coloring(3, 2).unwrap();
    let a = WindowAlgorithm::from_fn(1, &class, |w| {
        let (x, y, z) = (w[0], w[1], w[2]);
        let mut col = y;
        while col >= 3 {
            col = (0..col).find(|&k| k != x && k != z).expect("room");
        }
        (Label::from_index(col), Label::from_index(col))
    });
    assert!(check_node_algorithm(&a, &p3, &class).is_err());
}

#[test]
fn derived_zero_round_algorithm_runs_on_a_real_ring() {
    // Bridge the window machinery and the graph simulator: derive the
    // 0-round algorithm for Π'₁(3-coloring), execute it on an actual
    // 12-cycle carrying a proper 4-coloring, and validate the outputs with
    // the graph checker.
    use roundelim::sim::checker::is_valid;
    use roundelim::sim::generate::cycle;

    let class = RingClass::proper_coloring(4);
    let p3 = coloring(3, 2).unwrap();
    let a = WindowAlgorithm::from_fn(1, &class, |w| {
        let (x, y, z) = (w[0], w[1], w[2]);
        let col = if y == 3 { (0..3).find(|&k| k != x && k != z).expect("room") } else { y };
        (Label::from_index(col), Label::from_index(col))
    });
    check_node_algorithm(&a, &p3, &class).unwrap();
    let step = full_step(&p3).unwrap();
    let a1 = speedup_algorithm(&a, &p3, &step, &class).unwrap();
    assert_eq!(a1.t, 0);

    // A proper 4-coloring around a 12-cycle.
    let n = 12;
    let g = cycle(n);
    let input_color = |v: usize| v % 4;
    // Per-node outputs: a 0-round window is just the node's own color;
    // port 0/1 orientation: in `cycle(n)`, node 0 has (right, left) ports,
    // others (left, right).
    let outputs: Vec<Vec<Label>> = (0..n)
        .map(|v| {
            let (left, right) = *a1.map.get(&vec![input_color(v)]).expect("window present");
            if v == 0 {
                vec![right, left]
            } else {
                vec![left, right]
            }
        })
        .collect();
    assert!(is_valid(step.problem(), &g, &outputs));
}

#[test]
fn provenance_round_trip_through_text_format() {
    // Derived problems serialize through the text format loss-free.
    for delta in [3usize, 4] {
        let sc = sinkless_coloring(delta).unwrap();
        let step = full_step(&sc).unwrap();
        let text = step.problem().to_text();
        let reparsed = roundelim::core::problem::Problem::parse(&text).unwrap();
        assert_eq!(&reparsed, step.problem());
    }
}

#[test]
fn relaxation_map_actually_translates_outputs() {
    let pm = roundelim::problems::matching::perfect_matching(3).unwrap();
    let mm = maximal_matching(3).unwrap();
    let map = relaxation_map(&pm, &mm).unwrap();
    // M maps to M, U maps to O.
    let m_pm = pm.alphabet().require("M").unwrap();
    let u_pm = pm.alphabet().require("U").unwrap();
    assert_eq!(mm.alphabet().name(map[m_pm.index()]), "M");
    assert_eq!(mm.alphabet().name(map[u_pm.index()]), "O");
}
