//! Property-based tests of the `roundelim-bin-v1` binary encoding: every
//! `Problem`, `Certificate`, and `CanonCache` snapshot must round-trip
//! **bit-identically** (decode ∘ encode = id on bytes, not just on
//! values), including problems with ≥ 9 labels, where the canonical-form
//! pipeline switches to signature-profile buckets. Truncations and byte
//! flips must be rejected by the frame checksum, mirroring the snapshot
//! corruption coverage in `tests/crash_recovery.rs`.

use proptest::prelude::*;
use roundelim::auto::binenc::{
    certificate_from_bytes, certificate_to_bytes, snapshot_from_bytes, snapshot_to_bytes,
};
use roundelim::auto::cache::CanonCache;
use roundelim::auto::search::{autolb, SearchOptions};
use roundelim::core::binenc::{problem_from_bytes, problem_to_bytes};
use roundelim::core::config::{all_multisets, Config};
use roundelim::core::constraint::Constraint;
use roundelim::core::label::Alphabet;
use roundelim::core::problem::Problem;

/// A random problem with Δ and label count drawn from the given ranges
/// (the `tests/properties.rs` generator, parameterised over sizes).
fn arb_problem_sized(
    deltas: std::ops::RangeInclusive<usize>,
    labels: std::ops::RangeInclusive<usize>,
) -> impl Strategy<Value = Problem> {
    (deltas, labels).prop_flat_map(|(delta, n_labels)| {
        let node_space = all_multisets(n_labels, delta);
        let edge_space = all_multisets(n_labels, 2);
        let node_sel = proptest::collection::vec(any::<bool>(), node_space.len());
        let edge_sel = proptest::collection::vec(any::<bool>(), edge_space.len());
        (Just(delta), Just(n_labels), node_sel, edge_sel).prop_filter_map(
            "nonempty constraints",
            |(delta, n_labels, ns, es)| {
                let node: Vec<Config> = all_multisets(n_labels, delta)
                    .into_iter()
                    .zip(&ns)
                    .filter(|(_, &keep)| keep)
                    .map(|(c, _)| c)
                    .collect();
                let edge: Vec<Config> = all_multisets(n_labels, 2)
                    .into_iter()
                    .zip(&es)
                    .filter(|(_, &keep)| keep)
                    .map(|(c, _)| c)
                    .collect();
                if node.is_empty() || edge.is_empty() {
                    return None;
                }
                let alphabet = Alphabet::from_names((0..n_labels).map(|i| format!("L{i}"))).ok()?;
                let node = Constraint::from_configs(delta, node).ok()?;
                let edge = Constraint::from_configs(2, edge).ok()?;
                Problem::new("random", alphabet, node, edge).ok()
            },
        )
    })
}

/// Small search-sized problems (2–4 labels).
fn arb_problem() -> impl Strategy<Value = Problem> {
    arb_problem_sized(2..=3, 2..=4)
}

/// Problems big enough that canonicalisation uses signature-profile
/// buckets rather than exhaustive permutations (≥ 9 labels).
fn arb_big_problem() -> impl Strategy<Value = Problem> {
    arb_problem_sized(2..=3, 9..=10)
}

fn small_budget() -> SearchOptions {
    SearchOptions {
        max_steps: 3,
        beam_width: 3,
        max_labels: 6,
        threads: 1,
        ..SearchOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `Problem` round-trips bit-identically: decoding and re-encoding
    /// reproduces the exact original bytes, and the decoded value is equal.
    #[test]
    fn problem_bytes_round_trip_bit_identically(p in arb_problem()) {
        let bytes = problem_to_bytes(&p);
        let back = problem_from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back, &p);
        prop_assert_eq!(problem_to_bytes(&back), bytes);
    }

    /// Certificates from real searches round-trip bit-identically and the
    /// decoded certificate still replays green.
    #[test]
    fn certificate_bytes_round_trip_bit_identically(p in arb_problem()) {
        let out = autolb(&p, &small_budget()).unwrap();
        let cert = out.certificate.expect("autolb always certifies something");
        let bytes = certificate_to_bytes(&cert);
        let back = certificate_from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back, &cert);
        prop_assert_eq!(certificate_to_bytes(&back), bytes);
        prop_assert!(back.verify().is_ok(), "decoded certificate must replay green");
    }

    /// A populated `CanonCache` snapshot (interned problems plus recorded
    /// speedup steps) round-trips bit-identically and restores to a cache
    /// that recognises the same problems without fresh interning.
    #[test]
    fn cache_snapshot_bytes_round_trip_bit_identically(ps in proptest::collection::vec(arb_problem(), 1..4)) {
        let mut cache = CanonCache::new();
        let mut ids = Vec::new();
        for p in &ps {
            let (id, _) = cache.intern(p.clone());
            ids.push(id);
            // Recording a step exercises the succ/derived snapshot fields;
            // some random problems have no legal step, which is fine.
            let _ = cache.step(id);
        }
        let bytes = snapshot_to_bytes(&cache.snapshot());
        let snap = snapshot_from_bytes(&bytes).unwrap();
        prop_assert_eq!(snapshot_to_bytes(&snap), bytes);
        let mut restored = CanonCache::restore(snap).unwrap();
        for (p, id) in ps.iter().zip(&ids) {
            let (again, fresh) = restored.intern(p.clone());
            prop_assert_eq!(again, *id);
            prop_assert!(!fresh, "restored cache must already know every interned problem");
        }
    }
}

proptest! {
    // Big-alphabet cases are pricier; fewer cases keep the suite fast.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Problems with ≥ 9 labels — the signature-profile bucket regime of
    /// the canonical form — round-trip bit-identically, both bare and
    /// through a `CanonCache` snapshot.
    #[test]
    fn nine_plus_label_problems_round_trip_bit_identically(p in arb_big_problem()) {
        prop_assert!(p.alphabet().len() >= 9);
        let bytes = problem_to_bytes(&p);
        let back = problem_from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back, &p);
        prop_assert_eq!(problem_to_bytes(&back), bytes);

        let mut cache = CanonCache::new();
        let (id, _) = cache.intern(p.clone());
        let snap_bytes = snapshot_to_bytes(&cache.snapshot());
        let snap = snapshot_from_bytes(&snap_bytes).unwrap();
        prop_assert_eq!(snapshot_to_bytes(&snap), snap_bytes.clone());
        let mut restored = CanonCache::restore(snap).unwrap();
        let (again, fresh) = restored.intern(p.clone());
        prop_assert_eq!(again, id);
        prop_assert!(!fresh);
    }
}

/// Every truncation of a `roundelim-bin-v1` blob is rejected, and a byte
/// flip inside the payload is caught by the FNV-1a frame checksum — the
/// same guarantees `tests/crash_recovery.rs` pins for checkpoint files.
#[test]
fn truncations_and_byte_flips_are_rejected() {
    let p = Problem::parse("name: so\nnode: O O O | O O I | O I I\nedge: O I").unwrap();
    let out = autolb(&p, &small_budget()).unwrap();
    let cert = out.certificate.expect("sinkless orientation certifies");
    let mut cache = CanonCache::new();
    let (id, _) = cache.intern(p.clone());
    let _ = cache.step(id);

    let blobs: Vec<(&str, Vec<u8>)> = vec![
        ("problem", problem_to_bytes(&p)),
        ("certificate", certificate_to_bytes(&cert)),
        ("cache snapshot", snapshot_to_bytes(&cache.snapshot())),
    ];
    for (what, bytes) in &blobs {
        let decode = |b: &[u8]| -> Result<(), String> {
            let r = match *what {
                "problem" => problem_from_bytes(b).map(|_| ()),
                "certificate" => certificate_from_bytes(b).map(|_| ()),
                _ => snapshot_from_bytes(b).map(|_| ()),
            };
            r.map_err(|e| e.to_string())
        };
        assert!(decode(bytes).is_ok(), "{what}: pristine bytes must decode");
        // Truncation at a spread of cut points (including the empty and
        // the all-but-last-byte prefixes) must never decode.
        let step = (bytes.len() / 17).max(1);
        for cut in (0..bytes.len()).step_by(step).chain([bytes.len() - 1]) {
            assert!(
                decode(&bytes[..cut]).is_err(),
                "{what}: truncation to {cut}/{} bytes must be rejected",
                bytes.len()
            );
        }
        // A flipped payload byte must trip the checksum, not decode into
        // a different value. (Mid-blob lands in the payload section: the
        // frame is MAGIC + kind + length + payload + trailing checksum.)
        let mut flipped = bytes.clone();
        let ix = flipped.len() / 2;
        flipped[ix] ^= 0x40;
        let err = decode(&flipped).expect_err("byte flip must be rejected");
        assert!(err.contains("checksum"), "{what}: expected a checksum error, got: {err}");
    }
}
