//! End-to-end observability tests: trace determinism across single-thread
//! re-runs, and the `roundelim trace` read-back subcommands.

use roundelim::obs::summary;
use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_roundelim"))
}

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("roundelim-obs-e2e-{tag}-{}.jsonl", std::process::id()))
}

/// Runs `autolb sinkless-orientation::3 --threads 1 --trace <path>` in a
/// fresh process and returns the recorded trace text.
fn record_trace(path: &PathBuf) -> String {
    let out = cli()
        .args(["autolb", "sinkless-orientation::3", "--threads", "1", "--trace"])
        .arg(path)
        .output()
        .expect("spawn roundelim");
    assert!(out.status.success(), "autolb failed: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("wrote trace to"), "missing trace confirmation: {stderr}");
    std::fs::read_to_string(path).expect("trace file written")
}

#[test]
fn single_thread_traces_are_deterministic_across_runs() {
    let (path_a, path_b) = (tmp("det-a"), tmp("det-b"));
    let (text_a, text_b) = (record_trace(&path_a), record_trace(&path_b));

    // Timestamps are the only nondeterministic payload: stripped traces
    // from two single-threaded runs must be byte-identical.
    assert_eq!(
        summary::strip_timings(&text_a),
        summary::strip_timings(&text_b),
        "timing-stripped single-thread traces must be byte-identical"
    );

    let (trace_a, trace_b) = (
        summary::parse(&text_a).expect("trace A parses"),
        summary::parse(&text_b).expect("trace B parses"),
    );
    assert!(!trace_a.events.is_empty(), "the search must record events");
    assert_eq!(summary::shape(&trace_a), summary::shape(&trace_b), "span tree shape");
    assert_eq!(trace_a.counters, trace_b.counters, "counter totals");
    assert_eq!(trace_a.dropped, 0, "this search is far below the event cap");

    // Single-threaded: every event on the one (first) trace thread.
    for ev in &trace_a.events {
        if let summary::TraceEvent::Enter { thread, .. } = ev {
            assert_eq!(*thread, 0, "at --threads 1 all spans record on thread 0");
        }
    }

    let _ = std::fs::remove_file(&path_a);
    let _ = std::fs::remove_file(&path_b);
}

#[test]
fn trace_subcommand_summarizes_and_folds() {
    let path = tmp("readback");
    let text = record_trace(&path);

    let summarize = cli().args(["trace", "summarize"]).arg(&path).output().expect("spawn");
    assert!(summarize.status.success(), "{}", String::from_utf8_lossy(&summarize.stderr));
    let table = String::from_utf8(summarize.stdout).expect("utf8");
    assert!(table.contains("span names"), "{table}");
    assert!(table.contains("search.depth"), "{table}");
    assert!(table.contains("counters:"), "{table}");

    let json = cli().args(["trace", "summarize", "--json"]).arg(&path).output().expect("spawn");
    assert!(json.status.success());
    let doc = String::from_utf8(json.stdout).expect("utf8");
    assert!(doc.contains("\"spans\"") && doc.contains("\"total_events\""), "{doc}");

    let fold = cli().args(["trace", "fold"]).arg(&path).output().expect("spawn");
    assert!(fold.status.success(), "{}", String::from_utf8_lossy(&fold.stderr));
    let folded = String::from_utf8(fold.stdout).expect("utf8");
    assert!(!folded.trim().is_empty(), "folded stacks must be non-empty");
    // Folded lines are `path;to;span value` — check one known nesting.
    assert!(
        folded.lines().any(|l| l.contains(';') && l.contains("search.depth")),
        "expected nested stacks under search.depth:\n{folded}"
    );
    // The folded output agrees with the library fold of the same file.
    let lib_fold = summary::fold(&summary::parse(&text).unwrap());
    assert_eq!(folded.lines().count(), lib_fold.len());

    let _ = std::fs::remove_file(&path);
}

#[test]
fn json_output_carries_the_obs_registry_section() {
    let out = cli()
        .args(["autolb", "sinkless-orientation::3", "--threads", "1", "--json"])
        .output()
        .expect("spawn roundelim");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let doc = String::from_utf8(out.stdout).expect("utf8");
    assert!(doc.contains("\"obs\""), "{doc}");
    assert!(doc.contains("\"cache.intern_misses\""), "counters present: {doc}");
    assert!(doc.contains("\"search.beam_occupancy\""), "histograms present: {doc}");
}

#[test]
fn trace_subcommand_rejects_garbage() {
    let path = tmp("garbage");
    std::fs::write(&path, "not a trace\n").unwrap();
    let out = cli().args(["trace", "summarize"]).arg(&path).output().expect("spawn");
    assert_eq!(out.status.code(), Some(2), "bad input is a usage error");
    let _ = std::fs::remove_file(&path);
}
