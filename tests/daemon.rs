//! End-to-end tests of `roundelimd`, the persistent proof-cache service:
//! a problem solved once is served from the store on every later request
//! — including after a kill-and-restart, and for isomorphic renamings —
//! with a byte-identical certificate and no re-search, and the store
//! bytes are independent of the search worker-thread count.
//!
//! NOTE on wire assertions: the daemon renders every response through
//! `auto::json`, which sorts object keys and puts a space after each
//! colon (`"cached": true`), so the patterns below use that spelling.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_roundelim"))
}

/// A fresh per-test scratch directory (unique per process so parallel
/// suite runs cannot tamper with each other's fixtures).
fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("roundelim-daemon-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Sinkless orientation (Δ = 3) and an isomorphic renaming of it
/// (O ↦ X, I ↦ Y, with the configurations re-ordered): the classic
/// "same problem, different spelling" pair for cache-hit tests.
const SO: &str = "name: so\nnode: O O O | O O I | O I I\nedge: O I";
const SO_RENAMED: &str = "name: so2\nnode: Y X X | X X X | Y Y X\nedge: X Y";

/// A daemon process plus the address it bound and its stdout reader
/// (kept open so the daemon's final println cannot hit a closed pipe).
struct Daemon {
    child: Child,
    addr: String,
    stdout: BufReader<ChildStdout>,
}

/// A test failure must not leak the daemon: a leaked child holds the
/// harness's captured output pipe open and hangs the whole `cargo test`.
impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Daemon {
    /// Spawns `roundelim serve --addr 127.0.0.1:0 --store <dir>` and
    /// parses the bound address from the banner line.
    fn spawn(store: &Path, extra_env: &[(&str, &str)]) -> Daemon {
        let mut cmd = cli();
        cmd.args(["serve", "--addr", "127.0.0.1:0", "--store", store.to_str().unwrap()])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        for (k, v) in extra_env {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().unwrap();
        let mut stdout = BufReader::new(child.stdout.take().unwrap());
        let mut banner = String::new();
        stdout.read_line(&mut banner).unwrap();
        let addr = banner
            .trim()
            .strip_prefix("roundelimd listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
            .to_owned();
        Daemon { child, addr, stdout }
    }

    /// Sends one request line and reads response lines until the terminal
    /// event for that request (anything but a progress event).
    fn request(&self, line: &str) -> Vec<String> {
        let mut stream = TcpStream::connect(&self.addr).unwrap();
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut lines = Vec::new();
        for l in BufReader::new(stream).lines() {
            let l = l.unwrap();
            let done = !l.contains("\"event\": \"progress\"");
            lines.push(l);
            if done {
                break;
            }
        }
        assert!(!lines.is_empty(), "daemon closed the connection without replying");
        lines
    }

    /// The terminal response line for a request.
    fn response(&self, line: &str) -> String {
        self.request(line).pop().unwrap()
    }

    /// Requests shutdown and waits for a clean exit (code 0).
    fn shutdown(&mut self) -> String {
        let ack = self.response("{\"req\":\"shutdown\"}");
        assert!(ack.contains("\"event\": \"shutdown\""), "{ack}");
        let status = wait_with_deadline(&mut self.child, Duration::from_secs(60));
        assert_eq!(status.code(), Some(0), "requested shutdown must exit 0");
        let mut rest = String::new();
        self.stdout.read_to_string(&mut rest).unwrap();
        rest
    }
}

/// Waits for the child with a deadline, SIGKILLing it on timeout so a
/// regression can never hang the suite.
fn wait_with_deadline(child: &mut Child, timeout: Duration) -> std::process::ExitStatus {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(status) = child.try_wait().unwrap() {
            return status;
        }
        if Instant::now() >= deadline {
            child.kill().unwrap();
            let status = child.wait().unwrap();
            panic!("daemon did not exit within {timeout:?} (killed, status {status})");
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn solve_line(problem: &str) -> String {
    format!(
        "{{\"req\":\"solve\",\"problem\":\"{}\",\"direction\":\"lower\"}}",
        json_escape(problem)
    )
}

/// The `"certificate": …` field of a result line — the part that must be
/// byte-identical between a fresh solve and every later cache hit. Keys
/// are rendered sorted, so the field ends where `"event"` begins.
fn cert_part(result: &str) -> &str {
    let start = result.find("\"certificate\":").expect("result carries a certificate");
    let end = result.find(",\"event\"").expect("result carries an event field");
    assert!(start < end, "unexpected result layout: {result}");
    &result[start..end]
}

/// One daemon lifetime: a cold solve populates the store, an identical
/// request is a cache hit with a byte-identical certificate, and `stats`
/// sees exactly one miss and one hit.
#[test]
fn second_solve_is_a_byte_identical_cache_hit() {
    let store = tmp_dir("warm");
    let mut d = Daemon::spawn(&store, &[]);

    let cold = d.response(&solve_line(SO));
    assert!(cold.contains("\"ok\": true"), "{cold}");
    assert!(cold.contains("\"cached\": false"), "first solve must miss: {cold}");
    assert!(cold.contains("\"kind\": \"unbounded\""), "{cold}");

    let warm = d.response(&solve_line(SO));
    assert!(warm.contains("\"cached\": true"), "second solve must hit: {warm}");
    assert_eq!(
        cert_part(&cold),
        cert_part(&warm),
        "the served certificate must be byte-identical to the solved one"
    );

    let stats = d.response("{\"req\":\"stats\"}");
    assert!(stats.contains("\"cache_hits\": 1"), "{stats}");
    assert!(stats.contains("\"cache_misses\": 1"), "{stats}");

    let status = d.response("{\"req\":\"status\"}");
    assert!(status.contains("\"protocol\": \"roundelimd-1\""), "{status}");
    assert!(status.contains("\"records\": 1"), "{status}");

    // Malformed requests report an error but keep the daemon alive.
    let err = d.response("{\"req\":\"frobnicate\"}");
    assert!(err.contains("\"ok\": false"), "{err}");
    let tail = d.shutdown();
    assert!(tail.contains("shutdown requested"), "{tail}");
}

/// The acceptance lifecycle: solve, SIGTERM-kill the daemon (exit 3),
/// restart it on the same store, and both the original spelling and an
/// isomorphic renaming are served from the store without re-searching.
#[cfg(unix)]
#[test]
fn killed_and_restarted_daemon_serves_isomorphic_hits_from_the_store() {
    let store = tmp_dir("restart");
    let mut d = Daemon::spawn(&store, &[]);
    let cold = d.response(&solve_line(SO));
    assert!(cold.contains("\"cached\": false"), "{cold}");

    let term = Command::new("kill").args(["-TERM", &d.child.id().to_string()]).status().unwrap();
    assert!(term.success(), "kill -TERM failed");
    let status = wait_with_deadline(&mut d.child, Duration::from_secs(60));
    assert_eq!(status.code(), Some(3), "SIGTERM must map to the interrupted exit code");
    let mut tail = String::new();
    d.stdout.read_to_string(&mut tail).unwrap();
    assert!(tail.contains("stopped early (interrupted); store persisted"), "{tail}");
    assert!(store.join("proofs.bin").exists(), "the proof store must survive the SIGTERM");

    let mut d = Daemon::spawn(&store, &[]);
    let same = d.response(&solve_line(SO));
    assert!(same.contains("\"cached\": true"), "restart must serve the stored proof: {same}");
    assert_eq!(cert_part(&cold), cert_part(&same));

    let iso = d.response(&solve_line(SO_RENAMED));
    assert!(iso.contains("\"cached\": true"), "isomorphic renaming must hit the store: {iso}");
    assert_eq!(
        cert_part(&cold),
        cert_part(&iso),
        "an isomorphic query is served the stored representative's certificate"
    );
    let stats = d.response("{\"req\":\"stats\"}");
    assert!(stats.contains("\"cache_misses\": 0"), "restart must never re-search: {stats}");
    d.shutdown();
}

/// The `metrics` command: after a cold solve (search) and a warm solve
/// (cache hit), the registry counters reconcile with the per-request
/// spans — two requests, one solve-latency sample (only the miss
/// searched) — and the same totals appear in the Prometheus exposition.
#[test]
fn metrics_command_reconciles_counters_with_request_spans() {
    let store = tmp_dir("metrics");
    let mut d = Daemon::spawn(&store, &[]);

    let cold = d.response(&solve_line(SO));
    assert!(cold.contains("\"cached\": false"), "{cold}");
    let warm = d.response(&solve_line(SO));
    assert!(warm.contains("\"cached\": true"), "{warm}");

    let m = d.response("{\"req\":\"metrics\"}");
    assert!(m.contains("\"ok\": true") && m.contains("\"event\": \"metrics\""), "{m}");
    assert!(m.contains("\"daemon.requests\": 2"), "{m}");
    assert!(m.contains("\"daemon.cache_hits\": 1"), "{m}");
    assert!(m.contains("\"daemon.cache_misses\": 1"), "{m}");
    // Histogram keys render sorted (count first), so the sample counts
    // are stable substrings: exactly the one cache miss ran a search,
    // while both requests waited in the queue and encoded a result.
    assert!(m.contains("\"daemon.solve_ns\": {\"count\": 1"), "{m}");
    assert!(m.contains("\"daemon.queue_wait_ns\": {\"count\": 2"), "{m}");
    assert!(m.contains("\"daemon.encode_ns\": {\"count\": 2"), "{m}");
    // The Prometheus exposition reports the same totals, and quantile
    // summaries for the solve latency.
    assert!(m.contains("roundelim_daemon_requests 2"), "{m}");
    assert!(m.contains("roundelim_daemon_solve_ns_count 1"), "{m}");
    assert!(m.contains("quantile=\\\"0.99\\\""), "{m}");

    // `stats` reads the same atomics: the two surfaces cannot disagree.
    let stats = d.response("{\"req\":\"stats\"}");
    assert!(stats.contains("\"requests\": 2"), "{stats}");
    assert!(stats.contains("\"cache_hits\": 1"), "{stats}");
    d.shutdown();
}

/// The store files are byte-identical whether the daemon searched with 1
/// or 4 worker threads (search determinism reaches the persisted bytes).
#[test]
fn store_bytes_are_independent_of_the_thread_count() {
    let mut stores = Vec::new();
    for threads in ["1", "4"] {
        let store = tmp_dir(&format!("threads-{threads}"));
        let mut d = Daemon::spawn(&store, &[("ROUNDELIM_THREADS", threads)]);
        let coloring = "name: c3\nnode: 1 0 0 | 0 1 0 | 0 0 1\nedge: 0 1 | 0 2 | 1 2";
        let budget = ",\"budget\":{\"max_steps\":4,\"beam_width\":4,\"max_labels\":8}";
        for (p, budget) in [(SO, ""), (coloring, budget)] {
            let line = format!(
                "{{\"req\":\"solve\",\"problem\":\"{}\",\"direction\":\"lower\"{budget}}}",
                json_escape(p)
            );
            let r = d.response(&line);
            assert!(r.contains("\"ok\": true"), "{r}");
        }
        d.shutdown();
        stores.push(store);
    }
    for file in ["proofs.bin", "cache.snap.bin"] {
        assert_eq!(
            std::fs::read(stores[0].join(file)).unwrap(),
            std::fs::read(stores[1].join(file)).unwrap(),
            "{file} must not depend on ROUNDELIM_THREADS"
        );
    }
}

/// The bundled client: a solve round-trip re-verifies the served
/// certificate locally, `--cert` exports it, and `cert verify` replays
/// the export green.
#[test]
fn client_reverifies_and_exports_certificates() {
    let store = tmp_dir("client");
    let dir = tmp_dir("client-files");
    let problem = dir.join("so.problem");
    std::fs::write(&problem, SO).unwrap();
    let cert = dir.join("so.cert.json");
    let mut d = Daemon::spawn(&store, &[]);

    for pass in ["cold", "warm"] {
        let out = cli()
            .args(["client", "solve", problem.to_str().unwrap()])
            .args(["--addr", &d.addr, "--cert", cert.to_str().unwrap()])
            .output()
            .unwrap();
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(out.status.success(), "{pass}: {stdout}\n{}", String::from_utf8_lossy(&out.stderr));
        assert!(stdout.contains("certificate re-verified locally"), "{pass}: {stdout}");
        if pass == "warm" {
            assert!(stdout.contains("cache hit"), "second client solve must hit: {stdout}");
        }
    }
    let out = cli().args(["cert", "verify", cert.to_str().unwrap()]).output().unwrap();
    assert!(
        out.status.success(),
        "exported certificate must replay green: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    d.shutdown();
}
