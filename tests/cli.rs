//! End-to-end tests of the `roundelim` CLI binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_roundelim"))
}

fn run_ok(args: &[&str]) -> String {
    let out = cli().args(args).output().expect("spawn roundelim");
    assert!(
        out.status.success(),
        "roundelim {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn zoo_lists_all_families() {
    let out = run_ok(&["zoo"]);
    for name in ["coloring", "sinkless-orientation", "superweak-coloring", "mis"] {
        assert!(out.contains(name), "missing {name} in:\n{out}");
    }
}

#[test]
fn show_renders_instance() {
    let out = run_ok(&["show", "sinkless-orientation", "0", "4"]);
    assert!(out.contains("Δ = 4"));
    assert!(out.contains("node"));
    assert!(out.contains("# text format"));
}

#[test]
fn speedup_on_family_spec() {
    let out = run_ok(&["speedup", "sinkless-coloring::3"]);
    assert!(out.contains("Π'₁"));
    assert!(out.contains("↦"));
}

#[test]
fn iterate_reports_fixed_point() {
    let out = run_ok(&["iterate", "sinkless-coloring::3", "--steps", "5"]);
    assert!(out.contains("verdict"), "{out}");
    assert!(out.contains("≅"), "{out}");
}

#[test]
fn zero_round_both_models() {
    let out = run_ok(&["zero-round", "maximal-matching::3"]);
    assert!(out.contains("plain PN:  not 0-round solvable"));
    assert!(out.contains("oriented:  not 0-round solvable"));
}

#[test]
fn speedup_from_file() {
    let dir = std::env::temp_dir().join("roundelim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("sc.problem");
    std::fs::write(&file, "name: sc\nnode: 1 0 0\nedge: 0 0 | 0 1\n").unwrap();
    let out = run_ok(&["speedup", file.to_str().unwrap()]);
    assert!(out.contains("base problem"));
}

#[test]
fn iso_and_relax_commands() {
    let dir = std::env::temp_dir().join("roundelim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let a = dir.join("a.problem");
    let b = dir.join("b.problem");
    std::fs::write(&a, "name: a\nnode: 1 0 0\nedge: 0 0 | 0 1\n").unwrap();
    std::fs::write(&b, "name: b\nnode: X Y Y\nedge: Y Y | Y X\n").unwrap();
    let out = run_ok(&["iso", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert!(out.contains("isomorphic"), "{out}");
    let out = run_ok(&["relax", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert!(out.contains("witness"), "{out}");
}

#[test]
fn bad_input_fails_cleanly() {
    let out = cli().args(["speedup", "no-such-family:9:9"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
    let out = cli().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
}
