//! End-to-end tests of the `roundelim` CLI binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_roundelim"))
}

fn run_ok(args: &[&str]) -> String {
    let out = cli().args(args).output().expect("spawn roundelim");
    assert!(
        out.status.success(),
        "roundelim {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn zoo_lists_all_families() {
    let out = run_ok(&["zoo"]);
    for name in ["coloring", "sinkless-orientation", "superweak-coloring", "mis"] {
        assert!(out.contains(name), "missing {name} in:\n{out}");
    }
}

#[test]
fn show_renders_instance() {
    let out = run_ok(&["show", "sinkless-orientation", "0", "4"]);
    assert!(out.contains("Δ = 4"));
    assert!(out.contains("node"));
    assert!(out.contains("# text format"));
}

#[test]
fn speedup_on_family_spec() {
    let out = run_ok(&["speedup", "sinkless-coloring::3"]);
    assert!(out.contains("Π'₁"));
    assert!(out.contains("↦"));
}

#[test]
fn iterate_reports_fixed_point() {
    let out = run_ok(&["iterate", "sinkless-coloring::3", "--steps", "5"]);
    assert!(out.contains("verdict"), "{out}");
    assert!(out.contains("≅"), "{out}");
}

#[test]
fn zero_round_both_models() {
    let out = run_ok(&["zero-round", "maximal-matching::3"]);
    assert!(out.contains("plain PN:  not 0-round solvable"));
    assert!(out.contains("oriented:  not 0-round solvable"));
}

#[test]
fn speedup_from_file() {
    let dir = std::env::temp_dir().join("roundelim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("sc.problem");
    std::fs::write(&file, "name: sc\nnode: 1 0 0\nedge: 0 0 | 0 1\n").unwrap();
    let out = run_ok(&["speedup", file.to_str().unwrap()]);
    assert!(out.contains("base problem"));
}

#[test]
fn iso_and_relax_commands() {
    let dir = std::env::temp_dir().join("roundelim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let a = dir.join("a.problem");
    let b = dir.join("b.problem");
    std::fs::write(&a, "name: a\nnode: 1 0 0\nedge: 0 0 | 0 1\n").unwrap();
    std::fs::write(&b, "name: b\nnode: X Y Y\nedge: Y Y | Y X\n").unwrap();
    let out = run_ok(&["iso", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert!(out.contains("isomorphic"), "{out}");
    let out = run_ok(&["relax", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert!(out.contains("witness"), "{out}");
}

#[test]
fn bad_input_fails_cleanly() {
    let out = cli().args(["speedup", "no-such-family:9:9"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
    let out = cli().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
}

fn tmp_dir() -> std::path::PathBuf {
    // Unique per test process: concurrent suite runs (parallel CI jobs,
    // shared build boxes) must not tamper with each other's fixtures.
    let dir = std::env::temp_dir().join(format!("roundelim-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn autolb_rediscovers_the_sinkless_fixed_point_and_cert_verifies() {
    // §4.4 end to end with no hand-supplied relaxations: autolb finds the
    // fixed point, writes a certificate, and `cert verify` independently
    // replays it from disk.
    let cert = tmp_dir().join("so3.cert.json");
    let out = run_ok(&["autolb", "sinkless-orientation::3", "--cert", cert.to_str().unwrap()]);
    assert!(out.contains("UNBOUNDED"), "{out}");
    assert!(out.contains("replayed green"), "{out}");
    let out = run_ok(&["cert", "verify", cert.to_str().unwrap()]);
    assert!(out.contains("VALID"), "{out}");
    assert!(out.contains("unbounded lower bound"), "{out}");
}

#[test]
fn autolb_uses_searched_relaxations_on_maximal_matching() {
    let args =
        ["autolb", "maximal-matching::3", "--steps", "6", "--beam", "6", "--max-labels", "10"];
    let out = run_ok(&args);
    assert!(out.contains("lower bound 3 rounds"), "{out}");
    assert!(out.contains("relax (searched label merge)"), "{out}");
}

#[test]
fn autolb_json_embeds_the_certificate() {
    let out = run_ok(&["autolb", "sinkless-orientation::3", "--json"]);
    assert!(out.contains("\"kind\": \"unbounded\""), "{out}");
    assert!(out.contains("\"schema\": \"roundelim-cert-v1\""), "{out}");
    assert!(out.contains("\"classes\""), "{out}");
}

#[test]
fn autolb_sweep_covers_the_registry_batch() {
    let out = run_ok(&["autolb", "--sweep", "--steps", "3", "--beam", "4", "--max-labels", "8"]);
    for family in ["sinkless-orientation:0:3", "coloring:3:2", "maximal-matching:0:3"] {
        assert!(out.contains(family), "missing {family} in:\n{out}");
    }
    assert!(out.contains("UNBOUNDED"), "{out}");
}

#[test]
fn autoub_certifies_a_one_round_problem() {
    let file = tmp_dir().join("ub1.problem");
    std::fs::write(&file, "name: ub1\nnode: A B | A C\nedge: A A | A C | B B\n").unwrap();
    let out = run_ok(&["autoub", file.to_str().unwrap()]);
    assert!(out.contains("upper bound 1 rounds"), "{out}");
    assert!(out.contains("replayed green"), "{out}");
}

#[test]
fn corrupted_certificate_is_rejected_with_failure_exit() {
    let cert = tmp_dir().join("corrupt.cert.json");
    run_ok(&["autolb", "sinkless-orientation::3", "--cert", cert.to_str().unwrap()]);
    // Inflate the claim: swap the recorded cycle start out of range.
    let text = std::fs::read_to_string(&cert).unwrap();
    let tampered = text.replace("\"cycle_start\": 1", "\"cycle_start\": 999");
    assert_ne!(text, tampered, "fixture must actually change the certificate");
    std::fs::write(&cert, tampered).unwrap();
    let out = cli().args(["cert", "verify", cert.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success(), "tampered certificate must fail verification");
    assert!(String::from_utf8_lossy(&out.stdout).contains("INVALID"));
    // --json reports the same verdict machine-readably.
    let out = cli().args(["cert", "verify", cert.to_str().unwrap(), "--json"]).output().unwrap();
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"valid\": false"));
}

#[test]
fn fast_verify_accepts_valid_and_rejects_corrupted_certificates() {
    // --fast must agree with the full replay on both sides of the fence:
    // a zoo certificate the full verifier accepts, and a witness-level
    // corruption (broken iso map) that --fast still checks.
    let cert = tmp_dir().join("fast.cert.json");
    run_ok(&["autolb", "sinkless-orientation::3", "--cert", cert.to_str().unwrap()]);
    run_ok(&["cert", "verify", cert.to_str().unwrap()]);
    let out = run_ok(&["cert", "verify", cert.to_str().unwrap(), "--fast"]);
    assert!(out.contains("VALID"), "{out}");
    assert!(out.contains("--fast"), "{out}");
    // Corrupt the cycle start: verdict arithmetic, which --fast keeps.
    let text = std::fs::read_to_string(&cert).unwrap();
    let tampered = text.replace("\"cycle_start\": 1", "\"cycle_start\": 999");
    assert_ne!(text, tampered, "fixture must actually change the certificate");
    std::fs::write(&cert, tampered).unwrap();
    let out = cli().args(["cert", "verify", "--fast", cert.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success(), "tampered certificate must fail --fast verification");
    assert!(String::from_utf8_lossy(&out.stdout).contains("INVALID"));
    let out = cli()
        .args(["cert", "verify", cert.to_str().unwrap(), "--fast", "--json"])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"valid\": false"), "{stdout}");
    assert!(stdout.contains("\"fast\": true"), "{stdout}");
}

#[test]
fn exit_codes_follow_the_documented_contract() {
    // 0: a proved verdict (including one that merely exhausted --steps).
    let out = cli().args(["autolb", "sinkless-orientation::3"]).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));

    // 2: usage errors and invalid input, diagnosed before any search runs.
    let usage_cases: &[&[&str]] = &[
        &["speedup", "no-such-family:9:9"],
        &["autolb", "coloring:3:3", "--beam", "0"],
        &["autolb", "coloring:3:3", "--max-labels", "0"],
        &["autolb", "coloring:3:3", "--steps", "banana"],
        &["autolb", "coloring:3:3", "--resume"],
        &["autolb", "coloring:3:3", "--checkpoint-every", "2"],
        &["autolb", "coloring:3:3", "--checkpoint", "/tmp/x", "--checkpoint-every", "0"],
        &["cert", "verify", "/definitely/not/a/file.json"],
        &["autolb"],
    ];
    for args in usage_cases {
        let out = cli().args(*args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "expected usage exit for {args:?}");
        assert!(String::from_utf8_lossy(&out.stderr).contains("error"), "{args:?}");
    }

    // 3: a budget-exhausted search emits a verified partial certificate
    // marked incomplete, and says so machine-readably.
    let cert = tmp_dir().join("partial.cert.json");
    let out = cli()
        .args([
            "autolb",
            "coloring:3:3",
            "--steps",
            "4",
            "--beam",
            "4",
            "--max-labels",
            "8",
            "--max-expansions",
            "0",
            "--cert",
            cert.to_str().unwrap(),
            "--json",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"stop\": \"expansion-budget\""), "{stdout}");
    assert!(stdout.contains("\"incomplete\": true"), "{stdout}");
    let text = std::fs::read_to_string(&cert).unwrap();
    assert!(text.contains("\"incomplete\": true"), "{text}");
    let out = cli().args(["cert", "verify", cert.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "a partial certificate must verify");

    // 4: a partial certificate over-claiming its bound is rejected with
    // the verification-failure code — incomplete does not relax the rule.
    let tampered = text.replace("\"rounds\": 0", "\"rounds\": 9");
    assert_ne!(text, tampered, "fixture must actually change the certificate");
    std::fs::write(&cert, tampered).unwrap();
    let out = cli().args(["cert", "verify", cert.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.status.code(), Some(4), "over-claimed bound must fail verification");
    assert!(String::from_utf8_lossy(&out.stdout).contains("INVALID"));
}

#[test]
fn sim_vs_bound_writes_consistent_report() {
    let out_file = tmp_dir().join("SIM_crossval.json");
    let stdout = run_ok(&[
        "sim-vs-bound",
        "--n",
        "500",
        "--seed",
        "7",
        "--threads",
        "2",
        "--steps",
        "2",
        "--beam",
        "3",
        "--max-labels",
        "8",
        "--family",
        "mis",
        "--out",
        out_file.to_str().unwrap(),
    ]);
    assert!(stdout.contains("mis:0:3"), "{stdout}");
    assert!(stdout.contains("consistent"), "{stdout}");
    assert!(!stdout.contains("INCONSISTENT"), "{stdout}");
    assert!(!stdout.contains("coloring"), "--family must filter: {stdout}");
    let report = std::fs::read_to_string(&out_file).unwrap();
    assert!(report.contains("\"schema\": \"roundelim-sim-crossval-v1\""), "{report}");
    assert!(report.contains("\"consistent\": true"), "{report}");
}

#[test]
fn iterate_accepts_relaxation_templates() {
    let file = tmp_dir().join("sc-template-relax.problem");
    std::fs::write(&file, "name: sc\nnode: 1 0 0\nedge: 0 0 | 0 1\n").unwrap();
    let out = run_ok(&[
        "iterate",
        "sinkless-coloring::3",
        "--relax",
        file.to_str().unwrap(),
        "--steps",
        "5",
    ]);
    assert!(out.contains("relaxed to template #0"), "{out}");
    assert!(out.contains("fixed point"), "{out}");
}

#[test]
fn profile_flag_prints_stage_breakdown_on_stderr() {
    // --profile must leave stdout intact (JSON stays parseable) and print
    // the per-stage breakdown to stderr, including every stage the CI
    // artifact greps for.
    let out = cli()
        .args(["speedup", "weak-coloring:2:5", "--json", "--profile"])
        .output()
        .expect("spawn roundelim");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_start().starts_with('{'), "stdout still JSON:\n{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("per-stage breakdown"), "{stderr}");
    // The report always names every stage; the load-bearing assertion is
    // that the stages a speedup step actually runs recorded spans.
    let span_count = |stderr: &str, stage: &str| -> u64 {
        let line = stderr
            .lines()
            .find(|l| l.trim_start().starts_with(stage))
            .unwrap_or_else(|| panic!("missing `{stage}` in:\n{stderr}"));
        let inner = line.rsplit('(').next().expect("span suffix");
        inner.split_whitespace().next().expect("count").parse().expect("numeric span count")
    };
    for stage in ["merge", "close", "domination", "existential"] {
        assert!(span_count(&stderr, stage) > 0, "`{stage}` recorded no spans:\n{stderr}");
    }
    // autolb --profile records the search stages too.
    let out = cli()
        .args(["autolb", "sinkless-orientation::3", "--profile"])
        .output()
        .expect("spawn roundelim");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    for stage in ["relax-closure", "zero-round", "step"] {
        assert!(span_count(&stderr, stage) > 0, "`{stage}` recorded no spans:\n{stderr}");
    }
    // Without the flag, no breakdown is printed.
    let out = cli().args(["speedup", "weak-coloring:2:5"]).output().expect("spawn roundelim");
    assert!(!String::from_utf8_lossy(&out.stderr).contains("per-stage breakdown"));
}

#[test]
fn speedup_and_iterate_emit_json() {
    let out = run_ok(&["speedup", "sinkless-coloring::3", "--json"]);
    for key in ["\"base\"", "\"half_step\"", "\"full_step\"", "\"labels\""] {
        assert!(out.contains(key), "missing {key} in:\n{out}");
    }
    let out = run_ok(&["iterate", "sinkless-coloring::3", "--json"]);
    assert!(out.contains("\"kind\": \"fixed-point\""), "{out}");
    assert!(out.contains("\"lower_bound\": null"), "{out}");
    let file = tmp_dir().join("sc-template-json.problem");
    std::fs::write(&file, "name: sc\nnode: 1 0 0\nedge: 0 0 | 0 1\n").unwrap();
    let out =
        run_ok(&["iterate", "sinkless-coloring::3", "--relax", file.to_str().unwrap(), "--json"]);
    assert!(out.contains("\"template\": 0"), "{out}");
}

/// Ctrl-C (SIGINT) takes the same graceful path as SIGTERM: the search
/// stops at its next cancellation poll, reports the partial verdict with
/// exit code 3, and leaves its last boundary snapshot on disk for a later
/// resume. (The SIGTERM twin lives in `tests/crash_recovery.rs`.)
#[cfg(unix)]
#[test]
fn sigint_stops_gracefully_with_exit_3_and_a_live_snapshot() {
    use std::process::Stdio;
    use std::time::{Duration, Instant};

    let dir = tmp_dir().join("sigint");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let ck = dir.join("ck");
    let ckpt = ck.join("search.ckpt.json");
    // Heavy enough that the INT always lands mid-search.
    let mut child = cli()
        .args(["autolb", "coloring:3:3", "--steps", "6", "--beam", "6", "--max-labels", "10"])
        .args(["--threads", "2", "--checkpoint", ck.to_str().unwrap()])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    // Wait for the first boundary snapshot before delivering the signal.
    let deadline = Instant::now() + Duration::from_secs(60);
    while !ckpt.exists() {
        assert!(Instant::now() < deadline, "the search never wrote its first snapshot");
        std::thread::sleep(Duration::from_millis(2));
    }
    let int = Command::new("kill").args(["-INT", &child.id().to_string()]).status().unwrap();
    assert!(int.success(), "kill -INT failed");
    // Wait with a deadline so a regression can never hang the suite.
    let deadline = Instant::now() + Duration::from_secs(120);
    let status = loop {
        if let Some(status) = child.try_wait().unwrap() {
            break status;
        }
        if Instant::now() >= deadline {
            child.kill().unwrap();
            let status = child.wait().unwrap();
            panic!("child did not exit within 120s after SIGINT (killed, status {status})");
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(status.code(), Some(3), "SIGINT must map to the incomplete exit code");
    assert!(ckpt.exists(), "the boundary snapshot must survive the SIGINT");
    let mut stdout = String::new();
    std::io::Read::read_to_string(child.stdout.as_mut().unwrap(), &mut stdout).unwrap();
    assert!(stdout.contains("stopped early (interrupted)"), "{stdout}");
}
