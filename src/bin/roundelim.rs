//! `roundelim` — the command-line front end to the automatic speedup
//! engine (Brandt, PODC 2019).
//!
//! ```text
//! roundelim zoo                          list the problem families
//! roundelim show <family> [k] [Δ]        print a family instance
//! roundelim speedup <file|family:k:Δ>    one speedup step, with provenance
//! roundelim iterate <file|family:k:Δ> [--steps N]
//!                                        iterate to a verdict (§2.1 roadmap)
//! roundelim zero-round <file|family:k:Δ> both 0-round deciders
//! roundelim iso <fileA> <fileB>          isomorphism check
//! roundelim relax <fileA> <fileB>        relaxation witness A ⟶ B
//! ```
//!
//! Problem files use the text format of `roundelim_core::parser`; the
//! `family:k:Δ` shorthand instantiates a zoo family, e.g.
//! `coloring:3:2` or `sinkless-orientation::4` (empty k for families that
//! ignore it).

use roundelim::core::fmt::{problem_table, sequence_report, step_report};
use roundelim::core::iso::isomorphism;
use roundelim::core::problem::Problem;
use roundelim::core::relax::relaxation_map;
use roundelim::core::sequence::iterate;
use roundelim::core::speedup::full_step;
use roundelim::core::zero_round::{zero_round_oriented, zero_round_pn};
use roundelim::problems::registry::{families, family};
use std::process::ExitCode;

fn load(spec: &str) -> Result<Problem, String> {
    if let Ok(text) = std::fs::read_to_string(spec) {
        return Problem::parse(&text).map_err(|e| format!("{spec}: {e}"));
    }
    // family:k:Δ shorthand
    let parts: Vec<&str> = spec.split(':').collect();
    if parts.len() == 3 {
        let f = family(parts[0]).map_err(|e| e.to_string())?;
        let k: usize = if parts[1].is_empty() {
            0
        } else {
            parts[1].parse().map_err(|_| format!("bad k `{}`", parts[1]))?
        };
        let d: usize = parts[2].parse().map_err(|_| format!("bad Δ `{}`", parts[2]))?;
        return f.instantiate(k, d).map_err(|e| e.to_string());
    }
    Err(format!("`{spec}` is neither a readable file nor a family:k:Δ spec"))
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  roundelim zoo\n  roundelim show <family> [k] [Δ]\n  \
         roundelim speedup <file|family:k:Δ>\n  \
         roundelim iterate <file|family:k:Δ> [--steps N]\n  \
         roundelim zero-round <file|family:k:Δ>\n  \
         roundelim iso <fileA> <fileB>\n  roundelim relax <fileA> <fileB>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { return usage() };
    let result = match cmd.as_str() {
        "zoo" => cmd_zoo(),
        "show" => cmd_show(&args[1..]),
        "speedup" => cmd_speedup(&args[1..]),
        "iterate" => cmd_iterate(&args[1..]),
        "zero-round" => cmd_zero_round(&args[1..]),
        "iso" => cmd_iso(&args[1..]),
        "relax" => cmd_relax(&args[1..]),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_zoo() -> Result<(), String> {
    println!("{:<22} {:<8} description", "family", "uses k");
    for f in families() {
        println!("{:<22} {:<8} {}", f.name, f.uses_k, f.description);
    }
    Ok(())
}

fn cmd_show(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("show: missing family name")?;
    let f = family(name).map_err(|e| e.to_string())?;
    let k = args.get(1).map_or(Ok(3), |s| s.parse().map_err(|_| "bad k".to_string()))?;
    let d = args.get(2).map_or(Ok(3), |s| s.parse().map_err(|_| "bad Δ".to_string()))?;
    let p = f.instantiate(k, d).map_err(|e| e.to_string())?;
    print!("{}", problem_table(&p));
    println!("\n# text format (machine readable):\n{}", p.to_text());
    Ok(())
}

fn cmd_speedup(args: &[String]) -> Result<(), String> {
    let spec = args.first().ok_or("speedup: missing problem spec")?;
    let p = load(spec)?;
    let step = full_step(&p).map_err(|e| e.to_string())?;
    print!("{}", step_report(&p, &step));
    Ok(())
}

fn cmd_iterate(args: &[String]) -> Result<(), String> {
    let spec = args.first().ok_or("iterate: missing problem spec")?;
    let p = load(spec)?;
    let steps = match args.iter().position(|a| a == "--steps") {
        Some(ix) => args
            .get(ix + 1)
            .ok_or("--steps needs a value")?
            .parse()
            .map_err(|_| "--steps needs an integer".to_string())?,
        None => 8,
    };
    let seq = iterate(&p, steps).map_err(|e| e.to_string())?;
    print!("{}", sequence_report(&seq));
    Ok(())
}

fn cmd_zero_round(args: &[String]) -> Result<(), String> {
    let spec = args.first().ok_or("zero-round: missing problem spec")?;
    let p = load(spec)?;
    match zero_round_pn(&p) {
        Some(w) => {
            println!("plain PN:  SOLVABLE — every node outputs {}", w.config.display(p.alphabet()))
        }
        None => println!("plain PN:  not 0-round solvable"),
    }
    match zero_round_oriented(&p) {
        Some(w) => {
            println!("oriented:  SOLVABLE — per-indegree plans:");
            for (k, (ins, outs)) in w.plans.iter().enumerate() {
                let fmt = |v: &[roundelim::core::label::Label]| {
                    v.iter().map(|&l| p.alphabet().name(l)).collect::<Vec<_>>().join(" ")
                };
                println!("  indegree {k}: in-ports [{}], out-ports [{}]", fmt(ins), fmt(outs));
            }
        }
        None => println!("oriented:  not 0-round solvable"),
    }
    Ok(())
}

fn cmd_iso(args: &[String]) -> Result<(), String> {
    let (a, b) = two_problems(args, "iso")?;
    match isomorphism(&a, &b) {
        Some(m) => {
            println!("isomorphic; label mapping:");
            for l in a.alphabet().labels() {
                println!("  {} ↦ {}", a.alphabet().name(l), b.alphabet().name(m[l.index()]));
            }
        }
        None => println!("not isomorphic"),
    }
    Ok(())
}

fn cmd_relax(args: &[String]) -> Result<(), String> {
    let (a, b) = two_problems(args, "relax")?;
    match relaxation_map(&a, &b) {
        Some(m) => {
            println!("{} ⟶ {} (the second is at most as hard); witness:", a.name(), b.name());
            for l in a.alphabet().labels() {
                println!("  {} ↦ {}", a.alphabet().name(l), b.alphabet().name(m[l.index()]));
            }
        }
        None => println!("no label-map relaxation witness found"),
    }
    Ok(())
}

fn two_problems(args: &[String], cmd: &str) -> Result<(Problem, Problem), String> {
    let a = args.first().ok_or_else(|| format!("{cmd}: missing first problem"))?;
    let b = args.get(1).ok_or_else(|| format!("{cmd}: missing second problem"))?;
    Ok((load(a)?, load(b)?))
}
