//! `roundelim` — the command-line front end to the automatic speedup
//! engine (Brandt, PODC 2019).
//!
//! ```text
//! roundelim zoo                          list the problem families
//! roundelim show <family> [k] [Δ]        print a family instance
//! roundelim speedup <file|family:k:Δ> [--json] [--profile]
//!                                        one speedup step, with provenance
//! roundelim iterate <file|family:k:Δ> [--steps N] [--relax FILE]... [--json]
//!                                        iterate to a verdict (§2.1 roadmap),
//!                                        relaxing to templates when given
//! roundelim autolb <file|family:k:Δ> [--steps N] [--beam N] [--max-labels N]
//!                  [--threads N] [--no-relax] [--cert FILE] [--json] [--profile]
//!                  [--time-budget SECS] [--max-expansions N]
//!                  [--checkpoint DIR] [--checkpoint-every N] [--resume]
//!                  [--trace FILE]        automated lower-bound search
//! roundelim autolb --sweep [--json]      autolb over the registry sweep set
//! roundelim autoub <file|family:k:Δ> [same flags as autolb]
//!                                        automated upper-bound search (§4.5)
//! roundelim cert verify <file> [--fast] [--json]
//!                                        independently replay a certificate
//!                                        (--fast skips the full_step replay)
//! roundelim sim-vs-bound [--n N] [--seed S] [--threads N] [--family NAME]
//!                  [--steps N] [--beam N] [--max-labels N] [--out FILE] [--json]
//!                                        run zoo algorithms on huge graphs and
//!                                        cross-check rounds against certificates
//! roundelim zero-round <file|family:k:Δ> both 0-round deciders
//! roundelim iso <fileA> <fileB>          isomorphism check
//! roundelim relax <fileA> <fileB>        relaxation witness A ⟶ B
//! roundelim serve --store DIR [--addr HOST:PORT] [--workers N] [--threads N] [--trace FILE]
//!                                        roundelimd: persistent proof-cache
//!                                        service over line-JSON/TCP
//! roundelim trace summarize <FILE> [--json]
//!                                        per-span statistics of a recorded
//!                                        `--trace` file (see docs/OBSERVABILITY.md)
//! roundelim trace fold <FILE>            folded flamegraph stacks from a trace
//! roundelim client solve <file|family:k:Δ> --addr HOST:PORT
//!                  [--direction lower|upper] [--steps N] [--beam N]
//!                  [--max-labels N] [--max-expansions N] [--time-budget SECS]
//!                  [--cert FILE] [--json]  solve via a roundelimd (cache hits
//!                                        skip the search); the certificate is
//!                                        re-verified locally before exit 0
//! roundelim client <status|stats|shutdown> --addr HOST:PORT
//! ```
//!
//! Problem files use the text format of `roundelim_core::parser`; the
//! `family:k:Δ` shorthand instantiates a zoo family, e.g.
//! `coloring:3:2` or `sinkless-orientation::4` (empty k for families that
//! ignore it).
//!
//! ## Exit codes
//!
//! | code | meaning                                                        |
//! |------|----------------------------------------------------------------|
//! | 0    | success: verdict proved (or search exhausted its depth budget) |
//! | 1    | runtime error (I/O, search failure, inconsistent cross-check)  |
//! | 2    | usage error or invalid input                                   |
//! | 3    | search stopped early (time/expansion budget, SIGTERM) or the   |
//! |      | verdict is inconclusive; any emitted certificate is verified   |
//! |      | but marked `incomplete`                                        |
//! | 4    | certificate verification failure (`cert verify`)               |

use roundelim::auto::json::Json;
use roundelim::auto::search::{
    autolb, autoub, CancelToken, CheckpointConf, Outcome, SearchOptions, StopCause, Verdict,
};
use roundelim::auto::Certificate;
use roundelim::core::fmt::{problem_table, sequence_report, step_report};
use roundelim::core::io::atomic_write;
use roundelim::core::iso::isomorphism;
use roundelim::core::problem::Problem;
use roundelim::core::relax::relaxation_map;
use roundelim::core::sequence::{iterate, iterate_relaxed, StopReason, ZeroRoundModel};
use roundelim::core::speedup::full_step;
use roundelim::core::zero_round::{zero_round_oriented, zero_round_pn};
use roundelim::obs;
use roundelim::problems::registry::{families, family, sweep_specs};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

/// A diagnosed failure carrying its exit code (see the table in the module
/// docs). `From<String>` gives the generic runtime code 1; `From<&str>` is
/// reserved for missing-argument messages and maps to the usage code 2.
struct CliError {
    code: u8,
    msg: String,
}

impl From<String> for CliError {
    fn from(msg: String) -> CliError {
        CliError { code: 1, msg }
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> CliError {
        usage_err(msg)
    }
}

/// An invalid-input / bad-flag diagnostic (exit code 2).
fn usage_err(msg: impl Into<String>) -> CliError {
    CliError { code: 2, msg: msg.into() }
}

type CliResult = Result<ExitCode, CliError>;

/// SIGTERM / SIGINT → cooperative cancellation: the handler flips an atomic
/// flag the search polls (via a probe [`roundelim::auto::CancelToken`]), so
/// a terminated or Ctrl-C'd `autolb`/`autoub` stops at the next poll point
/// with its last boundary checkpoint intact and exit code 3. Both signals
/// take the same graceful path — Ctrl-C during a long search keeps the
/// live snapshot exactly like a service manager's TERM does.
///
/// The raw `signal(2)` declaration avoids a libc dependency; the handler
/// only does an atomic store, which is async-signal-safe.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    static FIRED: AtomicBool = AtomicBool::new(false);

    extern "C" fn handler(_signum: i32) {
        FIRED.store(true, Ordering::SeqCst);
    }

    pub fn fired() -> bool {
        FIRED.load(Ordering::SeqCst)
    }

    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn fired() -> bool {
        false
    }

    pub fn install() {}
}

fn load(spec: &str) -> Result<Problem, CliError> {
    if let Ok(text) = std::fs::read_to_string(spec) {
        return Problem::parse(&text).map_err(|e| usage_err(format!("{spec}: {e}")));
    }
    // family:k:Δ shorthand
    let parts: Vec<&str> = spec.split(':').collect();
    if parts.len() == 3 {
        let f = family(parts[0]).map_err(|e| usage_err(e.to_string()))?;
        let k: usize = if parts[1].is_empty() {
            0
        } else {
            parts[1].parse().map_err(|_| usage_err(format!("bad k `{}`", parts[1])))?
        };
        let d: usize = parts[2].parse().map_err(|_| usage_err(format!("bad Δ `{}`", parts[2])))?;
        return f.instantiate(k, d).map_err(|e| usage_err(e.to_string()));
    }
    Err(usage_err(format!("`{spec}` is neither a readable file nor a family:k:Δ spec")))
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  roundelim zoo\n  roundelim show <family> [k] [Δ]\n  \
         roundelim speedup <file|family:k:Δ> [--json] [--profile]\n  \
         roundelim iterate <file|family:k:Δ> [--steps N] [--relax FILE]... [--json]\n  \
         roundelim autolb <file|family:k:Δ|--sweep> [--steps N] [--beam N] \
         [--max-labels N] [--threads N] [--no-relax] [--cert FILE] [--json] [--profile] \
         [--time-budget SECS] [--max-expansions N] [--checkpoint DIR] \
         [--checkpoint-every N] [--resume] [--trace FILE]\n  \
         roundelim autoub <file|family:k:Δ> [autolb flags]\n  \
         roundelim cert verify <file> [--fast] [--json]\n  \
         roundelim sim-vs-bound [--n N] [--seed S] [--threads N] [--family NAME] \
         [--steps N] [--beam N] [--max-labels N] [--out FILE] [--json]\n  \
         roundelim zero-round <file|family:k:Δ>\n  \
         roundelim iso <fileA> <fileB>\n  roundelim relax <fileA> <fileB>\n  \
         roundelim serve --store DIR [--addr HOST:PORT] [--workers N] [--threads N] [--trace FILE]\n  \
         roundelim trace <summarize|fold> <FILE> [--json]\n  \
         roundelim client solve <file|family:k:Δ> --addr HOST:PORT \
         [--direction lower|upper] [--steps N] [--beam N] [--max-labels N] \
         [--max-expansions N] [--time-budget SECS] [--cert FILE] [--json]\n  \
         roundelim client <status|stats|shutdown> --addr HOST:PORT"
    );
    ExitCode::from(2)
}

/// The value following `--flag`, parsed. Parse failures are usage errors.
fn flag_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, CliError> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(ix) => args
            .get(ix + 1)
            .ok_or_else(|| usage_err(format!("{flag} needs a value")))?
            .parse()
            .map(Some)
            .map_err(|_| usage_err(format!("{flag} needs a valid value"))),
    }
}

/// All values of a repeatable `--flag VALUE` pair.
fn flag_values<'a>(args: &'a [String], flag: &str) -> Result<Vec<&'a String>, CliError> {
    let mut out = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(a) = iter.next() {
        if a == flag {
            out.push(iter.next().ok_or_else(|| usage_err(format!("{flag} needs a value")))?);
        }
    }
    Ok(out)
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Runs `f` under stage profiling when `--profile` is present, printing the
/// per-stage breakdown to **stderr** afterwards (stdout stays parseable
/// under `--json`).
fn with_profile<T>(args: &[String], f: impl FnOnce() -> T) -> T {
    use roundelim::core::profile;
    if !has_flag(args, "--profile") {
        return f();
    }
    profile::reset();
    profile::set_enabled(true);
    let out = f();
    profile::set_enabled(false);
    eprint!("{}", profile::report());
    out
}

/// The trace writer handed to `obs::trace::install`: an adapter around
/// [`atomic_write`] so a crash mid-write never leaves a truncated trace.
fn trace_writer(path: &Path, contents: &str) -> Result<(), String> {
    atomic_write(path, contents).map_err(|e| e.to_string())
}

/// Runs `f` with a trace sink installed when `--trace FILE` is present,
/// finishing (rendering + atomically writing) the trace afterwards. The
/// confirmation goes to **stderr** so stdout stays parseable under
/// `--json`; a failed trace write turns a successful run into exit 1 but
/// never masks `f`'s own error.
fn with_trace(args: &[String], f: impl FnOnce() -> CliResult) -> CliResult {
    let Some(path) = flag_value::<String>(args, "--trace")? else { return f() };
    obs::trace::install(PathBuf::from(path), trace_writer).map_err(CliError::from)?;
    let out = f();
    match obs::trace::finish() {
        Ok(written) => {
            if let Some(p) = written {
                eprintln!("wrote trace to {}", p.display());
            }
            out
        }
        Err(e) => match out {
            Ok(_) => Err(CliError::from(format!("trace write failed: {e}"))),
            Err(inner) => {
                eprintln!("error: trace write failed: {e}");
                Err(inner)
            }
        },
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { return usage() };
    let result = match cmd.as_str() {
        "zoo" => cmd_zoo(),
        "show" => cmd_show(&args[1..]),
        "speedup" => with_profile(&args[1..], || cmd_speedup(&args[1..])),
        "iterate" => cmd_iterate(&args[1..]),
        "autolb" => {
            with_trace(&args[1..], || with_profile(&args[1..], || cmd_auto(&args[1..], true)))
        }
        "autoub" => {
            with_trace(&args[1..], || with_profile(&args[1..], || cmd_auto(&args[1..], false)))
        }
        "cert" => cmd_cert(&args[1..]),
        "sim-vs-bound" => cmd_sim_vs_bound(&args[1..]),
        "zero-round" => cmd_zero_round(&args[1..]),
        "iso" => cmd_iso(&args[1..]),
        "relax" => cmd_relax(&args[1..]),
        "serve" => with_trace(&args[1..], || cmd_serve(&args[1..])),
        "client" => cmd_client(&args[1..]),
        "trace" => cmd_trace(&args[1..]),
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {}", e.msg);
            ExitCode::from(e.code)
        }
    }
}

fn cmd_zoo() -> CliResult {
    println!("{:<22} {:<8} description", "family", "uses k");
    for f in families() {
        println!("{:<22} {:<8} {}", f.name, f.uses_k, f.description);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_show(args: &[String]) -> CliResult {
    let name = args.first().ok_or("show: missing family name")?;
    let f = family(name).map_err(|e| usage_err(e.to_string()))?;
    let k = args.get(1).map_or(Ok(3), |s| s.parse().map_err(|_| usage_err("bad k")))?;
    let d = args.get(2).map_or(Ok(3), |s| s.parse().map_err(|_| usage_err("bad Δ")))?;
    let p = f.instantiate(k, d).map_err(|e| usage_err(e.to_string()))?;
    print!("{}", problem_table(&p));
    println!("\n# text format (machine readable):\n{}", p.to_text());
    Ok(ExitCode::SUCCESS)
}

fn cmd_speedup(args: &[String]) -> CliResult {
    let spec = args.first().ok_or("speedup: missing problem spec")?;
    let p = load(spec)?;
    let step = full_step(&p).map_err(|e| e.to_string())?;
    if has_flag(args, "--json") {
        let doc = Json::obj([
            ("base", Json::Str(p.to_text())),
            ("half_step", Json::Str(step.half.problem.to_text())),
            ("full_step", Json::Str(step.full.problem.to_text())),
            ("labels", Json::Num(step.full.problem.alphabet().len() as u64)),
            ("node_configs", Json::Num(step.full.problem.node().len() as u64)),
            ("edge_configs", Json::Num(step.full.problem.edge().len() as u64)),
        ]);
        print!("{}", doc.to_string_pretty());
    } else {
        print!("{}", step_report(&p, &step));
    }
    Ok(ExitCode::SUCCESS)
}

fn stop_reason_json(stop: &StopReason) -> Json {
    match stop {
        StopReason::ZeroRound { index } => Json::obj([
            ("kind", Json::Str("zero-round".into())),
            ("index", Json::Num(*index as u64)),
        ]),
        StopReason::FixedPoint { index, earlier } => Json::obj([
            ("kind", Json::Str("fixed-point".into())),
            ("index", Json::Num(*index as u64)),
            ("earlier", Json::Num(*earlier as u64)),
        ]),
        StopReason::LimitReached => Json::obj([("kind", Json::Str("limit-reached".into()))]),
    }
}

fn bound_json(bound: Option<usize>) -> Json {
    bound.map_or(Json::Null, |b| Json::Num(b as u64))
}

fn cmd_iterate(args: &[String]) -> CliResult {
    let spec = args.first().ok_or("iterate: missing problem spec")?;
    let p = load(spec)?;
    let steps = flag_value::<usize>(args, "--steps")?.unwrap_or(8);
    let templates: Vec<Problem> =
        flag_values(args, "--relax")?.into_iter().map(|f| load(f)).collect::<Result<_, _>>()?;
    let json = has_flag(args, "--json");
    if templates.is_empty() {
        let seq = iterate(&p, steps).map_err(|e| e.to_string())?;
        if json {
            let doc = Json::obj([
                (
                    "problems",
                    Json::Arr(seq.problems.iter().map(|q| Json::Str(q.to_text())).collect()),
                ),
                ("stop", stop_reason_json(&seq.stop)),
                ("lower_bound", bound_json(seq.certified_lower_bound())),
            ]);
            print!("{}", doc.to_string_pretty());
        } else {
            print!("{}", sequence_report(&seq));
        }
        return Ok(ExitCode::SUCCESS);
    }
    // §2.1's relax-then-speedup alternation, with the supplied templates.
    let seq = iterate_relaxed(&p, &templates, steps, ZeroRoundModel::Oriented)
        .map_err(|e| e.to_string())?;
    if json {
        let entries = seq
            .entries
            .iter()
            .map(|e| {
                Json::obj([
                    ("problem", Json::Str(e.problem.to_text())),
                    ("template", e.template.map_or(Json::Null, |t| Json::Num(t as u64))),
                ])
            })
            .collect();
        let doc = Json::obj([
            ("entries", Json::Arr(entries)),
            ("stop", stop_reason_json(&seq.stop)),
            ("lower_bound", bound_json(seq.certified_lower_bound())),
        ]);
        print!("{}", doc.to_string_pretty());
    } else {
        for (i, e) in seq.entries.iter().enumerate() {
            let via = match e.template {
                Some(t) => format!("  (relaxed to template #{t})"),
                None => String::new(),
            };
            println!("Π_{i}: {}{via}", e.problem.summary());
        }
        match &seq.stop {
            StopReason::ZeroRound { index } => {
                println!("verdict: Π_{index} is 0-round solvable ⇒ lower bound {index}");
            }
            StopReason::FixedPoint { index, earlier } => {
                println!(
                    "verdict: Π_{index} ≅ Π_{earlier} ⇒ fixed point; no 0-round problem is \
                     ever reached"
                );
            }
            StopReason::LimitReached => {
                println!(
                    "verdict: inconclusive after {} steps (lower bound {} certified)",
                    seq.entries.len() - 1,
                    seq.entries.len() - 1
                );
            }
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn verdict_json(v: &Verdict) -> Json {
    match v {
        Verdict::Unbounded => Json::obj([("kind", Json::Str("unbounded".into()))]),
        Verdict::LowerBound { rounds } => Json::obj([
            ("kind", Json::Str("lower-bound".into())),
            ("rounds", Json::Num(*rounds as u64)),
        ]),
        Verdict::UpperBound { rounds } => Json::obj([
            ("kind", Json::Str("upper-bound".into())),
            ("rounds", Json::Num(*rounds as u64)),
        ]),
        Verdict::Inconclusive => Json::obj([("kind", Json::Str("inconclusive".into()))]),
    }
}

/// Whether the outcome is a partial result: its certificate (when present)
/// carries the `incomplete` marker, or the search stopped before its
/// natural end without producing one.
fn outcome_incomplete(out: &Outcome) -> bool {
    out.certificate.as_ref().map_or(out.stop != StopCause::Completed, |c| c.incomplete)
}

/// Exit code for an autolb/autoub outcome: 3 when the search was cut short
/// by a budget or a signal, or the verdict is inconclusive; else 0. A
/// depth-exhausted stop keeps code 0 — the requested `--steps` budget was
/// honoured in full.
fn outcome_code(out: &Outcome) -> u8 {
    if matches!(out.verdict, Verdict::Inconclusive) || out.stop.is_forced() {
        3
    } else {
        0
    }
}

/// The observability section of `--json` output: the process-wide metrics
/// registry (cumulative — in `--sweep` mode each outcome reflects the
/// registry as of its completion). Histogram latency quantiles are only
/// populated when timing was armed (`--profile` or `--trace`); structural
/// histograms (beam occupancy, wave sizes) and counters record always.
fn obs_json() -> Json {
    let snap = obs::metrics::snapshot();
    let counters =
        Json::Obj(snap.counters.iter().map(|(n, v)| (n.clone(), Json::Num(*v))).collect());
    let histograms = Json::Obj(
        snap.histograms
            .iter()
            .map(|(n, h)| {
                (
                    n.clone(),
                    Json::obj([
                        ("count", Json::Num(h.count)),
                        ("sum", Json::Num(h.sum)),
                        ("min", Json::Num(h.min)),
                        ("max", Json::Num(h.max)),
                        ("p50", Json::Num(h.p50())),
                        ("p90", Json::Num(h.p90())),
                        ("p99", Json::Num(h.p99())),
                    ]),
                )
            })
            .collect(),
    );
    Json::obj([("counters", counters), ("histograms", histograms)])
}

fn outcome_json(name: &str, out: &Outcome) -> Json {
    Json::obj([
        ("problem", Json::Str(name.to_owned())),
        ("verdict", verdict_json(&out.verdict)),
        ("stop", Json::Str(out.stop.as_str().to_owned())),
        ("incomplete", Json::Bool(outcome_incomplete(out))),
        ("certificate", out.certificate.as_ref().map_or(Json::Null, Certificate::json_value)),
        (
            "stats",
            Json::obj([
                ("expanded", Json::Num(out.stats.expanded as u64)),
                ("step_failures", Json::Num(out.stats.step_failures as u64)),
                ("depth_reached", Json::Num(out.stats.depth_reached as u64)),
                ("worker_panics", Json::Num(out.stats.worker_panics as u64)),
                ("classes", Json::Num(out.stats.cache.classes as u64)),
                ("dedup_hits", Json::Num(out.stats.cache.dedup_hits as u64)),
                ("step_hits", Json::Num(out.stats.cache.step_hits as u64)),
            ]),
        ),
        ("obs", obs_json()),
    ])
}

fn describe_outcome(name: &str, out: &Outcome) -> String {
    let verdict = match &out.verdict {
        Verdict::Unbounded => "UNBOUNDED (speedup fixed point: the lower bound exceeds every t \
                               admitting a t-independent girth-(2t+2) class)"
            .to_owned(),
        Verdict::LowerBound { rounds } => format!("lower bound {rounds} rounds"),
        Verdict::UpperBound { rounds } => format!("upper bound {rounds} rounds"),
        Verdict::Inconclusive => "inconclusive (budget exhausted)".to_owned(),
    };
    let mut s = format!("{name}: {verdict}\n");
    if let Some(cert) = &out.certificate {
        s.push_str(&format!("  certificate: {} (replayed green)\n", cert.summary()));
        for (i, e) in cert.edges.iter().enumerate() {
            let kind = match e {
                roundelim::auto::Edge::Step => "step (1 round of speedup)".to_owned(),
                roundelim::auto::Edge::Relax { .. } => "relax (searched label merge)".to_owned(),
                roundelim::auto::Edge::Harden { .. } => "harden (searched restriction)".to_owned(),
            };
            s.push_str(&format!("    Π_{i} → Π_{}: {kind}\n", i + 1));
        }
    }
    if out.stop.is_forced() {
        s.push_str(&format!(
            "  stopped early ({}): the bound is verified but a deeper search may improve it\n",
            out.stop.as_str()
        ));
    }
    if out.stats.worker_panics > 0 {
        s.push_str(&format!(
            "  {} worker panic(s) captured; the affected branches were dropped\n",
            out.stats.worker_panics
        ));
    }
    s.push_str(&format!(
        "  search: {} classes, {} expansions, {} dead ends, depth {}\n",
        out.stats.cache.classes,
        out.stats.expanded,
        out.stats.step_failures,
        out.stats.depth_reached
    ));
    s
}

fn search_options(args: &[String]) -> Result<SearchOptions, CliError> {
    let mut opts = SearchOptions::default();
    if let Some(v) = flag_value(args, "--steps")? {
        opts.max_steps = v;
    }
    if let Some(v) = flag_value(args, "--beam")? {
        if v == 0 {
            return Err(usage_err("--beam must be at least 1"));
        }
        opts.beam_width = v;
    }
    if let Some(v) = flag_value(args, "--max-labels")? {
        if v == 0 {
            return Err(usage_err("--max-labels must be at least 1"));
        }
        opts.max_labels = v;
    }
    if let Some(v) = flag_value(args, "--threads")? {
        opts.threads = v;
    }
    if has_flag(args, "--no-relax") {
        opts.use_relaxations = false;
    }
    if let Some(secs) = flag_value::<u64>(args, "--time-budget")? {
        opts.time_budget = Some(Duration::from_secs(secs));
    }
    if let Some(v) = flag_value(args, "--max-expansions")? {
        opts.max_expansions = Some(v);
    }
    if let Some(dir) = flag_value::<String>(args, "--checkpoint")? {
        let mut conf = CheckpointConf::new(dir);
        if let Some(n) = flag_value(args, "--checkpoint-every")? {
            if n == 0 {
                return Err(usage_err("--checkpoint-every must be at least 1"));
            }
            conf.every_expansions = n;
        }
        conf.resume = has_flag(args, "--resume");
        opts.checkpoint = Some(conf);
    } else {
        if has_flag(args, "--resume") {
            return Err(usage_err("--resume needs --checkpoint DIR (nowhere to resume from)"));
        }
        if has_flag(args, "--checkpoint-every") {
            return Err(usage_err("--checkpoint-every needs --checkpoint DIR"));
        }
    }
    Ok(opts)
}

fn cmd_auto(args: &[String], lower: bool) -> CliResult {
    let mut opts = search_options(args)?;
    sig::install();
    opts.cancel = Some(CancelToken::from_probe(sig::fired));
    let json = has_flag(args, "--json");
    let run = |p: &Problem| -> Result<Outcome, CliError> {
        let r = if lower { autolb(p, &opts) } else { autoub(p, &opts) };
        r.map_err(|e| CliError::from(e.to_string()))
    };
    if has_flag(args, "--sweep") {
        if !lower {
            return Err(usage_err("autoub: --sweep is only available for autolb"));
        }
        if has_flag(args, "--cert") {
            return Err(usage_err(
                "--cert writes one certificate and --sweep produces many; run the \
                 families individually to export certificates",
            ));
        }
        if opts.checkpoint.is_some() {
            return Err(usage_err(
                "--checkpoint stores one search and --sweep runs many; run the \
                 families individually to checkpoint them",
            ));
        }
        let mut docs = Vec::new();
        let mut code = 0u8;
        for s in sweep_specs() {
            let f = family(s.family).map_err(|e| usage_err(e.to_string()))?;
            let p = f.instantiate(s.k, s.delta).map_err(|e| usage_err(e.to_string()))?;
            let name = format!("{}:{}:{}", s.family, s.k, s.delta);
            let out = run(&p)?;
            code = code.max(outcome_code(&out));
            if json {
                docs.push(outcome_json(&name, &out));
            } else {
                print!("{}", describe_outcome(&name, &out));
            }
        }
        if json {
            print!("{}", Json::Arr(docs).to_string_pretty());
        }
        return Ok(ExitCode::from(code));
    }
    let spec =
        args.iter().find(|a| !a.starts_with("--") && !is_flag_value(args, a)).ok_or(if lower {
            "autolb: missing problem spec"
        } else {
            "autoub: missing problem spec"
        })?;
    let p = load(spec)?;
    let out = run(&p)?;
    if let Some(path) = flag_values(args, "--cert")?.first() {
        let cert = out.certificate.as_ref().ok_or_else(|| CliError {
            code: 3,
            msg: "no certificate to write (verdict is inconclusive)".to_owned(),
        })?;
        atomic_write(path, cert.to_json()).map_err(|e| e.to_string())?;
        if !json {
            println!("wrote certificate to {path}");
        }
    }
    if json {
        print!("{}", outcome_json(p.name(), &out).to_string_pretty());
    } else {
        print!("{}", describe_outcome(p.name(), &out));
    }
    Ok(ExitCode::from(outcome_code(&out)))
}

/// Whether `arg` is the value of some `--flag VALUE` pair (so positional
/// scanning skips it).
fn is_flag_value(args: &[String], arg: &String) -> bool {
    const VALUED: [&str; 14] = [
        "--steps",
        "--beam",
        "--max-labels",
        "--threads",
        "--cert",
        "--time-budget",
        "--max-expansions",
        "--checkpoint",
        "--checkpoint-every",
        "--addr",
        "--store",
        "--workers",
        "--direction",
        "--trace",
    ];
    args.iter()
        .zip(args.iter().skip(1))
        .any(|(f, v)| VALUED.contains(&f.as_str()) && std::ptr::eq(v, arg))
}

/// `roundelim trace`: read back a `--trace` recording — `summarize` for
/// per-span statistics, `fold` for flamegraph-ready folded stacks.
fn cmd_trace(args: &[String]) -> CliResult {
    use obs::summary;
    let sub =
        args.first().map(String::as_str).ok_or("trace: missing subcommand (summarize|fold)")?;
    let path =
        args[1..].iter().find(|a| !a.starts_with("--")).ok_or("trace: missing trace file")?;
    let text = std::fs::read_to_string(path).map_err(|e| usage_err(format!("{path}: {e}")))?;
    let trace = summary::parse(&text).map_err(|e| usage_err(format!("{path}: {e}")))?;
    match sub {
        "summarize" => {
            let s = summary::summarize(&trace);
            if has_flag(args, "--json") {
                let spans = s
                    .spans
                    .iter()
                    .map(|sp| {
                        Json::obj([
                            ("name", Json::Str(sp.name.clone())),
                            ("count", Json::Num(sp.count)),
                            ("total_ns", Json::Num(sp.total_ns)),
                            ("p50_ns", Json::Num(sp.p50_ns)),
                            ("p90_ns", Json::Num(sp.p90_ns)),
                            ("p99_ns", Json::Num(sp.p99_ns)),
                            ("max_ns", Json::Num(sp.max_ns)),
                        ])
                    })
                    .collect();
                let counters =
                    Json::Obj(s.counters.iter().map(|(n, v)| (n.clone(), Json::Num(*v))).collect());
                let doc = Json::obj([
                    ("spans", Json::Arr(spans)),
                    ("counters", counters),
                    ("total_events", Json::Num(s.total_events)),
                    ("unclosed", Json::Num(s.unclosed)),
                    ("dropped", Json::Num(s.dropped)),
                ]);
                print!("{}", doc.to_string_pretty());
            } else {
                print!("{}", s.render());
            }
        }
        "fold" => {
            for line in summary::fold(&trace) {
                println!("{line}");
            }
        }
        other => {
            return Err(usage_err(format!("trace: unknown subcommand `{other}` (summarize|fold)")))
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_cert(args: &[String]) -> CliResult {
    let sub = args.first().map(String::as_str);
    if sub != Some("verify") {
        return Err(usage_err("cert: the only subcommand is `cert verify <file>`"));
    }
    let path = args[1..]
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or("cert verify: missing certificate file")?;
    let text = std::fs::read_to_string(path).map_err(|e| usage_err(format!("{path}: {e}")))?;
    let cert = Certificate::from_json(&text).map_err(|e| usage_err(format!("{path}: {e}")))?;
    let fast = has_flag(args, "--fast");
    let result = if fast { cert.verify_fast() } else { cert.verify() };
    let mode = if fast { "witness checks green (--fast)" } else { "replayed green" };
    if has_flag(args, "--json") {
        let doc = Json::obj([
            ("valid", Json::Bool(result.is_ok())),
            ("fast", Json::Bool(fast)),
            ("summary", Json::Str(cert.summary())),
            ("error", result.as_ref().err().map_or(Json::Null, |e| Json::Str(e.reason.clone()))),
        ]);
        print!("{}", doc.to_string_pretty());
    } else {
        match &result {
            Ok(()) => println!("VALID: {} — {mode}", cert.summary()),
            Err(e) => println!("INVALID: {e}"),
        }
    }
    result.map_err(|e| CliError { code: 4, msg: e.to_string() })?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_sim_vs_bound(args: &[String]) -> CliResult {
    use roundelim::sim::crossval::{run_crossval, Bound, CrossvalOptions};
    let mut opts = CrossvalOptions::default();
    if let Some(n) = flag_value(args, "--n")? {
        opts.n = n;
    }
    if let Some(seed) = flag_value(args, "--seed")? {
        opts.seed = seed;
    }
    if let Some(t) = flag_value(args, "--threads")? {
        opts.threads = t;
    }
    if let Some(v) = flag_value(args, "--steps")? {
        opts.search.max_steps = v;
    }
    if let Some(v) = flag_value(args, "--beam")? {
        opts.search.beam_width = v;
    }
    if let Some(v) = flag_value(args, "--max-labels")? {
        opts.search.max_labels = v;
    }
    opts.family_filter = flag_value::<String>(args, "--family")?;
    let out_path =
        flag_value::<String>(args, "--out")?.unwrap_or_else(|| "SIM_crossval.json".to_owned());
    let report = run_crossval(&opts).map_err(CliError::from)?;
    let doc = report.json().to_string_pretty();
    atomic_write(&out_path, &doc).map_err(|e| e.to_string())?;
    let bound = |b: &Bound| match b {
        Bound::Rounds(r) => r.to_string(),
        Bound::Unbounded => "unbounded".to_owned(),
        Bound::Inconclusive => "inconclusive".to_owned(),
    };
    if has_flag(args, "--json") {
        print!("{doc}");
    } else {
        for c in &report.cases {
            let checker = if c.report.is_valid() {
                "output valid".to_owned()
            } else {
                format!("{} violations", c.report.total_violations())
            };
            println!(
                "{}:{}:{} [{} on {}, n={}]: {} rounds, {checker}, LB {}, UB {} — {}",
                c.spec.family,
                c.spec.k,
                c.spec.delta,
                c.spec.algorithm,
                c.spec.graph,
                c.n,
                c.rounds_used,
                bound(&c.lower),
                bound(&c.upper),
                if c.consistent { "consistent" } else { "INCONSISTENT" }
            );
            for note in &c.notes {
                println!("    note: {note}");
            }
        }
        println!("wrote {out_path}");
    }
    if report.all_consistent() {
        Ok(ExitCode::SUCCESS)
    } else {
        Err(CliError::from(
            "sim-vs-bound: at least one case is inconsistent (see report)".to_owned(),
        ))
    }
}

fn cmd_zero_round(args: &[String]) -> CliResult {
    let spec = args.first().ok_or("zero-round: missing problem spec")?;
    let p = load(spec)?;
    match zero_round_pn(&p) {
        Some(w) => {
            println!("plain PN:  SOLVABLE — every node outputs {}", w.config.display(p.alphabet()))
        }
        None => println!("plain PN:  not 0-round solvable"),
    }
    match zero_round_oriented(&p) {
        Some(w) => {
            println!("oriented:  SOLVABLE — per-indegree plans:");
            for (k, (ins, outs)) in w.plans.iter().enumerate() {
                let fmt = |v: &[roundelim::core::label::Label]| {
                    v.iter().map(|&l| p.alphabet().name(l)).collect::<Vec<_>>().join(" ")
                };
                println!("  indegree {k}: in-ports [{}], out-ports [{}]", fmt(ins), fmt(outs));
            }
        }
        None => println!("oriented:  not 0-round solvable"),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_iso(args: &[String]) -> CliResult {
    let (a, b) = two_problems(args, "iso")?;
    match isomorphism(&a, &b) {
        Some(m) => {
            println!("isomorphic; label mapping:");
            for l in a.alphabet().labels() {
                println!("  {} ↦ {}", a.alphabet().name(l), b.alphabet().name(m[l.index()]));
            }
        }
        None => println!("not isomorphic"),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_relax(args: &[String]) -> CliResult {
    let (a, b) = two_problems(args, "relax")?;
    match relaxation_map(&a, &b) {
        Some(m) => {
            println!("{} ⟶ {} (the second is at most as hard); witness:", a.name(), b.name());
            for l in a.alphabet().labels() {
                println!("  {} ↦ {}", a.alphabet().name(l), b.alphabet().name(m[l.index()]));
            }
        }
        None => println!("no label-map relaxation witness found"),
    }
    Ok(ExitCode::SUCCESS)
}

fn two_problems(args: &[String], cmd: &str) -> Result<(Problem, Problem), CliError> {
    let a = args.first().ok_or_else(|| usage_err(format!("{cmd}: missing first problem")))?;
    let b = args.get(1).ok_or_else(|| usage_err(format!("{cmd}: missing second problem")))?;
    Ok((load(a)?, load(b)?))
}

/// `roundelim serve`: run `roundelimd`, the persistent proof-cache service.
///
/// Prints `roundelimd listening on <addr>` once bound (with `--addr` port 0
/// this is how callers learn the real port), then serves until a client
/// sends `shutdown` (exit 0) or SIGTERM/SIGINT arrives (exit 3 — the same
/// graceful path: in-flight searches are cancelled cooperatively and the
/// warm-start cache snapshot is persisted either way).
fn cmd_serve(args: &[String]) -> CliResult {
    use roundelim::daemon::server::{Exit, ServeConfig, Server};
    let store = flag_value::<String>(args, "--store")?
        .ok_or("serve: --store DIR is required (where proofs persist)")?;
    let addr = flag_value::<String>(args, "--addr")?.unwrap_or_else(|| "127.0.0.1:0".to_owned());
    let mut cfg = ServeConfig::new(addr, store);
    if let Some(w) = flag_value(args, "--workers")? {
        cfg.workers = w;
    }
    if let Some(t) = flag_value(args, "--threads")? {
        cfg.threads = t;
    }
    sig::install();
    cfg.signal = Some(sig::fired);
    let server = Server::bind(&cfg).map_err(|e| e.to_string())?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    println!("roundelimd listening on {addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    match server.run().map_err(|e| e.to_string())? {
        Exit::Requested => {
            println!("roundelimd: shutdown requested; store persisted");
            Ok(ExitCode::SUCCESS)
        }
        Exit::Signalled => {
            println!("roundelimd: stopped early (interrupted); store persisted");
            Ok(ExitCode::from(3))
        }
    }
}

/// `roundelim client`: talk to a running `roundelimd`.
fn cmd_client(args: &[String]) -> CliResult {
    use std::io::{BufRead as _, BufReader, Write as _};
    let sub = args
        .first()
        .map(String::as_str)
        .ok_or("client: missing subcommand (solve|status|stats|shutdown)")?;
    let addr = flag_value::<String>(args, "--addr")?
        .ok_or("client: --addr HOST:PORT is required (see `roundelimd listening on ...`)")?;
    let stream = std::net::TcpStream::connect(&addr)
        .map_err(|e| CliError::from(format!("connect {addr}: {e}")))?;
    let mut reader =
        BufReader::new(stream.try_clone().map_err(|e| CliError::from(format!("socket: {e}")))?);
    let mut w = stream;
    let mut send = |line: &str| -> Result<(), CliError> {
        w.write_all(line.as_bytes())
            .and_then(|()| w.write_all(b"\n"))
            .and_then(|()| w.flush())
            .map_err(|e| CliError::from(format!("send: {e}")))
    };
    let mut recv = || -> Result<Json, CliError> {
        let mut line = String::new();
        let n = reader.read_line(&mut line).map_err(|e| CliError::from(format!("receive: {e}")))?;
        if n == 0 {
            return Err(CliError::from("connection closed by daemon".to_owned()));
        }
        Json::parse(line.trim()).map_err(|e| CliError::from(format!("bad response: {e}")))
    };
    use roundelim::daemon::proto;
    match sub {
        "status" | "stats" | "shutdown" => {
            send(&proto::plain_request_line(sub))?;
            let v = recv()?;
            print!("{}", v.to_string_pretty());
            if v.get("ok").and_then(Json::as_bool) == Some(true) {
                Ok(ExitCode::SUCCESS)
            } else {
                Err(CliError::from(
                    v.get("error").and_then(Json::as_str).unwrap_or("request failed").to_owned(),
                ))
            }
        }
        "solve" => {
            let spec = args[1..]
                .iter()
                .find(|a| !a.starts_with("--") && !is_flag_value(args, a))
                .ok_or("client solve: missing problem spec")?;
            let p = load(spec)?;
            let direction = match flag_value::<String>(args, "--direction")?.as_deref() {
                None | Some("lower") | Some("lower-bound") => roundelim::auto::Direction::Lower,
                Some("upper") | Some("upper-bound") => roundelim::auto::Direction::Upper,
                Some(other) => {
                    return Err(usage_err(format!(
                        "--direction must be `lower` or `upper`, got `{other}`"
                    )))
                }
            };
            let budget = proto::Budget {
                max_steps: flag_value(args, "--steps")?,
                beam_width: flag_value(args, "--beam")?,
                max_labels: flag_value(args, "--max-labels")?,
                max_expansions: flag_value(args, "--max-expansions")?,
                time_budget_ms: flag_value::<u64>(args, "--time-budget")?.map(|s| s * 1000),
            };
            send(&proto::solve_line(&p.to_text(), direction, &budget))?;
            let json = has_flag(args, "--json");
            loop {
                let v = recv()?;
                if v.get("ok").and_then(Json::as_bool) != Some(true) {
                    return Err(CliError::from(
                        v.get("error")
                            .and_then(Json::as_str)
                            .unwrap_or("request failed")
                            .to_owned(),
                    ));
                }
                match v.get("event").and_then(Json::as_str) {
                    Some("progress") => {
                        let n = |k: &str| v.get(k).and_then(Json::as_u64).unwrap_or(0);
                        eprintln!(
                            "depth {}: {} expanded, {} classes, frontier {}",
                            n("depth"),
                            n("expanded"),
                            n("classes"),
                            n("frontier")
                        );
                    }
                    Some("result") => return client_result(args, &v, json),
                    other => {
                        return Err(CliError::from(format!("unexpected response event {other:?}")))
                    }
                }
            }
        }
        other => Err(usage_err(format!(
            "client: unknown subcommand `{other}` (solve|status|stats|shutdown)"
        ))),
    }
}

/// Handles the terminal `result` of a `client solve`: re-verifies the
/// served certificate locally (the daemon is a cache, not a trust root),
/// optionally exports it, and maps the verdict to the standard exit codes.
fn client_result(args: &[String], v: &Json, json: bool) -> CliResult {
    let cached = v.get("cached").and_then(Json::as_bool) == Some(true);
    let cert = match v.get("certificate") {
        None | Some(Json::Null) => None,
        Some(c) => {
            let cert = Certificate::from_json(&c.to_string_compact())
                .map_err(|e| CliError::from(format!("served certificate is malformed: {e}")))?;
            cert.verify().map_err(|e| CliError { code: 4, msg: e.to_string() })?;
            Some(cert)
        }
    };
    if let Some(path) = flag_values(args, "--cert")?.first() {
        let cert = cert.as_ref().ok_or_else(|| CliError {
            code: 3,
            msg: "no certificate to write (verdict is inconclusive)".to_owned(),
        })?;
        atomic_write(path, cert.to_json()).map_err(|e| e.to_string())?;
        if !json {
            println!("wrote certificate to {path}");
        }
    }
    if json {
        print!("{}", v.to_string_pretty());
    } else {
        let kind = v
            .get("verdict")
            .and_then(|d| d.get("kind"))
            .and_then(Json::as_str)
            .unwrap_or("unknown");
        let rounds = v.get("verdict").and_then(|d| d.get("rounds")).and_then(Json::as_u64);
        let mut line = format!("verdict: {kind}");
        if let Some(r) = rounds {
            line.push_str(&format!(" ({r} rounds)"));
        }
        if cached {
            line.push_str(" [cache hit: served from the proof store, no search]");
        }
        println!("{line}");
        if cert.is_some() {
            println!("certificate re-verified locally: replayed green");
        }
    }
    let stop = v.get("stop").and_then(Json::as_str).unwrap_or("");
    let kind = v
        .get("verdict")
        .and_then(|d| d.get("kind"))
        .and_then(Json::as_str)
        .unwrap_or("inconclusive");
    let forced = matches!(stop, "time-budget" | "expansion-budget" | "interrupted");
    if kind == "inconclusive" || forced {
        Ok(ExitCode::from(3))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}
