//! # roundelim — automatic round elimination for distributed problems
//!
//! Facade crate re-exporting the whole workspace, a full Rust
//! implementation of
//!
//! > Sebastian Brandt, *An Automatic Speedup Theorem for Distributed
//! > Problems*, PODC 2019 (arXiv:1902.09958).
//!
//! * [`core`] — problem representation and the speedup engine (Thm 1–2),
//!   zero-round deciders, isomorphism, relaxations, iterated sequences.
//! * [`auto`] — the automated lower/upper-bound search (`autolb`/`autoub`)
//!   with canonical-form caching and replayable certificates.
//! * [`problems`] — a zoo of locally checkable problems (coloring, sinkless
//!   orientation, weak/superweak coloring, matchings, MIS, …).
//! * [`superweak`] — the Section 5 pipeline: Lemmas 1–4 and the Ω(log* Δ)
//!   lower bound for weak 2-coloring (Theorem 4).
//! * [`sim`] — a port-numbering-model simulator, graph generators, and the
//!   *executable* Theorem 1 on rings.
//! * [`daemon`] — `roundelimd`, a persistent proof-cache service: solved
//!   bounds are stored in a versioned binary encoding and served (up to
//!   isomorphism) over a line-JSON/TCP protocol without re-searching.
//! * [`obs`] — structured tracing and a metrics registry (counters,
//!   latency histograms) shared by every layer: `--profile`, `--trace`,
//!   and the daemon's `metrics` command all read it (see
//!   docs/OBSERVABILITY.md).
//!
//! ## Quick start
//!
//! ```
//! use roundelim::core::sequence::{iterate, StopReason};
//! use roundelim::problems::sinkless::sinkless_coloring;
//!
//! let sc = sinkless_coloring(3)?;
//! let seq = iterate(&sc, 8)?;
//! assert!(matches!(seq.stop, StopReason::FixedPoint { .. }));
//! # Ok::<(), roundelim::core::error::Error>(())
//! ```

#![forbid(unsafe_code)]

pub use roundelim_auto as auto;
pub use roundelim_core as core;
pub use roundelim_daemon as daemon;
pub use roundelim_obs as obs;
pub use roundelim_problems as problems;
pub use roundelim_sim as sim;
pub use roundelim_superweak as superweak;
