//! Exact arithmetic for power towers `2^2^…^2^v`.
//!
//! Theorem 4's bookkeeping manipulates numbers like
//! `k₁ = F⁵(2) = 2^2^2^65536` that no bignum can materialize. [`Tower`]
//! represents exactly the values `2↑ʰ v` (h iterated powers of two on top
//! of a `u128`), which is closed under the paper's `F(x) = 2^x` and admits
//! exact comparison, log₂, and log*.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// The exact value `2^(2^(…^(2^top)))` with `height` iterated exponentials.
///
/// Normal form: if `height > 0`, then `top ≥ 128` or the value would fit in
/// the `u128` top (normalization folds `2^top` into `top` while it fits).
/// This makes comparison exact and cheap.
///
/// ```
/// use roundelim_superweak::tower::Tower;
/// let x = Tower::from_u128(65536);
/// let y = x.pow2().pow2(); // 2^2^65536
/// assert!(y > Tower::from_u128(u128::MAX));
/// assert_eq!(y.log2().unwrap(), x.pow2());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tower {
    height: u32,
    top: u128,
}

impl Tower {
    /// A plain number.
    pub fn from_u128(v: u128) -> Tower {
        Tower { height: 0, top: v }
    }

    /// The tower `2↑↑h` with `h` twos (e.g. `tower_of_twos(3) = 16`).
    pub fn tower_of_twos(h: u32) -> Tower {
        let mut t = Tower::from_u128(1);
        for _ in 0..h {
            t = t.pow2();
        }
        t
    }

    /// The paper's `F(x) = 2^x`, exactly.
    #[must_use]
    pub fn pow2(&self) -> Tower {
        if self.height == 0 && self.top <= 127 {
            Tower { height: 0, top: 1u128 << self.top }
        } else {
            Tower { height: self.height + 1, top: self.top }
        }
    }

    /// `F` applied `n` times.
    #[must_use]
    pub fn pow2_iter(&self, n: u32) -> Tower {
        let mut t = self.clone();
        for _ in 0..n {
            t = t.pow2();
        }
        t
    }

    /// Exact `log₂` when the value is a represented power of two
    /// (`height ≥ 1`), `floor(log₂)` for plain numbers ≥ 1, `None` for 0.
    pub fn log2(&self) -> Option<Tower> {
        if self.height >= 1 {
            Some(Tower { height: self.height - 1, top: self.top })
        } else if self.top == 0 {
            None
        } else {
            Some(Tower::from_u128(127 - self.top.leading_zeros() as u128))
        }
    }

    /// `log*`: the number of `log₂` applications needed to reach a value
    /// ≤ 1. Uses floor-log₂ at the numeric bottom, which is the standard
    /// convention (log* is insensitive to constant-factor slack).
    pub fn log_star(&self) -> u32 {
        let mut count = self.height;
        let mut v = self.top;
        while v > 1 {
            v = 127 - v.leading_zeros() as u128;
            count += 1;
        }
        count
    }

    /// Whether the value fits in a `u128`, and its value if so.
    pub fn as_u128(&self) -> Option<u128> {
        if self.height == 0 {
            Some(self.top)
        } else {
            None
        }
    }

    /// The tower height of the normal form (0 for plain numbers).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Checked addition of a small constant; only exact (hence only
    /// available) for plain numbers.
    pub fn checked_add(&self, c: u128) -> Option<Tower> {
        if self.height == 0 {
            self.top.checked_add(c).map(Tower::from_u128)
        } else {
            None
        }
    }

    /// Checked multiplication by a small constant; only for plain numbers.
    pub fn checked_mul(&self, c: u128) -> Option<Tower> {
        if self.height == 0 {
            self.top.checked_mul(c).map(Tower::from_u128)
        } else {
            None
        }
    }
}

impl PartialOrd for Tower {
    fn partial_cmp(&self, other: &Tower) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Tower {
    fn cmp(&self, other: &Tower) -> Ordering {
        // Both in normal form: if heights differ, the taller is larger —
        // its top exceeds 127, so after stripping the shorter height the
        // taller side is ≥ 2^128 > u128 ≥ the numeric side.
        match self.height.cmp(&other.height) {
            Ordering::Equal => self.top.cmp(&other.top),
            Ordering::Less => {
                // self numeric-ish vs taller tower: taller wins unless it
                // degenerates — normal form prevents that.
                Ordering::Less
            }
            Ordering::Greater => Ordering::Greater,
        }
    }
}

impl fmt::Display for Tower {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for _ in 0..self.height {
            write!(f, "2^")?;
        }
        write!(f, "{}", self.top)
    }
}

impl From<u128> for Tower {
    fn from(v: u128) -> Tower {
        Tower::from_u128(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_folds_small_values() {
        let t = Tower::from_u128(4).pow2();
        assert_eq!(t.as_u128(), Some(16));
        let t = Tower::from_u128(127).pow2();
        assert_eq!(t.as_u128(), Some(1 << 127));
        let t = Tower::from_u128(128).pow2();
        assert_eq!(t.as_u128(), None);
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn ordering_is_exact() {
        let a = Tower::from_u128(u128::MAX);
        let b = Tower::from_u128(128).pow2(); // 2^128 > u128::MAX
        assert!(b > a);
        let c = Tower::from_u128(200).pow2();
        assert!(c > b);
        let d = b.pow2(); // 2^2^128
        assert!(d > c);
        assert_eq!(b.cmp(&b), Ordering::Equal);
    }

    #[test]
    fn tower_of_twos_values() {
        assert_eq!(Tower::tower_of_twos(0).as_u128(), Some(1));
        assert_eq!(Tower::tower_of_twos(1).as_u128(), Some(2));
        assert_eq!(Tower::tower_of_twos(4).as_u128(), Some(65536));
        let t5 = Tower::tower_of_twos(5); // 2^65536
        assert_eq!(t5.as_u128(), None);
        assert_eq!(t5.height(), 1);
    }

    #[test]
    fn log2_inverts_pow2() {
        let x = Tower::from_u128(65536);
        let y = x.pow2().pow2();
        assert_eq!(y.log2().unwrap(), x.pow2());
        assert_eq!(y.log2().unwrap().log2().unwrap(), x);
        // floor log2 on plain numbers
        assert_eq!(Tower::from_u128(1000).log2().unwrap().as_u128(), Some(9));
        assert!(Tower::from_u128(0).log2().is_none());
    }

    #[test]
    fn log_star_values() {
        // 65536 → 16 → 4 → 2 → 1: 4 applications.
        assert_eq!(Tower::from_u128(65536).log_star(), 4);
        assert_eq!(Tower::from_u128(2).log_star(), 1);
        assert_eq!(Tower::from_u128(1).log_star(), 0);
        // 2^65536: one more.
        assert_eq!(Tower::tower_of_twos(5).log_star(), 5);
        assert_eq!(Tower::tower_of_twos(9).log_star(), 9);
    }

    #[test]
    fn checked_ops_numeric_only() {
        assert_eq!(Tower::from_u128(4).checked_add(1).unwrap().as_u128(), Some(5));
        assert!(Tower::tower_of_twos(5).checked_add(1).is_none());
        assert_eq!(Tower::from_u128(4).checked_mul(4).unwrap().as_u128(), Some(16));
    }

    #[test]
    fn display_shape() {
        assert_eq!(Tower::from_u128(7).to_string(), "7");
        assert_eq!(Tower::tower_of_twos(5).to_string(), "2^65536");
        assert_eq!(Tower::tower_of_twos(6).to_string(), "2^2^65536");
    }
}
