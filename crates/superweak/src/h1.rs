//! The derived problem Π'₁ of superweak k-coloring, in the paper's
//! compressed trit representation (§5.1).
//!
//! A node's Π'₁ output is a multiset `Q = {Q₁, …, Q_Δ}` of [`TritSet`]s,
//! one per port. This module provides:
//!
//! * [`NodeOutput`] — an explicit per-port representation of `Q` (Δ entries
//!   over few distinct sets, so explicit indices are cheap even for the
//!   lower bound's `Δ ≥ 2^{4^k}+1` regime);
//! * the Property A predicate on a *choice* `w_i ∈ Q_i` (membership of the
//!   chosen trit multiset in `h_{1/2}(Δ)`), and hence the definition of a
//!   *Property A violation* certificate;
//! * the `g₁` edge compatibility between two `TritSet`s (re-exported from
//!   [`crate::trit`]).

use crate::trit::{TritSeq, TritSet};
use std::collections::BTreeMap;

/// A node's Π'₁ output: one [`TritSet`] per port (index 0..Δ).
///
/// Distinct sets are interned; per-port entries are ids into the table, so
/// a `Δ = 2^{17}` output with three distinct sets costs ~Δ bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeOutput {
    k: usize,
    distinct: Vec<TritSet>,
    ports: Vec<u32>,
}

impl NodeOutput {
    /// Builds an output from per-port sets.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is empty or sequences disagree on length `k`.
    pub fn new(per_port: Vec<TritSet>) -> NodeOutput {
        assert!(!per_port.is_empty(), "a node has at least one port");
        let k = per_port
            .iter()
            .flat_map(TritSet::iter)
            .map(TritSeq::len)
            .next()
            .expect("outputs contain at least one trit sequence");
        let mut distinct: Vec<TritSet> = Vec::new();
        let mut ports = Vec::with_capacity(per_port.len());
        for s in per_port {
            for t in s.iter() {
                assert_eq!(t.len(), k, "all trit sequences must have length k");
            }
            let id = match distinct.iter().position(|d| d == &s) {
                Some(ix) => ix,
                None => {
                    distinct.push(s);
                    distinct.len() - 1
                }
            };
            ports.push(id as u32);
        }
        NodeOutput { k, distinct, ports }
    }

    /// Builds an output from `(set, multiplicity)` groups (ports are laid
    /// out group by group).
    ///
    /// # Panics
    ///
    /// Panics on empty groups (a node has ≥ 1 port).
    pub fn from_groups<I: IntoIterator<Item = (TritSet, usize)>>(groups: I) -> NodeOutput {
        let mut per_port = Vec::new();
        for (s, m) in groups {
            for _ in 0..m {
                per_port.push(s.clone());
            }
        }
        NodeOutput::new(per_port)
    }

    /// The color-count parameter k (trit sequence length).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of ports Δ.
    pub fn delta(&self) -> usize {
        self.ports.len()
    }

    /// The set at a port.
    pub fn set_at(&self, port: usize) -> &TritSet {
        &self.distinct[self.ports[port] as usize]
    }

    /// The distinct sets.
    pub fn distinct_sets(&self) -> &[TritSet] {
        &self.distinct
    }

    /// The interned set id at a port.
    pub fn id_at(&self, port: usize) -> u32 {
        self.ports[port]
    }

    /// Multiplicity of each distinct set, indexed by set id.
    pub fn multiplicities(&self) -> Vec<usize> {
        let mut m = vec![0usize; self.distinct.len()];
        for &p in &self.ports {
            m[p as usize] += 1;
        }
        m
    }

    /// The multiset view `{set → multiplicity}`.
    pub fn as_multiset(&self) -> BTreeMap<&TritSet, usize> {
        let mult = self.multiplicities();
        self.distinct.iter().enumerate().map(|(i, s)| (s, mult[i])).collect()
    }
}

/// Whether a chosen trit multiset (one sequence per port) satisfies the
/// `h_{1/2}(Δ)` condition of §5.1: there is a position `j` where the number
/// of 2s strictly exceeds the number of 0s and the number of 0s is at most
/// `k`.
pub fn choice_in_h_half(choice: &[TritSeq], k: usize) -> bool {
    if choice.is_empty() {
        return false;
    }
    for j in 0..k {
        let mut zeros = 0usize;
        let mut twos = 0usize;
        for t in choice {
            match t.trit(j) {
                0 => zeros += 1,
                2 => twos += 1,
                _ => {}
            }
        }
        if twos > zeros && zeros <= k {
            return true;
        }
    }
    false
}

/// A certificate that Property A fails for a [`NodeOutput`]: an explicit
/// choice `w_i ∈ Q_i` whose trit multiset is **not** in `h_{1/2}(Δ)`.
///
/// Property A (membership side of `h₁(Δ)`) demands that *every* choice is
/// in `h_{1/2}(Δ)`; one bad choice refutes it.
#[derive(Debug, Clone)]
pub struct PropertyAViolation {
    /// The chosen trit sequence per port.
    pub choice: Vec<TritSeq>,
}

impl PropertyAViolation {
    /// Verifies the certificate against the output it refutes.
    ///
    /// Checks that the choice really picks from the respective port sets
    /// and really fails the `h_{1/2}` condition.
    pub fn verify(&self, q: &NodeOutput) -> bool {
        self.choice.len() == q.delta()
            && self.choice.iter().enumerate().all(|(i, t)| q.set_at(i).contains(t))
            && !choice_in_h_half(&self.choice, q.k())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: &[&str]) -> TritSet {
        TritSet::new(s.iter().map(|x| TritSeq::new(x.bytes().map(|b| b - b'0').collect()).unwrap()))
    }

    #[test]
    fn node_output_interning() {
        let a = ts(&["11", "22"]);
        let b = ts(&["00"]);
        let q = NodeOutput::new(vec![a.clone(), b.clone(), a.clone(), a.clone()]);
        assert_eq!(q.delta(), 4);
        assert_eq!(q.k(), 2);
        assert_eq!(q.distinct_sets().len(), 2);
        assert_eq!(q.multiplicities(), vec![3, 1]);
        assert_eq!(q.set_at(1), &b);
        let g = NodeOutput::from_groups([(a.clone(), 3), (b.clone(), 1)]);
        assert_eq!(g.as_multiset(), q.as_multiset());
    }

    #[test]
    fn h_half_condition() {
        let t = |s: &str| TritSeq::new(s.bytes().map(|b| b - b'0').collect()).unwrap();
        // Paper §4.6 example: {02, 11, 11, 12, 21} at Δ=5 is in h_{1/2}
        // (pick j = 2: sequences with 2 at position 2: 02, 12 → two 2s;
        // zeros at position 2: none).
        let choice = vec![t("02"), t("11"), t("11"), t("12"), t("21")];
        assert!(choice_in_h_half(&choice, 2));
        // All-ones everywhere: no position has a 2.
        let choice = vec![t("11"); 5];
        assert!(!choice_in_h_half(&choice, 2));
        // Balanced zeros and twos: {02, 20, 11}: position 0: one 0, one 2 —
        // not strict; position 1: one 2, one 0 — not strict.
        let choice = vec![t("02"), t("20"), t("11")];
        assert!(!choice_in_h_half(&choice, 2));
        // Too many zeros: k=1, three 0s and four 2s at the position, zeros
        // ≤ k fails if zeros > 1.
        let choice = vec![t("0"), t("0"), t("2"), t("2"), t("2")];
        assert!(!choice_in_h_half(&choice, 1));
        assert!(choice_in_h_half(&choice, 2));
        assert!(!choice_in_h_half(&[], 2));
    }

    #[test]
    fn violation_verification() {
        let a = ts(&["11", "02"]);
        let q = NodeOutput::new(vec![a.clone(), a.clone(), a.clone()]);
        let t = |s: &str| TritSeq::new(s.bytes().map(|b| b - b'0').collect()).unwrap();
        // all-ones choice is available and violates h_{1/2}
        let v = PropertyAViolation { choice: vec![t("11"), t("11"), t("11")] };
        assert!(v.verify(&q));
        // a choice with a 2-majority position does not violate
        let v = PropertyAViolation { choice: vec![t("02"), t("02"), t("11")] };
        assert!(!v.verify(&q));
        // a choice not in the sets is rejected
        let v = PropertyAViolation { choice: vec![t("22"), t("11"), t("11")] };
        assert!(!v.verify(&q));
    }
}
