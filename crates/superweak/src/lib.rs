//! # roundelim-superweak
//!
//! The Section 5 pipeline of Brandt's automatic speedup theorem
//! (PODC 2019): *superweak k-coloring* and the tight Ω(log* Δ) lower bound
//! for weak 2-coloring on odd-degree graphs (Theorem 4), answering the
//! 1993 open question of Naor and Stockmeyer.
//!
//! The explicit small-Δ form of superweak coloring lives in
//! `roundelim-problems`; this crate implements the *compressed* machinery
//! the lower bound needs at `Δ ≥ 2^{4^k}+1`:
//!
//! * [`trit`] — trit sequences and trit sets, the paper's equivalent
//!   description of the derived problems Π'_{1/2} and Π'₁;
//! * [`halfstep`] — machine-checked equivalence of that description with
//!   the generic engine (on small instances);
//! * [`h1`] — Π'₁ node outputs and Property A violations;
//! * [`lemma1`] — the dominant element P∞;
//! * [`matching`] — Hopcroft–Karp + Hall violators (the proof engine of
//!   Lemma 2);
//! * [`lemma2`] — the J*/N(J*) dichotomy with machine-checkable witnesses;
//! * [`transform`] — Lemma 3's zero-communication output conversion;
//! * [`tower`] — exact arithmetic on `2^2^…^v` towers;
//! * [`lowerbound`] — Theorem 4: the round-counting chain and the 0-round
//!   impossibility witness.
//!
//! ```
//! use roundelim_superweak::lowerbound::weak2_lower_bound;
//! use roundelim_superweak::tower::Tower;
//! // A degree so large that log*Δ = 24: several certified rounds.
//! let delta = Tower::tower_of_twos(24);
//! let (t, _k_star) = weak2_lower_bound(&delta).unwrap();
//! assert!(t >= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod h1;
pub mod halfstep;
pub mod lemma1;
pub mod lemma2;
pub mod lowerbound;
pub mod matching;
pub mod pipeline;
pub mod tower;
pub mod transform;
pub mod trit;
