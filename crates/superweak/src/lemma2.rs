//! Lemma 2: pointer-set extraction via Hall's marriage theorem.
//!
//! Given a node's Π'₁ output `Q = {Q₁, …, Q_Δ}` and an orientation
//! `α : ports → {out, in}` (from the input edge orientations), Lemma 2
//! promises — **when `Q ∈ h₁(Δ)`** — a set of ports `J*` and its
//! "neighborhood" `N(J*)` with
//!
//! * `|J*| > |N(J*)|`,
//! * `α` constant on `J*` and opposite on `N(J*)`,
//! * `J* ⊆ I`, where `I` is the set of ports whose set is neither
//!   `g₁`-compatible with P∞ nor contains `11…1`.
//!
//! `J*` becomes the *demanding* pointers and `N(J*)` the *accepting*
//! pointers of the Lemma 3 output transformation.
//!
//! The algorithm mirrors the proof: build the bipartite graph G′ of
//! `g₁`-compatible, α-opposite port pairs, run maximum matching, and
//!
//! * if the left side `I` is **not** covered, extract a Hall violator and
//!   split it by α → `J*`;
//! * if it **is** covered, convert the matching into an explicit
//!   [`PropertyAViolation`] (the proof's path/ring decomposition), thereby
//!   *certifying* `Q ∉ h₁(Δ)` — the outcome is a machine-checkable
//!   dichotomy.

use crate::h1::{NodeOutput, PropertyAViolation};
use crate::lemma1::{find_p_infinity, Lemma1Error};
use crate::matching::{hall_violator, maximum_matching, Bipartite};
use crate::trit::TritSeq;
use std::fmt;

/// Port orientation from the input edge orientation (the paper's α).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Orientation {
    /// Edge oriented away from the node.
    Out,
    /// Edge oriented towards the node.
    In,
}

/// The pointer sets promised by Lemma 2.
#[derive(Debug, Clone)]
pub struct PointerSets {
    /// Ports receiving demanding pointers (all with the same α).
    pub j_star: Vec<usize>,
    /// Ports receiving accepting pointers (all with the opposite α).
    pub n_j_star: Vec<usize>,
}

impl PointerSets {
    /// Verifies the Lemma 2 guarantees against the output and orientation.
    pub fn verify(&self, q: &NodeOutput, alpha: &[Orientation], p_inf: u32) -> bool {
        if alpha.len() != q.delta() {
            return false;
        }
        if self.j_star.len() <= self.n_j_star.len() {
            return false;
        }
        if self.j_star.iter().any(|p| self.n_j_star.contains(p)) {
            return false;
        }
        // α constant on J*, opposite on N(J*).
        let Some(&first) = self.j_star.first() else { return false };
        let a = alpha[first];
        if self.j_star.iter().any(|&p| alpha[p] != a) {
            return false;
        }
        if self.n_j_star.iter().any(|&p| alpha[p] == a) {
            return false;
        }
        // J* ⊆ I.
        let p_inf_set = &q.distinct_sets()[p_inf as usize];
        for &p in &self.j_star {
            let s = q.set_at(p);
            if s.g1_compatible(p_inf_set) || s.contains_all_ones() {
                return false;
            }
        }
        // N(J*) contains every port g₁-compatible and α-opposite to J*.
        for &j in &self.j_star {
            for (p, &ap) in alpha.iter().enumerate() {
                if ap != a && q.set_at(j).g1_compatible(q.set_at(p)) && !self.n_j_star.contains(&p)
                {
                    return false;
                }
            }
        }
        true
    }
}

/// The Lemma 2 dichotomy.
#[derive(Debug, Clone)]
pub enum Lemma2Outcome {
    /// `J*`/`N(J*)` found — the Lemma 2 promise for `Q ∈ h₁(Δ)`.
    Pointers(PointerSets),
    /// The matching covered `I`; the proof's construction then yields an
    /// explicit Property A violation, certifying `Q ∉ h₁(Δ)`.
    NotInH1(PropertyAViolation),
}

/// Errors: the inputs did not meet Lemma 2's hypotheses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lemma2Error {
    /// The orientation vector does not have Δ entries.
    AlphaLength {
        /// Expected Δ.
        expected: usize,
        /// Provided length.
        found: usize,
    },
    /// Lemma 1 structure missing (degree too small, no P∞, …).
    Structure(Lemma1Error),
    /// Internal consistency failure while constructing the violation —
    /// indicates the P∞ multiplicity promise was broken.
    PartnerExhausted,
    /// The matching/chain structure violated an invariant the proof
    /// guarantees (possible only if the inputs break a hypothesis, e.g. an
    /// orientation vector inconsistent with the graph).
    Inconsistent,
}

impl fmt::Display for Lemma2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lemma2Error::AlphaLength { expected, found } => {
                write!(f, "orientation vector has {found} entries, expected {expected}")
            }
            Lemma2Error::Structure(e) => write!(f, "lemma 1 structure missing: {e}"),
            Lemma2Error::PartnerExhausted => {
                write!(f, "ran out of P∞ partners while constructing the violating choice")
            }
            Lemma2Error::Inconsistent => {
                write!(f, "matching structure violated a proof invariant")
            }
        }
    }
}

impl std::error::Error for Lemma2Error {}

impl From<Lemma1Error> for Lemma2Error {
    fn from(e: Lemma1Error) -> Lemma2Error {
        Lemma2Error::Structure(e)
    }
}

/// Runs the Lemma 2 algorithm. See the module docs for the contract.
///
/// # Errors
///
/// Returns [`Lemma2Error`] when the hypotheses (orientation length, Lemma 1
/// structure) are unmet.
pub fn lemma2(q: &NodeOutput, alpha: &[Orientation]) -> Result<Lemma2Outcome, Lemma2Error> {
    let delta = q.delta();
    if alpha.len() != delta {
        return Err(Lemma2Error::AlphaLength { expected: delta, found: alpha.len() });
    }
    let p_inf = find_p_infinity(q)?;
    let p_inf_set = q.distinct_sets()[p_inf as usize].clone();

    // I: ports not g₁-compatible with P∞ and without 11…1.
    let i_ports: Vec<usize> = (0..delta)
        .filter(|&p| {
            let s = q.set_at(p);
            !s.g1_compatible(&p_inf_set) && !s.contains_all_ones()
        })
        .collect();

    // G′: left = I, right = all ports; edges = g₁-compatible ∧ α-opposite.
    // Adjacency is computed per distinct-set pair, then expanded.
    let n_distinct = q.distinct_sets().len();
    let mut compat = vec![vec![false; n_distinct]; n_distinct];
    for (a, row) in compat.iter_mut().enumerate() {
        for (b, cell) in row.iter_mut().enumerate() {
            *cell = q.distinct_sets()[a].g1_compatible(&q.distinct_sets()[b]);
        }
    }
    let mut g = Bipartite::new(i_ports.len(), delta);
    for (li, &i) in i_ports.iter().enumerate() {
        for j in 0..delta {
            if alpha[i] != alpha[j] && compat[q.id_at(i) as usize][q.id_at(j) as usize] {
                g.add_edge(li, j);
            }
        }
    }

    let matching = maximum_matching(&g);
    if let Some(v) = hall_violator(&g, &matching) {
        debug_assert!(v.verify(&g));
        // Split J′ by α; the disjointness argument of the proof shows one
        // side still violates Hall's condition.
        let j_in: Vec<usize> =
            v.left.iter().map(|&li| i_ports[li]).filter(|&p| alpha[p] == Orientation::In).collect();
        let j_out: Vec<usize> = v
            .left
            .iter()
            .map(|&li| i_ports[li])
            .filter(|&p| alpha[p] == Orientation::Out)
            .collect();
        let neighborhood = |j: &[usize]| -> Vec<usize> {
            let mut nb: Vec<usize> = Vec::new();
            for p in 0..delta {
                let hits = j.iter().any(|&jj| {
                    alpha[p] != alpha[jj] && compat[q.id_at(jj) as usize][q.id_at(p) as usize]
                });
                if hits {
                    nb.push(p);
                }
            }
            nb
        };
        let n_in = neighborhood(&j_in);
        let n_out = neighborhood(&j_out);
        let pointers = if j_in.len() > n_in.len() {
            PointerSets { j_star: j_in, n_j_star: n_in }
        } else {
            debug_assert!(j_out.len() > n_out.len(), "one side must violate Hall");
            PointerSets { j_star: j_out, n_j_star: n_out }
        };
        return Ok(Lemma2Outcome::Pointers(pointers));
    }

    // Matching covers I: build the violating choice (Q ∉ h₁(Δ)).
    let violation = build_violation(q, &i_ports, &matching.left_match, p_inf)?;
    debug_assert!(violation.verify(q), "constructed violation must verify");
    Ok(Lemma2Outcome::NotInH1(violation))
}

/// Converts an I-covering matching into an explicit Property A violation,
/// following the proof's path/ring decomposition of touching edges.
fn build_violation(
    q: &NodeOutput,
    i_ports: &[usize],
    left_match: &[Option<usize>],
    p_inf: u32,
) -> Result<PropertyAViolation, Lemma2Error> {
    let delta = q.delta();
    let k = q.k();
    let in_i = {
        let mut v = vec![false; delta];
        for &p in i_ports {
            v[p] = true;
        }
        v
    };
    // next[i] = matched right port of v_i, for i ∈ I.
    let mut next: Vec<Option<usize>> = vec![None; delta];
    for (li, &i) in i_ports.iter().enumerate() {
        next[i] = Some(left_match[li].expect("matching covers I"));
    }
    // prev[j] = i with next[i] = j.
    let mut prev: Vec<Option<usize>> = vec![None; delta];
    for &i in i_ports {
        let j = next[i].expect("set above");
        debug_assert!(prev[j].is_none(), "matching property");
        prev[j] = Some(i);
    }

    // Select alternating edges along each chain so that every index in I
    // has exactly one of (v_i, u_i) matched in the selection M′.
    let mut selected: Vec<(usize, usize)> = Vec::new(); // (left index i, right index j)
    let mut visited = vec![false; delta];
    for &start in i_ports {
        if visited[start] || prev[start].is_some() {
            continue; // not a chain head (ring or interior)
        }
        // Path-like chain: start has no incoming edge.
        let mut pos = start;
        let mut take = true;
        while in_i[pos] && !visited[pos] {
            visited[pos] = true;
            let j = next[pos].expect("pos ∈ I");
            if take {
                selected.push((pos, j));
            }
            take = !take;
            if !in_i[j] {
                break;
            }
            pos = j;
        }
    }
    // Remaining unvisited I-ports lie on rings.
    for &start in i_ports {
        if visited[start] {
            continue;
        }
        let mut pos = start;
        let mut take = true;
        loop {
            visited[pos] = true;
            let j = next[pos].expect("pos ∈ I");
            if take {
                selected.push((pos, j));
            }
            take = !take;
            pos = j;
            if pos == start {
                break;
            }
        }
    }

    // Build the choice.
    let mut choice: Vec<Option<TritSeq>> = vec![None; delta];
    let pick_complementary = |a: usize, b: usize| -> Option<(TritSeq, TritSeq)> {
        let sa = q.set_at(a);
        let sb = q.set_at(b);
        for w in sa.iter() {
            let c = w.complement();
            if sb.contains(&c) {
                return Some((w.clone(), c));
            }
        }
        None
    };
    for &(i, j) in &selected {
        let (qi, qj) = pick_complementary(i, j).ok_or(Lemma2Error::Inconsistent)?;
        if choice[i].is_some() || choice[j].is_some() {
            return Err(Lemma2Error::Inconsistent);
        }
        choice[i] = Some(qi);
        choice[j] = Some(qj);
    }
    // Ports outside I without 11…1 pair up with fresh P∞ ports.
    let mut p_inf_pool: Vec<usize> =
        (0..delta).filter(|&p| q.id_at(p) == p_inf && choice[p].is_none()).collect();
    for p in 0..delta {
        if choice[p].is_some() || in_i[p] || q.set_at(p).contains_all_ones() {
            continue;
        }
        let partner = loop {
            let cand = p_inf_pool.pop().ok_or(Lemma2Error::PartnerExhausted)?;
            if choice[cand].is_none() && cand != p {
                break cand;
            }
        };
        let (qp, qpart) = pick_complementary(p, partner).ok_or(Lemma2Error::PartnerExhausted)?;
        choice[p] = Some(qp);
        choice[partner] = Some(qpart);
    }
    // Everything else takes 11…1.
    let ones = TritSeq::all_ones(k);
    let mut final_choice = Vec::with_capacity(delta);
    for (p, c) in choice.into_iter().enumerate() {
        match c {
            Some(t) => final_choice.push(t),
            None => {
                if !q.set_at(p).contains(&ones) {
                    return Err(Lemma2Error::Inconsistent);
                }
                final_choice.push(ones.clone());
            }
        }
    }
    Ok(PropertyAViolation { choice: final_choice })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trit::TritSet;

    fn t(s: &str) -> TritSeq {
        TritSeq::new(s.bytes().map(|b| b - b'0').collect()).unwrap()
    }

    fn alt_alpha(delta: usize) -> Vec<Orientation> {
        (0..delta).map(|i| if i % 2 == 0 { Orientation::Out } else { Orientation::In }).collect()
    }

    /// P∞ rich enough to be g₁-compatible with everything it must pair with.
    fn p_inf_set() -> TritSet {
        TritSet::new([t("11"), t("22"), t("00"), t("20"), t("02")])
    }

    #[test]
    fn pointers_found_for_isolated_exotic_ports() {
        // Exotic set {21} (no 11, complement 01 ∉ P∞? P∞ has 01? no).
        // Make the exotic ports incompatible with everything including P∞:
        // {21}'s complement is {01}; exclude 01 from all sets.
        let delta = (1 << 17) + 8;
        let exotic = TritSet::new([t("21")]);
        let p_inf = TritSet::new([t("11"), t("22")]);
        // 4 exotic ports, alternating orientations elsewhere.
        let mut per_port = vec![p_inf.clone(); delta];
        per_port[0] = exotic.clone();
        per_port[2] = exotic.clone();
        per_port[4] = exotic.clone();
        let q = NodeOutput::new(per_port);
        let alpha = alt_alpha(delta);
        match lemma2(&q, &alpha).unwrap() {
            Lemma2Outcome::Pointers(ps) => {
                let p = find_p_infinity(&q).unwrap();
                assert!(ps.verify(&q, &alpha, p), "{ps:?}");
                // exotic ports have no compatible partner at all: N(J*) = ∅.
                assert!(ps.n_j_star.is_empty());
                assert_eq!(ps.j_star, vec![0, 2, 4]);
            }
            other => panic!("expected pointers, got {other:?}"),
        }
    }

    #[test]
    fn balanced_output_certified_not_in_h1() {
        // Ports that pair up perfectly: {20} on out-ports, {02} on
        // in-ports, P∞ elsewhere. The matching covers I and the algorithm
        // must emit a verified Property A violation.
        let delta = (1 << 17) + 8;
        let a = TritSet::new([t("20")]);
        let b = TritSet::new([t("02")]);
        let mut per_port = vec![p_inf_set(); delta];
        // out ports: even indices; in: odd.
        per_port[0] = a.clone();
        per_port[1] = b.clone();
        per_port[2] = a.clone();
        per_port[3] = b.clone();
        let q = NodeOutput::new(per_port);
        let alpha = alt_alpha(delta);
        match lemma2(&q, &alpha).unwrap() {
            Lemma2Outcome::NotInH1(v) => assert!(v.verify(&q)),
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn out_of_i_ports_pair_with_p_infinity() {
        // A port {20,11}? contains no 11 → wait: give it {20} plus make it
        // compatible with P∞ (complement 02 ∈ P∞) so it is *outside* I and
        // must be paired with a P∞ partner in the violation construction.
        let delta = (1 << 17) + 8;
        let c = TritSet::new([t("20")]); // complement 02 ∈ P∞ ⇒ outside I
        let mut per_port = vec![p_inf_set(); delta];
        per_port[6] = c;
        let q = NodeOutput::new(per_port);
        let alpha = alt_alpha(delta);
        // I is empty ⇒ matching trivially covers it ⇒ violation returned.
        match lemma2(&q, &alpha).unwrap() {
            Lemma2Outcome::NotInH1(v) => {
                assert!(v.verify(&q));
                // port 6 must have chosen 20, its partner 02.
                assert_eq!(v.choice[6], t("20"));
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn alpha_length_checked() {
        let delta = 1 << 17;
        let q = NodeOutput::from_groups([(p_inf_set(), delta)]);
        assert!(matches!(lemma2(&q, &alt_alpha(delta - 1)), Err(Lemma2Error::AlphaLength { .. })));
    }

    #[test]
    fn structure_errors_propagate() {
        let q = NodeOutput::from_groups([(p_inf_set(), 16)]);
        assert!(matches!(lemma2(&q, &alt_alpha(16)), Err(Lemma2Error::Structure(_))));
    }
}
