//! Lemma 3: transforming a Π'₁ output into a superweak k′-coloring output.
//!
//! Given an algorithm A solving Π'₁ (the speedup of superweak k-coloring)
//! in t rounds, each node can — with **zero** extra communication — convert
//! its A-output into a superweak k′-coloring output, `k′ = 2^{2^{5^k}}`:
//!
//! * the **color** is an injective function of `R_v`, the multiset of pairs
//!   `(Q_i, β(i))` where `β` is the port orientation for non-P∞ ports and
//!   `none` for P∞ ports;
//! * the **pointers** come from Lemma 2's `J*` (demanding →) and `N(J*)`
//!   (accepting ();
//! * canonicity: `J*` is computed on a canonical reordering of the ports so
//!   that nodes with equal `R_v` select the same *multiset* of
//!   `(Q_i, β(i))` pairs — the property the correctness proof relies on.
//!
//! Colors are represented as opaque byte strings ([`ColorId`]); the paper's
//! `{1, …, k′}` indexing is an arbitrary injection, and `k′` is
//! astronomically large, so canonical serialization *is* the injection.

use crate::h1::NodeOutput;
use crate::lemma1::find_p_infinity;
use crate::lemma2::{lemma2, Lemma2Error, Lemma2Outcome, Orientation, PointerSets};
use crate::tower::Tower;
use crate::trit::TritSet;

/// An injectively-encoded superweak color (canonical bytes of `R_v`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ColorId(Vec<u8>);

impl ColorId {
    /// The raw canonical bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.0
    }
}

/// The β entry of `R_v`: the orientation for non-P∞ ports, `none` for P∞.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Beta {
    /// Non-P∞ port oriented away.
    Out,
    /// Non-P∞ port oriented towards.
    In,
    /// P∞ port (orientation deliberately forgotten).
    None,
}

/// The superweak pointer a port carries after the transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pointer {
    /// Demanding pointer →.
    Demanding,
    /// Accepting pointer (.
    Accepting,
    /// No pointer •.
    None,
}

/// A node's transformed output: one color plus one pointer per port.
#[derive(Debug, Clone)]
pub struct SuperweakOutput {
    /// The node's color (identical on every port).
    pub color: ColorId,
    /// Pointer per port.
    pub pointers: Vec<Pointer>,
}

impl SuperweakOutput {
    /// Number of demanding pointers.
    pub fn demanding_count(&self) -> usize {
        self.pointers.iter().filter(|p| matches!(p, Pointer::Demanding)).count()
    }

    /// Number of accepting pointers.
    pub fn accepting_count(&self) -> usize {
        self.pointers.iter().filter(|p| matches!(p, Pointer::Accepting)).count()
    }
}

/// The transformation result, or the certified reason it cannot apply.
#[derive(Debug, Clone)]
pub enum TransformOutcome {
    /// The Lemma 3 output.
    Output(SuperweakOutput),
    /// The node's A-output is certifiably not in `h₁(Δ)` — A did not solve
    /// Π'₁ (carries the explicit Property A violation).
    NotInH1(crate::h1::PropertyAViolation),
}

/// Computes `R_v` as a sorted multiset of `(set, β)` pairs.
fn r_v(q: &NodeOutput, alpha: &[Orientation], p_inf: u32) -> Vec<(TritSet, Beta)> {
    let mut r: Vec<(TritSet, Beta)> = (0..q.delta())
        .map(|p| {
            let beta = if q.id_at(p) == p_inf {
                Beta::None
            } else {
                match alpha[p] {
                    Orientation::Out => Beta::Out,
                    Orientation::In => Beta::In,
                }
            };
            (q.set_at(p).clone(), beta)
        })
        .collect();
    r.sort();
    r
}

/// Canonically serializes `R_v` into a color id. Injective by construction
/// (length-prefixed encoding of a sorted multiset).
fn color_of(r: &[(TritSet, Beta)]) -> ColorId {
    let mut bytes = Vec::new();
    for (set, beta) in r {
        bytes.push(match beta {
            Beta::Out => 0u8,
            Beta::In => 1,
            Beta::None => 2,
        });
        bytes.extend_from_slice(&(set.len() as u32).to_be_bytes());
        for t in set.iter() {
            bytes.extend_from_slice(&(t.trits().len() as u32).to_be_bytes());
            bytes.extend_from_slice(t.trits());
        }
    }
    ColorId(bytes)
}

/// Lemma 3's per-node output transformation.
///
/// Runs Lemma 2 on a canonical reordering of the ports (sorted by
/// `(set, α)`), maps the resulting `J*`/`N(J*)` back to the original port
/// numbering, and assembles the superweak output. Zero communication.
///
/// # Errors
///
/// Propagates [`Lemma2Error`] when the hypotheses are unmet.
pub fn transform_output(
    q: &NodeOutput,
    alpha: &[Orientation],
) -> Result<TransformOutcome, Lemma2Error> {
    let delta = q.delta();
    if alpha.len() != delta {
        return Err(Lemma2Error::AlphaLength { expected: delta, found: alpha.len() });
    }
    let p_inf = find_p_infinity(q)?;

    // Canonical port order: sort by (set, α). Nodes with equal R_v agree
    // on this sorted sequence, hence on the selected multisets.
    let mut order: Vec<usize> = (0..delta).collect();
    order.sort_by(|&a, &b| (q.set_at(a), alpha[a]).cmp(&(q.set_at(b), alpha[b])));
    let sorted_sets: Vec<TritSet> = order.iter().map(|&p| q.set_at(p).clone()).collect();
    let sorted_alpha: Vec<Orientation> = order.iter().map(|&p| alpha[p]).collect();
    let q_sorted = NodeOutput::new(sorted_sets);

    let pointers_sorted: PointerSets = match lemma2(&q_sorted, &sorted_alpha)? {
        Lemma2Outcome::Pointers(ps) => ps,
        Lemma2Outcome::NotInH1(v) => {
            // Translate the violation back to the original port order.
            let mut choice = vec![None; delta];
            for (sorted_ix, t) in v.choice.into_iter().enumerate() {
                choice[order[sorted_ix]] = Some(t);
            }
            let violation = crate::h1::PropertyAViolation {
                choice: choice.into_iter().map(|c| c.expect("complete")).collect(),
            };
            return Ok(TransformOutcome::NotInH1(violation));
        }
    };

    let mut pointers = vec![Pointer::None; delta];
    for &sp in &pointers_sorted.j_star {
        pointers[order[sp]] = Pointer::Demanding;
    }
    for &sp in &pointers_sorted.n_j_star {
        pointers[order[sp]] = Pointer::Accepting;
    }

    let color = color_of(&r_v(q, alpha, p_inf));
    Ok(TransformOutcome::Output(SuperweakOutput { color, pointers }))
}

/// The paper's `k′ = 2^{2^{5^k}}` bound on the number of colors the
/// transformation can emit (Lemma 3 / Lemma 4), as an exact [`Tower`]
/// (`k ≤ 55`, where `5^k` fits `u128`).
pub fn k_prime(k: usize) -> Option<Tower> {
    let five_k = 5u128.checked_pow(k as u32)?;
    Some(Tower::from_u128(five_k).pow2().pow2())
}

/// The paper's counting bound `|H₁(Δ)| ≤ (3·2^{3^k})^{2^{4^k}+1}`, as an
/// exact log₂ bound: returns `log₂` of the bound (`(2^{4^k}+1)·(log₂3 +
/// 3^k)` rounded up to `(2^{4^k}+1)·(2 + 3^k)`), for comparing against
/// `log₂ k′ = 2^{5^k}`.
pub fn h1_count_log2_bound(k: usize) -> Option<Tower> {
    let three_k = 3u128.checked_pow(k as u32)?;
    let four_k = 4u128.checked_pow(k as u32)?;
    let base_log = three_k.checked_add(2)?; // log2(3·2^{3^k}) ≤ 3^k + 2
    let count = 1u128.checked_shl(four_k.try_into().ok()?)?.checked_add(1)?;
    Some(Tower::from_u128(base_log.checked_mul(count)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trit::TritSeq;

    fn t(s: &str) -> TritSeq {
        TritSeq::new(s.bytes().map(|b| b - b'0').collect()).unwrap()
    }

    fn alt_alpha(delta: usize) -> Vec<Orientation> {
        (0..delta).map(|i| if i % 2 == 0 { Orientation::Out } else { Orientation::In }).collect()
    }

    fn exotic_example(delta: usize) -> (NodeOutput, Vec<Orientation>) {
        let exotic = TritSet::new([t("21")]);
        let p_inf = TritSet::new([t("11"), t("22")]);
        let mut per_port = vec![p_inf; delta];
        per_port[0] = exotic.clone();
        per_port[2] = exotic.clone();
        per_port[4] = exotic;
        (NodeOutput::new(per_port), alt_alpha(delta))
    }

    #[test]
    fn transform_produces_valid_superweak_shape() {
        let delta = (1 << 17) + 8;
        let (q, alpha) = exotic_example(delta);
        match transform_output(&q, &alpha).unwrap() {
            TransformOutcome::Output(out) => {
                assert!(out.demanding_count() > out.accepting_count());
                assert_eq!(out.pointers.len(), delta);
                // accepting count bounded by the Lemma 1 slack 2^{4^k}
                assert!(out.accepting_count() <= 1 << 16);
            }
            other => panic!("expected output, got {other:?}"),
        }
    }

    #[test]
    fn equal_r_v_implies_equal_color_and_pointer_multiset() {
        let delta = (1 << 17) + 8;
        let (q, alpha) = exotic_example(delta);
        // Permute ports while keeping (set, α) multiset fixed: swap the
        // exotic ports 0 and 2 (both Out), and two P∞ ports 6, 8.
        let mut per_port2: Vec<TritSet> = (0..delta).map(|p| q.set_at(p).clone()).collect();
        per_port2.swap(0, 2);
        per_port2.swap(6, 8);
        let q2 = NodeOutput::new(per_port2);
        let o1 = match transform_output(&q, &alpha).unwrap() {
            TransformOutcome::Output(o) => o,
            _ => unreachable!(),
        };
        let o2 = match transform_output(&q2, &alpha).unwrap() {
            TransformOutcome::Output(o) => o,
            _ => unreachable!(),
        };
        assert_eq!(o1.color, o2.color);
        assert_eq!(o1.demanding_count(), o2.demanding_count());
        assert_eq!(o1.accepting_count(), o2.accepting_count());
    }

    #[test]
    fn different_r_v_implies_different_color() {
        let delta = (1 << 17) + 8;
        let (q, alpha) = exotic_example(delta);
        let exotic2 = TritSet::new([t("12")]);
        let mut per_port2: Vec<TritSet> = (0..delta).map(|p| q.set_at(p).clone()).collect();
        per_port2[0] = exotic2;
        let q2 = NodeOutput::new(per_port2);
        let o1 = match transform_output(&q, &alpha).unwrap() {
            TransformOutcome::Output(o) => o,
            _ => unreachable!(),
        };
        let o2 = match transform_output(&q2, &alpha).unwrap() {
            TransformOutcome::Output(o) => o,
            _ => unreachable!(),
        };
        assert_ne!(o1.color, o2.color);
    }

    #[test]
    fn not_in_h1_propagates_with_original_port_order() {
        let delta = (1 << 17) + 8;
        let p_inf = TritSet::new([t("11"), t("22"), t("00"), t("20"), t("02")]);
        let mut per_port = vec![p_inf; delta];
        per_port[5] = TritSet::new([t("20")]); // pairs with P∞, kills Property A
        let q = NodeOutput::new(per_port);
        match transform_output(&q, &alt_alpha(delta)).unwrap() {
            TransformOutcome::NotInH1(v) => assert!(v.verify(&q)),
            other => panic!("expected NotInH1, got {other:?}"),
        }
    }

    #[test]
    fn k_prime_dominates_h1_count() {
        // Lemma 3's counting step: |H₁(Δ)| ≤ k′ for k = 2 (and 3).
        for k in 2..=3 {
            let log_bound = h1_count_log2_bound(k).unwrap();
            let log_k_prime = k_prime(k).unwrap().log2().unwrap();
            assert!(log_bound <= log_k_prime, "k={k}: {log_bound} vs {log_k_prime}");
        }
    }
}
