//! The Theorem 4 pipeline, end to end: a single entry point that chains
//! every ingredient of the weak-2-coloring lower bound and returns a
//! structured, self-describing certificate.
//!
//! The chain (§5.2):
//!
//! 1. a T-round weak-2-coloring algorithm yields a (T+1)-round algorithm
//!    for the pointer version, which *is* a superweak 2-coloring
//!    algorithm;
//! 2. while `Δ ≥ 2^{4^{k_i}+1}`, Lemma 4 trades one round for the jump
//!    `k_{i+1} = F⁵(k_i)`;
//! 3. if the chain reaches 0 rounds with `k* ≤ log Δ ≤ (Δ−3)/2`, the
//!    §5.2 pigeonhole wiring argument yields a contradiction.
//!
//! Hence no algorithm with `T + 1 ≤ chain length` exists.

use crate::lowerbound::{speedup_rounds, zero_round_impossibility, SpeedupStep};
use crate::tower::Tower;
use std::fmt;

/// A machine-checked certificate of the Theorem 4 lower bound at a given
/// degree.
#[derive(Debug, Clone)]
pub struct Theorem4Certificate {
    /// The degree Δ (exact tower value).
    pub delta: Tower,
    /// `log* Δ`.
    pub log_star_delta: u32,
    /// The Lemma 4 chain: `k` after each application.
    pub chain: Vec<SpeedupStep>,
    /// The final superweak parameter `k*` (still ≤ log Δ).
    pub k_star: Tower,
    /// The certified statement: every weak-2-coloring algorithm needs
    /// **more than** this many rounds on Δ-regular odd-degree graphs.
    pub ruled_out_rounds: usize,
    /// The paper's comparison value `(log* Δ − 7)/5`.
    pub paper_bound: i64,
}

impl fmt::Display for Theorem4Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Theorem 4 certificate for Δ = {} (log* Δ = {}):",
            self.delta, self.log_star_delta
        )?;
        for step in &self.chain {
            writeln!(f, "  after {} Lemma-4 application(s): superweak k = {}", step.round, step.k)?;
        }
        writeln!(
            f,
            "  k* = {} ≤ log Δ; §5.2 impossibility applies ⇒ T(Δ) > {} \
             (paper shape: (log*Δ−7)/5 = {})",
            self.k_star, self.ruled_out_rounds, self.paper_bound
        )
    }
}

/// Why a certificate could not be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// Δ too small for even one Lemma 4 application (Δ < 2^17).
    DegreeTooSmall,
    /// The chain exists but its endpoint exceeds `log Δ`, and no usable
    /// prefix remains.
    NoUsablePrefix,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::DegreeTooSmall => {
                write!(f, "degree below 2^(4^2+1) = 2^17: no Lemma 4 application possible")
            }
            PipelineError::NoUsablePrefix => {
                write!(f, "no chain prefix ends with k* ≤ log Δ")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// Runs the full Theorem 4 pipeline for degree Δ and returns the
/// certificate, re-verifying every side condition.
///
/// # Errors
///
/// Returns [`PipelineError`] when the hypotheses fail (tiny Δ).
pub fn theorem4(delta: &Tower) -> Result<Theorem4Certificate, PipelineError> {
    if *delta <= Tower::from_u128(16) {
        return Err(PipelineError::DegreeTooSmall);
    }
    let cap = delta.log_star() as usize + 2;
    let chain_all = speedup_rounds(delta, 2, cap);
    let log_delta = delta.log2().expect("Δ ≥ 1");
    // Longest prefix whose endpoint obeys k* ≤ log Δ.
    let mut chain: Vec<SpeedupStep> = Vec::new();
    for step in &chain_all {
        if step.round == 0 || step.k <= log_delta {
            chain.push(step.clone());
        } else {
            break;
        }
    }
    let last = chain.last().cloned().ok_or(PipelineError::NoUsablePrefix)?;
    if last.round == 0 {
        return Err(PipelineError::DegreeTooSmall);
    }
    // Re-verify the §5.2 endgame when k* is numeric (it always is for
    // small Δ; for tower-sized k* the inequality k* ≤ log Δ ≤ (Δ−3)/2 is
    // checked in tower arithmetic instead).
    if let (Some(k_star), Some(d)) = (last.k.as_u128(), delta.as_u128()) {
        let odd_d = if d % 2 == 0 { d - 1 } else { d };
        if zero_round_impossibility(k_star, odd_d).is_none() {
            return Err(PipelineError::NoUsablePrefix);
        }
    }
    let log_star_delta = delta.log_star();
    Ok(Theorem4Certificate {
        delta: delta.clone(),
        log_star_delta,
        k_star: last.k.clone(),
        ruled_out_rounds: last.round - 1,
        paper_bound: (log_star_delta as i64 - 7) / 5,
        chain,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn certificate_for_tower_degrees() {
        for h in [10u32, 20, 40] {
            let delta = Tower::tower_of_twos(h);
            let cert = theorem4(&delta).unwrap();
            assert!(cert.ruled_out_rounds as i64 + 1 >= cert.paper_bound, "h={h}");
            assert!(cert.k_star <= delta.log2().unwrap());
            assert_eq!(cert.log_star_delta, h);
            assert!(!cert.to_string().is_empty());
        }
    }

    #[test]
    fn bound_grows_with_degree() {
        let small = theorem4(&Tower::tower_of_twos(12)).unwrap();
        let large = theorem4(&Tower::tower_of_twos(60)).unwrap();
        assert!(large.ruled_out_rounds > small.ruled_out_rounds);
    }

    #[test]
    fn tiny_degrees_rejected() {
        assert!(matches!(theorem4(&Tower::from_u128(16)), Err(PipelineError::DegreeTooSmall)));
        assert!(matches!(theorem4(&Tower::from_u128(1000)), Err(PipelineError::DegreeTooSmall)));
    }
}
