//! Cross-validation of the paper's *equivalent trit description* of
//! Π'_{1/2} (§4.6 / §5.1) against the generic speedup engine.
//!
//! The paper claims that after one simplified half-step on superweak
//! k-coloring, the usable labels are exactly the `3^k` trit sequences,
//! with
//!
//! * edge constraint: tritwise-complementary pairs (sum `22…2`);
//! * node constraint: ∃ position j with `#2_j > #0_j` and `#0_j ≤ k`.
//!
//! [`trit_of_meaning`] reads the trit sequence off an engine-derived
//! set-label, and the tests in this module run the *generic* engine on the
//! explicit small-Δ problem and verify both constraints coincide with the
//! closed-form description — the same mechanically-checked equivalence the
//! paper argues by hand.

use crate::trit::TritSeq;
use roundelim_core::label::Alphabet;
use roundelim_core::labelset::LabelSet;

/// Interprets an engine set-label over the superweak alphabet
/// (`{c→, c(, c•}` per color, as produced by
/// `roundelim_problems::weak::superweak_coloring`) as a trit sequence:
/// per color, `{(} ↦ 0`, `{(, •} ↦ 1`, `{→, (, •} ↦ 2`.
///
/// Returns `None` if the set is not of the §5.1 normal shape (which for
/// maximal labels of the derived problem never happens — that is exactly
/// the paper's claim, and what the tests verify).
pub fn trit_of_meaning(meaning: &LabelSet, base: &Alphabet, k: usize) -> Option<TritSeq> {
    let mut trits = Vec::with_capacity(k);
    for c in 1..=k {
        let dem = base.lookup(&format!("{c}→"))?;
        let acc = base.lookup(&format!("{c}(",))?;
        let dot = base.lookup(&format!("{c}•"))?;
        let has = |l| meaning.contains(l);
        let trit = match (has(dem), has(acc), has(dot)) {
            (false, true, false) => 0u8,
            (false, true, true) => 1,
            (true, true, true) => 2,
            _ => return None,
        };
        trits.push(trit);
    }
    TritSeq::new(trits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::h1::choice_in_h_half;
    use roundelim_core::speedup::half_step_edge;
    use roundelim_problems::weak::superweak_coloring;

    /// §5.1's equivalence, machine-checked: run the generic engine on the
    /// explicit superweak problem and compare with the closed form.
    fn check_equivalence(k: usize, delta: usize) {
        let base = superweak_coloring(k, delta).unwrap();
        let hs = half_step_edge(&base).unwrap();
        let derived = &hs.problem;

        // 1. Every derived label is a trit sequence; all 3^k occur.
        let mut seen = std::collections::BTreeSet::new();
        let mut trit_of_label = Vec::new();
        for (ix, meaning) in hs.meanings.iter().enumerate() {
            let t = trit_of_meaning(meaning, base.alphabet(), k)
                .unwrap_or_else(|| panic!("derived label {ix} is not of trit shape: {meaning:?}"));
            seen.insert(t.clone());
            trit_of_label.push(t);
        }
        assert_eq!(seen.len(), 3usize.pow(k as u32), "all trit sequences usable");
        assert_eq!(hs.meanings.len(), 3usize.pow(k as u32));

        // 2. Edge constraint = complementary pairs.
        for cfg in derived.edge().iter() {
            let ls = cfg.labels();
            let (a, b) = (&trit_of_label[ls[0].index()], &trit_of_label[ls[1].index()]);
            assert!(a.complementary(b), "edge pair {a} {b} not complementary");
        }
        // Count: unordered complementary pairs = (3^k − 1)/2 + 1 (the
        // all-ones sequence is self-complementary).
        let expected = (3usize.pow(k as u32) - 1) / 2 + 1;
        assert_eq!(derived.edge().len(), expected);

        // 3. Node constraint = the ∃j counting condition.
        // The engine enumerated all multisets over the new alphabet; check
        // each against the closed form, and check the closed form implies
        // membership for every multiset.
        let all = roundelim_core::config::all_multisets(hs.meanings.len(), delta);
        for cfg in &all {
            let choice: Vec<TritSeq> =
                cfg.labels().iter().map(|l| trit_of_label[l.index()].clone()).collect();
            let formula = choice_in_h_half(&choice, k);
            let engine = derived.node().contains(cfg);
            assert_eq!(
                engine,
                formula,
                "node multiset {:?} engine={engine} formula={formula}",
                choice.iter().map(ToString::to_string).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn superweak_2_delta_3_matches_closed_form() {
        check_equivalence(2, 3);
    }

    #[test]
    fn superweak_2_delta_4_matches_closed_form() {
        check_equivalence(2, 4);
    }

    #[test]
    fn trit_of_meaning_rejects_non_normal_sets() {
        let base = superweak_coloring(2, 3).unwrap();
        // {1→} alone is not a normal shape.
        let only_dem = LabelSet::singleton(base.alphabet().require("1→").unwrap());
        assert!(trit_of_meaning(&only_dem, base.alphabet(), 2).is_none());
    }
}
