//! Bipartite maximum matching (Hopcroft–Karp) and Hall-violator
//! extraction — the combinatorial engine behind Lemma 2.
//!
//! The Lemma 2 proof applies Hall's marriage theorem to a bipartite graph
//! G′ built from a node's Π'₁ output: *either* a matching covers the left
//! side (and the proof converts it into a Property-A-violating choice),
//! *or* some left set `J′` has `|J′| > |N(J′)|` (a Hall violator, extracted
//! here via the standard alternating-reachability/König argument).

/// A bipartite graph on `left_count × right_count` vertices given by
/// adjacency lists from the left side.
#[derive(Debug, Clone)]
pub struct Bipartite {
    left_count: usize,
    right_count: usize,
    adj: Vec<Vec<usize>>,
}

impl Bipartite {
    /// Creates an empty bipartite graph.
    pub fn new(left_count: usize, right_count: usize) -> Bipartite {
        Bipartite { left_count, right_count, adj: vec![Vec::new(); left_count] }
    }

    /// Adds an edge between left vertex `l` and right vertex `r`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn add_edge(&mut self, l: usize, r: usize) {
        assert!(l < self.left_count && r < self.right_count, "edge out of range");
        self.adj[l].push(r);
    }

    /// Number of left vertices.
    pub fn left_count(&self) -> usize {
        self.left_count
    }

    /// Number of right vertices.
    pub fn right_count(&self) -> usize {
        self.right_count
    }

    /// Neighbors of left vertex `l`.
    pub fn neighbors(&self, l: usize) -> &[usize] {
        &self.adj[l]
    }
}

/// A maximum matching: `left_match[l] = Some(r)` and `right_match[r] =
/// Some(l)` for matched pairs.
#[derive(Debug, Clone)]
pub struct Matching {
    /// Right partner of each left vertex.
    pub left_match: Vec<Option<usize>>,
    /// Left partner of each right vertex.
    pub right_match: Vec<Option<usize>>,
}

impl Matching {
    /// Number of matched pairs.
    pub fn size(&self) -> usize {
        self.left_match.iter().flatten().count()
    }

    /// Whether every left vertex is matched.
    pub fn covers_left(&self) -> bool {
        self.left_match.iter().all(Option::is_some)
    }
}

/// Computes a maximum matching with Hopcroft–Karp (O(E·√V)).
pub fn maximum_matching(g: &Bipartite) -> Matching {
    const INF: u32 = u32::MAX;
    let (n, m) = (g.left_count, g.right_count);
    let mut left_match: Vec<Option<usize>> = vec![None; n];
    let mut right_match: Vec<Option<usize>> = vec![None; m];
    let mut dist = vec![INF; n];

    loop {
        // BFS layers from free left vertices.
        let mut queue = std::collections::VecDeque::new();
        for l in 0..n {
            if left_match[l].is_none() {
                dist[l] = 0;
                queue.push_back(l);
            } else {
                dist[l] = INF;
            }
        }
        let mut found_augmenting = false;
        while let Some(l) = queue.pop_front() {
            for &r in &g.adj[l] {
                match right_match[r] {
                    None => found_augmenting = true,
                    Some(l2) => {
                        if dist[l2] == INF {
                            dist[l2] = dist[l] + 1;
                            queue.push_back(l2);
                        }
                    }
                }
            }
        }
        if !found_augmenting {
            break;
        }
        // DFS augmenting along layered structure.
        fn try_augment(
            l: usize,
            g: &Bipartite,
            dist: &mut Vec<u32>,
            left_match: &mut Vec<Option<usize>>,
            right_match: &mut Vec<Option<usize>>,
        ) -> bool {
            for i in 0..g.adj[l].len() {
                let r = g.adj[l][i];
                let ok = match right_match[r] {
                    None => true,
                    Some(l2) => {
                        dist[l2] == dist[l] + 1 && try_augment(l2, g, dist, left_match, right_match)
                    }
                };
                if ok {
                    left_match[l] = Some(r);
                    right_match[r] = Some(l);
                    return true;
                }
            }
            dist[l] = u32::MAX;
            false
        }
        for l in 0..n {
            if left_match[l].is_none() {
                try_augment(l, g, &mut dist, &mut left_match, &mut right_match);
            }
        }
    }
    Matching { left_match, right_match }
}

/// A Hall violator: a left set `J` with `|J| > |N(J)|`, witnessing that no
/// matching covers the left side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HallViolator {
    /// The violating left vertices.
    pub left: Vec<usize>,
    /// Their joint neighborhood (strictly smaller).
    pub neighborhood: Vec<usize>,
}

impl HallViolator {
    /// Re-checks the violator against the graph.
    pub fn verify(&self, g: &Bipartite) -> bool {
        if self.left.len() <= self.neighborhood.len() {
            return false;
        }
        let nb: std::collections::BTreeSet<usize> = self.neighborhood.iter().copied().collect();
        self.left.iter().all(|&l| g.neighbors(l).iter().all(|r| nb.contains(r)))
    }
}

/// Extracts a Hall violator from a maximum matching that fails to cover
/// the left side (König / alternating reachability: take the left vertices
/// reachable from a free left vertex by alternating paths; their
/// neighborhood is exactly the reachable — and matched — right side).
///
/// Returns `None` when the matching covers the left side.
pub fn hall_violator(g: &Bipartite, matching: &Matching) -> Option<HallViolator> {
    let free: Vec<usize> =
        (0..g.left_count).filter(|&l| matching.left_match[l].is_none()).collect();
    if free.is_empty() {
        return None;
    }
    let mut left_seen = vec![false; g.left_count];
    let mut right_seen = vec![false; g.right_count];
    let mut queue: std::collections::VecDeque<usize> = free.iter().copied().collect();
    for &l in &free {
        left_seen[l] = true;
    }
    while let Some(l) = queue.pop_front() {
        for &r in g.neighbors(l) {
            if !right_seen[r] {
                right_seen[r] = true;
                // In a maximum matching every reachable right vertex is
                // matched (else an augmenting path would exist).
                if let Some(l2) = matching.right_match[r] {
                    if !left_seen[l2] {
                        left_seen[l2] = true;
                        queue.push_back(l2);
                    }
                }
            }
        }
    }
    let left: Vec<usize> = (0..g.left_count).filter(|&l| left_seen[l]).collect();
    let neighborhood: Vec<usize> = (0..g.right_count).filter(|&r| right_seen[r]).collect();
    debug_assert!(left.len() > neighborhood.len());
    Some(HallViolator { left, neighborhood })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_matching_found() {
        // K_{3,3} minus nothing: perfect matching exists.
        let mut g = Bipartite::new(3, 3);
        for l in 0..3 {
            for r in 0..3 {
                g.add_edge(l, r);
            }
        }
        let m = maximum_matching(&g);
        assert_eq!(m.size(), 3);
        assert!(m.covers_left());
        assert!(hall_violator(&g, &m).is_none());
    }

    #[test]
    fn hall_violator_extracted() {
        // Three left vertices all adjacent only to right vertex 0.
        let mut g = Bipartite::new(3, 2);
        for l in 0..3 {
            g.add_edge(l, 0);
        }
        let m = maximum_matching(&g);
        assert_eq!(m.size(), 1);
        let v = hall_violator(&g, &m).unwrap();
        assert!(v.verify(&g));
        assert_eq!(v.left.len(), 3);
        assert_eq!(v.neighborhood, vec![0]);
    }

    #[test]
    fn matching_respects_structure() {
        // Path-like: l0-r0, l1-{r0,r1}: matching size 2.
        let mut g = Bipartite::new(2, 2);
        g.add_edge(0, 0);
        g.add_edge(1, 0);
        g.add_edge(1, 1);
        let m = maximum_matching(&g);
        assert_eq!(m.size(), 2);
        assert_eq!(m.left_match[0], Some(0));
        assert_eq!(m.left_match[1], Some(1));
    }

    #[test]
    fn isolated_left_vertex_is_trivial_violator() {
        let mut g = Bipartite::new(2, 1);
        g.add_edge(0, 0);
        let m = maximum_matching(&g);
        let v = hall_violator(&g, &m).unwrap();
        assert!(v.verify(&g));
        // vertex 1 has no neighbors: {1} with N = {} qualifies; the
        // reachability construction may also include the whole component.
        assert!(v.left.contains(&1));
    }

    #[test]
    fn randomized_matching_is_maximum() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..30 {
            let n = rng.gen_range(1..=7);
            let m = rng.gen_range(1..=7);
            let mut g = Bipartite::new(n, m);
            for l in 0..n {
                for r in 0..m {
                    if rng.gen_bool(0.4) {
                        g.add_edge(l, r);
                    }
                }
            }
            let matching = maximum_matching(&g);
            // Brute-force maximum by backtracking.
            fn brute(g: &Bipartite, l: usize, used: &mut Vec<bool>) -> usize {
                if l == g.left_count() {
                    return 0;
                }
                let mut best = brute(g, l + 1, used); // skip l
                for &r in g.neighbors(l) {
                    if !used[r] {
                        used[r] = true;
                        best = best.max(1 + brute(g, l + 1, used));
                        used[r] = false;
                    }
                }
                best
            }
            let mut used = vec![false; m];
            assert_eq!(matching.size(), brute(&g, 0, &mut used));
            // Dichotomy: either covers left or violator verifies.
            match hall_violator(&g, &matching) {
                None => assert!(matching.covers_left()),
                Some(v) => assert!(v.verify(&g)),
            }
        }
    }
}
