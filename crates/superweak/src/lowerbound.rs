//! Theorem 4: the Ω(log* Δ) lower bound for weak 2-coloring on odd-degree
//! graphs, assembled from the superweak pipeline.
//!
//! The proof structure, made executable:
//!
//! 1. A weak-2-coloring algorithm in T rounds yields a superweak
//!    2-coloring algorithm in T+1 rounds (pointer version, §4.6).
//! 2. Each application of Lemma 4 trades one round for an exponential
//!    parameter jump: superweak k in t rounds ⇒ superweak k′ in t−1
//!    rounds, with `k′ ≤ F⁵(k)`, `F(x) = 2^x`, valid while
//!    `Δ ≥ 2^{4^k + 1}`.
//! 3. A 0-round superweak k*-coloring algorithm is impossible whenever
//!    `k* ≤ (Δ−3)/2` (the port-rewiring pigeonhole of §5.2).
//!
//! [`speedup_rounds`] computes how many Lemma 4 steps condition 2 admits
//! for a given Δ, [`zero_round_impossibility`] checks condition 3, and
//! [`weak2_lower_bound`] combines them into the certified round bound,
//! which tests compare against the paper's `(log* Δ − 7)/5` shape.

use crate::tower::Tower;

/// Whether one more Lemma 4 application is valid: `Δ ≥ 2^{4^k + 1}`.
///
/// Exact when `4^k + 1` is numeric (`k ≤ 63`). For tower-sized `k` the
/// *sufficient* condition `F⁴(k) ≤ Δ` is used (`2^{4^k+1} ≤ 2^{2^{2^k}}`
/// for `k ≥ 3`), which can only under-count rounds — sound for a lower
/// bound.
pub fn step_condition(delta: &Tower, k: &Tower) -> bool {
    match k.as_u128().and_then(|kv| 4u128.checked_pow(u32::try_from(kv).ok()?)) {
        Some(four_k) if four_k < u128::MAX => {
            let threshold = Tower::from_u128(four_k + 1).pow2();
            *delta >= threshold
        }
        _ => {
            // Conservative: Δ ≥ 2^2^2^2^k ≥ 2^{4^k+1} for k ≥ 3.
            let threshold = k.pow2_iter(3);
            *delta >= threshold
        }
    }
}

/// The Lemma 4 parameter jump, upper-bounded by `F⁵(k)` as in the proof of
/// Theorem 4 (`k_{i+1} = F⁵(k_i) ≥ 2^{2^{5^k_i}} = k′`).
pub fn next_k(k: &Tower) -> Tower {
    k.pow2_iter(5)
}

/// One row of the Theorem 4 accounting: the state after `round` steps.
#[derive(Debug, Clone)]
pub struct SpeedupStep {
    /// Number of Lemma 4 applications performed so far.
    pub round: usize,
    /// The superweak parameter after those applications.
    pub k: Tower,
}

/// Computes the maximal number of Lemma 4 applications starting from
/// superweak `k₀`-coloring on Δ-regular graphs, with the trace of
/// intermediate parameters.
///
/// Stops either when the degree condition fails or after `cap` steps
/// (guarding against callers passing enormous Δ towers).
pub fn speedup_rounds(delta: &Tower, k0: u128, cap: usize) -> Vec<SpeedupStep> {
    let mut steps = vec![SpeedupStep { round: 0, k: Tower::from_u128(k0) }];
    while steps.len() <= cap {
        let last = steps.last().expect("nonempty");
        if !step_condition(delta, &last.k) {
            break;
        }
        steps.push(SpeedupStep { round: last.round + 1, k: next_k(&last.k) });
    }
    steps
}

/// Witness of the §5.2 endgame: no 0-round (order-invariant) algorithm
/// solves superweak k*-coloring on Δ-regular graphs when Δ is odd and
/// `k* ≤ (Δ−3)/2`.
///
/// The argument, reproduced by [`zero_round_impossibility`]: consider a
/// node whose first `(Δ−1)/2` ports are incoming and the rest outgoing. By
/// pigeonhole two IDs get the same color. The node has at most k*
/// accepting pointers, and since `k* < (Δ−1)/2 ≤ #in, #out`, some in-port
/// *and* some out-port carry no accepting pointer; wiring a demanding
/// pointer of the first node into such a port of the second (same color)
/// invalidates the edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImpossibilityWitness {
    /// The degree.
    pub delta: u128,
    /// The superweak parameter ruled out.
    pub k_star: u128,
    /// Incoming ports of the adversarial view: `(Δ−1)/2`.
    pub in_ports: u128,
    /// Outgoing ports: `(Δ+1)/2`.
    pub out_ports: u128,
}

/// Checks the §5.2 impossibility conditions and returns the witness, or
/// `None` when the argument does not apply (Δ even, or k* too large).
pub fn zero_round_impossibility(k_star: u128, delta: u128) -> Option<ImpossibilityWitness> {
    if delta.is_multiple_of(2) || delta < 3 {
        return None;
    }
    if k_star > (delta - 3) / 2 {
        return None;
    }
    let in_ports = (delta - 1) / 2;
    let out_ports = delta.div_ceil(2);
    // Soundness of the wiring argument: both port classes must exceed k*.
    debug_assert!(in_ports > k_star && out_ports > k_star);
    Some(ImpossibilityWitness { delta, k_star, in_ports, out_ports })
}

/// The certified lower bound of Theorem 4 for weak 2-coloring on
/// Δ-regular odd-degree graphs: the number of rounds `T` such that any
/// `T`-round weak-2-coloring algorithm would, after the +1 pointer round
/// and `T+1` Lemma 4 steps, yield an impossible 0-round superweak
/// k*-coloring algorithm.
///
/// Returns `(T, k_star)` where `k_star` is the final parameter (as a
/// [`Tower`]), or `None` if even one application is impossible (tiny Δ).
///
/// The paper's Theorem 4 shows `T ≥ (log* Δ − 7)/5`; tests verify this
/// shape across a sweep of Δ.
pub fn weak2_lower_bound(delta: &Tower) -> Option<(usize, Tower)> {
    // Steps from k₀ = 2; each valid step is one round eliminated. The
    // pointer-version conversion costs one round, so a chain of s
    // applications rules out algorithms of T = s − 1 rounds, provided the
    // final k* still satisfies the 0-round impossibility k* ≤ (Δ−3)/2.
    // The paper guarantees k* ≤ log Δ ≤ (Δ−3)/2 for Δ > 16.
    if *delta <= Tower::from_u128(16) {
        // The paper's endgame needs Δ > 16 (so that log Δ ≤ (Δ−3)/2).
        return None;
    }
    let cap = delta.log_star() as usize + 2;
    let steps = speedup_rounds(delta, 2, cap);
    // Impossibility requires the final parameter k* ≤ log Δ ≤ (Δ−3)/2;
    // keep the longest prefix of the chain whose endpoint obeys it (each
    // dropped step costs one round; dropping is sound for a lower bound).
    let log_delta = delta.log2()?;
    let (s, k_star) = steps
        .iter()
        .skip(1)
        .filter(|st| st.k <= log_delta)
        .map(|st| (st.round, st.k.clone()))
        .next_back()?;
    if s == 0 {
        return None;
    }
    Some((s - 1, k_star))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_condition_matches_paper_threshold() {
        // k = 2: threshold 2^17.
        let k2 = Tower::from_u128(2);
        assert!(step_condition(&Tower::from_u128(1 << 17), &k2));
        assert!(!step_condition(&Tower::from_u128((1 << 17) - 1), &k2));
        // k = 3: threshold 2^65.
        let k3 = Tower::from_u128(3);
        assert!(step_condition(&Tower::from_u128(1 << 65), &k3));
        assert!(!step_condition(&Tower::from_u128(u64::MAX as u128), &k3));
    }

    #[test]
    fn next_k_is_five_exponentials() {
        let k1 = next_k(&Tower::from_u128(2));
        // F⁵(2) = 2^2^2^2^4 = 2^2^65536.
        assert_eq!(k1, Tower::from_u128(65536).pow2().pow2());
        assert_eq!(k1.log_star(), Tower::from_u128(2).log_star() + 5);
    }

    #[test]
    fn speedup_rounds_growth() {
        // Δ = 2^17: exactly one application (k jumps to 2^2^65536,
        // hopelessly beyond the next threshold).
        let steps = speedup_rounds(&Tower::from_u128(1 << 17), 2, 100);
        assert_eq!(steps.last().unwrap().round, 1);
        // Δ = 2↑↑7: log*(Δ) = 7; a couple of applications fit.
        let big = Tower::tower_of_twos(12);
        let steps = speedup_rounds(&big, 2, 100);
        assert!(steps.last().unwrap().round >= 2, "{steps:?}");
    }

    #[test]
    fn rounds_grow_like_log_star_over_5() {
        // Shape check of Theorem 4: rounds(Δ) ≥ (log*Δ − 7)/5 and rounds
        // increase without bound along a tower sweep.
        let mut prev = 0usize;
        for h in [6u32, 12, 18, 24, 40, 60] {
            let delta = Tower::tower_of_twos(h);
            let steps = speedup_rounds(&delta, 2, 1000);
            let rounds = steps.last().unwrap().round;
            let log_star = delta.log_star() as isize;
            assert!(
                rounds as isize >= (log_star - 7) / 5,
                "h={h}: rounds={rounds}, log*={log_star}"
            );
            assert!(rounds >= prev, "monotone in Δ");
            prev = rounds;
        }
        assert!(prev >= 8, "the sweep should reach several rounds, got {prev}");
    }

    #[test]
    fn impossibility_witness_conditions() {
        // Δ = 17, k* ≤ 7.
        let w = zero_round_impossibility(7, 17).unwrap();
        assert_eq!(w.in_ports, 8);
        assert_eq!(w.out_ports, 9);
        assert!(w.in_ports > w.k_star && w.out_ports > w.k_star);
        // k* too large.
        assert!(zero_round_impossibility(8, 17).is_none());
        // Even degree: the argument needs odd Δ.
        assert!(zero_round_impossibility(2, 16).is_none());
        assert!(zero_round_impossibility(0, 1).is_none());
    }

    #[test]
    fn weak2_lower_bound_positive_for_large_delta() {
        // Δ = 2^17 admits one application ⇒ bound T ≥ 0 only; bigger Δ
        // gives positive bounds.
        let (t, k_star) = weak2_lower_bound(&Tower::tower_of_twos(14)).unwrap();
        assert!(t >= 1, "t={t}");
        assert!(k_star <= Tower::tower_of_twos(14).log2().unwrap());
        // Tiny Δ: no bound.
        assert!(weak2_lower_bound(&Tower::from_u128(16)).is_none());
    }
}
