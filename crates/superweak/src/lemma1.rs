//! Lemma 1: the dominant element P∞ of a Π'₁ node output.
//!
//! For `Δ ≥ 2^{4^k + 1}`, every `Q ∈ h₁(Δ)` contains a unique element P∞
//! with multiplicity at least `Δ − 2^{4^k}` which moreover contains the
//! all-ones trit sequence. This module locates that element (and reports
//! precisely which part of the structure is missing when `Q` is not of the
//! promised shape — useful both as a sanity check and as a fast refutation
//! of `Q ∈ h₁(Δ)`).

use crate::h1::NodeOutput;
use crate::tower::Tower;
use std::fmt;

/// The multiplicity slack `2^{4^k}` of Lemma 1 (P∞ has multiplicity at
/// least `Δ − 2^{4^k}`), as an exact [`Tower`].
pub fn multiplicity_slack(k: usize) -> Tower {
    match 4u128.checked_pow(k as u32) {
        // 2^(4^k) with a numeric exponent.
        Some(e) => Tower::from_u128(e).pow2(),
        // k ≥ 64: 4^k = 2^(2k) itself needs a tower level.
        None => Tower::from_u128(2 * k as u128).pow2().pow2(),
    }
}

/// The degree requirement `Δ ≥ 2^{4^k + 1}` of Lemma 1, as an exact
/// [`Tower`] (for `k ≤ 63`; larger k exceed any explicit representation
/// and are handled by [`crate::lowerbound`]'s conservative tower bound).
pub fn delta_requirement(k: usize) -> Option<Tower> {
    let four_k = 4u128.checked_pow(k as u32)?;
    Some(Tower::from_u128(four_k.checked_add(1)?).pow2())
}

/// Ways in which a node output can fail Lemma 1's promised structure.
///
/// Any of these certifies that either the hypotheses were unmet (degree too
/// small) or `Q ∉ h₁(Δ)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lemma1Error {
    /// `Δ < 2^{4^k + 1}` — the lemma's hypothesis fails.
    DegreeTooSmall {
        /// The output's Δ.
        delta: usize,
        /// The required minimum.
        required: Tower,
    },
    /// No element reaches multiplicity `Δ − 2^{4^k}`.
    NoDominantElement,
    /// Two elements reach the threshold (possible only at the boundary
    /// `Δ = 2^{4^k+1}`); Lemma 1 promises uniqueness for `Q ∈ h₁(Δ)`, so a
    /// tie certifies the structure is absent.
    NotUnique,
    /// The dominant element lacks the all-ones sequence.
    MissingAllOnes,
}

impl fmt::Display for Lemma1Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lemma1Error::DegreeTooSmall { delta, required } => {
                write!(f, "degree {delta} below the Lemma 1 requirement {required}")
            }
            Lemma1Error::NoDominantElement => {
                write!(f, "no element has multiplicity at least Δ − 2^(4^k)")
            }
            Lemma1Error::NotUnique => {
                write!(f, "two elements reach the Lemma 1 multiplicity threshold")
            }
            Lemma1Error::MissingAllOnes => {
                write!(f, "the dominant element does not contain 11…1")
            }
        }
    }
}

impl std::error::Error for Lemma1Error {}

/// Locates P∞ in a node output: the unique set id with multiplicity
/// ≥ `Δ − 2^{4^k}` containing the all-ones sequence.
///
/// Uniqueness is automatic once the multiplicity threshold exceeds Δ/2,
/// which the degree requirement guarantees.
///
/// # Errors
///
/// Returns a [`Lemma1Error`] describing the missing structure.
pub fn find_p_infinity(q: &NodeOutput) -> Result<u32, Lemma1Error> {
    let k = q.k();
    let delta = q.delta();
    let required = delta_requirement(k).unwrap_or_else(|| {
        // k ≥ 64: any explicit Δ (a usize) is below the requirement.
        Tower::from_u128(u128::MAX).pow2()
    });
    if Tower::from_u128(delta as u128) < required {
        return Err(Lemma1Error::DegreeTooSmall { delta, required });
    }
    let slack = multiplicity_slack(k)
        .as_u128()
        .expect("k ≤ 63 after the degree check, so the slack is numeric");
    let threshold = (delta as u128).saturating_sub(slack);
    let mult = q.multiplicities();
    let mut qualifying = mult.iter().enumerate().filter(|&(_, &m)| m as u128 >= threshold);
    let dominant =
        qualifying.next().map(|(ix, _)| ix as u32).ok_or(Lemma1Error::NoDominantElement)?;
    if qualifying.next().is_some() {
        return Err(Lemma1Error::NotUnique);
    }
    if !q.distinct_sets()[dominant as usize].contains_all_ones() {
        return Err(Lemma1Error::MissingAllOnes);
    }
    Ok(dominant)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trit::{TritSeq, TritSet};

    fn t(s: &str) -> TritSeq {
        TritSeq::new(s.bytes().map(|b| b - b'0').collect()).unwrap()
    }

    /// k=2 structured output: P∞ dominant, a few exotic ports.
    fn structured(delta: usize, exotic: usize) -> NodeOutput {
        let p_inf = TritSet::new([t("11"), t("22"), t("21"), t("12")]);
        let other = TritSet::new([t("02"), t("20")]);
        NodeOutput::from_groups([(p_inf, delta - exotic), (other, exotic)])
    }

    #[test]
    fn slack_and_requirement_values() {
        // k=2: 2^{4^2} = 2^16, requirement 2^17.
        assert_eq!(multiplicity_slack(2).as_u128(), Some(1 << 16));
        assert_eq!(delta_requirement(2).unwrap().as_u128(), Some(1 << 17));
        // k=3: 2^64 slack, 2^65 requirement (both fit in u128).
        assert_eq!(multiplicity_slack(3).as_u128(), Some(1 << 64));
        assert_eq!(delta_requirement(3).unwrap().as_u128(), Some(1 << 65));
        // k=64: 4^k no longer fits; the tower form kicks in.
        assert!(multiplicity_slack(64) > Tower::from_u128(u128::MAX));
    }

    #[test]
    fn finds_p_infinity_in_structured_output() {
        let delta = (1usize << 17) + 5;
        let q = structured(delta, 100);
        let p = find_p_infinity(&q).unwrap();
        assert!(q.distinct_sets()[p as usize].contains_all_ones());
        assert!(q.multiplicities()[p as usize] >= delta - (1 << 16));
    }

    #[test]
    fn degree_too_small_rejected() {
        let q = structured(64, 4);
        assert!(matches!(find_p_infinity(&q), Err(Lemma1Error::DegreeTooSmall { .. })));
    }

    #[test]
    fn missing_all_ones_detected() {
        let delta = (1usize << 17) + 5;
        let bad = TritSet::new([t("22"), t("21")]); // no 11
        let other = TritSet::new([t("02")]);
        let q = NodeOutput::from_groups([(bad, delta - 3), (other, 3)]);
        assert_eq!(find_p_infinity(&q), Err(Lemma1Error::MissingAllOnes));
    }

    #[test]
    fn no_dominant_element_detected() {
        // Strictly above the boundary: no element reaches Δ − 2^16.
        let delta = (1usize << 17) + 4;
        let a = TritSet::new([t("11")]);
        let b = TritSet::new([t("22")]);
        let q = NodeOutput::from_groups([(a, delta / 2), (b, delta / 2)]);
        assert_eq!(find_p_infinity(&q), Err(Lemma1Error::NoDominantElement));
    }

    #[test]
    fn boundary_tie_detected() {
        // At Δ = 2^{17} exactly, two halves both reach the threshold.
        let delta = 1usize << 17;
        let a = TritSet::new([t("11")]);
        let b = TritSet::new([t("22")]);
        let q = NodeOutput::from_groups([(a, delta / 2), (b, delta / 2)]);
        assert_eq!(find_p_infinity(&q), Err(Lemma1Error::NotUnique));
    }
}
