//! Trit sequences: the equivalent description of Π'_{1/2} (§4.6, §5.1).
//!
//! After one half-step on superweak k-coloring, the usable labels are in
//! bijection with *trit sequences* of length k: position `c` records how
//! many of `{(c,→), (c,()…}`-style elements the set-label contains —
//! `0 ↦ {(c,()}`, `1 ↦ {(c,(), (c,•)}`, `2 ↦ {(c,→), (c,(), (c,•)}`.
//! The derived edge constraint becomes "tritwise sums to 22…2"
//! (complementarity) and the node constraint becomes a counting condition
//! per position.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A sequence of trits (values 0, 1, 2) of length `k`.
///
/// ```
/// use roundelim_superweak::trit::TritSeq;
/// let a = TritSeq::new(vec![0, 2]).unwrap();
/// let b = TritSeq::new(vec![2, 0]).unwrap();
/// assert!(a.complementary(&b)); // 0+2 = 2, 2+0 = 2
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TritSeq(Vec<u8>);

impl TritSeq {
    /// Creates a trit sequence; every entry must be 0, 1, or 2.
    pub fn new(trits: Vec<u8>) -> Option<TritSeq> {
        if trits.iter().all(|&t| t <= 2) {
            Some(TritSeq(trits))
        } else {
            None
        }
    }

    /// The all-ones sequence `11…1` of length `k` (the paper's neutral
    /// element, always contained in P∞ by Lemma 1).
    pub fn all_ones(k: usize) -> TritSeq {
        TritSeq(vec![1; k])
    }

    /// The all-twos sequence `22…2` of length `k`.
    pub fn all_twos(k: usize) -> TritSeq {
        TritSeq(vec![2; k])
    }

    /// Length of the sequence (the color-count parameter k).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the sequence has length 0.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The trit at `position` (0-based).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range positions.
    pub fn trit(&self, position: usize) -> u8 {
        self.0[position]
    }

    /// The raw trits.
    pub fn trits(&self) -> &[u8] {
        &self.0
    }

    /// Whether `self + other = 22…2` tritwise (the paper's `g_{1/2}` edge
    /// condition).
    pub fn complementary(&self, other: &TritSeq) -> bool {
        self.0.len() == other.0.len() && self.0.iter().zip(&other.0).all(|(&a, &b)| a + b == 2)
    }

    /// The unique complementary sequence (`2 - t` at each position).
    #[must_use]
    pub fn complement(&self) -> TritSeq {
        TritSeq(self.0.iter().map(|&t| 2 - t).collect())
    }

    /// Encodes the sequence as a base-3 number (for compact indexing).
    pub fn index(&self) -> usize {
        self.0.iter().fold(0usize, |acc, &t| acc * 3 + t as usize)
    }

    /// Decodes a base-3 index back into a sequence of length `k`.
    pub fn from_index(mut ix: usize, k: usize) -> TritSeq {
        let mut v = vec![0u8; k];
        for slot in v.iter_mut().rev() {
            *slot = (ix % 3) as u8;
            ix /= 3;
        }
        TritSeq(v)
    }
}

impl fmt::Display for TritSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &t in &self.0 {
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

/// Enumerates all `3^k` trit sequences of length `k` in index order.
///
/// # Panics
///
/// Panics for `k > 12` (3^12 ≈ 531k sequences is the supported ceiling).
pub fn all_trit_seqs(k: usize) -> Vec<TritSeq> {
    assert!(k <= 12, "all_trit_seqs supports k ≤ 12");
    (0..3usize.pow(k as u32)).map(|ix| TritSeq::from_index(ix, k)).collect()
}

/// A set of trit sequences — one label of the derived problem Π'₁ (§5.1).
///
/// Stored as a sorted, deduplicated vector; two `TritSet`s are equal iff
/// they contain the same sequences.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TritSet(Vec<TritSeq>);

impl TritSet {
    /// Creates a set from sequences (sorted and deduplicated internally).
    pub fn new<I: IntoIterator<Item = TritSeq>>(seqs: I) -> TritSet {
        let mut v: Vec<TritSeq> = seqs.into_iter().collect();
        v.sort();
        v.dedup();
        TritSet(v)
    }

    /// Number of sequences in the set.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, t: &TritSeq) -> bool {
        self.0.binary_search(t).is_ok()
    }

    /// Whether the set contains `11…1` (of the set's sequence length).
    pub fn contains_all_ones(&self) -> bool {
        self.0.first().is_some_and(|t| self.contains(&TritSeq::all_ones(t.len())))
    }

    /// Iterates over the sequences in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &TritSeq> + '_ {
        self.0.iter()
    }

    /// Inserts a sequence, returning a new set (sets are immutable values).
    #[must_use]
    pub fn with(&self, t: TritSeq) -> TritSet {
        let mut v = self.0.clone();
        v.push(t);
        TritSet::new(v)
    }

    /// The paper's `g₁` edge compatibility: some `w ∈ self`, `x ∈ other`
    /// are tritwise complementary.
    pub fn g1_compatible(&self, other: &TritSet) -> bool {
        self.0.iter().any(|w| other.contains(&w.complement()))
    }
}

impl fmt::Display for TritSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_trits() {
        assert!(TritSeq::new(vec![0, 1, 2]).is_some());
        assert!(TritSeq::new(vec![0, 3]).is_none());
    }

    #[test]
    fn complementarity() {
        let a = TritSeq::new(vec![0, 1, 2]).unwrap();
        let b = TritSeq::new(vec![2, 1, 0]).unwrap();
        assert!(a.complementary(&b));
        assert_eq!(a.complement(), b);
        assert!(!a.complementary(&a));
        let ones = TritSeq::all_ones(3);
        assert!(ones.complementary(&ones)); // 1+1 = 2 everywhere
    }

    #[test]
    fn index_round_trip() {
        for k in 1..=4 {
            for (ix, t) in all_trit_seqs(k).iter().enumerate() {
                assert_eq!(t.index(), ix);
                assert_eq!(&TritSeq::from_index(ix, k), t);
            }
        }
        assert_eq!(all_trit_seqs(2).len(), 9);
    }

    #[test]
    fn tritset_semantics() {
        let k = 2;
        let s = TritSet::new([TritSeq::all_ones(k), TritSeq::all_ones(k), TritSeq::all_twos(k)]);
        assert_eq!(s.len(), 2); // deduplicated
        assert!(s.contains_all_ones());
        let t = TritSet::new([TritSeq::new(vec![0, 0]).unwrap()]);
        assert!(!t.contains_all_ones());
        // g1 compatibility: {00} vs {22}: complementary ✓
        let u = TritSet::new([TritSeq::all_twos(k)]);
        assert!(t.g1_compatible(&u));
        assert!(!t.g1_compatible(&t));
        // all-ones is self-complementary
        assert!(s.g1_compatible(&s));
    }

    #[test]
    fn display_formats() {
        let t = TritSeq::new(vec![0, 2, 1]).unwrap();
        assert_eq!(t.to_string(), "021");
        let s = TritSet::new([t.clone()]);
        assert_eq!(s.to_string(), "{021}");
    }
}
