//! Port-numbered graphs: the substrate of the §3 model.
//!
//! A [`PortGraph`] is a simple undirected graph where each node's incident
//! edges are numbered 1…deg(v) (0-based internally). Port numberings are
//! adversarial in the model; the generators in [`crate::generate`] produce
//! arbitrary (construction-order) numberings and tests permute them.

use std::collections::{HashSet, VecDeque};

/// One endpoint of an edge as seen from a node: the neighbor and the
/// neighbor's port number for the connecting edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortTarget {
    /// The neighbor node id.
    pub node: usize,
    /// The port index of this edge at the neighbor.
    pub port: usize,
}

/// A simple undirected graph with per-node port numbering.
///
/// ```
/// use roundelim_sim::graph::PortGraph;
/// let g = PortGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
/// assert_eq!(g.degree(1), 2);
/// assert!(g.is_regular(2));
/// assert_eq!(g.girth(), Some(4));
/// ```
#[derive(Debug, Clone)]
pub struct PortGraph {
    adj: Vec<Vec<PortTarget>>,
}

impl PortGraph {
    /// Builds a graph from an edge list. Ports are assigned in edge-list
    /// order. Returns `None` on self-loops, duplicate edges, or
    /// out-of-range endpoints.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Option<PortGraph> {
        let mut adj: Vec<Vec<PortTarget>> = vec![Vec::new(); n];
        let mut seen: HashSet<(usize, usize)> = HashSet::new();
        for &(u, v) in edges {
            if u >= n || v >= n || u == v {
                return None;
            }
            let key = (u.min(v), u.max(v));
            if !seen.insert(key) {
                return None;
            }
            let pu = adj[u].len();
            let pv = adj[v].len();
            adj[u].push(PortTarget { node: v, port: pv });
            adj[v].push(PortTarget { node: u, port: pu });
        }
        Some(PortGraph { adj })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Degree of a node.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Whether all nodes have degree `d`.
    pub fn is_regular(&self, d: usize) -> bool {
        self.adj.iter().all(|a| a.len() == d)
    }

    /// Maximum degree Δ.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The neighbor reached through `port` of `v`.
    pub fn neighbor(&self, v: usize, port: usize) -> PortTarget {
        self.adj[v][port]
    }

    /// All port targets of `v`, in port order.
    pub fn ports(&self, v: usize) -> &[PortTarget] {
        &self.adj[v]
    }

    /// Iterates over edges as `(u, port_at_u, v, port_at_v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, usize, usize)> + '_ {
        self.adj.iter().enumerate().flat_map(move |(u, targets)| {
            targets.iter().enumerate().filter_map(move |(pu, t)| {
                if u < t.node {
                    Some((u, pu, t.node, t.port))
                } else {
                    None
                }
            })
        })
    }

    /// The girth (length of a shortest cycle), or `None` for forests.
    ///
    /// BFS from every node; O(V·E) — intended for the modest test graphs.
    pub fn girth(&self) -> Option<usize> {
        let n = self.node_count();
        let mut best: Option<usize> = None;
        for root in 0..n {
            let mut dist = vec![usize::MAX; n];
            let mut parent = vec![usize::MAX; n];
            dist[root] = 0;
            let mut queue = VecDeque::from([root]);
            while let Some(u) = queue.pop_front() {
                for t in &self.adj[u] {
                    let v = t.node;
                    if dist[v] == usize::MAX {
                        dist[v] = dist[u] + 1;
                        parent[v] = u;
                        queue.push_back(v);
                    } else if parent[u] != v {
                        // Cycle through root candidate.
                        let len = dist[u] + dist[v] + 1;
                        if best.is_none_or(|b| len < b) {
                            best = Some(len);
                        }
                    }
                }
            }
        }
        best
    }

    /// Renumbers the ports of every node by the given permutations
    /// (`perms[v]` maps new port index → old port index). Used to realize
    /// adversarial port numberings in tests.
    ///
    /// # Panics
    ///
    /// Panics if a permutation has the wrong length or is not a bijection.
    #[must_use]
    pub fn with_port_permutations(&self, perms: &[Vec<usize>]) -> PortGraph {
        assert_eq!(perms.len(), self.node_count());
        let mut new_adj: Vec<Vec<PortTarget>> = Vec::with_capacity(self.adj.len());
        // old→new port maps
        let inverse: Vec<Vec<usize>> = perms
            .iter()
            .enumerate()
            .map(|(v, p)| {
                assert_eq!(p.len(), self.degree(v), "permutation length mismatch at node {v}");
                let mut inv = vec![usize::MAX; p.len()];
                for (new, &old) in p.iter().enumerate() {
                    assert!(inv[old] == usize::MAX, "not a permutation at node {v}");
                    inv[old] = new;
                }
                inv
            })
            .collect();
        for (v, perm) in perms.iter().enumerate() {
            let mut row = Vec::with_capacity(perm.len());
            for &old in perm {
                let t = self.adj[v][old];
                row.push(PortTarget { node: t.node, port: inverse[t.node][t.port] });
            }
            new_adj.push(row);
        }
        PortGraph { adj: new_adj }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect_cycle() {
        let g = PortGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 5);
        assert!(g.is_regular(2));
        assert_eq!(g.girth(), Some(5));
        // port symmetry: following a port and coming back works
        for v in 0..5 {
            for p in 0..g.degree(v) {
                let t = g.neighbor(v, p);
                let back = g.neighbor(t.node, t.port);
                assert_eq!(back.node, v);
                assert_eq!(back.port, p);
            }
        }
    }

    #[test]
    fn rejects_malformed_edge_lists() {
        assert!(PortGraph::from_edges(3, &[(0, 0)]).is_none()); // self loop
        assert!(PortGraph::from_edges(3, &[(0, 1), (1, 0)]).is_none()); // duplicate
        assert!(PortGraph::from_edges(3, &[(0, 5)]).is_none()); // out of range
    }

    #[test]
    fn girth_of_tree_is_none() {
        let g = PortGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(g.girth(), None);
        assert_eq!(g.max_degree(), 3);
        assert!(!g.is_regular(3));
    }

    #[test]
    fn girth_of_k4_is_three() {
        let g =
            PortGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
        assert_eq!(g.girth(), Some(3));
        assert!(g.is_regular(3));
    }

    #[test]
    fn port_permutation_preserves_structure() {
        let g = PortGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let perms: Vec<Vec<usize>> = (0..4).map(|v| (0..g.degree(v)).rev().collect()).collect();
        let h = g.with_port_permutations(&perms);
        assert_eq!(h.edge_count(), g.edge_count());
        assert_eq!(h.girth(), g.girth());
        for v in 0..4 {
            for p in 0..h.degree(v) {
                let t = h.neighbor(v, p);
                let back = h.neighbor(t.node, t.port);
                assert_eq!((back.node, back.port), (v, p));
            }
        }
    }

    #[test]
    fn edges_iterator_is_complete() {
        let g = PortGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es.len(), 3);
        for (u, pu, v, pv) in es {
            assert_eq!(g.neighbor(u, pu).node, v);
            assert_eq!(g.neighbor(v, pv).node, u);
        }
    }
}
