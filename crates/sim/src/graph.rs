//! Port-numbered graphs: the substrate of the §3 model.
//!
//! A [`PortGraph`] is a simple undirected graph where each node's incident
//! edges are numbered 1…deg(v) (0-based internally). Port numberings are
//! adversarial in the model; the generators in [`crate::generate`] produce
//! arbitrary (construction-order) numberings and tests permute them.
//!
//! The representation is a flat CSR (compressed sparse row) layout: one
//! `targets` arena of [`PortTarget`]s indexed by a per-node `offsets`
//! table, with `u32` node ids. This keeps a million-node Δ-regular graph
//! in two contiguous allocations (≈8 bytes per port) and makes the
//! streaming checker and the flat runner cache-friendly. Port semantics
//! are identical to the previous nested `Vec<Vec<PortTarget>>` layout:
//! ports are assigned in edge-list order with reciprocal bookkeeping, a
//! property `tests/properties.rs` pins against an edge-list oracle.

use std::collections::VecDeque;

/// One endpoint of an edge as seen from a node: the neighbor and the
/// neighbor's port number for the connecting edge. Fields are `u32` so the
/// CSR arena stays at 8 bytes per port; cast to `usize` for indexing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortTarget {
    /// The neighbor node id.
    pub node: u32,
    /// The port index of this edge at the neighbor.
    pub port: u32,
}

impl PortTarget {
    /// The neighbor node id as a `usize` index.
    #[inline]
    pub fn node_ix(&self) -> usize {
        self.node as usize
    }

    /// The neighbor-side port as a `usize` index.
    #[inline]
    pub fn port_ix(&self) -> usize {
        self.port as usize
    }
}

/// A simple undirected graph with per-node port numbering, stored as CSR.
///
/// ```
/// use roundelim_sim::graph::PortGraph;
/// let g = PortGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
/// assert_eq!(g.degree(1), 2);
/// assert!(g.is_regular(2));
/// assert_eq!(g.girth(), Some(4));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortGraph {
    /// `offsets[v]..offsets[v + 1]` indexes `targets` for node `v`;
    /// length `node_count + 1`.
    offsets: Vec<u32>,
    /// Flat arena of port targets, all nodes back to back.
    targets: Vec<PortTarget>,
}

impl PortGraph {
    /// Builds a graph from an edge list. Ports are assigned in edge-list
    /// order. Returns `None` on self-loops, duplicate edges, or
    /// out-of-range endpoints.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Option<PortGraph> {
        if n > u32::MAX as usize {
            return None;
        }
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(edges.len());
        for &(u, v) in edges {
            if u >= n || v >= n {
                return None;
            }
            pairs.push((u as u32, v as u32));
        }
        Self::from_edge_pairs(n, &pairs)
    }

    /// Builds a graph from a `u32` edge list without an intermediate
    /// conversion pass — the entry point the million-node generators use.
    /// Same validation and port semantics as [`PortGraph::from_edges`].
    pub fn from_edge_pairs(n: usize, edges: &[(u32, u32)]) -> Option<PortGraph> {
        if n > u32::MAX as usize || edges.len() > (u32::MAX as usize) / 2 {
            return None;
        }
        let nu = n as u32;
        // Validate endpoints and detect duplicates by sorting packed edge
        // keys — O(m log m) with no hash table, and parallel-friendly.
        let mut keys: Vec<u64> = Vec::with_capacity(edges.len());
        for &(u, v) in edges {
            if u >= nu || v >= nu || u == v {
                return None;
            }
            let (a, b) = if u < v { (u, v) } else { (v, u) };
            keys.push((u64::from(a) << 32) | u64::from(b));
        }
        keys.sort_unstable();
        if keys.windows(2).any(|w| w[0] == w[1]) {
            return None;
        }
        drop(keys);

        // Degree pass → prefix sums → placement pass. Ports grow in
        // edge-list order at both endpoints, exactly as the nested-Vec
        // `push` did.
        let mut degree = vec![0u32; n];
        for &(u, v) in edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc: u32 = 0;
        offsets.push(0);
        for &d in &degree {
            acc = acc.checked_add(d)?;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![PortTarget { node: 0, port: 0 }; acc as usize];
        for &(u, v) in edges {
            let (ui, vi) = (u as usize, v as usize);
            let pu = cursor[ui] - offsets[ui];
            let pv = cursor[vi] - offsets[vi];
            targets[cursor[ui] as usize] = PortTarget { node: v, port: pv };
            targets[cursor[vi] as usize] = PortTarget { node: u, port: pu };
            cursor[ui] += 1;
            cursor[vi] += 1;
        }
        Some(PortGraph { offsets, targets })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// Total number of ports (`2 · edge_count`); the length of every flat
    /// per-port arena aligned with this graph.
    pub fn total_ports(&self) -> usize {
        self.targets.len()
    }

    /// Index of `v`'s port 0 in flat per-port arenas (see
    /// [`PortGraph::total_ports`]).
    #[inline]
    pub fn port_offset(&self, v: usize) -> usize {
        self.offsets[v] as usize
    }

    /// Degree of a node.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Whether all nodes have degree `d`.
    pub fn is_regular(&self, d: usize) -> bool {
        (0..self.node_count()).all(|v| self.degree(v) == d)
    }

    /// Maximum degree Δ.
    pub fn max_degree(&self) -> usize {
        (0..self.node_count()).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// The neighbor reached through `port` of `v`.
    #[inline]
    pub fn neighbor(&self, v: usize, port: usize) -> PortTarget {
        self.targets[self.offsets[v] as usize + port]
    }

    /// All port targets of `v`, in port order.
    #[inline]
    pub fn ports(&self, v: usize) -> &[PortTarget] {
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Iterates over edges as `(u, port_at_u, v, port_at_v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, usize, usize)> + '_ {
        (0..self.node_count()).flat_map(move |u| {
            self.ports(u).iter().enumerate().filter_map(move |(pu, t)| {
                if u < t.node_ix() {
                    Some((u, pu, t.node_ix(), t.port_ix()))
                } else {
                    None
                }
            })
        })
    }

    /// The nodes reachable from `root` in BFS order (neighbors explored in
    /// port order). Part of the pinned port semantics: property tests
    /// compare this against the edge-list oracle.
    pub fn bfs_order(&self, root: usize) -> Vec<u32> {
        let n = self.node_count();
        assert!(root < n, "bfs root out of range");
        let mut seen = vec![false; n];
        let mut order = Vec::new();
        let mut queue = VecDeque::from([root as u32]);
        seen[root] = true;
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for t in self.ports(u as usize) {
                if !seen[t.node_ix()] {
                    seen[t.node_ix()] = true;
                    queue.push_back(t.node);
                }
            }
        }
        order
    }

    /// The girth (length of a shortest cycle), or `None` for forests.
    ///
    /// BFS from every node; O(V·E) — intended for the modest test graphs.
    pub fn girth(&self) -> Option<usize> {
        let n = self.node_count();
        let mut best: Option<usize> = None;
        for root in 0..n {
            let mut dist = vec![u32::MAX; n];
            let mut parent = vec![u32::MAX; n];
            dist[root] = 0;
            let mut queue = VecDeque::from([root as u32]);
            while let Some(u) = queue.pop_front() {
                let ui = u as usize;
                for t in self.ports(ui) {
                    let vi = t.node_ix();
                    if dist[vi] == u32::MAX {
                        dist[vi] = dist[ui] + 1;
                        parent[vi] = u;
                        queue.push_back(t.node);
                    } else if parent[ui] != t.node {
                        // Cycle through root candidate.
                        let len = (dist[ui] + dist[vi] + 1) as usize;
                        if best.is_none_or(|b| len < b) {
                            best = Some(len);
                        }
                    }
                }
            }
        }
        best
    }

    /// Renumbers the ports of every node by the given permutations
    /// (`perms[v]` maps new port index → old port index). Used to realize
    /// adversarial port numberings in tests.
    ///
    /// # Panics
    ///
    /// Panics if a permutation has the wrong length or is not a bijection.
    #[must_use]
    pub fn with_port_permutations(&self, perms: &[Vec<usize>]) -> PortGraph {
        assert_eq!(perms.len(), self.node_count());
        // old→new port maps
        let inverse: Vec<Vec<u32>> = perms
            .iter()
            .enumerate()
            .map(|(v, p)| {
                assert_eq!(p.len(), self.degree(v), "permutation length mismatch at node {v}");
                let mut inv = vec![u32::MAX; p.len()];
                for (new, &old) in p.iter().enumerate() {
                    assert!(inv[old] == u32::MAX, "not a permutation at node {v}");
                    inv[old] = new as u32;
                }
                inv
            })
            .collect();
        let mut targets = Vec::with_capacity(self.targets.len());
        for (v, perm) in perms.iter().enumerate() {
            for &old in perm {
                let t = self.neighbor(v, old);
                targets.push(PortTarget { node: t.node, port: inverse[t.node_ix()][t.port_ix()] });
            }
        }
        PortGraph { offsets: self.offsets.clone(), targets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect_cycle() {
        let g = PortGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.total_ports(), 10);
        assert!(g.is_regular(2));
        assert_eq!(g.girth(), Some(5));
        // port symmetry: following a port and coming back works
        for v in 0..5 {
            for p in 0..g.degree(v) {
                let t = g.neighbor(v, p);
                let back = g.neighbor(t.node_ix(), t.port_ix());
                assert_eq!(back.node_ix(), v);
                assert_eq!(back.port_ix(), p);
            }
        }
    }

    #[test]
    fn rejects_malformed_edge_lists() {
        assert!(PortGraph::from_edges(3, &[(0, 0)]).is_none()); // self loop
        assert!(PortGraph::from_edges(3, &[(0, 1), (1, 0)]).is_none()); // duplicate
        assert!(PortGraph::from_edges(3, &[(0, 5)]).is_none()); // out of range
        assert!(PortGraph::from_edge_pairs(3, &[(1, 1)]).is_none());
        assert!(PortGraph::from_edge_pairs(3, &[(0, 1), (1, 0)]).is_none());
    }

    #[test]
    fn girth_of_tree_is_none() {
        let g = PortGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(g.girth(), None);
        assert_eq!(g.max_degree(), 3);
        assert!(!g.is_regular(3));
    }

    #[test]
    fn girth_of_k4_is_three() {
        let g =
            PortGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
        assert_eq!(g.girth(), Some(3));
        assert!(g.is_regular(3));
    }

    #[test]
    fn port_permutation_preserves_structure() {
        let g = PortGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let perms: Vec<Vec<usize>> = (0..4).map(|v| (0..g.degree(v)).rev().collect()).collect();
        let h = g.with_port_permutations(&perms);
        assert_eq!(h.edge_count(), g.edge_count());
        assert_eq!(h.girth(), g.girth());
        for v in 0..4 {
            for p in 0..h.degree(v) {
                let t = h.neighbor(v, p);
                let back = h.neighbor(t.node_ix(), t.port_ix());
                assert_eq!((back.node_ix(), back.port_ix()), (v, p));
            }
        }
    }

    #[test]
    fn edges_iterator_is_complete() {
        let g = PortGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es.len(), 3);
        for (u, pu, v, pv) in es {
            assert_eq!(g.neighbor(u, pu).node_ix(), v);
            assert_eq!(g.neighbor(v, pv).node_ix(), u);
        }
    }

    #[test]
    fn bfs_order_follows_ports() {
        // Star with center 0; BFS explores neighbors in port order, which
        // is edge-list order.
        let g = PortGraph::from_edges(4, &[(0, 2), (0, 1), (0, 3)]).unwrap();
        assert_eq!(g.bfs_order(0), vec![0, 2, 1, 3]);
        assert_eq!(g.bfs_order(2), vec![2, 0, 1, 3]);
    }

    #[test]
    fn csr_equals_itself_under_rebuild() {
        let edges = [(0usize, 1), (1, 2), (2, 3), (3, 0), (0, 2)];
        let a = PortGraph::from_edges(4, &edges).unwrap();
        let pairs: Vec<(u32, u32)> = edges.iter().map(|&(u, v)| (u as u32, v as u32)).collect();
        let b = PortGraph::from_edge_pairs(4, &pairs).unwrap();
        assert_eq!(a, b);
    }
}
