//! Deterministic data parallelism for the simulator, on the workspace's
//! shared work-stealing executor ([`roundelim_core::par`]).
//!
//! Everything here computes a pure function of its inputs: work is split
//! into contiguous chunks run as executor tasks and results are consumed
//! in item order, so outputs are **bit-identical for every thread
//! count** — the same discipline the bound engine's closure uses. The
//! `threads` argument follows the engine convention: `0` resolves the
//! `ROUNDELIM_THREADS` environment variable, else all available cores.

use std::sync::Mutex;

/// Resolves a worker-thread count through the workspace-wide convention:
/// explicit option, else `ROUNDELIM_THREADS`, else all available cores.
pub use roundelim_core::par::resolve_threads;

/// Below this many work items a stage runs inline: spawning costs more
/// than the work it would offload.
const PAR_MIN_ITEMS: usize = 4096;

/// Chunks cut per worker: oversubscribing the executor lets stealing
/// absorb per-chunk cost skew (e.g. high-degree regions of a graph).
const OVERSUB: usize = 4;

/// Builds `vec![f(0), f(1), …, f(len - 1)]`, computing disjoint contiguous
/// chunks in place on executor workers. The result depends only on `f`
/// and `len`.
pub fn fill_indexed<T, F>(len: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send + Clone + Default,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1);
    let mut out = vec![T::default(); len];
    if threads == 1 || len < PAR_MIN_ITEMS {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f(i);
        }
        return out;
    }
    let chunk = len.div_ceil(threads * OVERSUB).max(1);
    {
        // Disjoint &mut chunks behind per-task Mutexes, claimed by index —
        // the executor's in-place pattern.
        type Task<'a, T> = Mutex<Option<(usize, &'a mut [T])>>;
        let tasks: Vec<Task<T>> = out
            .chunks_mut(chunk)
            .enumerate()
            .map(|(ci, part)| Mutex::new(Some((ci * chunk, part))))
            .collect();
        roundelim_core::par::par_for_each_index(tasks.len(), threads, |i| {
            let (base, part) = tasks[i].lock().expect("chunk slot").take().expect("claimed once");
            for (j, slot) in part.iter_mut().enumerate() {
                *slot = f(base + j);
            }
        });
    }
    out
}

/// Maps `f` over `0..count`, returning results in index order. Unlike
/// [`fill_indexed`] the result type needs no `Default`; used for per-chunk
/// reductions (the streaming checker's partial reports).
pub fn map_indexed<R, F>(count: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.max(1);
    if threads == 1 || count < 2 {
        return (0..count).map(f).collect();
    }
    let per = count.div_ceil(threads * OVERSUB).max(1);
    let ranges: Vec<(usize, usize)> =
        (0..count.div_ceil(per)).map(|c| (c * per, ((c + 1) * per).min(count))).collect();
    let chunks: Vec<Vec<R>> =
        roundelim_core::par::par_map(&ranges, threads, |&(lo, hi)| (lo..hi).map(&f).collect());
    chunks.into_iter().flatten().collect()
}

/// Sorts key/value pairs: parallel chunk sorts followed by a sequential
/// k-way merge. `Ord` on tuples is total, so the output equals a plain
/// `sort_unstable` for every thread count.
pub fn sort_pairs(mut v: Vec<(u64, u32)>, threads: usize) -> Vec<(u64, u32)> {
    let threads = threads.max(1);
    if threads == 1 || v.len() < PAR_MIN_ITEMS {
        v.sort_unstable();
        return v;
    }
    let chunk = v.len().div_ceil(threads);
    {
        type Task<'a> = Mutex<Option<&'a mut [(u64, u32)]>>;
        let tasks: Vec<Task> = v.chunks_mut(chunk).map(|part| Mutex::new(Some(part))).collect();
        roundelim_core::par::par_for_each_index(tasks.len(), threads, |i| {
            tasks[i].lock().expect("chunk slot").take().expect("claimed once").sort_unstable();
        });
    }
    // k-way merge of the sorted runs (k = threads, so the linear scan per
    // output element is cheap).
    let runs: Vec<&[(u64, u32)]> = v.chunks(chunk).collect();
    let mut cursors = vec![0usize; runs.len()];
    let mut out = Vec::with_capacity(v.len());
    loop {
        let mut best: Option<usize> = None;
        for (r, run) in runs.iter().enumerate() {
            if cursors[r] < run.len() && best.is_none_or(|b| run[cursors[r]] < runs[b][cursors[b]])
            {
                best = Some(r);
            }
        }
        match best {
            Some(r) => {
                out.push(runs[r][cursors[r]]);
                cursors[r] += 1;
            }
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_indexed_matches_sequential() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let seq: Vec<u64> = (0..10_000).map(f).collect();
        for threads in [1, 2, 3, 8] {
            assert_eq!(fill_indexed(10_000, threads, f), seq);
        }
        assert_eq!(fill_indexed(0, 4, f), Vec::<u64>::new());
    }

    #[test]
    fn map_indexed_preserves_order() {
        for threads in [1, 2, 5] {
            let got = map_indexed(17, threads, |i| i * i);
            assert_eq!(got, (0..17).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn sort_pairs_matches_sort_unstable() {
        let mut v: Vec<(u64, u32)> = Vec::new();
        let mut state = 42u64;
        for i in 0..9000u32 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            v.push((state >> 32, i));
        }
        let mut expect = v.clone();
        expect.sort_unstable();
        for threads in [1, 2, 4, 7] {
            assert_eq!(sort_pairs(v.clone(), threads), expect);
        }
    }
}
