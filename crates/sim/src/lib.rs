//! # roundelim-sim
//!
//! A port-numbering-model simulator (§3 of Brandt, PODC 2019) and the
//! **executable Theorem 1** on rings.
//!
//! * [`graph`] — port-numbered graphs in a flat CSR layout (u32 ids) with
//!   girth computation — sized for millions of nodes;
//! * [`generate`] — rings, complete (bipartite) graphs, regular trees,
//!   and deterministic seeded random regular graphs (bit-identical for
//!   every thread count), plus girth rejection and random orientations;
//! * [`par`] — scoped-thread helpers with schedule-independent results;
//! * [`runner`] — the synchronous message-passing executor (row-shaped
//!   and flat/adaptive variants) and the [`runner::Distributed`] trait;
//! * [`checker`] — validates outputs against a `Problem` ("A solves Π"):
//!   a materializing checker for tests and a streaming chunked one for
//!   million-node runs;
//! * [`crossval`] — the sim-vs-bound harness: runs zoo algorithms on huge
//!   instances and cross-checks round counts against `autolb`/`autoub`
//!   certificate verdicts;
//! * [`ring`] — both directions of Theorem 1 as executable constructions
//!   on input-labeled rings;
//! * [`algos`] — Cole–Vishkin 3-coloring (§4.5's upper bound) and an
//!   O(log* n) weak 2-coloring (Theorem 4's upper-bound companion).
//!
//! ```
//! use roundelim_sim::generate::cycle;
//! use roundelim_sim::checker::is_valid;
//! use roundelim_sim::runner::{run, id_inputs};
//! use roundelim_sim::algos::weak2::{WeakTwoColoring, total_rounds};
//! let g = cycle(12);
//! let out = run(&g, &id_inputs(&g), &WeakTwoColoring::for_n(12), total_rounds(12));
//! let p = roundelim_problems::weak::weak_coloring_pointer(2, 2).unwrap();
//! assert!(is_valid(&p, &g, &out));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algos;
pub mod checker;
pub mod crossval;
pub mod generate;
pub mod graph;
pub mod par;
pub mod ring;
pub mod runner;
pub mod tree;
