//! Sim-vs-bound cross-validation: the end-to-end differential test of the
//! whole stack.
//!
//! For each [`CrossvalSpec`] in the zoo registry, the harness
//!
//! 1. instantiates the problem and runs the bound engine (`autolb` /
//!    `autoub`, bounded budget — both certificates are replay-verified by
//!    the engine itself),
//! 2. generates a huge Δ-regular instance (seeded, deterministic,
//!    bit-identical for every `ROUNDELIM_THREADS`),
//! 3. executes the matching simulator algorithm and validates its output
//!    with the streaming checker,
//! 4. asserts consistency: outputs are valid, `rounds_used ≥` any
//!    certified PN lower bound, and LB ≤ UB whenever both exist.
//!
//! A PN-model `Unbounded` verdict (e.g. for sinkless orientation) is *not*
//! contradicted by an ID-based simulator finishing in `f(n)` rounds — the
//! certificates bound the deterministic PN/order-invariant regime, while
//! the simulated upper bounds may use unique ids; such cases are recorded
//! with a note instead of failing.
//!
//! The report serializes to a fully deterministic `SIM_crossval.json`
//! (no timings, no machine identifiers), so CI diffs the artifact across
//! thread counts to pin schedule-independence end to end.

use crate::checker::{check_stream, CheckOptions, CheckReport};
use crate::generate::{cycle, random_permutation, random_regular_seeded};
use crate::graph::PortGraph;
use crate::runner::{run_adaptive, run_flat, FlatOutputs, NodeInput};
use crate::{algos, par};
use roundelim_auto::json::Json;
use roundelim_auto::search::{autolb, autoub, SearchOptions, Verdict};
use roundelim_problems::registry::{crossval_specs, family, CrossvalSpec};

/// Options for [`run_crossval`].
#[derive(Debug, Clone)]
pub struct CrossvalOptions {
    /// Target node count per case (adjusted up by one for parity when
    /// `n·Δ` is odd).
    pub n: usize,
    /// Master seed; every case derives its own stream from it.
    pub seed: u64,
    /// Worker threads; 0 resolves `ROUNDELIM_THREADS` / all cores.
    pub threads: usize,
    /// Bound-search budget for `autolb` / `autoub`.
    pub search: SearchOptions,
    /// Witness cap for the streaming checker.
    pub max_witnesses: usize,
    /// Restrict the sweep to one family (CLI `--family`).
    pub family_filter: Option<String>,
}

impl Default for CrossvalOptions {
    fn default() -> Self {
        CrossvalOptions {
            n: 1_000_000,
            seed: 1,
            threads: 0,
            search: SearchOptions {
                max_steps: 4,
                beam_width: 6,
                max_labels: 10,
                ..SearchOptions::default()
            },
            max_witnesses: 8,
            family_filter: None,
        }
    }
}

/// A certificate verdict reduced to what the harness compares against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// A certified finite bound of this many rounds.
    Rounds(usize),
    /// A certified PN-model unbounded lower bound (speedup cycle).
    Unbounded,
    /// The search gave up within budget.
    Inconclusive,
}

impl Bound {
    fn from_verdict(v: &Verdict) -> Bound {
        match v {
            Verdict::LowerBound { rounds } | Verdict::UpperBound { rounds } => {
                Bound::Rounds(*rounds)
            }
            Verdict::Unbounded => Bound::Unbounded,
            Verdict::Inconclusive => Bound::Inconclusive,
        }
    }

    fn json(&self) -> Json {
        match self {
            Bound::Rounds(r) => {
                Json::obj([("kind", Json::Str("rounds".into())), ("rounds", Json::Num(*r as u64))])
            }
            Bound::Unbounded => Json::obj([("kind", Json::Str("unbounded".into()))]),
            Bound::Inconclusive => Json::obj([("kind", Json::Str("inconclusive".into()))]),
        }
    }
}

/// The outcome of one cross-validation case.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Zoo spec this case ran.
    pub spec: CrossvalSpec,
    /// Actual node count (after parity adjustment).
    pub n: usize,
    /// Rounds the simulator executed (adaptive algorithms stop early).
    pub rounds_used: usize,
    /// Streaming-checker report for the simulator's output.
    pub report: CheckReport,
    /// `autolb` verdict.
    pub lower: Bound,
    /// `autoub` verdict.
    pub upper: Bound,
    /// Whether this case is consistent (see the module docs).
    pub consistent: bool,
    /// Human-readable findings (deterministic).
    pub notes: Vec<String>,
}

impl CaseResult {
    fn json(&self) -> Json {
        Json::obj([
            ("family", Json::Str(self.spec.family.into())),
            ("k", Json::Num(self.spec.k as u64)),
            ("delta", Json::Num(self.spec.delta as u64)),
            ("algorithm", Json::Str(self.spec.algorithm.into())),
            ("graph", Json::Str(self.spec.graph.into())),
            ("n", Json::Num(self.n as u64)),
            ("rounds_used", Json::Num(self.rounds_used as u64)),
            (
                "checker",
                Json::obj([
                    ("nodes_checked", Json::Num(self.report.nodes_checked)),
                    ("edges_checked", Json::Num(self.report.edges_checked)),
                    ("degree_violations", Json::Num(self.report.degree_violations)),
                    ("node_violations", Json::Num(self.report.node_violations)),
                    ("edge_violations", Json::Num(self.report.edge_violations)),
                    ("valid", Json::Bool(self.report.is_valid())),
                ]),
            ),
            ("lower_bound", self.lower.json()),
            ("upper_bound", self.upper.json()),
            ("consistent", Json::Bool(self.consistent)),
            ("notes", Json::Arr(self.notes.iter().map(|s| Json::Str(s.clone())).collect())),
        ])
    }
}

/// The full sweep result.
#[derive(Debug, Clone)]
pub struct CrossvalReport {
    /// The target `n` the sweep was asked for.
    pub n: usize,
    /// The master seed.
    pub seed: u64,
    /// Per-case outcomes, in registry order.
    pub cases: Vec<CaseResult>,
}

impl CrossvalReport {
    /// Whether every case checked out.
    pub fn all_consistent(&self) -> bool {
        self.cases.iter().all(|c| c.consistent)
    }

    /// The deterministic `SIM_crossval.json` payload.
    pub fn json(&self) -> Json {
        Json::obj([
            ("schema", Json::Str("roundelim-sim-crossval-v1".into())),
            ("n", Json::Num(self.n as u64)),
            ("seed", Json::Num(self.seed)),
            ("consistent", Json::Bool(self.all_consistent())),
            ("cases", Json::Arr(self.cases.iter().map(CaseResult::json).collect())),
        ])
    }
}

/// FNV-1a over a case identity: derives a per-case seed stream from the
/// master seed, independent of registry order.
fn case_seed(master: u64, spec: &CrossvalSpec) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ master;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(spec.family.as_bytes());
    eat(spec.algorithm.as_bytes());
    eat(&(spec.k as u64).to_le_bytes());
    eat(&(spec.delta as u64).to_le_bytes());
    h
}

/// Builds the case graph: a ring or a seeded random Δ-regular graph with
/// the node count adjusted up for parity.
fn case_graph(
    spec: &CrossvalSpec,
    n: usize,
    seed: u64,
    threads: usize,
) -> Result<PortGraph, String> {
    match spec.graph {
        "ring" => Ok(cycle(n.max(3))),
        "random-regular" => {
            let mut n = n.max(spec.delta + 1);
            if !(n * spec.delta).is_multiple_of(2) {
                n += 1;
            }
            random_regular_seeded(n, spec.delta, 64, seed, threads)
                .ok_or_else(|| format!("no simple {}-regular graph on {n} nodes found", spec.delta))
        }
        other => Err(format!("unknown graph family `{other}`")),
    }
}

/// Shuffled unique-id inputs (plus, for rings, the consistent successor
/// orientation Cole–Vishkin needs).
fn case_inputs(
    spec: &CrossvalSpec,
    graph: &PortGraph,
    seed: u64,
    threads: usize,
) -> Vec<NodeInput> {
    let n = graph.node_count();
    let ids = random_permutation(n, seed ^ 0x1d5_0f00d, threads);
    (0..n)
        .map(|v| {
            let oriented_away = if spec.algorithm == "cole-vishkin" {
                // cycle(n) port convention: node 0 reaches its successor 1
                // through port 0; every other node reaches v + 1 through
                // port 1.
                if v == 0 {
                    vec![true, false]
                } else {
                    vec![false, true]
                }
            } else {
                Vec::new()
            };
            NodeInput { id: Some(u64::from(ids[v])), color: None, oriented_away }
        })
        .collect()
}

/// Runs the case's simulator algorithm; returns flat outputs and the
/// number of rounds executed.
fn simulate(
    spec: &CrossvalSpec,
    graph: &PortGraph,
    inputs: &[NodeInput],
) -> Result<(FlatOutputs, usize), String> {
    let n = graph.node_count();
    match spec.algorithm {
        "cole-vishkin" => {
            let rounds = algos::cole_vishkin::total_rounds(n);
            let algo = algos::cole_vishkin::ColeVishkin::for_n(n);
            Ok((run_flat(graph, inputs, &algo, rounds), rounds))
        }
        "weak2" => {
            let rounds = algos::weak2::total_rounds(n);
            let algo = algos::weak2::WeakTwoColoring::for_n(n);
            Ok((run_flat(graph, inputs, &algo, rounds), rounds))
        }
        "greedy-mis" => {
            let budget = algos::greedy::mis_rounds(n);
            Ok(run_adaptive(graph, inputs, &algos::greedy::GreedyMis, budget))
        }
        "greedy-matching" => {
            let budget = algos::greedy::matching_rounds(n);
            Ok(run_adaptive(graph, inputs, &algos::greedy::GreedyMatching, budget))
        }
        other => Err(format!("unknown algorithm `{other}`")),
    }
}

/// Runs one cross-validation case.
fn run_case(spec: &CrossvalSpec, opts: &CrossvalOptions) -> Result<CaseResult, String> {
    let problem = family(spec.family)
        .and_then(|f| f.instantiate(spec.k, spec.delta))
        .map_err(|e| format!("{}: {e}", spec.family))?;
    let mut search = opts.search.clone();
    search.threads = opts.threads;
    let lb = autolb(&problem, &search).map_err(|e| format!("autolb {}: {e}", spec.family))?;
    let ub = autoub(&problem, &search).map_err(|e| format!("autoub {}: {e}", spec.family))?;
    let lower = Bound::from_verdict(&lb.verdict);
    let upper = Bound::from_verdict(&ub.verdict);

    let seed = case_seed(opts.seed, spec);
    let graph = case_graph(spec, opts.n, seed, opts.threads)?;
    let inputs = case_inputs(spec, &graph, seed, opts.threads);
    let (outputs, rounds_used) = simulate(spec, &graph, &inputs)?;
    let report = check_stream(
        &problem,
        &graph,
        &outputs,
        &CheckOptions { max_witnesses: opts.max_witnesses, threads: opts.threads },
    );

    let mut consistent = true;
    let mut notes = Vec::new();
    if !report.is_valid() {
        consistent = false;
        notes.push(format!(
            "simulator output violates the constraints ({} violations)",
            report.total_violations()
        ));
    }
    match lower {
        Bound::Rounds(r) => {
            if rounds_used < r {
                consistent = false;
                notes.push(format!(
                    "contradiction: simulator used {rounds_used} rounds below the certified \
                     lower bound {r}"
                ));
            }
        }
        Bound::Unbounded => {
            notes.push(
                "PN-model lower bound is unbounded; the ID-based simulator finishing is \
                 consistent (LOCAL uses ids)"
                    .into(),
            );
        }
        Bound::Inconclusive => {}
    }
    if let (Bound::Rounds(l), Bound::Rounds(u)) = (lower, upper) {
        if l > u {
            consistent = false;
            notes.push(format!("contradiction: certified LB {l} exceeds certified UB {u}"));
        }
    }

    Ok(CaseResult {
        spec: *spec,
        n: graph.node_count(),
        rounds_used,
        report,
        lower,
        upper,
        consistent,
        notes,
    })
}

/// Runs the sim-vs-bound sweep over [`crossval_specs`].
///
/// # Errors
///
/// Returns a message when a case cannot be set up (unknown family, graph
/// generation failure, engine error). Constraint violations and bound
/// contradictions are *not* errors — they are recorded in the report with
/// `consistent = false` so the artifact still ships for inspection.
pub fn run_crossval(opts: &CrossvalOptions) -> Result<CrossvalReport, String> {
    let threads = par::resolve_threads(opts.threads);
    let mut cases = Vec::new();
    for spec in crossval_specs() {
        if let Some(f) = &opts.family_filter {
            if f != spec.family {
                continue;
            }
        }
        let mut opts = opts.clone();
        opts.threads = threads;
        cases.push(run_case(spec, &opts)?);
    }
    if cases.is_empty() {
        return Err(match &opts.family_filter {
            Some(f) => format!("no crossval case matches family `{f}`"),
            None => "empty crossval registry".into(),
        });
    }
    Ok(CrossvalReport { n: opts.n, seed: opts.seed, cases })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_opts() -> CrossvalOptions {
        CrossvalOptions {
            n: 400,
            seed: 7,
            threads: 1,
            search: SearchOptions {
                max_steps: 2,
                beam_width: 3,
                max_labels: 8,
                threads: 1,
                ..SearchOptions::default()
            },
            ..CrossvalOptions::default()
        }
    }

    #[test]
    fn small_sweep_is_consistent() {
        let report = run_crossval(&small_opts()).expect("sweep runs");
        assert_eq!(report.cases.len(), crossval_specs().len());
        for case in &report.cases {
            assert!(
                case.consistent,
                "{} k={} Δ={}: {:?}",
                case.spec.family, case.spec.k, case.spec.delta, case.notes
            );
            assert!(case.report.is_valid());
            assert!(case.rounds_used > 0);
        }
        assert!(report.all_consistent());
    }

    #[test]
    fn report_is_thread_invariant() {
        let one = run_crossval(&small_opts()).unwrap().json().to_string_pretty();
        let mut opts = small_opts();
        opts.threads = 4;
        opts.search.threads = 4;
        let four = run_crossval(&opts).unwrap().json().to_string_pretty();
        assert_eq!(one, four);
    }

    #[test]
    fn family_filter_selects_cases() {
        let mut opts = small_opts();
        opts.family_filter = Some("mis".into());
        let report = run_crossval(&opts).unwrap();
        assert!(!report.cases.is_empty());
        assert!(report.cases.iter().all(|c| c.spec.family == "mis"));
        opts.family_filter = Some("no-such-family".into());
        assert!(run_crossval(&opts).is_err());
    }
}
