//! **Executable Theorem 1 on Δ-regular trees** (t = 1).
//!
//! Complements [`crate::ring`]: on proper-colored Δ-regular trees (girth
//! ∞, t-independent inputs), a 1-round *port-symmetric* algorithm is a
//! function `f(own color, port's neighbor color, multiset of all neighbor
//! colors) → label`. This module derives, per the proof of Theorem 1,
//!
//! * A_{1/2} — outputs on edge neighborhoods `N¹(e)` (just the two
//!   endpoint colors), maximalized per Theorem 2 using the color
//!   comparison as the edge orientation;
//! * A₁ — a **0-round** algorithm for Π'₁ (a node sees only its own
//!   color), maximalized per port order;
//!
//! and verifies each stage against the derived problems' constraints.
//!
//! Port symmetry (equal neighbor colors ⇒ equal port labels) is the
//! natural closure under the model's adversarial port renumbering; the
//! derivations do not otherwise depend on it.

use roundelim_core::error::{Error, Result};
use roundelim_core::label::Label;
use roundelim_core::labelset::LabelSet;
use roundelim_core::problem::Problem;
use roundelim_core::speedup::universal::line_good;
use roundelim_core::speedup::FullStep;
use std::collections::HashMap;

/// The class of Δ-regular trees with a proper `c`-coloring as input.
#[derive(Debug, Clone, Copy)]
pub struct TreeClass {
    /// Number of input colors (≥ 2).
    pub colors: usize,
    /// The regular degree Δ.
    pub delta: usize,
}

impl TreeClass {
    /// Creates the class; needs `colors ≥ 2` and `delta ≥ 2`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Unsupported`] on degenerate parameters.
    pub fn new(colors: usize, delta: usize) -> Result<TreeClass> {
        if colors < 2 || delta < 2 {
            return Err(Error::Unsupported {
                reason: format!("tree class needs c ≥ 2, Δ ≥ 2; got c={colors}, Δ={delta}"),
            });
        }
        Ok(TreeClass { colors, delta })
    }

    /// All valid neighbor-color multisets of size `len` around a node of
    /// color `own` (proper coloring: every neighbor differs from `own`).
    pub fn neighbor_multisets(&self, own: usize, len: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut cur = Vec::with_capacity(len);
        fn rec(
            c: usize,
            own: usize,
            len: usize,
            start: usize,
            cur: &mut Vec<usize>,
            out: &mut Vec<Vec<usize>>,
        ) {
            if cur.len() == len {
                out.push(cur.clone());
                return;
            }
            for x in start..c {
                if x != own {
                    cur.push(x);
                    rec(c, own, len, x, cur, out);
                    cur.pop();
                }
            }
        }
        rec(self.colors, own, len, 0, &mut cur, &mut out);
        out
    }
}

/// A 1-round port-symmetric tree algorithm:
/// `(own, sorted neighbor multiset) → (neighbor color → output label)`.
#[derive(Debug, Clone)]
pub struct TreeAlgorithm {
    map: HashMap<(usize, Vec<usize>), HashMap<usize, Label>>,
}

impl TreeAlgorithm {
    /// Builds the algorithm from a per-port rule
    /// `f(own, port_color, neighbors) → label`.
    pub fn from_fn<F>(class: &TreeClass, mut f: F) -> TreeAlgorithm
    where
        F: FnMut(usize, usize, &[usize]) -> Label,
    {
        let mut map = HashMap::new();
        for own in 0..class.colors {
            for nbrs in class.neighbor_multisets(own, class.delta) {
                let mut per_color = HashMap::new();
                for &x in &nbrs {
                    per_color.entry(x).or_insert_with(|| f(own, x, &nbrs));
                }
                map.insert((own, nbrs), per_color);
            }
        }
        TreeAlgorithm { map }
    }

    /// The label this node outputs on a port with neighbor color `x`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Unsupported`] for views the algorithm lacks.
    pub fn output(&self, own: usize, neighbors: &[usize], x: usize) -> Result<Label> {
        let mut key = neighbors.to_vec();
        key.sort_unstable();
        self.map.get(&(own, key)).and_then(|m| m.get(&x)).copied().ok_or_else(|| {
            Error::Unsupported {
                reason: format!(
                    "no output for view (own={own}, neighbors={neighbors:?}, port color {x})"
                ),
            }
        })
    }
}

/// Verifies that the 1-round algorithm solves `problem` on the tree class
/// (node constraint per view; edge constraint across every compatible pair
/// of views).
///
/// # Errors
///
/// Returns [`Error::Unsupported`] naming the first violated view.
pub fn check_tree_algorithm(a: &TreeAlgorithm, problem: &Problem, class: &TreeClass) -> Result<()> {
    if problem.delta() != class.delta {
        return Err(Error::Unsupported {
            reason: format!("problem Δ = {} but class Δ = {}", problem.delta(), class.delta),
        });
    }
    // Node constraint.
    for own in 0..class.colors {
        for nbrs in class.neighbor_multisets(own, class.delta) {
            let outputs: Vec<Label> =
                nbrs.iter().map(|&x| a.output(own, &nbrs, x)).collect::<Result<_>>()?;
            if !problem.node_ok(&outputs) {
                return Err(Error::Unsupported {
                    reason: format!("node constraint violated at (own={own}, neighbors={nbrs:?})"),
                });
            }
        }
    }
    // Edge constraint: u colored `au` with remaining neighbors Mu, v
    // colored `av` with remaining neighbors Mv, au ≠ av.
    for au in 0..class.colors {
        for av in 0..class.colors {
            if au == av {
                continue;
            }
            for mu in class.neighbor_multisets(au, class.delta - 1) {
                let mut nu = mu.clone();
                nu.push(av);
                nu.sort_unstable();
                let lu = a.output(au, &nu, av)?;
                for mv in class.neighbor_multisets(av, class.delta - 1) {
                    let mut nv = mv.clone();
                    nv.push(au);
                    nv.sort_unstable();
                    let lv = a.output(av, &nv, au)?;
                    if !problem.edge_ok(lu, lv) {
                        return Err(Error::Unsupported {
                            reason: format!(
                                "edge constraint violated between (own={au}, nbrs={nu:?}) and (own={av}, nbrs={nv:?})"
                            ),
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

/// The derived A_{1/2} table: ordered color pair `(a, b)` with `a < b` ↦
/// (Π'_{1/2} label at the `a`-endpoint, label at the `b`-endpoint).
#[derive(Debug, Clone)]
pub struct TreeEdgeAlgorithm {
    map: HashMap<(usize, usize), (Label, Label)>,
}

impl TreeEdgeAlgorithm {
    /// Looks up the pair for endpoint colors `(a, b)` in canonical order.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Unsupported`] on missing entries.
    pub fn get(&self, a: usize, b: usize) -> Result<(Label, Label)> {
        debug_assert!(a < b);
        self.map.get(&(a, b)).copied().ok_or_else(|| Error::Unsupported {
            reason: format!("no A_1/2 entry for colors ({a},{b})"),
        })
    }
}

fn galois_closure(
    against: &LabelSet,
    c: &roundelim_core::constraint::Constraint,
    n: usize,
) -> LabelSet {
    let mut out = LabelSet::empty();
    for a in 0..n {
        let la = Label::from_index(a);
        if against.iter().all(|b| c.contains_labels(&[la, b])) {
            out.insert(la);
        }
    }
    out
}

fn label_of(meanings: &[LabelSet], set: &LabelSet) -> Result<Label> {
    meanings.binary_search(set).map(Label::from_index).map_err(|_| Error::Unsupported {
        reason: format!("derived set {set:?} is not a label of the derived problem"),
    })
}

/// Builds A_{1/2} on trees: for an edge with endpoint colors `a < b`,
/// collect the algorithm's possible outputs at each endpoint over all
/// extensions (the unseen Δ−1 remaining neighbors), then maximalize with
/// the color order as the edge orientation (Theorem 2).
///
/// # Errors
///
/// Fails when the algorithm violates the base edge constraint (i.e. does
/// not solve the base problem) or a derived set is not a derived label.
pub fn derive_half_tree(
    a: &TreeAlgorithm,
    base: &Problem,
    step: &FullStep,
    class: &TreeClass,
) -> Result<TreeEdgeAlgorithm> {
    let n = base.alphabet().len();
    let mut map = HashMap::new();
    for ca in 0..class.colors {
        for cb in (ca + 1)..class.colors {
            let collect = |own: usize, other: usize| -> Result<LabelSet> {
                let mut s = LabelSet::empty();
                for m in class.neighbor_multisets(own, class.delta - 1) {
                    let mut nbrs = m.clone();
                    nbrs.push(other);
                    nbrs.sort_unstable();
                    s.insert(a.output(own, &nbrs, other)?);
                }
                Ok(s)
            };
            let o_a = collect(ca, cb)?;
            let o_b = collect(cb, ca)?;
            // Maximalize: the smaller color first (edge orientation).
            let o_a_max = galois_closure(&o_b, base.edge(), n);
            if !o_a.is_subset(&o_a_max) {
                return Err(Error::Unsupported {
                    reason: format!("algorithm violates the edge constraint on colors ({ca},{cb})"),
                });
            }
            let o_b_max = galois_closure(&o_a_max, base.edge(), n);
            let la = label_of(&step.half.meanings, &o_a_max)?;
            let lb = label_of(&step.half.meanings, &o_b_max)?;
            map.insert((ca, cb), (la, lb));
        }
    }
    Ok(TreeEdgeAlgorithm { map })
}

/// A 0-round algorithm for Π'₁ on colored trees: per own color, one Π'₁
/// label per port (a node sees nothing but its own color).
#[derive(Debug, Clone)]
pub struct TreeZeroRound {
    /// `outputs[color]` = the Δ per-port labels.
    pub outputs: Vec<Vec<Label>>,
}

/// Builds A₁ from A_{1/2} (a 0-round algorithm for Π'₁) and **verifies**
/// it: every per-color output must satisfy Π'₁'s node constraint, and all
/// cross pairs between adjacent colors must satisfy its edge constraint.
///
/// # Errors
///
/// Fails if Theorem 1's promise breaks — which for a correct input
/// algorithm never happens (tests rely on this).
pub fn derive_one_tree(
    eh: &TreeEdgeAlgorithm,
    step: &FullStep,
    class: &TreeClass,
) -> Result<TreeZeroRound> {
    let half_problem = &step.half.problem;
    let n_half = half_problem.alphabet().len();
    let p1 = &step.full.problem;
    let mut outputs = Vec::with_capacity(class.colors);
    for own in 0..class.colors {
        // The set of possible A_1/2 labels at (v, e) over the unseen
        // neighbor color — identical for every port.
        let mut s = LabelSet::empty();
        for x in 0..class.colors {
            if x == own {
                continue;
            }
            let l = if own < x { eh.get(own, x)?.0 } else { eh.get(x, own)?.1 };
            s.insert(l);
        }
        // Maximalize the Δ-tuple (S, …, S) per port order: grow each
        // component while the line stays good for h_{1/2}.
        let mut line: Vec<LabelSet> = vec![s; class.delta];
        loop {
            let mut changed = false;
            for i in 0..class.delta {
                for cand in 0..n_half {
                    let l = Label::from_index(cand);
                    if line[i].contains(l) {
                        continue;
                    }
                    let mut trial = line.clone();
                    trial[i].insert(l);
                    if line_good(&trial, half_problem.node()) {
                        line = trial;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        if !line_good(&line, half_problem.node()) {
            return Err(Error::Unsupported {
                reason: format!("half algorithm violates h_1/2 at color {own}"),
            });
        }
        let labels: Vec<Label> =
            line.iter().map(|c| label_of(&step.full.meanings, c)).collect::<Result<_>>()?;
        if !p1.node_ok(&labels) {
            return Err(Error::Unsupported {
                reason: format!(
                    "derived 0-round output violates Π'₁'s node constraint at color {own}"
                ),
            });
        }
        outputs.push(labels);
    }
    // Edge verification: adversarial port wiring between any two adjacent
    // colors.
    for a in 0..class.colors {
        for b in (a + 1)..class.colors {
            for &la in &outputs[a] {
                for &lb in &outputs[b] {
                    if !p1.edge_ok(la, lb) {
                        return Err(Error::Unsupported {
                            reason: format!(
                                "derived 0-round outputs violate Π'₁'s edge constraint between colors {a} and {b}"
                            ),
                        });
                    }
                }
            }
        }
    }
    Ok(TreeZeroRound { outputs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use roundelim_core::speedup::full_step;
    use roundelim_problems::coloring::coloring;

    /// 1-round reduction on Δ=3 trees: proper 5-coloring → 4-coloring
    /// (recolor the top class to a color unused by the 3 neighbors).
    fn reduction(class: &TreeClass) -> TreeAlgorithm {
        TreeAlgorithm::from_fn(class, |own, _port, nbrs| {
            let color = if own == 4 {
                (0..4).find(|c| !nbrs.contains(c)).expect("3 neighbors, 4 colors")
            } else {
                own
            };
            Label::from_index(color)
        })
    }

    #[test]
    fn reduction_solves_4_coloring_on_trees() {
        let class = TreeClass::new(5, 3).unwrap();
        let a = reduction(&class);
        let p4 = coloring(4, 3).unwrap();
        check_tree_algorithm(&a, &p4, &class).unwrap();
        // …but not 3-coloring.
        let p3 = coloring(3, 3).unwrap();
        assert!(check_tree_algorithm(&a, &p3, &class).is_err());
    }

    #[test]
    fn theorem1_forward_direction_on_trees() {
        // A (1 round) solves 4-coloring ⇒ derived A₁ (0 rounds) solves
        // Π'₁(4-coloring) — node and edge constraints verified inside
        // derive_one_tree.
        let class = TreeClass::new(5, 3).unwrap();
        let a = reduction(&class);
        let p4 = coloring(4, 3).unwrap();
        let step = full_step(&p4).unwrap();
        let eh = derive_half_tree(&a, &p4, &step, &class).unwrap();
        let a1 = derive_one_tree(&eh, &step, &class).unwrap();
        assert_eq!(a1.outputs.len(), 5);
        for out in &a1.outputs {
            assert_eq!(out.len(), 3);
        }
    }

    #[test]
    fn incorrect_tree_algorithm_rejected() {
        // Identity (keeps 5 colors) does not solve 4-coloring; the checker
        // and the derivation both reject it.
        let class = TreeClass::new(5, 3).unwrap();
        let id = TreeAlgorithm::from_fn(&class, |own, _p, _n| Label::from_index(own));
        let p4 = coloring(4, 3).unwrap();
        assert!(check_tree_algorithm(&id, &p4, &class).is_err());
        // The constant algorithm breaks the edge constraint mid-derivation.
        let constant = TreeAlgorithm::from_fn(&class, |_own, _p, _n| Label::from_index(0));
        let step = full_step(&p4).unwrap();
        assert!(derive_half_tree(&constant, &p4, &step, &class).is_err());
    }

    #[test]
    fn neighbor_multisets_counts() {
        let class = TreeClass::new(4, 3).unwrap();
        // multisets of size 3 over 3 allowed colors: C(5,3) = 10.
        assert_eq!(class.neighbor_multisets(0, 3).len(), 10);
        assert_eq!(class.neighbor_multisets(0, 1).len(), 3);
        assert!(TreeClass::new(1, 3).is_err());
    }

    #[test]
    fn tree_outputs_are_config_compatible() {
        // The per-view output multiset really is a Config the problem
        // accepts (smoke test of the plumbing).
        let class = TreeClass::new(5, 3).unwrap();
        let a = reduction(&class);
        let p4 = coloring(4, 3).unwrap();
        let nbrs = vec![0usize, 1, 2];
        let outs: Vec<Label> = nbrs.iter().map(|&x| a.output(4, &nbrs, x).unwrap()).collect();
        assert!(p4.node_ok(&outs));
    }
}
