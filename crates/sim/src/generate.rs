//! Graph generators for the high-girth classes the theorems quantify over.
//!
//! The random generators are **counter-based and deterministic**: a graph
//! is a pure function of `(n, d, tries, seed)`. Randomness comes from a
//! SplitMix64-style hash of per-index counters, and random permutations
//! are realized by sorting nodes by `(hash, id)` keys — a strict total
//! order — so the result is bit-identical for every worker-thread count
//! (`ROUNDELIM_THREADS`), which the cross-validation CI job diffs.

use crate::graph::PortGraph;
use crate::par;
use rand::Rng;
use std::collections::HashSet;

/// The n-cycle (Δ = 2, girth n) — the graph class of §4.5.
///
/// # Panics
///
/// Panics for `n < 3`.
pub fn cycle(n: usize) -> PortGraph {
    assert!(n >= 3, "a cycle needs at least 3 nodes");
    let edges: Vec<(u32, u32)> = (0..n).map(|i| (i as u32, ((i + 1) % n) as u32)).collect();
    PortGraph::from_edge_pairs(n, &edges).expect("cycle edges are simple")
}

/// The complete graph K_n (girth 3) — a worst case for girth conditions.
///
/// # Panics
///
/// Panics for `n < 2`.
pub fn complete(n: usize) -> PortGraph {
    assert!(n >= 2);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u, v));
        }
    }
    PortGraph::from_edges(n, &edges).expect("complete-graph edges are simple")
}

/// The complete bipartite graph K_{d,d} (d-regular, girth 4).
///
/// # Panics
///
/// Panics for `d < 1`.
pub fn complete_bipartite(d: usize) -> PortGraph {
    assert!(d >= 1);
    let mut edges = Vec::new();
    for u in 0..d {
        for v in 0..d {
            edges.push((u, d + v));
        }
    }
    PortGraph::from_edges(2 * d, &edges).expect("bipartite edges are simple")
}

/// The complete `d`-ary tree in which every internal node has degree `d`
/// (the root has `d` children, other internal nodes `d − 1`) and leaves
/// sit at distance `depth` from the root. Girth ∞ — the infinite-tree
/// surrogate the lower-bound theorems quantify over; `depth ≈ log n`
/// reaches millions of nodes.
///
/// # Panics
///
/// Panics for `d < 2`, or when the tree exceeds `u32::MAX` nodes.
pub fn regular_tree(depth: usize, d: usize) -> PortGraph {
    assert!(d >= 2, "a regular tree needs branching degree ≥ 2");
    let n = regular_tree_size(depth, d);
    assert!(n <= u32::MAX as usize, "regular tree too large for u32 node ids");
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n.saturating_sub(1));
    // BFS construction: `level` holds the ids of the current frontier.
    let mut level: Vec<u32> = vec![0];
    let mut next_id: u32 = 1;
    for layer in 0..depth {
        let mut next_level = Vec::new();
        let children = if layer == 0 { d } else { d - 1 };
        for &v in &level {
            for _ in 0..children {
                edges.push((v, next_id));
                next_level.push(next_id);
                next_id += 1;
            }
        }
        level = next_level;
    }
    PortGraph::from_edge_pairs(n, &edges).expect("tree edges are simple")
}

/// Number of nodes of [`regular_tree`]`(depth, d)`.
pub fn regular_tree_size(depth: usize, d: usize) -> usize {
    if depth == 0 {
        return 1;
    }
    let mut n = 1usize;
    let mut frontier = d;
    for _ in 0..depth {
        n += frontier;
        frontier *= d - 1;
    }
    n
}

/// SplitMix64 finalizer: the bijective mixing step of the vendored
/// `StdRng`, used here as a counter-based hash.
#[inline]
fn hash64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform-looking permutation of `0..len` as a pure function of
/// `stream`: sort ids by `(hash64(stream ^ i·φ), id)`. Key computation and
/// chunk sorts run on worker threads; the strict total order makes the
/// result schedule-independent.
fn keyed_order(len: usize, stream: u64, threads: usize) -> Vec<u32> {
    let keyed = par::fill_indexed(len, threads, |i| {
        (hash64(stream ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)), i as u32)
    });
    par::sort_pairs(keyed, threads).into_iter().map(|(_, i)| i).collect()
}

/// Whether `(n, d)` can possibly be a simple `d`-regular graph on `n`
/// nodes: `n·d` must be even, `d < n`, and `d ≥ 1`.
fn regular_params_ok(n: usize, d: usize) -> bool {
    d > 0 && d < n && (n * d).is_multiple_of(2)
}

/// A deterministic pseudorandom permutation of `0..len` — the keyed-sort
/// construction the seeded generators use, exposed for building shuffled
/// id inputs at million-node scale (bit-identical for every `threads`).
pub fn random_permutation(len: usize, seed: u64, threads: usize) -> Vec<u32> {
    keyed_order(len, hash64(seed), par::resolve_threads(threads))
}

/// A random `d`-regular graph on `n` nodes as a pure function of `seed`
/// (see the module docs): deterministic, parallel, and identical for every
/// `threads` value (`0` = resolve `ROUNDELIM_THREADS`). Returns `None` if
/// the parameters are impossible (odd `n·d`, `d ≥ n`, `d = 0`) or no
/// simple pairing is found within `tries` attempts.
pub fn random_regular_seeded(
    n: usize,
    d: usize,
    tries: usize,
    seed: u64,
    threads: usize,
) -> Option<PortGraph> {
    if !regular_params_ok(n, d) {
        return None;
    }
    let threads = par::resolve_threads(threads);
    if n.is_multiple_of(2) {
        random_regular_matchings_seeded(n, d, tries, seed, threads)
    } else {
        random_regular_stubs_seeded(n, d, tries, seed, threads)
    }
}

/// Even `n`: union of `d` random perfect matchings with per-matching
/// retries — the rejection rate stays per-matching instead of compounding
/// exponentially in d² as in the plain configuration model.
fn random_regular_matchings_seeded(
    n: usize,
    d: usize,
    tries: usize,
    seed: u64,
    threads: usize,
) -> Option<PortGraph> {
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * d / 2);
    let mut seen: HashSet<u64> = HashSet::with_capacity(n * d);
    for m in 0..d {
        let mut placed = false;
        'matching: for attempt in 0..tries {
            let stream = hash64(seed ^ hash64(((m as u64) << 32) | attempt as u64));
            let order = keyed_order(n, stream, threads);
            let mut new_edges = Vec::with_capacity(n / 2);
            for pair in order.chunks(2) {
                let (u, v) = (pair[0].min(pair[1]), pair[0].max(pair[1]));
                if seen.contains(&((u64::from(u) << 32) | u64::from(v))) {
                    continue 'matching;
                }
                new_edges.push((u, v));
            }
            for &(u, v) in &new_edges {
                seen.insert((u64::from(u) << 32) | u64::from(v));
            }
            edges.extend(new_edges);
            placed = true;
            break;
        }
        if !placed {
            return None;
        }
    }
    PortGraph::from_edge_pairs(n, &edges)
}

/// Odd `n` (with `n·d` even): configuration model over `n·d` stubs with
/// whole-attempt retries.
fn random_regular_stubs_seeded(
    n: usize,
    d: usize,
    tries: usize,
    seed: u64,
    threads: usize,
) -> Option<PortGraph> {
    'attempt: for attempt in 0..tries {
        let stream = hash64(seed ^ hash64(0x5751_u64 << 32 | attempt as u64));
        let order = keyed_order(n * d, stream, threads);
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * d / 2);
        let mut seen: HashSet<u64> = HashSet::with_capacity(n * d);
        for pair in order.chunks(2) {
            let (a, b) = (pair[0] / d as u32, pair[1] / d as u32);
            if a == b {
                continue 'attempt;
            }
            let (u, v) = (a.min(b), a.max(b));
            if !seen.insert((u64::from(u) << 32) | u64::from(v)) {
                continue 'attempt;
            }
            edges.push((u, v));
        }
        return PortGraph::from_edge_pairs(n, &edges);
    }
    None
}

/// A random `d`-regular graph on `n` nodes. Impossible parameters (odd
/// `n·d`, `d ≥ n`, `d = 0`) are rejected up front without consuming the
/// RNG or any `tries`. Otherwise draws a seed from `rng` and delegates to
/// [`random_regular_seeded`].
pub fn random_regular<R: Rng>(n: usize, d: usize, tries: usize, rng: &mut R) -> Option<PortGraph> {
    if !regular_params_ok(n, d) {
        return None;
    }
    random_regular_seeded(n, d, tries, rng.next_u64(), 0)
}

/// A random `d`-regular graph with girth at least `g` (by rejection).
/// Impossible `(n, d)` parameters are rejected up front instead of burning
/// every attempt. Expensive; intended for small test instances that
/// exercise the girth hypotheses of Theorems 1–3.
pub fn random_regular_girth<R: Rng>(
    n: usize,
    d: usize,
    min_girth: usize,
    tries: usize,
    rng: &mut R,
) -> Option<PortGraph> {
    if !regular_params_ok(n, d) {
        return None;
    }
    for _ in 0..tries {
        if let Some(graph) = random_regular(n, d, 16, rng) {
            if graph.girth().is_none_or(|gg| gg >= min_girth) {
                return Some(graph);
            }
        }
    }
    None
}

/// Orientations for every edge (by the convention "oriented from the
/// smaller to the larger endpoint" or uniformly at random) represented as,
/// for each node and port, whether the edge points away.
pub fn random_orientation<R: Rng>(g: &PortGraph, rng: &mut R) -> Vec<Vec<bool>> {
    let mut out: Vec<Vec<bool>> = (0..g.node_count()).map(|v| vec![false; g.degree(v)]).collect();
    for (u, pu, v, pv) in g.edges() {
        let away_from_u = rng.gen_bool(0.5);
        out[u][pu] = away_from_u;
        out[v][pv] = !away_from_u;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn cycle_properties() {
        let g = cycle(7);
        assert!(g.is_regular(2));
        assert_eq!(g.girth(), Some(7));
    }

    #[test]
    fn complete_properties() {
        let g = complete(5);
        assert!(g.is_regular(4));
        assert_eq!(g.girth(), Some(3));
        let b = complete_bipartite(3);
        assert!(b.is_regular(3));
        assert_eq!(b.girth(), Some(4));
    }

    #[test]
    fn regular_tree_shape() {
        // depth 2, d = 3: 1 + 3 + 3·2 = 10 nodes, girth ∞.
        let g = regular_tree(2, 3);
        assert_eq!(g.node_count(), regular_tree_size(2, 3));
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.girth(), None);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.max_degree(), 3);
        let leaves = (0..10).filter(|&v| g.degree(v) == 1).count();
        assert_eq!(leaves, 6);
        // Interior nodes are d-regular.
        assert!((0..10).all(|v| g.degree(v) == 3 || g.degree(v) == 1));
    }

    #[test]
    fn random_regular_is_regular() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for (n, d) in [(10, 3), (20, 4), (16, 5), (15, 4)] {
            let g = random_regular(n, d, 20000, &mut rng).unwrap();
            assert!(g.is_regular(d), "n={n}, d={d}");
            assert_eq!(g.node_count(), n);
        }
    }

    #[test]
    fn impossible_parameters_rejected_up_front() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        // Odd n·d, d ≥ n, and d = 0 fail immediately — `tries = 0` proves
        // no attempt budget is consumed.
        assert!(random_regular(5, 3, 0, &mut rng).is_none());
        assert!(random_regular(4, 4, 0, &mut rng).is_none());
        assert!(random_regular(4, 0, 0, &mut rng).is_none());
        assert!(random_regular_seeded(7, 3, 0, 1, 1).is_none());
        assert!(random_regular_girth(5, 3, 4, 0, &mut rng).is_none());
        assert!(random_regular_girth(3, 3, 4, 0, &mut rng).is_none());
        // Sanity: the legacy call sites still reject with a budget.
        assert!(random_regular(5, 3, 10, &mut rng).is_none());
        assert!(random_regular(4, 4, 10, &mut rng).is_none());
    }

    #[test]
    fn seeded_generation_is_thread_invariant() {
        for (n, d, seed) in [(100, 3, 7u64), (101, 4, 9), (64, 5, 1)] {
            let one = random_regular_seeded(n, d, 64, seed, 1).unwrap();
            assert!(one.is_regular(d));
            for threads in [2, 4, 7] {
                assert_eq!(random_regular_seeded(n, d, 64, seed, threads).unwrap(), one);
            }
            // A different seed gives a different graph (overwhelmingly).
            assert_ne!(random_regular_seeded(n, d, 64, seed ^ 0xDEAD_BEEF, 1).unwrap(), one);
        }
    }

    #[test]
    fn girth_rejection_works() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let g = random_regular_girth(30, 3, 5, 5000, &mut rng)
            .expect("girth-5 cubic graph on 30 nodes");
        assert!(g.girth().is_none_or(|x| x >= 5));
        assert!(g.is_regular(3));
    }

    #[test]
    fn orientations_are_consistent() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let g = cycle(9);
        let o = random_orientation(&g, &mut rng);
        for (u, pu, v, pv) in g.edges() {
            assert_ne!(o[u][pu], o[v][pv], "each edge has exactly one 'away' endpoint");
        }
    }
}
