//! Graph generators for the high-girth classes the theorems quantify over.

use crate::graph::PortGraph;
use rand::Rng;

/// The n-cycle (Δ = 2, girth n) — the graph class of §4.5.
///
/// # Panics
///
/// Panics for `n < 3`.
pub fn cycle(n: usize) -> PortGraph {
    assert!(n >= 3, "a cycle needs at least 3 nodes");
    let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    PortGraph::from_edges(n, &edges).expect("cycle edges are simple")
}

/// The complete graph K_n (girth 3) — a worst case for girth conditions.
///
/// # Panics
///
/// Panics for `n < 2`.
pub fn complete(n: usize) -> PortGraph {
    assert!(n >= 2);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u, v));
        }
    }
    PortGraph::from_edges(n, &edges).expect("complete-graph edges are simple")
}

/// The complete bipartite graph K_{d,d} (d-regular, girth 4).
///
/// # Panics
///
/// Panics for `d < 1`.
pub fn complete_bipartite(d: usize) -> PortGraph {
    assert!(d >= 1);
    let mut edges = Vec::new();
    for u in 0..d {
        for v in 0..d {
            edges.push((u, d + v));
        }
    }
    PortGraph::from_edges(2 * d, &edges).expect("bipartite edges are simple")
}

/// A random `d`-regular graph on `n` nodes via the configuration model
/// (retrying until simple). Returns `None` if `n·d` is odd, `d ≥ n`, or no
/// simple pairing is found within `tries` attempts.
pub fn random_regular<R: Rng>(n: usize, d: usize, tries: usize, rng: &mut R) -> Option<PortGraph> {
    if !(n * d).is_multiple_of(2) || d >= n || d == 0 {
        return None;
    }
    if n.is_multiple_of(2) {
        // Union of d random perfect matchings with per-matching retries:
        // the rejection rate stays per-matching instead of compounding
        // exponentially in d² as in the plain configuration model.
        return random_regular_matchings(n, d, tries, rng);
    }
    'attempt: for _ in 0..tries {
        // Stubs: d copies of each node.
        let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
        // Fisher–Yates shuffle.
        for i in (1..stubs.len()).rev() {
            let j = rng.gen_range(0..=i);
            stubs.swap(i, j);
        }
        let mut edges = Vec::with_capacity(n * d / 2);
        let mut seen = std::collections::HashSet::new();
        for pair in stubs.chunks(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v {
                continue 'attempt;
            }
            if !seen.insert((u.min(v), u.max(v))) {
                continue 'attempt;
            }
            edges.push((u, v));
        }
        if let Some(g) = PortGraph::from_edges(n, &edges) {
            return Some(g);
        }
    }
    None
}

fn random_regular_matchings<R: Rng>(
    n: usize,
    d: usize,
    tries: usize,
    rng: &mut R,
) -> Option<PortGraph> {
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(n * d / 2);
    let mut seen = std::collections::HashSet::new();
    for _ in 0..d {
        let mut placed = false;
        'matching: for _ in 0..tries {
            let mut nodes: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                nodes.swap(i, j);
            }
            let mut new_edges = Vec::with_capacity(n / 2);
            for pair in nodes.chunks(2) {
                let (u, v) = (pair[0].min(pair[1]), pair[0].max(pair[1]));
                if seen.contains(&(u, v)) {
                    continue 'matching;
                }
                new_edges.push((u, v));
            }
            for &e in &new_edges {
                seen.insert(e);
            }
            edges.extend(new_edges);
            placed = true;
            break;
        }
        if !placed {
            return None;
        }
    }
    PortGraph::from_edges(n, &edges)
}

/// A random `d`-regular graph with girth at least `g` (by rejection).
/// Expensive; intended for small test instances that exercise the girth
/// hypotheses of Theorems 1–3.
pub fn random_regular_girth<R: Rng>(
    n: usize,
    d: usize,
    min_girth: usize,
    tries: usize,
    rng: &mut R,
) -> Option<PortGraph> {
    for _ in 0..tries {
        if let Some(graph) = random_regular(n, d, 16, rng) {
            if graph.girth().is_none_or(|gg| gg >= min_girth) {
                return Some(graph);
            }
        }
    }
    None
}

/// Orientations for every edge (by the convention "oriented from the
/// smaller to the larger endpoint" or uniformly at random) represented as,
/// for each node and port, whether the edge points away.
pub fn random_orientation<R: Rng>(g: &PortGraph, rng: &mut R) -> Vec<Vec<bool>> {
    let mut out: Vec<Vec<bool>> = (0..g.node_count()).map(|v| vec![false; g.degree(v)]).collect();
    for (u, pu, v, pv) in g.edges() {
        let away_from_u = rng.gen_bool(0.5);
        out[u][pu] = away_from_u;
        out[v][pv] = !away_from_u;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn cycle_properties() {
        let g = cycle(7);
        assert!(g.is_regular(2));
        assert_eq!(g.girth(), Some(7));
    }

    #[test]
    fn complete_properties() {
        let g = complete(5);
        assert!(g.is_regular(4));
        assert_eq!(g.girth(), Some(3));
        let b = complete_bipartite(3);
        assert!(b.is_regular(3));
        assert_eq!(b.girth(), Some(4));
    }

    #[test]
    fn random_regular_is_regular() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for (n, d) in [(10, 3), (20, 4), (16, 5)] {
            let g = random_regular(n, d, 20000, &mut rng).unwrap();
            assert!(g.is_regular(d), "n={n}, d={d}");
            assert_eq!(g.node_count(), n);
        }
        // parity violation
        assert!(random_regular(5, 3, 10, &mut rng).is_none());
        assert!(random_regular(4, 4, 10, &mut rng).is_none());
    }

    #[test]
    fn girth_rejection_works() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let g = random_regular_girth(30, 3, 5, 5000, &mut rng)
            .expect("girth-5 cubic graph on 30 nodes");
        assert!(g.girth().is_none_or(|x| x >= 5));
        assert!(g.is_regular(3));
    }

    #[test]
    fn orientations_are_consistent() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let g = cycle(9);
        let o = random_orientation(&g, &mut rng);
        for (u, pu, v, pv) in g.edges() {
            assert_ne!(o[u][pu], o[v][pv], "each edge has exactly one 'away' endpoint");
        }
    }
}
