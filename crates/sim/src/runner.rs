//! The synchronous message-passing runner (§3's model, executable).
//!
//! A [`Distributed`] algorithm is written against the node-local API of the
//! port-numbering model: in each round every node sends one message per
//! port, receives one message per port, and updates its state; after the
//! last round it assigns one output label per port. Nodes see their degree,
//! the global parameters `n` and `Δ`, and any inputs the instance carries
//! (IDs, colors, orientations) — *not* their node index.

use crate::graph::PortGraph;
use roundelim_core::label::Label;

/// Per-node input information available at round 0.
#[derive(Debug, Clone, Default)]
pub struct NodeInput {
    /// A globally unique identifier, if the instance provides one
    /// (LOCAL-model regime; absent in the plain PN model).
    pub id: Option<u64>,
    /// An input color, if the instance provides one.
    pub color: Option<usize>,
    /// Per-port: whether the incident edge is oriented away from the node
    /// (the Theorem-2 symmetry-breaking input). Empty if absent.
    pub oriented_away: Vec<bool>,
}

/// Node-local context handed to the algorithm.
#[derive(Debug, Clone)]
pub struct NodeCtx<'a> {
    /// Number of nodes (global knowledge in the model).
    pub n: usize,
    /// Maximum degree (global knowledge in the model).
    pub delta: usize,
    /// This node's degree.
    pub degree: usize,
    /// This node's input.
    pub input: &'a NodeInput,
}

/// A synchronous distributed algorithm in the port-numbering model.
pub trait Distributed {
    /// Messages exchanged along edges.
    type Message: Clone;
    /// Node-local state.
    type State;

    /// Initializes a node's state from its radius-0 view.
    fn init(&self, ctx: &NodeCtx<'_>) -> Self::State;

    /// Produces the message to send through `port` in `round` (0-based).
    fn send(&self, state: &Self::State, round: usize, port: usize) -> Self::Message;

    /// Consumes the messages received in `round` (indexed by port).
    fn receive(&self, state: &mut Self::State, round: usize, messages: &[Self::Message]);

    /// Emits the final output: one label per port.
    fn output(&self, state: &Self::State) -> Vec<Label>;
}

/// Runs `algo` for `rounds` rounds on `graph` with `inputs` and returns
/// each node's per-port outputs.
///
/// # Panics
///
/// Panics if `inputs.len() != graph.node_count()` or an algorithm emits a
/// wrong-arity output (programming errors in the caller/algorithm).
pub fn run<A: Distributed>(
    graph: &PortGraph,
    inputs: &[NodeInput],
    algo: &A,
    rounds: usize,
) -> Vec<Vec<Label>> {
    assert_eq!(inputs.len(), graph.node_count(), "one input per node");
    let n = graph.node_count();
    let delta = graph.max_degree();
    let mut states: Vec<A::State> = (0..n)
        .map(|v| {
            let ctx = NodeCtx { n, delta, degree: graph.degree(v), input: &inputs[v] };
            algo.init(&ctx)
        })
        .collect();

    for round in 0..rounds {
        // All sends happen before any receive (synchronous rounds).
        let outgoing: Vec<Vec<A::Message>> = (0..n)
            .map(|v| (0..graph.degree(v)).map(|p| algo.send(&states[v], round, p)).collect())
            .collect();
        let incoming: Vec<Vec<A::Message>> = (0..n)
            .map(|v| {
                (0..graph.degree(v))
                    .map(|p| {
                        let t = graph.neighbor(v, p);
                        outgoing[t.node][t.port].clone()
                    })
                    .collect()
            })
            .collect();
        for (v, msgs) in incoming.into_iter().enumerate() {
            algo.receive(&mut states[v], round, &msgs);
        }
    }

    (0..n)
        .map(|v| {
            let out = algo.output(&states[v]);
            assert_eq!(out.len(), graph.degree(v), "one output label per port");
            out
        })
        .collect()
}

/// Builds default (empty) inputs for a graph.
pub fn empty_inputs(graph: &PortGraph) -> Vec<NodeInput> {
    vec![NodeInput::default(); graph.node_count()]
}

/// Builds inputs with unique ids `0..n` (optionally shuffled by a caller).
pub fn id_inputs(graph: &PortGraph) -> Vec<NodeInput> {
    (0..graph.node_count())
        .map(|v| NodeInput { id: Some(v as u64), ..NodeInput::default() })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::cycle;

    /// "Flood maximum id" needs exactly the number of rounds = eccentricity.
    struct FloodMax;

    impl Distributed for FloodMax {
        type Message = u64;
        type State = u64;

        fn init(&self, ctx: &NodeCtx<'_>) -> u64 {
            ctx.input.id.expect("FloodMax needs ids")
        }
        fn send(&self, state: &u64, _round: usize, _port: usize) -> u64 {
            *state
        }
        fn receive(&self, state: &mut u64, _round: usize, messages: &[u64]) {
            for &m in messages {
                *state = (*state).max(m);
            }
        }
        fn output(&self, state: &u64) -> Vec<Label> {
            // encode the known max as a label index at both ports (test only)
            vec![Label::from_index(*state as usize); 2]
        }
    }

    #[test]
    fn flood_max_converges_in_diameter_rounds() {
        let g = cycle(8);
        let inputs = id_inputs(&g);
        let out = run(&g, &inputs, &FloodMax, 4); // diameter of C8 = 4
        for v in out {
            assert_eq!(v[0].index(), 7);
        }
        // insufficient rounds: some node does not know the max yet
        let g = cycle(8);
        let out = run(&g, &id_inputs(&g), &FloodMax, 2);
        assert!(out.iter().any(|v| v[0].index() != 7));
    }

    #[test]
    #[should_panic(expected = "one input per node")]
    fn input_arity_checked() {
        let g = cycle(4);
        let _ = run(&g, &[], &FloodMax, 1);
    }
}
