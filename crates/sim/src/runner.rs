//! The synchronous message-passing runner (§3's model, executable).
//!
//! A [`Distributed`] algorithm is written against the node-local API of the
//! port-numbering model: in each round every node sends one message per
//! port, receives one message per port, and updates its state; after the
//! last round it assigns one output label per port. Nodes see their degree,
//! the global parameters `n` and `Δ`, and any inputs the instance carries
//! (IDs, colors, orientations) — *not* their node index.
//!
//! Two execution surfaces share one core:
//! - [`run`] keeps the seed-era `Vec<Vec<Label>>` shape for small tests;
//! - [`run_flat`] / [`run_adaptive`] use flat per-port message arenas
//!   aligned with the CSR [`PortGraph`] layout ([`FlatOutputs`]), which is
//!   what makes million-node executions fit in two allocations per round
//!   and feeds the streaming checker without re-materializing rows.

use crate::graph::PortGraph;
use roundelim_core::label::Label;

/// Per-node input information available at round 0.
#[derive(Debug, Clone, Default)]
pub struct NodeInput {
    /// A globally unique identifier, if the instance provides one
    /// (LOCAL-model regime; absent in the plain PN model).
    pub id: Option<u64>,
    /// An input color, if the instance provides one.
    pub color: Option<usize>,
    /// Per-port: whether the incident edge is oriented away from the node
    /// (the Theorem-2 symmetry-breaking input). Empty if absent.
    pub oriented_away: Vec<bool>,
}

/// Node-local context handed to the algorithm.
#[derive(Debug, Clone)]
pub struct NodeCtx<'a> {
    /// Number of nodes (global knowledge in the model).
    pub n: usize,
    /// Maximum degree (global knowledge in the model).
    pub delta: usize,
    /// This node's degree.
    pub degree: usize,
    /// This node's input.
    pub input: &'a NodeInput,
}

/// A synchronous distributed algorithm in the port-numbering model.
pub trait Distributed {
    /// Messages exchanged along edges.
    type Message: Clone;
    /// Node-local state.
    type State;

    /// Initializes a node's state from its radius-0 view.
    fn init(&self, ctx: &NodeCtx<'_>) -> Self::State;

    /// Produces the message to send through `port` in `round` (0-based).
    fn send(&self, state: &Self::State, round: usize, port: usize) -> Self::Message;

    /// Consumes the messages received in `round` (indexed by port).
    fn receive(&self, state: &mut Self::State, round: usize, messages: &[Self::Message]);

    /// Emits the final output: one label per port.
    fn output(&self, state: &Self::State) -> Vec<Label>;

    /// Whether this node's state is final: its output labels can no longer
    /// change *and* it no longer needs to inform neighbors. When every
    /// node reports `true`, [`run_adaptive`] stops early. The default
    /// (`false`) means "run the full round budget" — correct for
    /// fixed-schedule algorithms.
    fn done(&self, _state: &Self::State) -> bool {
        false
    }
}

/// Per-port output labels in the flat CSR-aligned layout: label for
/// `(v, p)` lives at `graph.port_offset(v) + p`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatOutputs {
    /// One label per port, all nodes back to back (length
    /// [`PortGraph::total_ports`]).
    pub labels: Vec<Label>,
}

impl FlatOutputs {
    /// The output labels of node `v`, in port order.
    #[inline]
    pub fn node<'a>(&'a self, graph: &PortGraph, v: usize) -> &'a [Label] {
        &self.labels[graph.port_offset(v)..graph.port_offset(v) + graph.degree(v)]
    }

    /// Packs per-node rows into the flat layout.
    ///
    /// # Panics
    ///
    /// Panics if the row count or any row's arity mismatches the graph.
    pub fn from_rows(graph: &PortGraph, rows: &[Vec<Label>]) -> FlatOutputs {
        assert_eq!(rows.len(), graph.node_count(), "one output row per node");
        let mut labels = Vec::with_capacity(graph.total_ports());
        for (v, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), graph.degree(v), "one output label per port");
            labels.extend_from_slice(row);
        }
        FlatOutputs { labels }
    }

    /// Unpacks into per-node rows (the seed-era shape).
    pub fn into_rows(self, graph: &PortGraph) -> Vec<Vec<Label>> {
        (0..graph.node_count()).map(|v| self.node(graph, v).to_vec()).collect()
    }
}

/// Shared synchronous core: flat message arenas, optional early stop.
fn run_core<A: Distributed>(
    graph: &PortGraph,
    inputs: &[NodeInput],
    algo: &A,
    max_rounds: usize,
    adaptive: bool,
) -> (FlatOutputs, usize) {
    assert_eq!(inputs.len(), graph.node_count(), "one input per node");
    let n = graph.node_count();
    let delta = graph.max_degree();
    let total = graph.total_ports();
    let mut states: Vec<A::State> = (0..n)
        .map(|v| {
            let ctx = NodeCtx { n, delta, degree: graph.degree(v), input: &inputs[v] };
            algo.init(&ctx)
        })
        .collect();

    let mut outgoing: Vec<A::Message> = Vec::with_capacity(total);
    let mut incoming: Vec<A::Message> = Vec::with_capacity(total);
    let mut rounds_used = 0;
    for round in 0..max_rounds {
        if adaptive && states.iter().all(|s| algo.done(s)) {
            break;
        }
        // All sends happen before any receive (synchronous rounds).
        outgoing.clear();
        for (v, state) in states.iter().enumerate() {
            for p in 0..graph.degree(v) {
                outgoing.push(algo.send(state, round, p));
            }
        }
        incoming.clear();
        for v in 0..n {
            for t in graph.ports(v) {
                incoming.push(outgoing[graph.port_offset(t.node_ix()) + t.port_ix()].clone());
            }
        }
        for (v, state) in states.iter_mut().enumerate() {
            let lo = graph.port_offset(v);
            algo.receive(state, round, &incoming[lo..lo + graph.degree(v)]);
        }
        rounds_used = round + 1;
    }

    let mut labels = Vec::with_capacity(total);
    for (v, state) in states.iter().enumerate() {
        let out = algo.output(state);
        assert_eq!(out.len(), graph.degree(v), "one output label per port");
        labels.extend_from_slice(&out);
    }
    (FlatOutputs { labels }, rounds_used)
}

/// Runs `algo` for `rounds` rounds on `graph` with `inputs` and returns
/// each node's per-port outputs.
///
/// # Panics
///
/// Panics if `inputs.len() != graph.node_count()` or an algorithm emits a
/// wrong-arity output (programming errors in the caller/algorithm).
pub fn run<A: Distributed>(
    graph: &PortGraph,
    inputs: &[NodeInput],
    algo: &A,
    rounds: usize,
) -> Vec<Vec<Label>> {
    run_flat(graph, inputs, algo, rounds).into_rows(graph)
}

/// Runs `algo` for exactly `rounds` rounds, returning flat per-port
/// outputs — the million-node entry point.
///
/// # Panics
///
/// As [`run`].
pub fn run_flat<A: Distributed>(
    graph: &PortGraph,
    inputs: &[NodeInput],
    algo: &A,
    rounds: usize,
) -> FlatOutputs {
    run_core(graph, inputs, algo, rounds, false).0
}

/// Runs `algo` for at most `max_rounds` rounds, stopping as soon as every
/// node reports [`Distributed::done`]. Returns the outputs and the number
/// of rounds actually executed — the `rounds_used` the cross-validation
/// harness compares against certificate lower bounds.
///
/// # Panics
///
/// As [`run`].
pub fn run_adaptive<A: Distributed>(
    graph: &PortGraph,
    inputs: &[NodeInput],
    algo: &A,
    max_rounds: usize,
) -> (FlatOutputs, usize) {
    run_core(graph, inputs, algo, max_rounds, true)
}

/// Builds default (empty) inputs for a graph.
pub fn empty_inputs(graph: &PortGraph) -> Vec<NodeInput> {
    vec![NodeInput::default(); graph.node_count()]
}

/// Builds inputs with unique ids `0..n` (optionally shuffled by a caller).
pub fn id_inputs(graph: &PortGraph) -> Vec<NodeInput> {
    (0..graph.node_count())
        .map(|v| NodeInput { id: Some(v as u64), ..NodeInput::default() })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::cycle;

    /// "Flood maximum id" needs exactly the number of rounds = eccentricity.
    struct FloodMax;

    impl Distributed for FloodMax {
        type Message = u64;
        type State = u64;

        fn init(&self, ctx: &NodeCtx<'_>) -> u64 {
            ctx.input.id.expect("FloodMax needs ids")
        }
        fn send(&self, state: &u64, _round: usize, _port: usize) -> u64 {
            *state
        }
        fn receive(&self, state: &mut u64, _round: usize, messages: &[u64]) {
            for &m in messages {
                *state = (*state).max(m);
            }
        }
        fn output(&self, state: &u64) -> Vec<Label> {
            // encode the known max as a label index at both ports (test only)
            vec![Label::from_index(*state as usize); 2]
        }
        fn done(&self, state: &u64) -> bool {
            // test-only convergence signal: a node that knows id 7 is done
            *state == 7
        }
    }

    #[test]
    fn flood_max_converges_in_diameter_rounds() {
        let g = cycle(8);
        let inputs = id_inputs(&g);
        let out = run(&g, &inputs, &FloodMax, 4); // diameter of C8 = 4
        for v in out {
            assert_eq!(v[0].index(), 7);
        }
        // insufficient rounds: some node does not know the max yet
        let g = cycle(8);
        let out = run(&g, &id_inputs(&g), &FloodMax, 2);
        assert!(out.iter().any(|v| v[0].index() != 7));
    }

    #[test]
    fn flat_and_row_runs_agree() {
        let g = cycle(8);
        let inputs = id_inputs(&g);
        let rows = run(&g, &inputs, &FloodMax, 3);
        let flat = run_flat(&g, &inputs, &FloodMax, 3);
        assert_eq!(FlatOutputs::from_rows(&g, &rows), flat);
        assert_eq!(flat.clone().into_rows(&g), rows);
        for (v, row) in rows.iter().enumerate() {
            assert_eq!(flat.node(&g, v), &row[..]);
        }
    }

    #[test]
    fn adaptive_run_stops_at_convergence() {
        // On C8, flooding from node 7 covers all nodes after 4 rounds; the
        // done() probe fires at the start of round 5.
        let g = cycle(8);
        let (out, rounds) = run_adaptive(&g, &id_inputs(&g), &FloodMax, 100);
        assert_eq!(rounds, 4);
        assert!(out.labels.iter().all(|l| l.index() == 7));
        // The budget still caps non-converging runs.
        let (_, capped) = run_adaptive(&g, &id_inputs(&g), &FloodMax, 2);
        assert_eq!(capped, 2);
    }

    #[test]
    #[should_panic(expected = "one input per node")]
    fn input_arity_checked() {
        let g = cycle(4);
        let _ = run(&g, &[], &FloodMax, 1);
    }
}
