//! **Executable Theorem 1** on rings (Δ = 2).
//!
//! On input-labeled rings, a t-round algorithm is exactly a function from
//! (2t+1)-windows of input symbols to a pair of output labels (left port,
//! right port) — §3's view formulation. That makes the *proof* of
//! Theorem 1 executable:
//!
//! * [`derive_half`] builds A_{1/2} from A (outputs at edge neighborhoods
//!   `N^t(e)`, maximalized per Theorem 2 using the ring direction as the
//!   edge orientation);
//! * [`derive_one`] builds A₁ from A_{1/2} (outputs at node neighborhoods
//!   `N^{t-1}(v)`, maximalized using port order);
//! * [`slowdown`] reconstructs a t-round algorithm for Π from a
//!   (t−1)-round algorithm for Π'₁ (the "(2) implies (1)" direction, with
//!   canonical representative choices);
//! * [`check_node_algorithm`] verifies "A solves (Π, rings)" by exhaustive
//!   window enumeration.
//!
//! The windows are read in a fixed direction around the ring; this
//! consistent orientation is itself the symmetry-breaking input Theorem 2
//! requires. Input validity is a local (memoryless) relation on adjacent
//! symbols, which gives the t-independence hypothesis of Theorem 1.

use roundelim_core::error::{Error, Result};
use roundelim_core::label::Label;
use roundelim_core::labelset::LabelSet;
use roundelim_core::problem::Problem;
use roundelim_core::speedup::{FullStep, HalfStep};
use std::collections::HashMap;

/// A class of input-labeled rings: `c` input symbols and a directed local
/// validity relation (`allowed[a][b]` = symbol `b` may follow `a`).
#[derive(Debug, Clone)]
pub struct RingClass {
    c: usize,
    allowed: Vec<Vec<bool>>,
}

impl RingClass {
    /// Rings carrying a proper `c`-coloring (`c ≥ 2`): adjacent symbols
    /// differ. The §4.5 setting.
    pub fn proper_coloring(c: usize) -> RingClass {
        let allowed = (0..c).map(|a| (0..c).map(|b| a != b).collect()).collect();
        RingClass { c, allowed }
    }

    /// Unconstrained input symbols.
    pub fn free(c: usize) -> RingClass {
        RingClass { c, allowed: vec![vec![true; c]; c] }
    }

    /// Number of input symbols.
    pub fn symbols(&self) -> usize {
        self.c
    }

    /// Whether `b` may follow `a` around the ring.
    pub fn step_ok(&self, a: usize, b: usize) -> bool {
        self.allowed[a][b]
    }

    /// Whether a window is locally valid.
    pub fn valid(&self, w: &[usize]) -> bool {
        w.windows(2).all(|p| self.step_ok(p[0], p[1]))
    }

    /// Enumerates all valid windows of the given length.
    pub fn windows(&self, len: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut cur = Vec::with_capacity(len);
        self.rec(len, &mut cur, &mut out);
        out
    }

    fn rec(&self, len: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == len {
            out.push(cur.clone());
            return;
        }
        for s in 0..self.c {
            if cur.last().is_none_or(|&last| self.step_ok(last, s)) {
                cur.push(s);
                self.rec(len, cur, out);
                cur.pop();
            }
        }
    }

    /// Valid right-extensions of a window.
    pub fn right_extensions(&self, w: &[usize]) -> Vec<usize> {
        let last = *w.last().expect("nonempty window");
        (0..self.c).filter(|&x| self.step_ok(last, x)).collect()
    }

    /// Valid left-extensions of a window.
    pub fn left_extensions(&self, w: &[usize]) -> Vec<usize> {
        let first = w[0];
        (0..self.c).filter(|&x| self.step_ok(x, first)).collect()
    }
}

/// A t-round ring algorithm: windows of length `2t+1` → (left-port label,
/// right-port label).
#[derive(Debug, Clone)]
pub struct WindowAlgorithm {
    /// The round count t.
    pub t: usize,
    /// The window table.
    pub map: HashMap<Vec<usize>, (Label, Label)>,
}

impl WindowAlgorithm {
    /// Builds a t-round algorithm from a function over valid windows.
    pub fn from_fn<F>(t: usize, class: &RingClass, mut f: F) -> WindowAlgorithm
    where
        F: FnMut(&[usize]) -> (Label, Label),
    {
        let map = class.windows(2 * t + 1).into_iter().map(|w| {
            let out = f(&w);
            (w, out)
        });
        WindowAlgorithm { t, map: map.collect() }
    }

    fn get(&self, w: &[usize]) -> Result<(Label, Label)> {
        self.map.get(w).copied().ok_or_else(|| Error::Unsupported {
            reason: format!("algorithm has no entry for window {w:?}"),
        })
    }
}

/// A "half-round" algorithm: edge windows of length `2t` → labels at the
/// two node–edge pairs (left endpoint, right endpoint).
#[derive(Debug, Clone)]
pub struct EdgeAlgorithm {
    /// The round parameter t of the source algorithm.
    pub t: usize,
    /// The window table.
    pub map: HashMap<Vec<usize>, (Label, Label)>,
}

impl EdgeAlgorithm {
    fn get(&self, w: &[usize]) -> Result<(Label, Label)> {
        self.map.get(w).copied().ok_or_else(|| Error::Unsupported {
            reason: format!("edge algorithm has no entry for window {w:?}"),
        })
    }
}

/// Verifies that a window algorithm solves `problem` on the ring class:
/// node constraint on every valid (2t+1)-window, edge constraint on every
/// valid (2t+2)-window.
///
/// # Errors
///
/// Returns [`Error::Unsupported`] naming the first violated window, or an
/// arity error if the problem is not a Δ = 2 problem.
pub fn check_node_algorithm(
    alg: &WindowAlgorithm,
    problem: &Problem,
    class: &RingClass,
) -> Result<()> {
    if problem.delta() != 2 {
        return Err(Error::Unsupported {
            reason: format!("ring machinery needs Δ = 2 problems, got Δ = {}", problem.delta()),
        });
    }
    let t = alg.t;
    for w in class.windows(2 * t + 1) {
        let (l, r) = alg.get(&w)?;
        if !problem.node_ok(&[l, r]) {
            return Err(Error::Unsupported {
                reason: format!("node constraint violated on window {w:?}"),
            });
        }
    }
    for w in class.windows(2 * t + 2) {
        let (_, u_right) = alg.get(&w[..2 * t + 1])?;
        let (v_left, _) = alg.get(&w[1..])?;
        if !problem.edge_ok(u_right, v_left) {
            return Err(Error::Unsupported {
                reason: format!("edge constraint violated on window {w:?}"),
            });
        }
    }
    Ok(())
}

fn label_of_meaning(meanings: &[LabelSet], set: &LabelSet) -> Result<Label> {
    meanings.binary_search(set).map(Label::from_index).map_err(|_| Error::Unsupported {
        reason: format!("derived set {set:?} is not a label of the derived problem"),
    })
}

/// Galois closure: all labels compatible (under the arity-2 universal
/// property of `constraint`) with everything in `against`.
fn closure(
    against: &LabelSet,
    constraint: &roundelim_core::constraint::Constraint,
    alphabet_len: usize,
) -> LabelSet {
    let mut out = LabelSet::empty();
    for a in 0..alphabet_len {
        let la = Label::from_index(a);
        if against.iter().all(|b| constraint.contains_labels(&[la, b])) {
            out.insert(la);
        }
    }
    out
}

/// Builds A_{1/2} from a t-round algorithm A for `base` (the "(1) ⇒ (2)"
/// construction of Theorem 1, maximalized per Theorem 2 with the ring
/// direction as the edge orientation).
///
/// `half` must be `half_step_edge(base)`.
///
/// # Errors
///
/// Fails if a derived set-pair is not a label pair of the derived problem,
/// i.e. if A does not actually solve `base` (Theorem 1 would be violated).
pub fn derive_half(
    a: &WindowAlgorithm,
    base: &Problem,
    half: &HalfStep,
    class: &RingClass,
) -> Result<EdgeAlgorithm> {
    let t = a.t;
    if t == 0 {
        return Err(Error::Unsupported { reason: "cannot speed up a 0-round algorithm".into() });
    }
    let n_labels = base.alphabet().len();
    let mut map = HashMap::new();
    for ew in class.windows(2 * t) {
        // O_u: outputs at (u, e) over left extensions (u = left endpoint).
        let mut o_u = LabelSet::empty();
        for x in class.left_extensions(&ew) {
            let mut w = Vec::with_capacity(2 * t + 1);
            w.push(x);
            w.extend_from_slice(&ew);
            let (_, right) = a.get(&w)?;
            o_u.insert(right);
        }
        // O_v: outputs at (v, e) over right extensions.
        let mut o_v = LabelSet::empty();
        for y in class.right_extensions(&ew) {
            let mut w = ew.clone();
            w.push(y);
            let (left, _) = a.get(&w)?;
            o_v.insert(left);
        }
        // Maximalize (Theorem 2): left endpoint first, then right.
        let o_u_max = closure(&o_v, base.edge(), n_labels);
        if !o_u.is_subset(&o_u_max) {
            return Err(Error::Unsupported {
                reason: format!("algorithm violates the edge constraint around window {ew:?}"),
            });
        }
        let o_v_max = closure(&o_u_max, base.edge(), n_labels);
        debug_assert!(o_v.is_subset(&o_v_max));
        let lu = label_of_meaning(&half.meanings, &o_u_max)?;
        let lv = label_of_meaning(&half.meanings, &o_v_max)?;
        map.insert(ew, (lu, lv));
    }
    Ok(EdgeAlgorithm { t, map })
}

/// Builds A₁ from A_{1/2} (the second half of "(1) ⇒ (2)"), producing a
/// (t−1)-round algorithm for Π'₁.
///
/// `half`/`full` must be the two half-steps of `full_step(base)`.
///
/// # Errors
///
/// Fails if a derived set-pair is not a configuration of Π'₁ — which would
/// contradict Theorem 1 for a correct input algorithm.
pub fn derive_one(
    eh: &EdgeAlgorithm,
    step: &FullStep,
    class: &RingClass,
) -> Result<WindowAlgorithm> {
    let t = eh.t;
    let half_problem = &step.half.problem;
    let n_half = half_problem.alphabet().len();
    let mut map = HashMap::new();
    for nw in class.windows(2 * t - 1) {
        // Right edge: N^t(e) = nw ++ [x]; v is the left endpoint of e.
        let mut s_right = LabelSet::empty();
        for x in class.right_extensions(&nw) {
            let mut w = nw.clone();
            w.push(x);
            let (left_label, _) = eh.get(&w)?;
            s_right.insert(left_label);
        }
        // Left edge: N^t(e') = [y] ++ nw; v is the right endpoint.
        let mut s_left = LabelSet::empty();
        for y in class.left_extensions(&nw) {
            let mut w = Vec::with_capacity(2 * t);
            w.push(y);
            w.extend_from_slice(&nw);
            let (_, right_label) = eh.get(&w)?;
            s_left.insert(right_label);
        }
        // Maximalize against the node constraint (port order: left first).
        let s_left_max = closure(&s_right, half_problem.node(), n_half);
        if !s_left.is_subset(&s_left_max) {
            return Err(Error::Unsupported {
                reason: format!("half algorithm violates the node constraint around window {nw:?}"),
            });
        }
        let s_right_max = closure(&s_left_max, half_problem.node(), n_half);
        debug_assert!(s_right.is_subset(&s_right_max));
        let ll = label_of_meaning(&step.full.meanings, &s_left_max)?;
        let lr = label_of_meaning(&step.full.meanings, &s_right_max)?;
        map.insert(nw, (ll, lr));
    }
    Ok(WindowAlgorithm { t: t - 1, map })
}

/// One full speedup of a ring algorithm: Π in t rounds → Π'₁ in t−1.
///
/// # Errors
///
/// Combines the failure modes of [`derive_half`] and [`derive_one`].
pub fn speedup_algorithm(
    a: &WindowAlgorithm,
    base: &Problem,
    step: &FullStep,
    class: &RingClass,
) -> Result<WindowAlgorithm> {
    let eh = derive_half(a, base, &step.half, class)?;
    derive_one(&eh, step, class)
}

/// The converse direction "(2) ⇒ (1)": reconstructs a t-round algorithm
/// for Π from a (t−1)-round algorithm for Π'₁, by canonical representative
/// choices (the proof's A*₋₁/₂ and A*₋₁).
///
/// # Errors
///
/// Fails if the given algorithm's outputs do not admit the representative
/// choices Π'₁'s constraints promise — i.e. if it does not solve Π'₁.
pub fn slowdown(
    a_star: &WindowAlgorithm,
    base: &Problem,
    step: &FullStep,
    class: &RingClass,
) -> Result<WindowAlgorithm> {
    let t = a_star.t + 1;
    let half_problem = &step.half.problem;

    // Stage 1: A*₋₁/₂ on edge windows of length 2t.
    let mut stage1: HashMap<Vec<usize>, (Label, Label)> = HashMap::new();
    for ew in class.windows(2 * t) {
        let lu = a_star.get(&ew[..2 * t - 1])?.1; // u's right port
        let lv = a_star.get(&ew[1..])?.0; // v's left port
        let w_u = &step.full.meanings[lu.index()];
        let w_v = &step.full.meanings[lv.index()];
        // Pick the canonical g_{1/2}-compatible representative pair.
        let mut found = None;
        'outer: for y in w_u.iter() {
            for z in w_v.iter() {
                if half_problem.edge_ok(y, z) {
                    found = Some((y, z));
                    break 'outer;
                }
            }
        }
        let (y, z) = found.ok_or_else(|| Error::Unsupported {
            reason: format!(
                "no g_1/2-compatible representatives on window {ew:?} — A* does not solve Π'₁"
            ),
        })?;
        stage1.insert(ew, (y, z));
    }

    // Stage 2: A*₋₁ on node windows of length 2t+1.
    let mut map = HashMap::new();
    for nw in class.windows(2 * t + 1) {
        let z_left = stage1
            .get(&nw[..2 * t])
            .copied()
            .ok_or_else(|| Error::Unsupported { reason: "missing stage-1 window".into() })?
            .1;
        let y_right = stage1
            .get(&nw[1..])
            .copied()
            .ok_or_else(|| Error::Unsupported { reason: "missing stage-1 window".into() })?
            .0;
        let y_left_set = &step.half.meanings[z_left.index()];
        let y_right_set = &step.half.meanings[y_right.index()];
        let mut found = None;
        'outer2: for a in y_left_set.iter() {
            for b in y_right_set.iter() {
                if base.node_ok(&[a, b]) {
                    found = Some((a, b));
                    break 'outer2;
                }
            }
        }
        let (a, b) = found.ok_or_else(|| Error::Unsupported {
            reason: format!(
                "no h-compatible representatives on window {nw:?} — A*₋₁/₂ does not solve Π'₁/₂"
            ),
        })?;
        map.insert(nw, (a, b));
    }
    Ok(WindowAlgorithm { t, map })
}

#[cfg(test)]
mod tests {
    use super::*;
    use roundelim_core::speedup::{full_step, half_step_edge};
    use roundelim_problems::coloring::coloring;

    /// The 1-round color reduction c → c−1 on rings (recolor the top
    /// color greedily), solving (c−1)-coloring from a proper c-coloring.
    fn reduction_algorithm(c: usize, class: &RingClass) -> WindowAlgorithm {
        WindowAlgorithm::from_fn(1, class, |w| {
            let (x, y, z) = (w[0], w[1], w[2]);
            let color = if y == c - 1 {
                (0..c - 1).find(|&k| k != x && k != z).expect("c ≥ 4 leaves a free color")
            } else {
                y
            };
            (Label::from_index(color), Label::from_index(color))
        })
    }

    #[test]
    fn reduction_solves_coloring() {
        let class = RingClass::proper_coloring(4);
        let a = reduction_algorithm(4, &class);
        let p3 = coloring(3, 2).unwrap();
        check_node_algorithm(&a, &p3, &class).unwrap();
        // And it does NOT solve 2-coloring.
        let p2 = coloring(2, 2).unwrap();
        assert!(check_node_algorithm(&a, &p2, &class).is_err());
    }

    #[test]
    fn theorem1_forward_direction_on_rings() {
        // A solves 3-coloring in 1 round ⇒ A₁ solves Π'₁(3-coloring) in 0.
        let class = RingClass::proper_coloring(4);
        let a = reduction_algorithm(4, &class);
        let p3 = coloring(3, 2).unwrap();
        let step = full_step(&p3).unwrap();
        let a1 = speedup_algorithm(&a, &p3, &step, &class).unwrap();
        assert_eq!(a1.t, 0);
        check_node_algorithm(&a1, step.problem(), &class).unwrap();
    }

    #[test]
    fn theorem1_backward_direction_on_rings() {
        // From the derived 0-round A₁, reconstruct a 1-round algorithm for
        // 3-coloring and verify it.
        let class = RingClass::proper_coloring(4);
        let a = reduction_algorithm(4, &class);
        let p3 = coloring(3, 2).unwrap();
        let step = full_step(&p3).unwrap();
        let a1 = speedup_algorithm(&a, &p3, &step, &class).unwrap();
        let back = slowdown(&a1, &p3, &step, &class).unwrap();
        assert_eq!(back.t, 1);
        check_node_algorithm(&back, &p3, &class).unwrap();
    }

    #[test]
    fn derive_half_is_sinkless_style_edge_algorithm() {
        let class = RingClass::proper_coloring(4);
        let a = reduction_algorithm(4, &class);
        let p3 = coloring(3, 2).unwrap();
        let half = half_step_edge(&p3).unwrap();
        let eh = derive_half(&a, &p3, &half, &class).unwrap();
        // every edge window got an entry
        assert_eq!(eh.map.len(), class.windows(2).len());
    }

    #[test]
    fn zero_round_algorithms_cannot_be_sped_up() {
        let class = RingClass::proper_coloring(3);
        let p3 = coloring(3, 2).unwrap();
        let copy = WindowAlgorithm::from_fn(0, &class, |w| {
            (Label::from_index(w[0]), Label::from_index(w[0]))
        });
        check_node_algorithm(&copy, &p3, &class).unwrap();
        let half = half_step_edge(&p3).unwrap();
        assert!(derive_half(&copy, &p3, &half, &class).is_err());
    }

    #[test]
    fn incorrect_algorithm_detected_during_derivation() {
        // "Output the input color mod 2" does not solve 3-coloring (odd
        // windows clash); derive_half must notice the constraint breach.
        let class = RingClass::proper_coloring(4);
        let bogus = WindowAlgorithm::from_fn(1, &class, |w| {
            (Label::from_index(w[1] % 2), Label::from_index(w[1] % 2))
        });
        let p3 = coloring(3, 2).unwrap();
        assert!(check_node_algorithm(&bogus, &p3, &class).is_err());
        let half = half_step_edge(&p3).unwrap();
        assert!(derive_half(&bogus, &p3, &half, &class).is_err());
    }
}
