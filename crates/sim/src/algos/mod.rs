//! Concrete distributed algorithms: the paper's upper-bound companions.

pub mod cole_vishkin;
pub mod greedy;
pub mod weak2;
