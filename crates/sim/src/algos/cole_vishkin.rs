//! Cole–Vishkin 3-coloring of oriented rings in O(log* n) rounds — the
//! §4.5 upper bound realized as a running algorithm.
//!
//! Phase 1 (log* n + O(1) rounds): iterated bit-index color reduction from
//! IDs down to colors `{0, …, 5}`. Phase 2 (3 rounds): greedy elimination
//! of colors 5, 4, 3.

use crate::runner::{Distributed, NodeCtx};
use roundelim_core::label::Label;

/// Number of Phase-1 iterations needed from an ID space of `bits` bits:
/// iterate `L ← ⌈log₂ L⌉ + 1` until `L ≤ 3` (colors < 8), plus one final
/// iteration at L = 3 that maps colors `{0..7}` into the 6-color fixed
/// point `{0..5}` (`2i + b` with `i < 3`).
pub fn phase1_rounds(bits: u32) -> usize {
    let ceil_log2 = |x: u32| 32 - (x - 1).leading_zeros();
    let mut l = bits.max(3);
    let mut rounds = 0;
    while l > 3 {
        l = ceil_log2(l) + 1;
        rounds += 1;
    }
    rounds + 1
}

/// Total round count of the algorithm for `n` ids.
pub fn total_rounds(n: usize) -> usize {
    let bits = usize::BITS - n.leading_zeros();
    phase1_rounds(bits.max(4)) + 3
}

/// The Cole–Vishkin ring coloring algorithm.
///
/// Requires each node input to carry a unique `id` and an `oriented_away`
/// vector with exactly one `true` port (a consistent ring orientation —
/// the successor direction). Run it for [`total_rounds`]`(n)` rounds.
#[derive(Debug, Clone)]
pub struct ColeVishkin {
    /// Rounds of Phase 1 (computed from n by the caller via
    /// [`total_rounds`]; stored so nodes can switch phases locally).
    pub phase1: usize,
}

impl ColeVishkin {
    /// Creates the algorithm for an instance with `n` ids.
    pub fn for_n(n: usize) -> ColeVishkin {
        let bits = usize::BITS - n.leading_zeros();
        ColeVishkin { phase1: phase1_rounds(bits.max(4)) }
    }
}

/// Node state for [`ColeVishkin`].
#[derive(Debug, Clone)]
pub struct CvState {
    color: u64,
    successor_port: usize,
}

/// One Cole–Vishkin step: from own color and successor color (both
/// distinct), derive a new color `2i + bit_i(own)` where `i` is the least
/// significant differing bit.
pub fn cv_step(own: u64, successor: u64) -> u64 {
    debug_assert_ne!(own, successor, "CV needs distinct colors along pointers");
    let i = (own ^ successor).trailing_zeros() as u64;
    2 * i + ((own >> i) & 1)
}

impl Distributed for ColeVishkin {
    type Message = u64;
    type State = CvState;

    fn init(&self, ctx: &NodeCtx<'_>) -> CvState {
        let successor_port = ctx
            .input
            .oriented_away
            .iter()
            .position(|&away| away)
            .expect("ColeVishkin needs an oriented ring (one away-port per node)");
        CvState { color: ctx.input.id.expect("ColeVishkin needs unique ids"), successor_port }
    }

    fn send(&self, state: &CvState, _round: usize, _port: usize) -> u64 {
        state.color
    }

    fn receive(&self, state: &mut CvState, round: usize, messages: &[u64]) {
        if round < self.phase1 {
            let successor = messages[state.successor_port];
            state.color = cv_step(state.color, successor);
        } else {
            // Phase 2: eliminate color c = 5, 4, 3 in successive rounds.
            let c = (5 - (round - self.phase1)) as u64;
            if state.color == c {
                let used: Vec<u64> = messages.to_vec();
                state.color =
                    (0..c).find(|k| !used.contains(k)).expect("degree 2 < c available colors");
            }
        }
    }

    fn output(&self, state: &CvState) -> Vec<Label> {
        vec![Label::from_index(state.color as usize); 2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::is_valid;
    use crate::generate::cycle;
    use crate::runner::{run, NodeInput};
    use roundelim_problems::coloring::coloring;

    /// Inputs for an oriented ring with shuffled ids.
    pub fn oriented_ring_inputs(n: usize, seed: u64) -> Vec<NodeInput> {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut ids: Vec<u64> = (0..n as u64).collect();
        ids.shuffle(&mut rng);
        (0..n)
            .map(|v| {
                // cycle(n): node v's ports: for v ≥ 1, port 0 → v−1,
                // port 1 → v+1; node 0: port 0 → 1, port 1 → n−1.
                let oriented_away = if v == 0 { vec![true, false] } else { vec![false, true] };
                NodeInput { id: Some(ids[v]), color: None, oriented_away }
            })
            .collect()
    }

    #[test]
    fn cv_step_properties() {
        // distinct inputs give colors < 2·64 and chain-properness:
        {
            let (a, b, c) = (0b1010u64, 0b1000, 0b0110);
            let ab = cv_step(a, b);
            let bc = cv_step(b, c);
            assert_ne!(ab, bc, "consecutive new colors differ when chains differ");
        }
        assert_eq!(cv_step(0b1, 0b0), 1); // bit 0 differs, own bit 1
        assert_eq!(cv_step(0b10, 0b00), 3); // bit 1 differs, own bit 1
    }

    #[test]
    fn colors_rings_properly() {
        for &n in &[4usize, 7, 16, 33, 128] {
            let g = cycle(n);
            let inputs = oriented_ring_inputs(n, n as u64);
            let algo = ColeVishkin::for_n(n);
            let out = run(&g, &inputs, &algo, total_rounds(n));
            let p3 = coloring(3, 2).unwrap();
            // map color index → label index (identity: colors 0..2)
            assert!(is_valid(&p3, &g, &out), "n={n}: {out:?}");
        }
    }

    #[test]
    fn round_count_grows_like_log_star() {
        let r10 = total_rounds(10);
        let r_million = total_rounds(1 << 20);
        assert!(r_million <= r10 + 2, "log* growth: {r10} vs {r_million}");
        assert!(total_rounds(1 << 20) <= 10);
    }
}
