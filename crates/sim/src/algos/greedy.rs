//! Greedy ID-based algorithms: maximal independent set and maximal
//! matching — the problems of the Balliu et al. follow-up lower bounds,
//! here as simple correct upper-bound companions.
//!
//! Both proceed in phases driven by local ID minima, so the worst-case
//! round count is O(n); they exist to *validate the problem encodings*
//! (every output is checked against `roundelim-problems`'s constraints),
//! not to be round-optimal.

use crate::runner::{Distributed, NodeCtx};
use roundelim_core::label::Label;

/// Node status during the greedy MIS computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MisStatus {
    Undecided,
    InMis,
    Covered,
}

/// Greedy MIS: an undecided node joins the MIS when its ID is smaller
/// than all undecided neighbors'; neighbors of MIS nodes become covered.
///
/// Output targets `roundelim_problems::mis::mis(Δ)`:
/// label indices `[A, P, O] = [0, 1, 2]` — `A` on every port of an MIS
/// node, `P` on a covered node's pointer to one MIS neighbor, `O`
/// elsewhere.
#[derive(Debug, Clone, Default)]
pub struct GreedyMis;

/// State for [`GreedyMis`].
#[derive(Debug, Clone)]
pub struct MisState {
    id: u64,
    status: MisStatus,
    /// Port of an MIS neighbor (witness), once covered.
    witness: Option<usize>,
    degree: usize,
}

/// Message: `(id, status_code)` with 0 = undecided, 1 = in MIS, 2 = covered.
pub type MisMsg = (u64, u8);

/// Rounds sufficient for [`GreedyMis`] on any n-node graph.
pub fn mis_rounds(n: usize) -> usize {
    n + 1
}

impl Distributed for GreedyMis {
    type Message = MisMsg;
    type State = MisState;

    fn init(&self, ctx: &NodeCtx<'_>) -> MisState {
        MisState {
            id: ctx.input.id.expect("GreedyMis needs unique ids"),
            status: MisStatus::Undecided,
            witness: None,
            degree: ctx.degree,
        }
    }

    fn send(&self, state: &MisState, _round: usize, _port: usize) -> MisMsg {
        let code = match state.status {
            MisStatus::Undecided => 0,
            MisStatus::InMis => 1,
            MisStatus::Covered => 2,
        };
        (state.id, code)
    }

    fn receive(&self, state: &mut MisState, _round: usize, messages: &[MisMsg]) {
        match state.status {
            MisStatus::InMis | MisStatus::Covered => {
                if state.status == MisStatus::Covered && state.witness.is_none() {
                    state.witness = messages.iter().position(|&(_, c)| c == 1);
                }
            }
            MisStatus::Undecided => {
                // Covered by an MIS neighbor?
                if let Some(p) = messages.iter().position(|&(_, c)| c == 1) {
                    state.status = MisStatus::Covered;
                    state.witness = Some(p);
                    return;
                }
                // Local minimum among undecided neighbors joins.
                let is_min =
                    messages.iter().filter(|&&(_, c)| c == 0).all(|&(nid, _)| state.id < nid);
                if is_min {
                    state.status = MisStatus::InMis;
                }
            }
        }
    }

    fn output(&self, state: &MisState) -> Vec<Label> {
        let a = Label::from_index(0);
        let p = Label::from_index(1);
        let o = Label::from_index(2);
        match state.status {
            MisStatus::InMis => vec![a; state.degree],
            MisStatus::Covered => {
                let w = state.witness.expect("covered nodes saw an MIS neighbor");
                (0..state.degree).map(|q| if q == w { p } else { o }).collect()
            }
            MisStatus::Undecided => {
                // With mis_rounds(n) rounds this cannot happen; emit O's so
                // the checker reports it loudly rather than panicking.
                vec![o; state.degree]
            }
        }
    }

    fn done(&self, state: &MisState) -> bool {
        // A decided node's output is final; covered nodes record their
        // witness at the transition. With random IDs the phases retire
        // nodes geometrically, so `run_adaptive` finishes in O(log n)
        // expected rounds instead of the worst-case mis_rounds(n).
        state.status != MisStatus::Undecided
    }
}

/// Greedy maximal matching: an unmatched node proposes to its
/// smallest-ID unmatched neighbor; mutual proposals match.
///
/// Output targets `roundelim_problems::matching::maximal_matching(Δ)`:
/// label indices `[M, O, P] = [0, 1, 2]` — matched nodes put `M` on the
/// matching port and `O` elsewhere; unmatched nodes (all neighbors
/// matched, by maximality) put `P` everywhere.
#[derive(Debug, Clone, Default)]
pub struct GreedyMatching;

/// State for [`GreedyMatching`].
#[derive(Debug, Clone)]
pub struct MatchState {
    id: u64,
    neighbor_ids: Vec<u64>,
    matched_port: Option<usize>,
    /// Ports whose neighbor is known to be matched (to someone).
    neighbor_matched: Vec<bool>,
    degree: usize,
}

/// Message: `(id, proposes_on_this_port, i_am_matched)`.
pub type MatchMsg = (u64, bool, bool);

/// Rounds sufficient for [`GreedyMatching`] on any n-node graph.
pub fn matching_rounds(n: usize) -> usize {
    2 * n + 2
}

impl Distributed for GreedyMatching {
    type Message = MatchMsg;
    type State = MatchState;

    fn init(&self, ctx: &NodeCtx<'_>) -> MatchState {
        MatchState {
            id: ctx.input.id.expect("GreedyMatching needs unique ids"),
            neighbor_ids: Vec::new(),
            matched_port: None,
            neighbor_matched: vec![false; ctx.degree],
            degree: ctx.degree,
        }
    }

    fn send(&self, state: &MatchState, round: usize, port: usize) -> MatchMsg {
        if round == 0 {
            return (state.id, false, false);
        }
        let proposes = state.matched_port.is_none() && Some(port) == self.proposal_port(state);
        (state.id, proposes, state.matched_port.is_some())
    }

    fn receive(&self, state: &mut MatchState, round: usize, messages: &[MatchMsg]) {
        if round == 0 {
            state.neighbor_ids = messages.iter().map(|&(id, _, _)| id).collect();
            return;
        }
        // Evaluate mutuality against the proposal we actually *sent* this
        // round, i.e. with the pre-update knowledge `send` used.
        if state.matched_port.is_none() {
            if let Some(my_target) = self.proposal_port(state) {
                // Mutual proposal ⇒ matched.
                if messages[my_target].1 {
                    state.matched_port = Some(my_target);
                }
            }
        }
        for (p, &(_, _, matched)) in messages.iter().enumerate() {
            if matched && state.matched_port != Some(p) {
                state.neighbor_matched[p] = true;
            }
        }
    }

    fn output(&self, state: &MatchState) -> Vec<Label> {
        let m = Label::from_index(0);
        let o = Label::from_index(1);
        let p = Label::from_index(2);
        match state.matched_port {
            Some(mp) => (0..state.degree).map(|q| if q == mp { m } else { o }).collect(),
            None => vec![p; state.degree],
        }
    }

    fn done(&self, state: &MatchState) -> bool {
        // Matched nodes are final; an unmatched node is final once every
        // neighbor is known-matched (its all-P output is then maximal).
        // When *all* nodes satisfy this the matching is maximal, so
        // `run_adaptive` may stop.
        state.matched_port.is_some() || state.neighbor_matched.iter().all(|&b| b)
    }
}

impl GreedyMatching {
    /// The port an unmatched node proposes on: its smallest-ID neighbor
    /// not known to be matched.
    fn proposal_port(&self, state: &MatchState) -> Option<usize> {
        (0..state.degree)
            .filter(|&q| !state.neighbor_matched[q])
            .min_by_key(|&q| state.neighbor_ids[q])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::is_valid;
    use crate::generate::{complete, cycle, random_regular};
    use crate::runner::{id_inputs, run};
    use roundelim_problems::matching::maximal_matching;
    use roundelim_problems::mis::mis;

    #[test]
    fn greedy_mis_valid_on_regular_graphs() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for &(n, d) in &[(10usize, 3usize), (16, 5), (12, 4)] {
            let g = random_regular(n, d, 20000, &mut rng).unwrap();
            let out = run(&g, &id_inputs(&g), &GreedyMis, mis_rounds(n));
            let p = mis(d).unwrap();
            assert!(is_valid(&p, &g, &out), "n={n}, d={d}");
        }
    }

    #[test]
    fn greedy_mis_on_complete_graph_is_single_node() {
        let g = complete(5);
        let out = run(&g, &id_inputs(&g), &GreedyMis, mis_rounds(5));
        let in_mis =
            out.iter().filter(|labels| labels.iter().all(|&l| l == Label::from_index(0))).count();
        assert_eq!(in_mis, 1);
    }

    #[test]
    fn greedy_matching_valid_on_graphs() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        for &(n, d) in &[(10usize, 3usize), (16, 5), (14, 4)] {
            let g = random_regular(n, d, 20000, &mut rng).unwrap();
            let out = run(&g, &id_inputs(&g), &GreedyMatching, matching_rounds(n));
            let p = maximal_matching(d).unwrap();
            assert!(is_valid(&p, &g, &out), "n={n}, d={d}");
        }
    }

    #[test]
    fn greedy_matching_on_even_cycle_matches_everyone_or_validates() {
        let g = cycle(8);
        let out = run(&g, &id_inputs(&g), &GreedyMatching, matching_rounds(8));
        let p = maximal_matching(2).unwrap();
        assert!(is_valid(&p, &g, &out));
    }

    #[test]
    fn adaptive_runs_converge_to_valid_outputs() {
        use crate::runner::run_adaptive;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 64;
        let g = random_regular(n, 3, 20000, &mut rng).unwrap();
        let (out, rounds) = run_adaptive(&g, &id_inputs(&g), &GreedyMis, mis_rounds(n));
        assert!(rounds <= mis_rounds(n));
        assert!(is_valid(&mis(3).unwrap(), &g, &out.clone().into_rows(&g)));
        let (out, rounds) = run_adaptive(&g, &id_inputs(&g), &GreedyMatching, matching_rounds(n));
        assert!(rounds <= matching_rounds(n));
        assert!(is_valid(&maximal_matching(3).unwrap(), &g, &out.into_rows(&g)));
    }
}
