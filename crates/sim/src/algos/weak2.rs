//! Weak 2-coloring in O(log* n) rounds — the upper-bound companion of
//! Theorem 4, targeting the pointer version of weak 2-coloring (§4.6).
//!
//! Construction (provably correct on any graph of minimum degree ≥ 1):
//!
//! 1. **Pointer forest**: every node points to its largest-ID neighbor.
//! 2. **Cole–Vishkin** along pointers: a 6-coloring proper along pointer
//!    edges, in log* n + O(1) rounds.
//! 3. **Maximal matching of the pointer pseudoforest** in 6 propose/accept
//!    class rounds (color classes are independent along pointers, so
//!    proposals never collide with acceptances).
//! 4. **Bit assignment**: matched pairs 2-color by ID comparison (mutual,
//!    permanent witnesses); an unmatched node's pointer target is matched
//!    (maximality), so it outputs the opposite of its target's bit.
//!
//! Every node ends with a *witness port* (matching partner or pointer
//! target) whose endpoint provably carries the other color — exactly the
//! `→` pointer of the §4.6 problem encoding.
//!
//! Note on bounds: with IDs from `[n]` this is O(log* n) rounds. The
//! Naor–Stockmeyer O(log* Δ) upper bound additionally exploits
//! order-invariance at constant Δ; the matching Ω(log* Δ) lower bound is
//! the paper's Theorem 4 (see `roundelim-superweak`).

use crate::algos::cole_vishkin::{cv_step, phase1_rounds};
use crate::runner::{Distributed, NodeCtx};
use roundelim_core::label::Label;

/// Total rounds: 1 pointer round + phase-1 CV + 12 matching sub-rounds +
/// 1 bit round.
pub fn total_rounds(n: usize) -> usize {
    let bits = usize::BITS - n.leading_zeros();
    1 + phase1_rounds(bits.max(4)) + 12 + 1
}

/// The message exchanged each round.
#[derive(Debug, Clone, Default)]
pub struct Msg {
    /// ID (round 0) or current CV color (CV rounds).
    payload: u64,
    /// Proposal flag (matching propose sub-rounds, per port).
    propose: bool,
    /// Acceptance flag (matching accept sub-rounds, per port).
    accept: bool,
    /// Final bit, 0/1, or 2 while unset (bit round).
    bit: u8,
}

/// The weak 2-coloring algorithm. Requires unique ids.
#[derive(Debug, Clone)]
pub struct WeakTwoColoring {
    phase1: usize,
}

impl WeakTwoColoring {
    /// Creates the algorithm for an instance with ids below `n`.
    pub fn for_n(n: usize) -> WeakTwoColoring {
        let bits = usize::BITS - n.leading_zeros();
        WeakTwoColoring { phase1: phase1_rounds(bits.max(4)) }
    }

    fn matching_start(&self) -> usize {
        1 + self.phase1
    }

    fn bit_round(&self) -> usize {
        self.matching_start() + 12
    }
}

/// Node state for [`WeakTwoColoring`].
#[derive(Debug, Clone)]
pub struct WeakState {
    id: u64,
    degree: usize,
    neighbor_ids: Vec<u64>,
    color: u64,
    pointer_port: usize,
    /// Matching partner port, if matched.
    partner: Option<usize>,
    /// Accept target for the pending accept sub-round.
    accepting: Option<usize>,
    /// Whether this node proposed in the pending sub-round.
    proposed: bool,
    /// Final output bit (0/1; 2 = unset).
    bit: u8,
}

impl Distributed for WeakTwoColoring {
    type Message = Msg;
    type State = WeakState;

    fn init(&self, ctx: &NodeCtx<'_>) -> WeakState {
        let id = ctx.input.id.expect("weak coloring needs unique ids");
        WeakState {
            id,
            degree: ctx.degree,
            neighbor_ids: Vec::new(),
            color: id,
            pointer_port: 0,
            partner: None,
            accepting: None,
            proposed: false,
            bit: 2,
        }
    }

    fn send(&self, state: &WeakState, round: usize, port: usize) -> Msg {
        let mut m = Msg::default();
        if round == 0 {
            m.payload = state.id;
        } else if round <= self.phase1 {
            m.payload = state.color;
        } else if round < self.bit_round() {
            let sub = round - self.matching_start();
            let class = (sub / 2) as u64;
            if sub.is_multiple_of(2) {
                // Propose sub-round for color class `class`.
                m.propose =
                    state.partner.is_none() && state.color == class && port == state.pointer_port;
            } else {
                // Accept sub-round.
                m.accept = state.accepting == Some(port);
            }
        } else {
            m.bit = state.bit;
        }
        m
    }

    fn receive(&self, state: &mut WeakState, round: usize, messages: &[Msg]) {
        if round == 0 {
            state.neighbor_ids = messages.iter().map(|m| m.payload).collect();
            state.pointer_port =
                (0..messages.len()).max_by_key(|&p| messages[p].payload).expect("degree ≥ 1");
            return;
        }
        if round <= self.phase1 {
            let target = messages[state.pointer_port].payload;
            state.color = cv_step(state.color, target);
            return;
        }
        if round < self.bit_round() {
            let sub = round - self.matching_start();
            if sub.is_multiple_of(2) {
                // Saw proposals; decide acceptance (if still unmatched).
                state.proposed = {
                    let class = (sub / 2) as u64;
                    state.partner.is_none() && state.color == class
                };
                state.accepting = if state.partner.is_none() {
                    (0..messages.len()).find(|&p| messages[p].propose)
                } else {
                    None
                };
                if let Some(p) = state.accepting {
                    state.partner = Some(p);
                }
            } else {
                // Learn acceptance of our proposal.
                if state.proposed && messages[state.pointer_port].accept {
                    state.partner = Some(state.pointer_port);
                }
                state.accepting = None;
                state.proposed = false;
                // Matched nodes can fix their bit as soon as matched.
                if let Some(p) = state.partner {
                    if state.bit == 2 {
                        state.bit = u8::from(state.id > state.neighbor_ids[p]);
                    }
                }
            }
            return;
        }
        // Bit round: unmatched nodes copy the opposite of their target.
        if state.bit == 2 {
            let tb = messages[state.pointer_port].bit;
            debug_assert!(tb < 2, "pointer target is matched by maximality");
            state.bit = 1 - tb;
        }
    }

    fn output(&self, state: &WeakState) -> Vec<Label> {
        let c = state.bit as usize;
        debug_assert!(c < 2, "bit assigned by the final round");
        // Witness: matching partner if matched, else the pointer target.
        let witness = state.partner.unwrap_or(state.pointer_port);
        // weak_coloring_pointer(2, Δ) interns [1→, 1•, 2→, 2•]:
        let arrow = Label::from_index(2 * c);
        let dot = Label::from_index(2 * c + 1);
        (0..state.degree).map(|q| if q == witness { arrow } else { dot }).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::is_valid;
    use crate::generate::{complete, cycle, random_regular};
    use crate::runner::{run, NodeInput};

    fn shuffled_id_inputs(n: usize, seed: u64) -> Vec<NodeInput> {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut ids: Vec<u64> = (0..n as u64).collect();
        ids.shuffle(&mut rng);
        (0..n).map(|v| NodeInput { id: Some(ids[v]), ..NodeInput::default() }).collect()
    }

    #[test]
    fn weak_two_coloring_on_odd_regular_graphs() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for &(n, d) in &[(8usize, 3usize), (16, 5), (20, 3), (24, 7)] {
            let g = random_regular(n, d, 20000, &mut rng).unwrap();
            let p = roundelim_problems::weak::weak_coloring_pointer(2, d).unwrap();
            for seed in 0..3 {
                let algo = WeakTwoColoring::for_n(n);
                let out = run(&g, &shuffled_id_inputs(n, seed), &algo, total_rounds(n));
                assert!(is_valid(&p, &g, &out), "n={n}, d={d}, seed={seed}");
            }
        }
    }

    #[test]
    fn works_on_even_degree_and_rings_too() {
        // Correctness (unlike the Δ-independent *bound*) needs no odd
        // degrees.
        let g = complete(4);
        let p = roundelim_problems::weak::weak_coloring_pointer(2, 3).unwrap();
        let algo = WeakTwoColoring::for_n(4);
        let out = run(&g, &shuffled_id_inputs(4, 7), &algo, total_rounds(4));
        assert!(is_valid(&p, &g, &out));

        let g = cycle(10);
        let p = roundelim_problems::weak::weak_coloring_pointer(2, 2).unwrap();
        let algo = WeakTwoColoring::for_n(10);
        let out = run(&g, &shuffled_id_inputs(10, 8), &algo, total_rounds(10));
        assert!(is_valid(&p, &g, &out));
    }

    #[test]
    fn round_count_is_log_star() {
        assert!(total_rounds(1 << 20) <= total_rounds(16) + 3);
    }
}
