//! Validates distributed outputs against a [`Problem`] — the executable
//! meaning of "algorithm A solves (Π, G)" from §3.
//!
//! A solution assigns one label to each node–edge pair `(v,e)` (i.e. each
//! port); it is valid iff every node's label multiset is in `h(Δ)` and
//! every edge's label pair is in `g(Δ)`.

use crate::graph::PortGraph;
use roundelim_core::label::Label;
use roundelim_core::problem::Problem;
use std::fmt;

/// A constraint violation found by [`check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A node's label multiset is not in `h(Δ)`.
    Node {
        /// The offending node.
        node: usize,
        /// Its per-port labels.
        labels: Vec<Label>,
    },
    /// An edge's label pair is not in `g(Δ)`.
    Edge {
        /// The endpoints.
        nodes: (usize, usize),
        /// The labels at the two endpoints of the edge.
        labels: (Label, Label),
    },
    /// A node's degree differs from the problem's Δ (the checker targets
    /// Δ-regular instances, matching the paper's lower-bound setting).
    Degree {
        /// The offending node.
        node: usize,
        /// Its degree.
        degree: usize,
        /// The problem's Δ.
        delta: usize,
    },
    /// An output vector has the wrong arity for its node.
    OutputArity {
        /// The offending node.
        node: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Node { node, .. } => write!(f, "node {node} violates the node constraint"),
            Violation::Edge { nodes, .. } => {
                write!(f, "edge {{{}, {}}} violates the edge constraint", nodes.0, nodes.1)
            }
            Violation::Degree { node, degree, delta } => {
                write!(f, "node {node} has degree {degree}, problem expects Δ = {delta}")
            }
            Violation::OutputArity { node } => {
                write!(f, "node {node} emitted the wrong number of output labels")
            }
        }
    }
}

/// Checks a full output assignment, returning all violations (empty =
/// valid solution).
pub fn check(problem: &Problem, graph: &PortGraph, outputs: &[Vec<Label>]) -> Vec<Violation> {
    let mut violations = Vec::new();
    let delta = problem.delta();
    assert_eq!(outputs.len(), graph.node_count(), "one output row per node");
    for (v, out) in outputs.iter().enumerate() {
        if graph.degree(v) != delta {
            violations.push(Violation::Degree { node: v, degree: graph.degree(v), delta });
            continue;
        }
        if out.len() != delta {
            violations.push(Violation::OutputArity { node: v });
            continue;
        }
        if !problem.node_ok(out) {
            violations.push(Violation::Node { node: v, labels: out.clone() });
        }
    }
    for (u, pu, v, pv) in graph.edges() {
        let (a, b) = match (outputs[u].get(pu), outputs[v].get(pv)) {
            (Some(&a), Some(&b)) => (a, b),
            _ => continue, // arity violation already recorded
        };
        if !problem.edge_ok(a, b) {
            violations.push(Violation::Edge { nodes: (u, v), labels: (a, b) });
        }
    }
    violations
}

/// Convenience: whether the outputs form a valid solution.
pub fn is_valid(problem: &Problem, graph: &PortGraph, outputs: &[Vec<Label>]) -> bool {
    check(problem, graph, outputs).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::cycle;
    use roundelim_problems::coloring::coloring;

    #[test]
    fn valid_coloring_accepted() {
        let g = cycle(6);
        let p = coloring(3, 2).unwrap();
        let c = |i: usize| Label::from_index(i);
        // alternate colors 0,1 around an even cycle
        let outputs: Vec<Vec<Label>> = (0..6).map(|v| vec![c(v % 2); 2]).collect();
        assert!(is_valid(&p, &g, &outputs));
    }

    #[test]
    fn monochromatic_edge_reported() {
        let g = cycle(5);
        let p = coloring(3, 2).unwrap();
        let c = |i: usize| Label::from_index(i);
        // 0,1,0,1,0 around an odd cycle: nodes 4 and 0 clash.
        let outputs: Vec<Vec<Label>> = (0..5).map(|v| vec![c(v % 2); 2]).collect();
        let vio = check(&p, &g, &outputs);
        assert_eq!(vio.len(), 1);
        assert!(matches!(vio[0], Violation::Edge { nodes: (0, 4), .. }));
    }

    #[test]
    fn node_constraint_enforced() {
        let g = cycle(4);
        let p = coloring(3, 2).unwrap();
        let c = |i: usize| Label::from_index(i);
        // node 0 outputs two different colors: not allowed by h.
        let mut outputs: Vec<Vec<Label>> = (0..4).map(|v| vec![c(v % 2); 2]).collect();
        outputs[0] = vec![c(0), c(1)];
        let vio = check(&p, &g, &outputs);
        assert!(vio.iter().any(|v| matches!(v, Violation::Node { node: 0, .. })));
    }

    #[test]
    fn degree_mismatch_reported() {
        let g = crate::generate::complete(4); // 3-regular
        let p = coloring(3, 2).unwrap(); // Δ = 2
        let outputs: Vec<Vec<Label>> = (0..4).map(|_| vec![Label::from_index(0); 3]).collect();
        let vio = check(&p, &g, &outputs);
        let degree_violations =
            vio.iter().filter(|v| matches!(v, Violation::Degree { .. })).count();
        assert_eq!(degree_violations, 4);
    }
}
