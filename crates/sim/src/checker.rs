//! Validates distributed outputs against a [`Problem`] — the executable
//! meaning of "algorithm A solves (Π, G)" from §3.
//!
//! A solution assigns one label to each node–edge pair `(v,e)` (i.e. each
//! port); it is valid iff every node's label multiset is in `h(Δ)` and
//! every edge's label pair is in `g(Δ)`.
//!
//! Two checkers share the same semantics:
//! - [`check`] materializes every violation — the seed-era shape, right
//!   for small tests that want to inspect what went wrong;
//! - [`check_stream`] is the million-node path: it validates fixed-size
//!   node chunks (each chunk owns its nodes plus the edges whose smaller
//!   endpoint lies inside), keeping only counts and the first few witness
//!   violations. Chunks are merged in chunk order, so the report is
//!   **bit-identical for every thread count**, and with a single chunk the
//!   witness order equals [`check`]'s violation order.

use crate::graph::PortGraph;
use crate::par;
use crate::runner::FlatOutputs;
use roundelim_core::label::Label;
use roundelim_core::problem::Problem;
use std::fmt;

/// A constraint violation found by [`check`] or witnessed by
/// [`check_stream`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A node's label multiset is not in `h(Δ)`.
    Node {
        /// The offending node.
        node: usize,
        /// Its per-port labels.
        labels: Vec<Label>,
    },
    /// An edge's label pair is not in `g(Δ)`.
    Edge {
        /// The endpoints.
        nodes: (usize, usize),
        /// The labels at the two endpoints of the edge.
        labels: (Label, Label),
    },
    /// A node's degree differs from the problem's Δ (the checker targets
    /// Δ-regular instances, matching the paper's lower-bound setting).
    Degree {
        /// The offending node.
        node: usize,
        /// Its degree.
        degree: usize,
        /// The problem's Δ.
        delta: usize,
    },
    /// An output vector has the wrong arity for its node.
    OutputArity {
        /// The offending node.
        node: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Node { node, .. } => write!(f, "node {node} violates the node constraint"),
            Violation::Edge { nodes, .. } => {
                write!(f, "edge {{{}, {}}} violates the edge constraint", nodes.0, nodes.1)
            }
            Violation::Degree { node, degree, delta } => {
                write!(f, "node {node} has degree {degree}, problem expects Δ = {delta}")
            }
            Violation::OutputArity { node } => {
                write!(f, "node {node} emitted the wrong number of output labels")
            }
        }
    }
}

/// Checks a full output assignment, returning all violations (empty =
/// valid solution).
pub fn check(problem: &Problem, graph: &PortGraph, outputs: &[Vec<Label>]) -> Vec<Violation> {
    let mut violations = Vec::new();
    let delta = problem.delta();
    assert_eq!(outputs.len(), graph.node_count(), "one output row per node");
    for (v, out) in outputs.iter().enumerate() {
        if graph.degree(v) != delta {
            violations.push(Violation::Degree { node: v, degree: graph.degree(v), delta });
            continue;
        }
        if out.len() != delta {
            violations.push(Violation::OutputArity { node: v });
            continue;
        }
        if !problem.node_ok(out) {
            violations.push(Violation::Node { node: v, labels: out.clone() });
        }
    }
    for (u, pu, v, pv) in graph.edges() {
        let (a, b) = match (outputs[u].get(pu), outputs[v].get(pv)) {
            (Some(&a), Some(&b)) => (a, b),
            _ => continue, // arity violation already recorded
        };
        if !problem.edge_ok(a, b) {
            violations.push(Violation::Edge { nodes: (u, v), labels: (a, b) });
        }
    }
    violations
}

/// Convenience: whether the outputs form a valid solution.
pub fn is_valid(problem: &Problem, graph: &PortGraph, outputs: &[Vec<Label>]) -> bool {
    check(problem, graph, outputs).is_empty()
}

/// Nodes per streaming chunk. Fixed (not derived from the thread count) so
/// chunk boundaries — and therefore witness selection — are identical for
/// every `ROUNDELIM_THREADS`.
pub const STREAM_CHUNK: usize = 1 << 14;

/// Options for [`check_stream`].
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Keep at most this many witness violations (counts are always exact).
    pub max_witnesses: usize,
    /// Worker threads; 0 resolves `ROUNDELIM_THREADS` / all cores.
    pub threads: usize,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions { max_witnesses: 8, threads: 0 }
    }
}

/// The result of a streaming check: exact violation counts plus the first
/// few witnesses in deterministic (chunk, node/edge) order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CheckReport {
    /// Nodes examined.
    pub nodes_checked: u64,
    /// Edges examined.
    pub edges_checked: u64,
    /// Nodes whose degree differs from the problem's Δ.
    pub degree_violations: u64,
    /// Nodes whose label multiset is outside `h(Δ)`.
    pub node_violations: u64,
    /// Edges whose label pair is outside `g(Δ)`.
    pub edge_violations: u64,
    /// The first [`CheckOptions::max_witnesses`] violations.
    pub witnesses: Vec<Violation>,
}

impl CheckReport {
    /// Total violations of all kinds.
    pub fn total_violations(&self) -> u64 {
        self.degree_violations + self.node_violations + self.edge_violations
    }

    /// Whether the outputs form a valid solution.
    pub fn is_valid(&self) -> bool {
        self.total_violations() == 0
    }

    fn absorb(&mut self, other: CheckReport, max_witnesses: usize) {
        self.nodes_checked += other.nodes_checked;
        self.edges_checked += other.edges_checked;
        self.degree_violations += other.degree_violations;
        self.node_violations += other.node_violations;
        self.edge_violations += other.edge_violations;
        for w in other.witnesses {
            if self.witnesses.len() >= max_witnesses {
                break;
            }
            self.witnesses.push(w);
        }
    }
}

/// Streaming validity check over flat per-port outputs: same verdict as
/// [`check`] (property-tested), but O(chunk) transient memory and exact
/// counts instead of a materialized violation list.
///
/// # Panics
///
/// Panics if `outputs` is not aligned with `graph` (one label per port).
pub fn check_stream(
    problem: &Problem,
    graph: &PortGraph,
    outputs: &FlatOutputs,
    opts: &CheckOptions,
) -> CheckReport {
    assert_eq!(outputs.labels.len(), graph.total_ports(), "one output label per port");
    let threads = par::resolve_threads(opts.threads);
    let n = graph.node_count();
    let chunks = n.div_ceil(STREAM_CHUNK);
    let partials = par::map_indexed(chunks, threads, |c| {
        let lo = c * STREAM_CHUNK;
        let hi = (lo + STREAM_CHUNK).min(n);
        check_chunk(problem, graph, outputs, lo, hi, opts.max_witnesses)
    });
    let mut report = CheckReport::default();
    for p in partials {
        report.absorb(p, opts.max_witnesses);
    }
    report
}

/// Checks nodes `lo..hi` and the edges whose smaller endpoint lies in
/// `lo..hi`. Witnesses: nodes first (in node order), then edges — matching
/// [`check`]'s order within the chunk.
fn check_chunk(
    problem: &Problem,
    graph: &PortGraph,
    outputs: &FlatOutputs,
    lo: usize,
    hi: usize,
    max_witnesses: usize,
) -> CheckReport {
    let delta = problem.delta();
    let node_constraint = problem.node();
    let mut report = CheckReport::default();
    let mut scratch: Vec<Label> = Vec::with_capacity(delta);
    for v in lo..hi {
        report.nodes_checked += 1;
        let degree = graph.degree(v);
        if degree != delta {
            report.degree_violations += 1;
            if report.witnesses.len() < max_witnesses {
                report.witnesses.push(Violation::Degree { node: v, degree, delta });
            }
            continue;
        }
        let labels = outputs.node(graph, v);
        scratch.clear();
        scratch.extend_from_slice(labels);
        scratch.sort_unstable();
        if !node_constraint.contains_sorted(&scratch) {
            report.node_violations += 1;
            if report.witnesses.len() < max_witnesses {
                report.witnesses.push(Violation::Node { node: v, labels: labels.to_vec() });
            }
        }
    }
    for v in lo..hi {
        let off = graph.port_offset(v);
        for (p, t) in graph.ports(v).iter().enumerate() {
            if (v as u32) < t.node {
                report.edges_checked += 1;
                let a = outputs.labels[off + p];
                let b = outputs.labels[graph.port_offset(t.node_ix()) + t.port_ix()];
                if !problem.edge_ok(a, b) {
                    report.edge_violations += 1;
                    if report.witnesses.len() < max_witnesses {
                        report
                            .witnesses
                            .push(Violation::Edge { nodes: (v, t.node_ix()), labels: (a, b) });
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::cycle;
    use roundelim_problems::coloring::coloring;

    #[test]
    fn valid_coloring_accepted() {
        let g = cycle(6);
        let p = coloring(3, 2).unwrap();
        let c = |i: usize| Label::from_index(i);
        // alternate colors 0,1 around an even cycle
        let outputs: Vec<Vec<Label>> = (0..6).map(|v| vec![c(v % 2); 2]).collect();
        assert!(is_valid(&p, &g, &outputs));
        let flat = FlatOutputs::from_rows(&g, &outputs);
        let report = check_stream(&p, &g, &flat, &CheckOptions::default());
        assert!(report.is_valid());
        assert_eq!(report.nodes_checked, 6);
        assert_eq!(report.edges_checked, 6);
        assert!(report.witnesses.is_empty());
    }

    #[test]
    fn monochromatic_edge_reported() {
        let g = cycle(5);
        let p = coloring(3, 2).unwrap();
        let c = |i: usize| Label::from_index(i);
        // 0,1,0,1,0 around an odd cycle: nodes 4 and 0 clash.
        let outputs: Vec<Vec<Label>> = (0..5).map(|v| vec![c(v % 2); 2]).collect();
        let vio = check(&p, &g, &outputs);
        assert_eq!(vio.len(), 1);
        assert!(matches!(vio[0], Violation::Edge { nodes: (0, 4), .. }));
        // The streaming checker agrees, including the witness.
        let flat = FlatOutputs::from_rows(&g, &outputs);
        let report = check_stream(&p, &g, &flat, &CheckOptions::default());
        assert_eq!(report.edge_violations, 1);
        assert_eq!(report.total_violations(), 1);
        assert_eq!(report.witnesses, vio);
    }

    #[test]
    fn node_constraint_enforced() {
        let g = cycle(4);
        let p = coloring(3, 2).unwrap();
        let c = |i: usize| Label::from_index(i);
        // node 0 outputs two different colors: not allowed by h.
        let mut outputs: Vec<Vec<Label>> = (0..4).map(|v| vec![c(v % 2); 2]).collect();
        outputs[0] = vec![c(0), c(1)];
        let vio = check(&p, &g, &outputs);
        assert!(vio.iter().any(|v| matches!(v, Violation::Node { node: 0, .. })));
        let flat = FlatOutputs::from_rows(&g, &outputs);
        let report = check_stream(&p, &g, &flat, &CheckOptions::default());
        assert_eq!(report.node_violations, 1);
        assert_eq!(report.total_violations(), vio.len() as u64);
    }

    #[test]
    fn degree_mismatch_reported() {
        let g = crate::generate::complete(4); // 3-regular
        let p = coloring(3, 2).unwrap(); // Δ = 2
        let outputs: Vec<Vec<Label>> = (0..4).map(|_| vec![Label::from_index(0); 3]).collect();
        let vio = check(&p, &g, &outputs);
        let degree_violations =
            vio.iter().filter(|v| matches!(v, Violation::Degree { .. })).count();
        assert_eq!(degree_violations, 4);
        let flat = FlatOutputs::from_rows(&g, &outputs);
        let report = check_stream(&p, &g, &flat, &CheckOptions::default());
        assert_eq!(report.degree_violations, 4);
    }

    #[test]
    fn witness_cap_keeps_counts_exact() {
        let g = cycle(8);
        let p = coloring(3, 2).unwrap();
        // Everyone outputs color 0: every edge is monochromatic.
        let rows: Vec<Vec<Label>> = (0..8).map(|_| vec![Label::from_index(0); 2]).collect();
        let flat = FlatOutputs::from_rows(&g, &rows);
        let report = check_stream(&p, &g, &flat, &CheckOptions { max_witnesses: 3, threads: 1 });
        assert_eq!(report.edge_violations, 8);
        assert_eq!(report.witnesses.len(), 3);
    }

    #[test]
    fn stream_report_is_thread_invariant() {
        let g = cycle(9);
        let p = coloring(3, 2).unwrap();
        let rows: Vec<Vec<Label>> = (0..9).map(|v| vec![Label::from_index(v % 3); 2]).collect();
        let flat = FlatOutputs::from_rows(&g, &rows);
        let one = check_stream(&p, &g, &flat, &CheckOptions { max_witnesses: 4, threads: 1 });
        for threads in [2, 4, 8] {
            let multi = check_stream(&p, &g, &flat, &CheckOptions { max_witnesses: 4, threads });
            assert_eq!(multi, one);
        }
    }
}
