//! Diffs the current `BENCH_speedup.json` against a baseline from a
//! previous CI run, failing when any case regressed past the threshold.
//!
//! ```text
//! bench_diff <baseline.json> <current.json> [--threshold 1.5]
//! ```
//!
//! Exit codes: 0 = no regression, 1 = regression found, 2 = usage/IO error.
//! Cases present in only one document are reported but never fail the run
//! (benchmarks get added and retired; the diff polices the shared ones).

use roundelim_bench::diff_benchmarks;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(base_path), Some(cur_path)) = (args.first(), args.get(1)) else {
        eprintln!("usage: bench_diff <baseline.json> <current.json> [--threshold X]");
        return ExitCode::from(2);
    };
    let threshold: f64 = match args.iter().position(|a| a == "--threshold") {
        None => 1.5,
        Some(ix) => match args.get(ix + 1).and_then(|v| v.parse().ok()) {
            Some(t) => t,
            None => {
                eprintln!("--threshold needs a number");
                return ExitCode::from(2);
            }
        },
    };
    let read = |p: &str| {
        std::fs::read_to_string(p).map_err(|e| {
            eprintln!("{p}: {e}");
            ExitCode::from(2)
        })
    };
    let (baseline, current) = match (read(base_path), read(cur_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    match diff_benchmarks(&baseline, &current, threshold) {
        Err(e) => {
            eprintln!("bench_diff: {e}");
            ExitCode::from(2)
        }
        Ok(report) => {
            for line in &report.lines {
                println!("{line}");
            }
            for line in &report.unmatched {
                println!("(unmatched) {line}");
            }
            if report.regressions.is_empty() {
                println!("no regressions past {threshold}x");
                ExitCode::SUCCESS
            } else {
                println!("REGRESSIONS past {threshold}x:");
                for line in &report.regressions {
                    println!("  {line}");
                }
                ExitCode::FAILURE
            }
        }
    }
}
