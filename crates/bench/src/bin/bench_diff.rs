//! Diffs the current `BENCH_speedup.json` against a baseline from a
//! previous CI run, failing when any case regressed past the threshold
//! **or** a baseline case is missing from the current run (a silently
//! dropped benchmark must not pass CI). Improvements past the same
//! threshold are printed with their ratio so wins show up in the log.
//!
//! ```text
//! bench_diff <baseline.json> <current.json> [--threshold 1.5]
//! ```
//!
//! Exit codes: 0 = no regression and no missing case, 1 = regression or
//! missing case, 2 = usage/IO error. New cases (present only in the
//! current document) are reported but never fail the run.

use roundelim_bench::diff_benchmarks;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(base_path), Some(cur_path)) = (args.first(), args.get(1)) else {
        eprintln!("usage: bench_diff <baseline.json> <current.json> [--threshold X]");
        return ExitCode::from(2);
    };
    let threshold: f64 = match args.iter().position(|a| a == "--threshold") {
        None => 1.5,
        Some(ix) => match args.get(ix + 1).and_then(|v| v.parse().ok()) {
            Some(t) => t,
            None => {
                eprintln!("--threshold needs a number");
                return ExitCode::from(2);
            }
        },
    };
    let read = |p: &str| {
        std::fs::read_to_string(p).map_err(|e| {
            eprintln!("{p}: {e}");
            ExitCode::from(2)
        })
    };
    let (baseline, current) = match (read(base_path), read(cur_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    match diff_benchmarks(&baseline, &current, threshold) {
        Err(e) => {
            eprintln!("bench_diff: {e}");
            ExitCode::from(2)
        }
        Ok(report) => {
            for line in &report.lines {
                println!("{line}");
            }
            for line in &report.new_cases {
                println!("(new) {line}");
            }
            if !report.scaling.is_empty() {
                println!("THREAD SCALING (current run):");
                for line in &report.scaling {
                    println!("  {line}");
                }
            }
            if !report.improvements.is_empty() {
                println!("IMPROVEMENTS past {threshold}x:");
                for line in &report.improvements {
                    println!("  {line}");
                }
            }
            let mut failed = false;
            if !report.missing.is_empty() {
                failed = true;
                println!("MISSING families (present in baseline, absent now):");
                for line in &report.missing {
                    println!("  {line}");
                }
            }
            if !report.regressions.is_empty() {
                failed = true;
                println!("REGRESSIONS past {threshold}x:");
                for line in &report.regressions {
                    println!("  {line}");
                }
            }
            if failed {
                ExitCode::FAILURE
            } else {
                println!("no regressions past {threshold}x, no missing families");
                ExitCode::SUCCESS
            }
        }
    }
}
