//! Perf-trajectory smoke harness: runs the speedup benchmark families in
//! sample mode and writes `BENCH_speedup.json` (per-`(family, parameter)`
//! median ns) to the current directory — CI archives the file so future
//! changes have a baseline to diff against.
//!
//! Families and parameters mirror `benches/speedup.rs`:
//!
//! * `E1_sinkless_full_step` — Δ = 3..=10
//! * `E2_coloring_half_step` — k = 3..=7
//! * `E3_weak2_full_step`    — Δ = 3, 5, 7, 9, 11
//! * `A1_autolb_sinkless`    — Δ = 3..=6 (full `roundelim-auto` search:
//!   canonical-form cache, relaxation closure, cycle certificate, verify)
//! * `A2_autolb_coloring`    — k = 3 at Δ = 3, beam 6 (the relax-closure
//!   stress case: oversized intermediates, subset-row pruning, fingerprint
//!   dedup)
//! * `D1_daemon_warm_vs_cold` — coloring:3:3 solved cold (param 0, the
//!   A2 search) vs served warm from a `roundelimd` proof store (param 1,
//!   canonical lookup + stored certificate); asserts warm is ≥100× below
//!   cold
//! * `O1_trace_overhead`     — the E3/9 full step with observability
//!   probes disarmed (param 0; must stay within 2% + 250 µs of the bare
//!   E3/9 number measured in the same run) and with a trace actively
//!   recording (param 1, the armed cost: clock reads + event buffering)
//! * `S1_generate_regular`   — seeded random Δ-regular graph at n = 10⁵,
//!   Δ = 3, 4 (single worker: the CSR build + matching-union hot path)
//! * `S2_stream_check`       — streaming checker over a valid 2-coloring
//!   of a 2¹⁷-node ring (single worker: the chunked per-edge hot path)
//!
//! The `A*` searches share the process-wide exact `full_step` memo, so
//! from the second iteration on they measure the steady-state search —
//! relax closure, canonicalization, 0-round goal checks — rather than
//! recomputing identical speedups; that is exactly the subsystem these
//! families exist to track.
//!
//! Keep this fast (seconds, not minutes): it is a smoke job, not a
//! statistics job. Set `BENCH_SMOKE_OUT` to change the output path.

use roundelim_auto::certificate::Direction;
use roundelim_auto::search::{autolb, SearchOptions, Verdict};
use roundelim_bench::{calibrate_iters, measure, to_json, Measurement};
use roundelim_core::label::Label;
use roundelim_core::speedup::{full_step, half_step_edge};
use roundelim_daemon::ProofStore;
use roundelim_problems::coloring::coloring;
use roundelim_problems::sinkless::{sinkless_coloring, sinkless_orientation};
use roundelim_problems::weak::weak_coloring_pointer;
use roundelim_sim::checker::{check_stream, CheckOptions};
use roundelim_sim::generate::{cycle, random_regular_seeded};
use roundelim_sim::runner::FlatOutputs;
use std::hint::black_box;

const SAMPLES: usize = 5;
/// Per-sample time budget: enough to amortize timer noise on µs-scale
/// cases without stretching the slow ones.
const BUDGET_NS: u64 = 20_000_000;

fn case(out: &mut Vec<Measurement>, family: &str, param: usize, mut f: impl FnMut()) {
    let iters = calibrate_iters(BUDGET_NS, &mut f);
    let median_ns = measure(SAMPLES, iters, &mut f);
    println!("bench-smoke {family}/{param}: {median_ns} ns/iter ({iters} iters)");
    out.push(Measurement { family: family.to_owned(), param, median_ns, iters });
}

fn main() {
    let mut results: Vec<Measurement> = Vec::new();

    for delta in 3..=10 {
        let p = sinkless_coloring(delta).expect("valid Δ");
        case(&mut results, "E1_sinkless_full_step", delta, || {
            black_box(full_step(&p).expect("no overflow"));
        });
    }
    for k in 3..=7 {
        let p = coloring(k, 2).expect("valid k");
        case(&mut results, "E2_coloring_half_step", k, || {
            black_box(half_step_edge(&p).expect("no overflow"));
        });
    }
    for delta in [3usize, 5, 7, 9, 11] {
        let p = weak_coloring_pointer(2, delta).expect("valid Δ");
        case(&mut results, "E3_weak2_full_step", delta, || {
            black_box(full_step(&p).expect("no overflow"));
        });
    }
    // The observability tax, measured back to back with the E3/9 step it
    // re-runs (before the A* searches perturb allocator state). Param 0
    // is the same full step with no trace sink installed: every probe on
    // the path is one relaxed atomic load, so the number must sit on top
    // of the bare E3/9 median from the same run (2% + a 250 µs noise
    // floor — the same code compiled, so a miss means the disarmed path
    // grew a clock read or a lock). Param 1 records a live trace around
    // the same step, keeping the armed cost (clock reads + per-thread
    // event buffering) visible in the BENCH_speedup.json trajectory for
    // bench_diff to gate.
    {
        let p = weak_coloring_pointer(2, 9).expect("valid Δ");
        case(&mut results, "O1_trace_overhead", 0, || {
            black_box(full_step(&p).expect("no overflow"));
        });
        let median = |family: &str, param: usize| {
            results
                .iter()
                .find(|m| m.family == family && m.param == param)
                .expect("measured above")
                .median_ns
        };
        let (bare, disarmed) = (median("E3_weak2_full_step", 9), median("O1_trace_overhead", 0));
        assert!(
            disarmed <= bare + bare / 50 + 250_000,
            "disarmed tracing must stay within 2% of the bare step: \
             bare {bare} ns, with probes {disarmed} ns"
        );
        let trace_path =
            std::env::temp_dir().join(format!("roundelim-bench-o1-{}.jsonl", std::process::id()));
        roundelim_obs::trace::install(trace_path.clone(), |path, contents| {
            std::fs::write(path, contents).map_err(|e| e.to_string())
        })
        .expect("install the O1 trace sink");
        case(&mut results, "O1_trace_overhead", 1, || {
            black_box(full_step(&p).expect("no overflow"));
        });
        roundelim_obs::trace::finish().expect("finish the O1 trace");
        let _ = std::fs::remove_file(&trace_path);
    }

    // The autolb hot path end to end: search (cache + relax closure +
    // parallel step stage) plus the certificate replay. Single worker so
    // the number is comparable across differently-sized CI boxes.
    let opts = SearchOptions { threads: 1, ..SearchOptions::default() };
    for delta in 3..=6 {
        let p = sinkless_orientation(delta).expect("valid Δ");
        case(&mut results, "A1_autolb_sinkless", delta, || {
            let out = autolb(&p, &opts).expect("search succeeds");
            assert!(matches!(out.verdict, Verdict::Unbounded), "§4.4 fixed point expected");
            black_box(out);
        });
    }
    // coloring:3:3 at the acceptance budget (beam 6, steps 6, ≤10 labels):
    // dominated by the relax closure over big-alphabet intermediates.
    let c33_opts = SearchOptions {
        threads: 1,
        max_steps: 6,
        beam_width: 6,
        max_labels: 10,
        ..SearchOptions::default()
    };
    let c33 = coloring(3, 3).expect("valid k");
    case(&mut results, "A2_autolb_coloring", 3, || {
        let out = autolb(&c33, &c33_opts).expect("search succeeds");
        assert!(
            matches!(out.verdict, Verdict::LowerBound { rounds } if rounds >= 2),
            "coloring:3:3 must certify at least LB 2 at this budget"
        );
        black_box(out);
    });

    // The same acceptance search across worker-thread counts (param =
    // thread count). The family's `_threads` suffix tells bench_diff to
    // print the speedup curve relative to the 1-thread median; the
    // 4-thread entry is the scaling acceptance number (≥2× over 1 thread
    // on a 4-core box). Thread counts above the host's core count would
    // only measure oversubscription noise, so the sweep stops at 4.
    for threads in [1usize, 2, 4] {
        let opts = SearchOptions { threads, ..c33_opts.clone() };
        case(&mut results, "A4_autolb_threads", threads, || {
            let out = autolb(&c33, &opts).expect("search succeeds");
            black_box(out);
        });
    }

    // The roundelimd proof cache: param 0 (cold) is the full coloring:3:3
    // search at the same budget as A2; param 1 (warm) is the same verdict
    // served from a populated proof store — a canonical-form lookup plus
    // the stored certificate, no search. The gap is the daemon's whole
    // reason to exist, so the harness pins it at ≥100× here (and CI's
    // acceptance flow re-checks it over TCP).
    {
        let dir = std::env::temp_dir().join(format!("roundelim-bench-d1-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("bench scratch dir");
        let mut store = ProofStore::open(&dir).expect("open proof store");
        let seeded = autolb(&c33, &c33_opts).expect("search succeeds");
        store
            .insert(c33.clone(), seeded.certificate.expect("coloring:3:3 certifies"))
            .expect("seed the proof store");
        case(&mut results, "D1_daemon_warm_vs_cold", 0, || {
            let out = autolb(&c33, &c33_opts).expect("search succeeds");
            black_box(out);
        });
        case(&mut results, "D1_daemon_warm_vs_cold", 1, || {
            let hit = store.lookup(&c33, Direction::Lower).expect("seeded store must hit");
            black_box(hit);
        });
        let median = |param| {
            results
                .iter()
                .find(|m| m.family == "D1_daemon_warm_vs_cold" && m.param == param)
                .expect("just measured")
                .median_ns
        };
        let (cold, warm) = (median(0), median(1));
        assert!(
            cold >= 100 * warm,
            "warm hit must be ≥100× below the cold search: cold {cold} ns, warm {warm} ns"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Million-node-path smoke: graph generation and the streaming checker
    // at a size where the CSR layout and chunking dominate, single worker
    // so the number is comparable across differently-sized CI boxes.
    for delta in [3usize, 4] {
        case(&mut results, "S1_generate_regular", delta, || {
            let g = random_regular_seeded(100_000, delta, 64, 0xC0FFEE, 1)
                .expect("regular graph at this size");
            assert!(g.is_regular(delta));
            black_box(g);
        });
    }
    {
        let n = 1 << 17;
        let g = cycle(n);
        let p = coloring(3, 2).expect("valid k");
        let rows: Vec<Vec<Label>> = (0..n).map(|v| vec![Label::from_index(v % 2); 2]).collect();
        let flat = FlatOutputs::from_rows(&g, &rows);
        let opts = CheckOptions { threads: 1, ..CheckOptions::default() };
        case(&mut results, "S2_stream_check", n, || {
            let report = check_stream(&p, &g, &flat, &opts);
            assert!(report.is_valid(), "the alternating ring coloring is valid");
            black_box(report);
        });
    }

    let path = std::env::var("BENCH_SMOKE_OUT").unwrap_or_else(|_| "BENCH_speedup.json".to_owned());
    roundelim_core::io::atomic_write(&path, to_json(&results)).expect("write BENCH_speedup.json");
    println!("wrote {path} ({} cases)", results.len());
}
