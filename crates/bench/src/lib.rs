//! Benchmark support for the round-elimination workspace.
//!
//! The statistical benchmarks live in `benches/` (run with `cargo bench`).
//! This library holds the shared measurement helpers behind the
//! `bench_smoke` binary, which runs the speedup families in sample mode
//! and emits `BENCH_speedup.json` — a per-`(family, parameter)` median-ns
//! record that CI archives so successive PRs have a perf trajectory to
//! compare against.

use std::time::Instant;

/// One measured benchmark case.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark family, e.g. `E1_sinkless_full_step`.
    pub family: String,
    /// Family parameter (Δ or k).
    pub param: usize,
    /// Median wall-clock nanoseconds per iteration.
    pub median_ns: u64,
    /// Iterations per sample the median was taken over.
    pub iters: u32,
}

/// Measures `f` in sample mode: one warm-up call, then `samples` timed
/// batches of `iters` iterations each; returns the median per-iteration
/// nanoseconds. `iters` is chosen by the caller to amortize timer noise on
/// fast cases (sub-µs work needs hundreds of iterations per batch).
pub fn measure<F: FnMut()>(samples: usize, iters: u32, mut f: F) -> u64 {
    assert!(samples > 0 && iters > 0);
    f(); // warm-up (first call pays lazy caches and allocator warmup)
    let mut per_iter: Vec<u64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        per_iter.push(start.elapsed().as_nanos() as u64 / u64::from(iters));
    }
    per_iter.sort_unstable();
    per_iter[per_iter.len() / 2]
}

/// Picks an iteration count that spends roughly `budget_ns` per sample,
/// based on one throwaway timing of `f` (clamped to `[1, 10_000]`). The
/// probe runs after a warm-up call so lazy caches and allocator warmup do
/// not deflate the first family's iteration count.
pub fn calibrate_iters<F: FnMut()>(budget_ns: u64, mut f: F) -> u32 {
    f(); // warm-up: the timed probe should see steady-state cost
    let start = Instant::now();
    f();
    let once = start.elapsed().as_nanos().max(1) as u64;
    (budget_ns / once).clamp(1, 10_000) as u32
}

/// Renders measurements as the `BENCH_speedup.json` document.
///
/// Hand-rolled writer: the workspace's offline serde stub ships no data
/// format, and the schema is a flat list of records.
pub fn to_json(measurements: &[Measurement]) -> String {
    let mut out = String::from("{\n  \"schema\": \"roundelim-bench-v1\",\n  \"results\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"param\": {}, \"median_ns\": {}, \"iters\": {}}}{}\n",
            m.family,
            m.param,
            m.median_ns,
            m.iters,
            if i + 1 < measurements.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The outcome of diffing two `BENCH_speedup.json` documents.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// One formatted line per case present in both documents.
    pub lines: Vec<String>,
    /// Cases whose `median_ns` grew by more than the threshold factor.
    pub regressions: Vec<String>,
    /// Cases whose `median_ns` shrank by more than the threshold factor
    /// (reported so a perf win is visible in the CI log, not just the
    /// absence of a failure).
    pub improvements: Vec<String>,
    /// Cases only present in the current document (new benchmarks).
    pub new_cases: Vec<String>,
    /// Cases present in the baseline but absent from the current document.
    /// A silently dropped benchmark must fail the run — otherwise removing
    /// a family would pass CI while losing its perf coverage.
    pub missing: Vec<String>,
    /// Thread-scaling curves from the *current* document: for every family
    /// named `*_threads` the parameter is a worker-thread count, and each
    /// line reports the speedup of the N-thread median over the 1-thread
    /// median from the same run. Informational (machine-local by nature);
    /// cross-run regressions on these cases are still gated per
    /// `(family, param)` like everything else.
    pub scaling: Vec<String>,
}

/// Parses a `BENCH_speedup.json` document into `(family, param) → median_ns`.
fn parse_results(doc: &str) -> Result<Vec<(String, u64, u64)>, String> {
    let v = roundelim_auto::json::Json::parse(doc)?;
    let results = v
        .get("results")
        .and_then(roundelim_auto::json::Json::as_arr)
        .ok_or("missing `results` array")?;
    results
        .iter()
        .map(|r| {
            let family = r
                .get("family")
                .and_then(roundelim_auto::json::Json::as_str)
                .ok_or("case without `family`")?;
            let param = r
                .get("param")
                .and_then(roundelim_auto::json::Json::as_u64)
                .ok_or("case without `param`")?;
            let ns = r
                .get("median_ns")
                .and_then(roundelim_auto::json::Json::as_u64)
                .ok_or("case without `median_ns`")?;
            Ok((family.to_owned(), param, ns))
        })
        .collect()
}

/// Diffs a current `BENCH_speedup.json` against a baseline: a case
/// *regresses* when `current > baseline × threshold`. Sub-microsecond
/// baselines are skipped (timer noise dominates them).
///
/// # Errors
///
/// Returns a description of the first malformed document.
pub fn diff_benchmarks(
    baseline: &str,
    current: &str,
    threshold: f64,
) -> Result<DiffReport, String> {
    let base = parse_results(baseline)?;
    let cur = parse_results(current)?;
    let mut report = DiffReport::default();
    for (family, param, cur_ns) in &cur {
        match base.iter().find(|(f, p, _)| f == family && p == param) {
            None => report.new_cases.push(format!("{family}/{param}: new case ({cur_ns} ns)")),
            Some((_, _, base_ns)) => {
                let ratio = *cur_ns as f64 / (*base_ns).max(1) as f64;
                let line = format!("{family}/{param}: {base_ns} ns → {cur_ns} ns ({ratio:.2}x)");
                if *base_ns >= 1_000 && ratio > threshold {
                    report.regressions.push(line.clone());
                }
                if *base_ns >= 1_000 && ratio < 1.0 / threshold {
                    report.improvements.push(line.clone());
                }
                report.lines.push(line);
            }
        }
    }
    for (family, param, base_ns) in &base {
        if !cur.iter().any(|(f, p, _)| f == family && p == param) {
            report.missing.push(format!("{family}/{param}: missing (baseline had {base_ns} ns)"));
        }
    }
    report.scaling = scaling_lines(&cur);
    Ok(report)
}

/// Renders the thread-scaling curve of every `*_threads` family in a
/// parsed document: `family: 1→N threads R.RRx` per measured thread count
/// above 1, relative to the same family's 1-thread median. A `*_threads`
/// family without a 1-thread anchor yields a diagnostic line instead of a
/// silently absent curve.
fn scaling_lines(results: &[(String, u64, u64)]) -> Vec<String> {
    let mut out = Vec::new();
    let mut seen: Vec<&str> = Vec::new();
    for (family, _, _) in results {
        if !family.ends_with("_threads") || seen.contains(&family.as_str()) {
            continue;
        }
        seen.push(family);
        let Some((_, _, base_ns)) = results.iter().find(|(f, p, _)| f == family && *p == 1) else {
            out.push(format!("{family}: no 1-thread anchor, cannot compute speedups"));
            continue;
        };
        for (f, threads, ns) in results {
            if f == family && *threads > 1 {
                let speedup = *base_ns as f64 / (*ns).max(1) as f64;
                out.push(format!("{family}: 1→{threads} threads {speedup:.2}x speedup"));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_positive_median() {
        let mut x = 0u64;
        let ns = measure(3, 10, || x = x.wrapping_add(1).wrapping_mul(31));
        assert!(x > 0);
        // Median of a non-empty sample set; zero is fine for sub-ns work,
        // the call itself must not panic.
        let _ = ns;
    }

    #[test]
    fn calibrate_clamps() {
        let iters = calibrate_iters(1_000_000, || std::thread::sleep(std::time::Duration::ZERO));
        assert!((1..=10_000).contains(&iters));
    }

    #[test]
    fn diff_flags_only_real_regressions() {
        let mk = |ns_a: u64, ns_b: u64| {
            to_json(&[
                Measurement { family: "E1".into(), param: 3, median_ns: ns_a, iters: 10 },
                Measurement { family: "E3".into(), param: 9, median_ns: ns_b, iters: 10 },
            ])
        };
        // 1.2x growth on a ms-scale case: within a 1.5x threshold.
        let ok = diff_benchmarks(&mk(10_000, 1_000_000), &mk(12_000, 1_100_000), 1.5).unwrap();
        assert!(ok.regressions.is_empty(), "{:?}", ok.regressions);
        assert_eq!(ok.lines.len(), 2);
        // 3x growth: flagged.
        let bad = diff_benchmarks(&mk(10_000, 1_000_000), &mk(30_000, 1_000_000), 1.5).unwrap();
        assert_eq!(bad.regressions.len(), 1);
        assert!(bad.regressions[0].contains("E1/3"), "{:?}", bad.regressions);
        // Sub-µs baselines are never flagged (noise).
        let noisy = diff_benchmarks(&mk(500, 1_000_000), &mk(5_000, 1_000_000), 1.5).unwrap();
        assert!(noisy.regressions.is_empty());
    }

    #[test]
    fn diff_reports_new_and_missing_cases() {
        let base =
            to_json(&[Measurement { family: "E1".into(), param: 3, median_ns: 10, iters: 1 }]);
        let cur =
            to_json(&[Measurement { family: "A1".into(), param: 3, median_ns: 10, iters: 1 }]);
        let report = diff_benchmarks(&base, &cur, 1.5).unwrap();
        assert_eq!(report.new_cases.len(), 1);
        assert_eq!(report.missing.len(), 1, "dropped baseline cases are flagged");
        assert!(report.missing[0].contains("E1/3"));
        assert!(diff_benchmarks("not json", &cur, 1.5).is_err());
    }

    #[test]
    fn diff_reports_improvements_with_ratio() {
        let mk = |ns: u64| {
            to_json(&[Measurement { family: "E3".into(), param: 9, median_ns: ns, iters: 10 }])
        };
        let report = diff_benchmarks(&mk(271_000_000), &mk(5_000_000), 1.5).unwrap();
        assert!(report.regressions.is_empty());
        assert_eq!(report.improvements.len(), 1);
        assert!(report.improvements[0].contains("0.02x"), "{:?}", report.improvements);
        // A 1.2x improvement is inside the threshold band: not reported.
        let quiet = diff_benchmarks(&mk(12_000), &mk(10_000), 1.5).unwrap();
        assert!(quiet.improvements.is_empty());
    }

    #[test]
    fn diff_reports_thread_scaling_curves() {
        let mk = |n1: u64, n2: u64, n4: u64| {
            to_json(&[
                Measurement {
                    family: "A4_autolb_threads".into(),
                    param: 1,
                    median_ns: n1,
                    iters: 3,
                },
                Measurement {
                    family: "A4_autolb_threads".into(),
                    param: 2,
                    median_ns: n2,
                    iters: 3,
                },
                Measurement {
                    family: "A4_autolb_threads".into(),
                    param: 4,
                    median_ns: n4,
                    iters: 3,
                },
                Measurement { family: "E1".into(), param: 3, median_ns: 10_000, iters: 3 },
            ])
        };
        let doc = mk(1_000_000, 550_000, 400_000);
        let report = diff_benchmarks(&doc, &doc, 1.5).unwrap();
        // Curve comes from the current document only; non-`_threads`
        // families contribute nothing.
        assert_eq!(report.scaling.len(), 2, "{:?}", report.scaling);
        assert!(report.scaling[0].contains("1→2 threads 1.82x"), "{:?}", report.scaling);
        assert!(report.scaling[1].contains("1→4 threads 2.50x"), "{:?}", report.scaling);
        assert!(report.regressions.is_empty());
        // A `_threads` family without a 1-thread anchor is called out.
        let orphan = to_json(&[Measurement {
            family: "A4_autolb_threads".into(),
            param: 4,
            median_ns: 400_000,
            iters: 3,
        }]);
        let report = diff_benchmarks(&orphan, &orphan, 1.5).unwrap();
        assert_eq!(report.scaling.len(), 1);
        assert!(report.scaling[0].contains("no 1-thread anchor"), "{:?}", report.scaling);
    }

    #[test]
    fn json_shape() {
        let ms = vec![
            Measurement {
                family: "E1_sinkless_full_step".into(),
                param: 7,
                median_ns: 1234,
                iters: 100,
            },
            Measurement {
                family: "E2_coloring_half_step".into(),
                param: 6,
                median_ns: 5,
                iters: 1,
            },
        ];
        let json = to_json(&ms);
        assert!(json.contains("\"schema\": \"roundelim-bench-v1\""));
        assert!(json.contains("\"family\": \"E1_sinkless_full_step\", \"param\": 7"));
        assert!(json.trim_end().ends_with('}'));
        // exactly one comma between the two records
        assert_eq!(json.matches("},").count(), 1);
    }
}
