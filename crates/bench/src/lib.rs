//! Benchmark support for the round-elimination workspace.
//!
//! The statistical benchmarks live in `benches/` (run with `cargo bench`).
//! This library holds the shared measurement helpers behind the
//! `bench_smoke` binary, which runs the speedup families in sample mode
//! and emits `BENCH_speedup.json` — a per-`(family, parameter)` median-ns
//! record that CI archives so successive PRs have a perf trajectory to
//! compare against.

use std::time::Instant;

/// One measured benchmark case.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark family, e.g. `E1_sinkless_full_step`.
    pub family: String,
    /// Family parameter (Δ or k).
    pub param: usize,
    /// Median wall-clock nanoseconds per iteration.
    pub median_ns: u64,
    /// Iterations per sample the median was taken over.
    pub iters: u32,
}

/// Measures `f` in sample mode: one warm-up call, then `samples` timed
/// batches of `iters` iterations each; returns the median per-iteration
/// nanoseconds. `iters` is chosen by the caller to amortize timer noise on
/// fast cases (sub-µs work needs hundreds of iterations per batch).
pub fn measure<F: FnMut()>(samples: usize, iters: u32, mut f: F) -> u64 {
    assert!(samples > 0 && iters > 0);
    f(); // warm-up (first call pays lazy caches and allocator warmup)
    let mut per_iter: Vec<u64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        per_iter.push(start.elapsed().as_nanos() as u64 / u64::from(iters));
    }
    per_iter.sort_unstable();
    per_iter[per_iter.len() / 2]
}

/// Picks an iteration count that spends roughly `budget_ns` per sample,
/// based on one throwaway timing of `f` (clamped to `[1, 10_000]`). The
/// probe runs after a warm-up call so lazy caches and allocator warmup do
/// not deflate the first family's iteration count.
pub fn calibrate_iters<F: FnMut()>(budget_ns: u64, mut f: F) -> u32 {
    f(); // warm-up: the timed probe should see steady-state cost
    let start = Instant::now();
    f();
    let once = start.elapsed().as_nanos().max(1) as u64;
    (budget_ns / once).clamp(1, 10_000) as u32
}

/// Renders measurements as the `BENCH_speedup.json` document.
///
/// Hand-rolled writer: the workspace's offline serde stub ships no data
/// format, and the schema is a flat list of records.
pub fn to_json(measurements: &[Measurement]) -> String {
    let mut out = String::from("{\n  \"schema\": \"roundelim-bench-v1\",\n  \"results\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"param\": {}, \"median_ns\": {}, \"iters\": {}}}{}\n",
            m.family,
            m.param,
            m.median_ns,
            m.iters,
            if i + 1 < measurements.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_positive_median() {
        let mut x = 0u64;
        let ns = measure(3, 10, || x = x.wrapping_add(1).wrapping_mul(31));
        assert!(x > 0);
        // Median of a non-empty sample set; zero is fine for sub-ns work,
        // the call itself must not panic.
        let _ = ns;
    }

    #[test]
    fn calibrate_clamps() {
        let iters = calibrate_iters(1_000_000, || std::thread::sleep(std::time::Duration::ZERO));
        assert!((1..=10_000).contains(&iters));
    }

    #[test]
    fn json_shape() {
        let ms = vec![
            Measurement {
                family: "E1_sinkless_full_step".into(),
                param: 7,
                median_ns: 1234,
                iters: 100,
            },
            Measurement {
                family: "E2_coloring_half_step".into(),
                param: 6,
                median_ns: 5,
                iters: 1,
            },
        ];
        let json = to_json(&ms);
        assert!(json.contains("\"schema\": \"roundelim-bench-v1\""));
        assert!(json.contains("\"family\": \"E1_sinkless_full_step\", \"param\": 7"));
        assert!(json.trim_end().ends_with('}'));
        // exactly one comma between the two records
        assert_eq!(json.matches("},").count(), 1);
    }
}
