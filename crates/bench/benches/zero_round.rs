//! Benches for the 0-round solvability deciders — the endgame check that
//! every iterated lower-bound run performs once per step (§2.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use roundelim_core::zero_round::{zero_round_oriented, zero_round_pn};
use roundelim_problems::registry::families;

fn bench_deciders(c: &mut Criterion) {
    let mut group = c.benchmark_group("zero_round");
    for f in families() {
        let p = match f.instantiate(3, 3) {
            Ok(p) => p,
            Err(_) => continue,
        };
        println!(
            "zero-round row: {}  plain={}  oriented={}",
            f.name,
            zero_round_pn(&p).is_some(),
            zero_round_oriented(&p).is_some()
        );
        group.bench_with_input(BenchmarkId::new("plain", f.name), &p, |b, p| {
            b.iter(|| zero_round_pn(p))
        });
        group.bench_with_input(BenchmarkId::new("oriented", f.name), &p, |b, p| {
            b.iter(|| zero_round_oriented(p))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_deciders);
criterion_main!(benches);
