//! Benches for E5: the Lemma 2 engine (Hopcroft–Karp + Hall violators +
//! the dichotomy) at the lower bound's true scale Δ ≥ 2^17.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use roundelim_superweak::h1::NodeOutput;
use roundelim_superweak::lemma2::{lemma2, Lemma2Outcome, Orientation};
use roundelim_superweak::trit::{TritSeq, TritSet};

fn t(s: &str) -> TritSeq {
    TritSeq::new(s.bytes().map(|b| b - b'0').collect()).expect("valid trits")
}

fn pointered_output(delta: usize, exotic: usize) -> (NodeOutput, Vec<Orientation>) {
    let p_inf = TritSet::new([t("11"), t("22")]);
    let ex = TritSet::new([t("21")]);
    let mut per_port = vec![p_inf; delta];
    for i in 0..exotic {
        per_port[2 * i] = ex.clone();
    }
    let alpha =
        (0..delta).map(|i| if i % 2 == 0 { Orientation::Out } else { Orientation::In }).collect();
    (NodeOutput::new(per_port), alpha)
}

fn bench_lemma2(c: &mut Criterion) {
    let mut group = c.benchmark_group("E5_lemma2");
    group.sample_size(10);
    for delta_shift in [17u32, 18, 19] {
        let delta = (1usize << delta_shift) + 9;
        let (q, alpha) = pointered_output(delta, 4);
        match lemma2(&q, &alpha).expect("hypotheses met") {
            Lemma2Outcome::Pointers(ps) => println!(
                "E5 row: Δ=2^{delta_shift}+9  |J*|={} > |N(J*)|={} ✓",
                ps.j_star.len(),
                ps.n_j_star.len()
            ),
            Lemma2Outcome::NotInH1(_) => println!("E5 row: Δ=2^{delta_shift}+9  violation"),
        }
        group.bench_with_input(BenchmarkId::from_parameter(delta), &(q, alpha), |b, (q, a)| {
            b.iter(|| lemma2(q, a).expect("hypotheses met"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lemma2);
criterion_main!(benches);
