//! Benches for E1/E2/E3: the automatic speedup transform on the paper's
//! worked problems. Each bench also prints the table row it regenerates
//! (the structural result the paper reports), so `cargo bench` doubles as
//! the table harness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use roundelim_core::iso::are_isomorphic;
use roundelim_core::speedup::{full_step, half_step_edge};
use roundelim_problems::coloring::coloring;
use roundelim_problems::sinkless::{sinkless_coloring, sinkless_orientation};
use roundelim_problems::weak::weak_coloring_pointer;

fn bench_sinkless(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1_sinkless_full_step");
    for delta in [3usize, 4, 5, 6, 7, 8, 9, 10] {
        let sc = sinkless_coloring(delta).expect("valid Δ");
        // Print the regenerated row once.
        let step = full_step(&sc).expect("no overflow");
        let so = sinkless_orientation(delta).expect("valid Δ");
        println!(
            "E1 row: Δ={delta}  Π'_1/2≅SO={}  Π'₁≅SC={}",
            are_isomorphic(&half_step_edge(&sc).unwrap().problem, &so),
            are_isomorphic(step.problem(), &sc)
        );
        group.bench_with_input(BenchmarkId::from_parameter(delta), &sc, |b, p| {
            b.iter(|| full_step(p).expect("no overflow"))
        });
    }
    group.finish();
}

fn bench_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("E2_coloring_half_step");
    for k in [3usize, 4, 5, 6] {
        let p = coloring(k, 2).expect("valid k");
        let hs = half_step_edge(&p).expect("no overflow");
        println!(
            "E2 row: k={k}  |labels(Π'_1/2)|={} (paper k=4: 14)  |g_1/2|={} (paper k=4: 7)",
            hs.meanings.len(),
            hs.problem.edge().len()
        );
        group.bench_with_input(BenchmarkId::from_parameter(k), &p, |b, p| {
            b.iter(|| half_step_edge(p).expect("no overflow"))
        });
    }
    group.finish();
}

fn bench_weak2(c: &mut Criterion) {
    let mut group = c.benchmark_group("E3_weak2_full_step");
    group.sample_size(10);
    for delta in [3usize, 5, 7, 9] {
        let p = weak_coloring_pointer(2, delta).expect("valid Δ");
        let step = full_step(&p).expect("no overflow");
        println!(
            "E3 row: Δ={delta}  |labels(Π'_1/2)|={} (paper: 7)  |h₁|={} (paper: 9)",
            half_step_edge(&p).unwrap().meanings.len(),
            step.problem().node().len()
        );
        group.bench_with_input(BenchmarkId::from_parameter(delta), &p, |b, p| {
            b.iter(|| full_step(p).expect("no overflow"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sinkless, bench_coloring, bench_weak2);
criterion_main!(benches);
