//! Benches for E7: the Theorem 4 accounting — the Lemma 4 chain over
//! tower-sized degrees and the certified weak-2-coloring bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use roundelim_superweak::lowerbound::{speedup_rounds, weak2_lower_bound};
use roundelim_superweak::tower::Tower;

fn bench_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7_theorem4_chain");
    for h in [8u32, 24, 60, 120] {
        let delta = Tower::tower_of_twos(h);
        let rounds = speedup_rounds(&delta, 2, 10_000).last().map(|s| s.round).unwrap_or(0);
        let bound = weak2_lower_bound(&delta).map(|(t, _)| t);
        println!(
            "E7 row: Δ=2↑↑{h}  log*Δ={}  chain={rounds}  certified T≥{:?}  paper=(log*Δ−7)/5={}",
            delta.log_star(),
            bound.map(|t| t + 1),
            (delta.log_star() as i64 - 7).max(0) / 5
        );
        group.bench_with_input(BenchmarkId::from_parameter(h), &delta, |b, d| {
            b.iter(|| speedup_rounds(d, 2, 10_000).last().map(|s| s.round))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chain);
criterion_main!(benches);
