//! Benches for E8: the executable Theorem 1 on rings — the cost of both
//! proof directions (derive A₁ from A, reconstruct A from A₁).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use roundelim_core::label::Label;
use roundelim_core::speedup::full_step;
use roundelim_problems::coloring::coloring;
use roundelim_sim::ring::{slowdown, speedup_algorithm, RingClass, WindowAlgorithm};

fn reduction(c: usize, class: &RingClass) -> WindowAlgorithm {
    WindowAlgorithm::from_fn(1, class, |w| {
        let (x, y, z) = (w[0], w[1], w[2]);
        let col =
            if y == c - 1 { (0..c - 1).find(|&k| k != x && k != z).expect("room") } else { y };
        (Label::from_index(col), Label::from_index(col))
    })
}

fn bench_directions(c: &mut Criterion) {
    let mut group = c.benchmark_group("E8_ring_theorem1");
    group.sample_size(10);
    for palette in [4usize, 5] {
        let class = RingClass::proper_coloring(palette);
        let target = coloring(palette - 1, 2).expect("valid");
        let a = reduction(palette, &class);
        let step = full_step(&target).expect("no overflow");
        let a1 = speedup_algorithm(&a, &target, &step, &class).expect("Theorem 1 forward");
        println!(
            "E8 row: palette={palette}  target={}-coloring  A:{} windows  A₁:{} windows",
            palette - 1,
            a.map.len(),
            a1.map.len()
        );
        group.bench_with_input(
            BenchmarkId::new("forward", palette),
            &(&a, &target, &step, &class),
            |b, (a, t, s, cl)| b.iter(|| speedup_algorithm(a, t, s, cl).expect("forward")),
        );
        group.bench_with_input(
            BenchmarkId::new("backward", palette),
            &(&a1, &target, &step, &class),
            |b, (a1, t, s, cl)| b.iter(|| slowdown(a1, t, s, cl).expect("backward")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_directions);
criterion_main!(benches);
