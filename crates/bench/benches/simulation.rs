//! Benches for E9: the upper-bound algorithms running in the simulator —
//! Cole–Vishkin ring coloring (round counts must grow like log* n) and
//! weak 2-coloring on regular graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use roundelim_sim::algos::cole_vishkin::{self, ColeVishkin};
use roundelim_sim::algos::weak2::{self, WeakTwoColoring};
use roundelim_sim::generate::{cycle, random_regular};
use roundelim_sim::runner::{run, NodeInput};

fn ring_inputs(n: usize) -> Vec<NodeInput> {
    (0..n)
        .map(|v| NodeInput {
            // Distinct ids spread over an 8n id space (injective: 7v+3 < 8n).
            id: Some(v as u64 * 7 + 3),
            color: None,
            oriented_away: if v == 0 { vec![true, false] } else { vec![false, true] },
        })
        .collect()
}

fn bench_cv(c: &mut Criterion) {
    let mut group = c.benchmark_group("E9_cole_vishkin");
    group.sample_size(10);
    for n in [256usize, 4096, 65536] {
        println!("E9 row: Cole–Vishkin n={n}  rounds={}", cole_vishkin::total_rounds(n));
        let g = cycle(n);
        let inputs = ring_inputs(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                run(&g, &inputs, &ColeVishkin::for_n(n * 8), cole_vishkin::total_rounds(n * 8))
            })
        });
    }
    group.finish();
}

fn bench_weak2(c: &mut Criterion) {
    let mut group = c.benchmark_group("E9_weak2");
    group.sample_size(10);
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    for (n, d) in [(64usize, 3usize), (256, 5), (1024, 3)] {
        let g = random_regular(n, d, 20000, &mut rng).expect("regular graph");
        let inputs: Vec<NodeInput> =
            (0..n).map(|v| NodeInput { id: Some(v as u64), ..NodeInput::default() }).collect();
        println!("E9 row: weak2 n={n} Δ={d}  rounds={}", weak2::total_rounds(n));
        group.bench_with_input(BenchmarkId::new("n_d", format!("{n}_{d}")), &n, |b, &n| {
            b.iter(|| run(&g, &inputs, &WeakTwoColoring::for_n(n), weak2::total_rounds(n)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cv, bench_weak2);
criterion_main!(benches);
