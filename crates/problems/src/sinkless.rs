//! Sinkless orientation and sinkless coloring (§4.4 of the paper).

use roundelim_core::error::{Error, Result};
use roundelim_core::problem::Problem;

/// Sinkless coloring at degree `delta` (the paper's canonical encoding):
///
/// * Labels: `1` at `(v,e)` means "v chooses the color of e", `0` means it
///   does not.
/// * Node: exactly one `1` (each node picks exactly one incident edge).
/// * Edge: at most one endpoint picks the edge (`{0,0}` or `{0,1}`).
///
/// §4.4 shows the full simplified speedup step maps this problem to
/// sinkless orientation and back, a period-2 fixed point certifying the
/// Ω(log n) lower bound of Brandt et al. [STOC'16].
///
/// # Errors
///
/// Returns [`Error::Unsupported`] for `delta < 2` (the problem needs at
/// least one non-chosen port to be meaningful).
pub fn sinkless_coloring(delta: usize) -> Result<Problem> {
    if delta < 2 {
        return Err(Error::Unsupported {
            reason: format!("sinkless coloring needs Δ ≥ 2, got {delta}"),
        });
    }
    let text = format!(
        "name: sinkless-coloring\n\
         node: 1 0^{}\n\
         edge: 0 0 | 0 1\n",
        delta - 1
    );
    Problem::parse(&text)
}

/// Sinkless orientation at degree `delta`:
///
/// * Labels: `O` at `(v,e)` means v orients e away from itself, `I`
///   towards itself.
/// * Node: at least one `O` (no sinks).
/// * Edge: endpoints agree — exactly one `O` per edge.
///
/// # Errors
///
/// Returns [`Error::Unsupported`] for `delta < 1`.
pub fn sinkless_orientation(delta: usize) -> Result<Problem> {
    if delta < 1 {
        return Err(Error::Unsupported { reason: "sinkless orientation needs Δ ≥ 1".into() });
    }
    let mut node = String::new();
    for o in 1..=delta {
        if o > 1 {
            node.push_str(" | ");
        }
        if o == delta {
            node.push_str(&format!("O^{delta}"));
        } else {
            node.push_str(&format!("O^{o} I^{}", delta - o));
        }
    }
    let text = format!("name: sinkless-orientation\nnode: {node}\nedge: O I\n");
    Problem::parse(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use roundelim_core::iso::are_isomorphic;
    use roundelim_core::speedup::{full_step, half_step_edge};

    #[test]
    fn shapes() {
        let sc = sinkless_coloring(3).unwrap();
        assert_eq!(sc.alphabet().len(), 2);
        assert_eq!(sc.node().len(), 1);
        assert_eq!(sc.edge().len(), 2);
        let so = sinkless_orientation(3).unwrap();
        assert_eq!(so.node().len(), 3);
        assert_eq!(so.edge().len(), 1);
        assert!(sinkless_coloring(1).is_err());
    }

    #[test]
    fn half_step_of_sc_is_so() {
        // Paper §4.4: Π'_{1/2}(sinkless coloring) ≅ sinkless orientation.
        for delta in 3..=6 {
            let sc = sinkless_coloring(delta).unwrap();
            let so = sinkless_orientation(delta).unwrap();
            let derived = half_step_edge(&sc).unwrap().problem;
            assert!(are_isomorphic(&derived, &so), "Δ={delta}: derived = {derived}");
        }
    }

    #[test]
    fn full_step_of_sc_is_sc() {
        // Paper §4.4: Π'₁(sinkless coloring) ≅ sinkless coloring.
        for delta in 3..=6 {
            let sc = sinkless_coloring(delta).unwrap();
            let derived = full_step(&sc).unwrap().problem().clone();
            assert!(are_isomorphic(&derived, &sc), "Δ={delta}: derived = {derived}");
        }
    }
}
