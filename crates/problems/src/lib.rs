//! # roundelim-problems
//!
//! A zoo of locally checkable problems in the edge-checkable normal form of
//! Brandt's automatic speedup theorem (PODC 2019), ready to be fed to the
//! `roundelim-core` engine.
//!
//! * [`coloring`] — proper node/edge coloring (§4.5 color reduction).
//! * [`sinkless`] — sinkless orientation and coloring (§4.4 fixed point).
//! * [`weak`] — pointer weak k-coloring (§4.6) and superweak k-coloring
//!   (§5.1) at explicit small Δ.
//! * [`matching`] / [`mis`] — the targets of the Balliu et al. follow-up.
//! * [`registry`] — name-indexed constructors for examples and tooling.
//!
//! ```
//! use roundelim_problems::registry::family;
//! let p = family("sinkless-orientation")?.instantiate(0, 3)?;
//! assert_eq!(p.delta(), 3);
//! # Ok::<(), roundelim_core::error::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod color_reduction;
pub mod coloring;
pub mod matching;
pub mod mis;
pub mod registry;
pub mod sinkless;
pub mod weak;
