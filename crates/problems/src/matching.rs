//! Matchings: perfect and maximal (the follow-up work of Balliu et al.
//! applies the paper's speedup to maximal matching).

use roundelim_core::error::{Error, Result};
use roundelim_core::problem::Problem;

/// Perfect matching at degree `delta`:
///
/// * Labels: `M` ("this edge is my matching edge") and `U` (unmatched port).
/// * Node: exactly one `M`.
/// * Edge: both endpoints agree — `{M,M}` or `{U,U}`.
///
/// # Errors
///
/// Returns [`Error::Unsupported`] for `delta < 1`.
pub fn perfect_matching(delta: usize) -> Result<Problem> {
    if delta < 1 {
        return Err(Error::Unsupported { reason: "perfect matching needs Δ ≥ 1".into() });
    }
    let node = if delta == 1 { "M".to_owned() } else { format!("M U^{}", delta - 1) };
    Problem::parse(&format!("name: perfect-matching\nnode: {node}\nedge: M M | U U\n"))
}

/// Maximal matching at degree `delta` (standard round-elimination encoding):
///
/// * Labels: `M` (my matching edge), `O` (other port of a matched node),
///   `P` (port of an unmatched node — a "proof" pointer that must face a
///   matched node).
/// * Node: matched — one `M`, rest `O`; unmatched — all `P`.
/// * Edge: `{M,M}` (the matched edge), `{O,O}` (two matched nodes),
///   `{O,P}` (unmatched node next to a matched one). `{P,P}` is forbidden:
///   two adjacent unmatched nodes would contradict maximality.
///
/// # Errors
///
/// Returns [`Error::Unsupported`] for `delta < 2`.
pub fn maximal_matching(delta: usize) -> Result<Problem> {
    if delta < 2 {
        return Err(Error::Unsupported { reason: "maximal matching needs Δ ≥ 2".into() });
    }
    Problem::parse(&format!(
        "name: maximal-matching\n\
         node: M O^{} | P^{delta}\n\
         edge: M M | O O | O P\n",
        delta - 1
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use roundelim_core::relax::is_relaxation_of;
    use roundelim_core::zero_round::{zero_round_oriented, zero_round_pn};

    #[test]
    fn shapes() {
        let pm = perfect_matching(3).unwrap();
        assert_eq!(pm.alphabet().len(), 2);
        assert_eq!(pm.node().len(), 1);
        let mm = maximal_matching(3).unwrap();
        assert_eq!(mm.alphabet().len(), 3);
        assert_eq!(mm.node().len(), 2);
        assert_eq!(mm.edge().len(), 3);
    }

    #[test]
    fn perfect_matching_relaxes_to_maximal() {
        // A perfect matching is maximal: map M→M, U→O.
        let pm = perfect_matching(3).unwrap();
        let mm = maximal_matching(3).unwrap();
        assert!(is_relaxation_of(&pm, &mm));
        assert!(!is_relaxation_of(&mm, &pm));
    }

    #[test]
    fn not_zero_round_solvable() {
        for delta in 2..=4 {
            let mm = maximal_matching(delta).unwrap();
            assert!(zero_round_pn(&mm).is_none());
            assert!(zero_round_oriented(&mm).is_none(), "Δ={delta}");
        }
    }

    #[test]
    fn degenerate_parameters() {
        assert!(perfect_matching(0).is_err());
        assert!(maximal_matching(1).is_err());
        assert!(perfect_matching(1).is_ok()); // a single pendant edge
    }
}
