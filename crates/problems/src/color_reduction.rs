//! §4.5: doubly-exponential color reduction on rings via the *dual*
//! (hardening) technique.
//!
//! Applying the speedup to k-coloring on rings yields Π₁; the paper then
//! *hardens* Π₁ to a problem Π₁* that is just a k′-coloring with
//! `k′ = 2^{C(k,k/2)/2}`. Since a k′-coloring algorithm therefore yields a
//! k-coloring algorithm only one round slower, colors shrink doubly
//! exponentially per round — reproducing the O(log* n) upper bound for
//! 3-coloring rings (Cole–Vishkin / Goldberg–Plotkin–Shannon).
//!
//! A Π₁* "color" is a **family** `Y` of (k/2)-subsets of the k colors
//! containing *exactly one* of each complementary pair. The two properties
//! proved in §4.5, verified here by exhaustive check:
//!
//! 1. distinct families contain a disjoint (complementary) pair of
//!    subsets — so `{Y,Z} ∈ g₁` (the edge constraint holds);
//! 2. within one family all subsets pairwise intersect — so
//!    `{Y,Y} ∈ h₁` (the node constraint holds).

use roundelim_core::error::{Error, Result};

/// A (k/2)-subset of colors, as a bitmask over `0..k`.
pub type ColorSet = u32;

/// A Π₁* color: a family of (k/2)-subsets, one per complementary pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Family {
    /// The member subsets (bitmasks), sorted.
    pub members: Vec<ColorSet>,
}

/// Enumerates all Π₁* families for even `k` (small k only: the count is
/// `2^{C(k,k/2)/2}`).
///
/// # Errors
///
/// Returns [`Error::Unsupported`] for odd `k`, `k < 2`, or `k > 8` (the
/// family count explodes beyond).
pub fn families(k: usize) -> Result<Vec<Family>> {
    if k < 2 || !k.is_multiple_of(2) || k > 8 {
        return Err(Error::Unsupported {
            reason: format!("families(k) needs even 2 ≤ k ≤ 8, got {k}"),
        });
    }
    let full: u32 = (1 << k) - 1;
    // All (k/2)-subsets, grouped into complementary pairs (keep the one
    // containing color 0 as the pair representative).
    let mut pairs: Vec<(ColorSet, ColorSet)> = Vec::new();
    for s in 0u32..=full {
        if (s.count_ones() as usize) == k / 2 && s & 1 == 1 {
            pairs.push((s, full & !s));
        }
    }
    // Choose one member from each pair.
    let mut out = Vec::with_capacity(1 << pairs.len());
    for choice in 0u64..(1 << pairs.len()) {
        let mut members: Vec<ColorSet> = pairs
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| if choice >> i & 1 == 0 { a } else { b })
            .collect();
        members.sort_unstable();
        out.push(Family { members });
    }
    Ok(out)
}

/// The §4.5 color count `k′ = 2^{C(k,k/2)/2}` (number of families).
///
/// # Errors
///
/// Returns [`Error::Unsupported`] for parameters where the count does not
/// fit in `u128` or `k` is odd/too small.
pub fn k_prime(k: usize) -> Result<u128> {
    if k < 2 || !k.is_multiple_of(2) {
        return Err(Error::Unsupported { reason: format!("k′ needs even k ≥ 2, got {k}") });
    }
    // C(k, k/2)
    let mut binom: u128 = 1;
    for i in 0..k / 2 {
        binom = binom * (k - i) as u128 / (i + 1) as u128;
    }
    let exp = binom / 2;
    if exp >= 128 {
        return Err(Error::Unsupported { reason: format!("k′ for k = {k} exceeds u128") });
    }
    Ok(1u128 << exp)
}

/// Verifies the two §4.5 properties on the explicit family list:
/// distinct families contain a disjoint pair (edge side), and each
/// family's subsets pairwise intersect (node side).
///
/// Returns the number of families checked.
///
/// # Errors
///
/// Returns [`Error::Inconsistent`] naming the first violated property —
/// which the paper proves never happens.
pub fn verify_properties(k: usize) -> Result<usize> {
    let fams = families(k)?;
    for (i, y) in fams.iter().enumerate() {
        // Property 2: pairwise intersection within a family.
        for (a_ix, &a) in y.members.iter().enumerate() {
            for &b in &y.members[a_ix + 1..] {
                if a & b == 0 {
                    return Err(Error::Inconsistent {
                        reason: format!("family {i} contains a disjoint pair — property 2 fails"),
                    });
                }
            }
        }
        // Property 1 against every other family.
        for (j, z) in fams.iter().enumerate() {
            if i == j {
                continue;
            }
            let ok = y.members.iter().any(|&a| z.members.iter().any(|&b| a & b == 0));
            if !ok {
                return Err(Error::Inconsistent {
                    reason: format!(
                        "families {i} and {j} have no disjoint pair — property 1 fails"
                    ),
                });
            }
        }
    }
    Ok(fams.len())
}

/// How many speedup steps the §4.5 hardening needs to bring `k0` colors
/// down to at most `target` colors — the "rounds" of the derived color
/// reduction (each step costs one communication round in the upper-bound
/// direction). The doubly exponential growth `k ↦ 2^{C(k,k/2)/2} ≥
/// 2^{2^{k/2}}` (k ≥ 6) makes this O(log* k0).
pub fn reduction_steps(mut k0: u128, target: u128) -> usize {
    let mut steps = 0;
    while k0 > target {
        // Invert the growth conservatively: a k′-coloring yields (one
        // round slower) a k-coloring where k′ ≥ 2^{2^{k/2}}, i.e.
        // k ≤ 2·log₂ log₂ k′ (valid for k ≥ 6; below that use k−1 via the
        // trivial greedy reduction).
        k0 = if k0 > 64 {
            let l1 = 127 - (k0 - 1).leading_zeros() as u128 + 1; // ceil log2
            let l2 = 127 - (l1 - 1).leading_zeros() as u128 + 1;
            (2 * l2).max(3)
        } else {
            k0 - 1
        };
        steps += 1;
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use roundelim_core::speedup::half_step_edge;

    #[test]
    fn family_counts_match_paper_formula() {
        // k = 4: C(4,2)/2 = 3 pairs → 8 families.
        assert_eq!(families(4).unwrap().len(), 8);
        assert_eq!(k_prime(4).unwrap(), 8);
        // k = 6: C(6,3)/2 = 10 → 1024.
        assert_eq!(families(6).unwrap().len(), 1024);
        assert_eq!(k_prime(6).unwrap(), 1024);
        // k = 8: C(8,4)/2 = 35 → 2^35.
        assert_eq!(k_prime(8).unwrap(), 1u128 << 35);
        assert!(families(3).is_err());
        assert!(k_prime(5).is_err());
    }

    #[test]
    fn paper_properties_hold() {
        assert_eq!(verify_properties(4).unwrap(), 8);
        assert_eq!(verify_properties(6).unwrap(), 1024);
    }

    #[test]
    fn growth_is_at_least_doubly_exponential_for_k6() {
        // k ≥ 6: k′ ≥ 2^{2^{k/2}}.
        for k in [6usize, 8] {
            let kp = k_prime(k).unwrap();
            let lower = 1u128 << (1u32 << (k as u32 / 2));
            assert!(kp >= lower, "k={k}: {kp} < {lower}");
        }
    }

    #[test]
    fn engine_half_step_matches_section_4_5() {
        // §4.5 lists Π'_{1/2} of 4-coloring: labels = proper nonempty
        // subsets of the 4 colors (14 of them), edge constraint = the
        // complementary partitions (7 pairs).
        let c4 = crate::coloring::coloring(4, 2).unwrap();
        let hs = half_step_edge(&c4).unwrap();
        assert_eq!(hs.meanings.len(), 14);
        assert_eq!(hs.problem.edge().len(), 7);
        for cfg in hs.problem.edge().iter() {
            let ls = cfg.labels();
            let a = hs.meanings[ls[0].index()];
            let b = hs.meanings[ls[1].index()];
            assert!(a.intersection(&b).is_empty());
            assert_eq!(a.len() + b.len(), 4);
        }
        // Node side (h_{1/2}): pairs of subsets that intersect.
        for cfg in hs.problem.node().iter() {
            let ls = cfg.labels();
            let a = hs.meanings[ls[0].index()];
            let b = hs.meanings[ls[1].index()];
            assert!(a.intersects(&b), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn reduction_steps_is_log_star_like() {
        // From astronomically many colors down to 3 in few steps.
        let s = reduction_steps(1u128 << 100, 3);
        assert!(s <= 12, "steps = {s}");
        assert!(reduction_steps(4, 3) == 1);
        assert!(reduction_steps(3, 3) == 0);
        // Monotone-ish growth sanity.
        assert!(reduction_steps(1u128 << 100, 3) >= reduction_steps(1 << 10, 3));
    }
}
