//! Maximal independent set (MIS), the second target of the Balliu et al.
//! follow-up lower bounds built on the paper's speedup.

use roundelim_core::error::{Error, Result};
use roundelim_core::problem::Problem;

/// Maximal independent set at degree `delta` (pointer encoding):
///
/// * Labels: `A` (port of an MIS node), `P` (pointer of a non-MIS node to
///   an MIS neighbor — its maximality proof), `O` (other port of a non-MIS
///   node).
/// * Node: in MIS — all `A`; out of MIS — one `P`, rest `O`.
/// * Edge: `{A,P}` (the proof edge), `{A,O}` (MIS node next to a non-MIS
///   node), `{O,O}` (two non-MIS nodes). `{A,A}` is forbidden
///   (independence); `{P,O}`/`{P,P}` are forbidden (a pointer must face an
///   MIS node).
///
/// # Errors
///
/// Returns [`Error::Unsupported`] for `delta < 2`.
pub fn mis(delta: usize) -> Result<Problem> {
    if delta < 2 {
        return Err(Error::Unsupported { reason: "MIS encoding needs Δ ≥ 2".into() });
    }
    Problem::parse(&format!(
        "name: mis\n\
         node: A^{delta} | P O^{}\n\
         edge: A P | A O | O O\n",
        delta - 1
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use roundelim_core::zero_round::{zero_round_oriented, zero_round_pn};

    #[test]
    fn shape() {
        let p = mis(4).unwrap();
        assert_eq!(p.alphabet().len(), 3);
        assert_eq!(p.node().len(), 2);
        assert_eq!(p.edge().len(), 3);
        assert!(mis(1).is_err());
    }

    #[test]
    fn independence_enforced() {
        let p = mis(3).unwrap();
        let aa = p.config(&["A", "A"]).unwrap();
        assert!(!p.edge().contains(&aa));
    }

    #[test]
    fn not_zero_round_solvable() {
        let p = mis(3).unwrap();
        assert!(zero_round_pn(&p).is_none());
        assert!(zero_round_oriented(&p).is_none());
    }
}
