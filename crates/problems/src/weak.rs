//! Weak coloring: the pointer version of weak k-coloring (§4.6) and
//! superweak k-coloring (§5.1), as explicit small-Δ problems.
//!
//! In the paper's pointer version of weak 2-coloring, each node outputs a
//! color and points to one neighbor that must have a different color. The
//! generalization, *superweak* k-coloring, allows several *demanding*
//! pointers (→) and strictly fewer *accepting* pointers ((), a demanding
//! pointer being satisfied by a different color **or** by an accepting
//! pointer back.
//!
//! These constructors materialize the constraints for concrete small `k`
//! and `Δ` (the generic engine's regime). The compressed large-Δ machinery
//! for the lower bound lives in `roundelim-superweak`.

use roundelim_core::config::Config;
use roundelim_core::constraint::Constraint;
use roundelim_core::error::{Error, Result};
use roundelim_core::label::{Alphabet, Label};
use roundelim_core::problem::Problem;

/// The pointer version of weak `k`-coloring at degree `delta` (§4.6).
///
/// * Labels: `(c,→)` and `(c,•)` for each color `c` — rendered `c→`, `c•`.
/// * Node: all ports carry the same color; exactly one port carries `→`.
/// * Edge: colors differ, or neither side is a pointer.
///
/// §4.6 of the paper explains why any weak-k-coloring algorithm yields an
/// algorithm for this problem at +1 round.
///
/// # Errors
///
/// Returns [`Error::Unsupported`] for `k < 2` or `delta < 2`.
pub fn weak_coloring_pointer(k: usize, delta: usize) -> Result<Problem> {
    if k < 2 || delta < 2 {
        return Err(Error::Unsupported {
            reason: format!(
                "weak coloring pointer version needs k ≥ 2, Δ ≥ 2; got k={k}, Δ={delta}"
            ),
        });
    }
    let mut alphabet = Alphabet::new();
    let mut arrow = Vec::with_capacity(k);
    let mut dot = Vec::with_capacity(k);
    for c in 1..=k {
        arrow.push(alphabet.intern(format!("{c}→"))?);
        dot.push(alphabet.intern(format!("{c}•"))?);
    }
    let mut node = Constraint::new(delta)?;
    for c in 0..k {
        node.insert(Config::from_groups([(arrow[c], 1), (dot[c], delta - 1)]))?;
    }
    let mut edge = Constraint::new(2)?;
    for a in 0..k {
        for b in 0..k {
            // {y,z} allowed iff colors differ or both are dots.
            if a != b {
                edge.insert(Config::new(vec![arrow[a], arrow[b]]))?;
                edge.insert(Config::new(vec![arrow[a], dot[b]]))?;
                edge.insert(Config::new(vec![dot[a], dot[b]]))?;
                if a < b {
                    edge.insert(Config::new(vec![dot[a], arrow[b]]))?;
                }
            } else {
                edge.insert(Config::new(vec![dot[a], dot[a]]))?;
            }
        }
    }
    Problem::new(format!("weak-{k}-coloring-ptr"), alphabet, node, edge)
}

/// Labels of [`superweak_coloring`]: a color and a pointer kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointerKind {
    /// A demanding pointer `→`.
    Demanding,
    /// An accepting pointer `(`.
    Accepting,
    /// No pointer `•`.
    None,
}

/// Superweak `k`-coloring at degree `delta` (§5.1), explicit encoding.
///
/// * Labels: `(c, p)` for colors `c ∈ 1..=k` and `p ∈ {→, (, •}`.
/// * Node: all ports same color; `min(k+1, #→) > #(` (strictly more
///   demanding than accepting pointers, with at most `k` accepting ones).
/// * Edge: colors differ, or both `•`, or at least one `(`.
///
/// The node constraint enumerates all `(#→, #()` splits, so keep
/// `k·delta` small; the compressed representation for `Δ ≥ 2^{4^k}+1`
/// lives in `roundelim-superweak`.
///
/// # Errors
///
/// Returns [`Error::Unsupported`] for `k < 2` or `delta < 2`.
pub fn superweak_coloring(k: usize, delta: usize) -> Result<Problem> {
    if k < 2 || delta < 2 {
        return Err(Error::Unsupported {
            reason: format!("superweak coloring needs k ≥ 2, Δ ≥ 2; got k={k}, Δ={delta}"),
        });
    }
    let mut alphabet = Alphabet::new();
    let mut lab = |c: usize, p: &str| -> Result<Label> { alphabet.intern(format!("{c}{p}")) };
    let mut dem = Vec::new();
    let mut acc = Vec::new();
    let mut dot = Vec::new();
    for c in 1..=k {
        dem.push(lab(c, "→")?);
        acc.push(lab(c, "(")?);
        dot.push(lab(c, "•")?);
    }
    let mut node = Constraint::new(delta)?;
    for c in 0..k {
        for n_dem in 1..=delta {
            for n_acc in 0..=delta.saturating_sub(n_dem) {
                // min(k+1, n_dem) > n_acc  (implies n_acc ≤ k)
                if n_dem.min(k + 1) > n_acc {
                    let n_dot = delta - n_dem - n_acc;
                    node.insert(Config::from_groups([
                        (dem[c], n_dem),
                        (acc[c], n_acc),
                        (dot[c], n_dot),
                    ]))?;
                }
            }
        }
    }
    let mut edge = Constraint::new(2)?;
    let kinds = |c: usize| {
        [
            (dem[c], PointerKind::Demanding),
            (acc[c], PointerKind::Accepting),
            (dot[c], PointerKind::None),
        ]
    };
    for a in 0..k {
        for b in 0..k {
            for (la, pa) in kinds(a) {
                for (lb, pb) in kinds(b) {
                    let ok = a != b
                        || (pa == PointerKind::None && pb == PointerKind::None)
                        || pa == PointerKind::Accepting
                        || pb == PointerKind::Accepting;
                    if ok {
                        edge.insert(Config::new(vec![la, lb]))?;
                    }
                }
            }
        }
    }
    Problem::new(format!("superweak-{k}-coloring"), alphabet, node, edge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use roundelim_core::relax::is_relaxation_of;
    use roundelim_core::zero_round::{zero_round_oriented, zero_round_pn};

    #[test]
    fn weak2_pointer_shape_matches_paper() {
        // §4.6: f(Δ) = {1,2} × {→,•}, h has one config per color.
        let p = weak_coloring_pointer(2, 3).unwrap();
        assert_eq!(p.alphabet().len(), 4);
        assert_eq!(p.node().len(), 2);
        // g: pairs with different colors (any pointers: C(2,2)+2·2... ) plus
        // same-color dot-dot. Count explicitly: colors (1,2): all 2x2
        // pointer combos as multisets = 3 same-kind? — just assert the two
        // same-color arrow pairs are absent.
        let a1 = p.config(&["1→", "1→"]).unwrap();
        let a2 = p.config(&["1→", "1•"]).unwrap();
        let ok = p.config(&["1•", "1•"]).unwrap();
        assert!(!p.edge().contains(&a1));
        assert!(!p.edge().contains(&a2));
        assert!(p.edge().contains(&ok));
    }

    #[test]
    fn weak2_is_relaxed_by_superweak2() {
        // §5.2: any pointer-weak-2-coloring solution is a superweak
        // 2-coloring solution (map → to →, • to •).
        let w = weak_coloring_pointer(2, 3).unwrap();
        let sw = superweak_coloring(2, 3).unwrap();
        assert!(is_relaxation_of(&w, &sw));
        assert!(!is_relaxation_of(&sw, &w));
    }

    #[test]
    fn superweak_node_constraint_counts() {
        // Δ=3, k=2: per color, (n_dem, n_acc) with n_dem + n_acc ≤ 3 and
        // min(3, n_dem) > n_acc: (1,0), (2,0), (2,1), (3,0).
        // 4 configs per color × 2 colors = 8.
        let p = superweak_coloring(2, 3).unwrap();
        assert_eq!(p.node().len(), 8);
    }

    #[test]
    fn superweak_accepting_cap_respected() {
        // k=2, Δ=6: n_dem=6 → min(3,6)=3 > n_acc allows n_acc ∈ {0,1,2},
        // never 3 even though 6-6=0 … check no config has > k accepting.
        let p = superweak_coloring(2, 6).unwrap();
        for cfg in p.node().iter() {
            let acc1 = p.alphabet().require("1(").unwrap();
            let acc2 = p.alphabet().require("2(").unwrap();
            let n_acc = cfg.multiplicity(acc1) + cfg.multiplicity(acc2);
            assert!(
                n_acc <= 2,
                "config {} has {n_acc} accepting pointers",
                cfg.display(p.alphabet())
            );
        }
    }

    #[test]
    fn neither_zero_round_solvable_small() {
        let w = weak_coloring_pointer(2, 3).unwrap();
        assert!(zero_round_pn(&w).is_none());
        assert!(zero_round_oriented(&w).is_none());
        let sw = superweak_coloring(2, 3).unwrap();
        assert!(zero_round_pn(&sw).is_none());
        // Superweak with orientations at tiny Δ may or may not be solvable;
        // Theorem 4's impossibility needs k ≤ (Δ-3)/2. For Δ=3, k=2 the
        // bound does not apply — just exercise the decider.
        let _ = zero_round_oriented(&sw);
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(weak_coloring_pointer(1, 3).is_err());
        assert!(weak_coloring_pointer(2, 1).is_err());
        assert!(superweak_coloring(1, 3).is_err());
        assert!(superweak_coloring(2, 1).is_err());
    }
}
