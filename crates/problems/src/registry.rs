//! A registry of named problem families for CLI-style tooling and examples.

use roundelim_core::error::{Error, Result};
use roundelim_core::problem::Problem;

/// A named problem family: a constructor parameterized by `(k, Δ)`.
///
/// Families ignoring `k` document that in their description.
pub struct Family {
    /// Family identifier, e.g. `"coloring"`.
    pub name: &'static str,
    /// Human description with the meaning of the parameters.
    pub description: &'static str,
    /// Whether the `k` parameter is meaningful.
    pub uses_k: bool,
    ctor: fn(usize, usize) -> Result<Problem>,
}

impl std::fmt::Debug for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Family").field("name", &self.name).field("uses_k", &self.uses_k).finish()
    }
}

impl Family {
    /// Instantiates the family.
    ///
    /// # Errors
    ///
    /// Propagates the constructor's parameter validation errors.
    pub fn instantiate(&self, k: usize, delta: usize) -> Result<Problem> {
        (self.ctor)(k, delta)
    }
}

/// All registered families.
pub fn families() -> &'static [Family] {
    &[
        Family {
            name: "coloring",
            description: "proper k-coloring at degree Δ (§4.5 with Δ=2)",
            uses_k: true,
            ctor: |k, d| crate::coloring::coloring(k, d),
        },
        Family {
            name: "edge-coloring",
            description: "proper k-edge-coloring at degree Δ",
            uses_k: true,
            ctor: |k, d| crate::coloring::edge_coloring(k, d),
        },
        Family {
            name: "sinkless-coloring",
            description: "sinkless coloring (§4.4); k ignored",
            uses_k: false,
            ctor: |_, d| crate::sinkless::sinkless_coloring(d),
        },
        Family {
            name: "sinkless-orientation",
            description: "sinkless orientation (§4.4); k ignored",
            uses_k: false,
            ctor: |_, d| crate::sinkless::sinkless_orientation(d),
        },
        Family {
            name: "weak-coloring",
            description: "pointer version of weak k-coloring (§4.6)",
            uses_k: true,
            ctor: |k, d| crate::weak::weak_coloring_pointer(k, d),
        },
        Family {
            name: "superweak-coloring",
            description: "superweak k-coloring (§5.1), explicit small-Δ form",
            uses_k: true,
            ctor: |k, d| crate::weak::superweak_coloring(k, d),
        },
        Family {
            name: "perfect-matching",
            description: "perfect matching; k ignored",
            uses_k: false,
            ctor: |_, d| crate::matching::perfect_matching(d),
        },
        Family {
            name: "maximal-matching",
            description: "maximal matching (Balliu et al. follow-up); k ignored",
            uses_k: false,
            ctor: |_, d| crate::matching::maximal_matching(d),
        },
        Family {
            name: "mis",
            description: "maximal independent set; k ignored",
            uses_k: false,
            ctor: |_, d| crate::mis::mis(d),
        },
    ]
}

/// One instance of the sweep batch automated tooling runs over the zoo.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepSpec {
    /// Family name, resolvable via [`family`].
    pub family: &'static str,
    /// The `k` parameter (0 for families that ignore it).
    pub k: usize,
    /// The degree Δ.
    pub delta: usize,
}

/// The default instances `roundelim autolb --sweep` (and the CI smoke job)
/// run: small enough to finish in seconds each, spread across the zoo's
/// behavior spectrum (fixed points, searched-relaxation bounds, and
/// description blow-ups the search must survive).
pub fn sweep_specs() -> &'static [SweepSpec] {
    &[
        SweepSpec { family: "sinkless-orientation", k: 0, delta: 3 },
        SweepSpec { family: "sinkless-coloring", k: 0, delta: 3 },
        SweepSpec { family: "sinkless-orientation", k: 0, delta: 4 },
        SweepSpec { family: "coloring", k: 3, delta: 2 },
        SweepSpec { family: "coloring", k: 4, delta: 2 },
        SweepSpec { family: "perfect-matching", k: 0, delta: 3 },
        SweepSpec { family: "maximal-matching", k: 0, delta: 3 },
        SweepSpec { family: "mis", k: 0, delta: 3 },
    ]
}

/// One case of the sim-vs-bound cross-validation sweep: a zoo instance
/// paired with the simulator algorithm that solves it and the graph family
/// it runs on (`roundelim-sim`'s crossval module resolves both names).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrossvalSpec {
    /// Family name, resolvable via [`family`].
    pub family: &'static str,
    /// The `k` parameter (0 for families that ignore it).
    pub k: usize,
    /// The degree Δ (the sweep runs on Δ-regular instances).
    pub delta: usize,
    /// Simulator algorithm: `"cole-vishkin"`, `"greedy-mis"`,
    /// `"greedy-matching"`, or `"weak2"`.
    pub algorithm: &'static str,
    /// Graph family: `"ring"` (Δ = 2) or `"random-regular"`.
    pub graph: &'static str,
}

/// The default sim-vs-bound sweep: every zoo family with a shipped
/// simulator algorithm, on instances the bound engine also certifies.
pub fn crossval_specs() -> &'static [CrossvalSpec] {
    &[
        CrossvalSpec {
            family: "coloring",
            k: 3,
            delta: 2,
            algorithm: "cole-vishkin",
            graph: "ring",
        },
        CrossvalSpec {
            family: "mis",
            k: 0,
            delta: 3,
            algorithm: "greedy-mis",
            graph: "random-regular",
        },
        CrossvalSpec {
            family: "mis",
            k: 0,
            delta: 4,
            algorithm: "greedy-mis",
            graph: "random-regular",
        },
        CrossvalSpec {
            family: "maximal-matching",
            k: 0,
            delta: 3,
            algorithm: "greedy-matching",
            graph: "random-regular",
        },
        CrossvalSpec {
            family: "weak-coloring",
            k: 2,
            delta: 3,
            algorithm: "weak2",
            graph: "random-regular",
        },
    ]
}

/// Looks up a family by name.
///
/// # Errors
///
/// Returns [`Error::Unsupported`] listing the known families.
pub fn family(name: &str) -> Result<&'static Family> {
    families().iter().find(|f| f.name == name).ok_or_else(|| Error::Unsupported {
        reason: format!(
            "unknown problem family `{name}`; known: {}",
            families().iter().map(|f| f.name).collect::<Vec<_>>().join(", ")
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_instantiates() {
        for f in families() {
            let p = f.instantiate(3, 3).unwrap_or_else(|e| panic!("{}: {e}", f.name));
            assert_eq!(p.delta(), 3, "{}", f.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(family("mis").unwrap().name, "mis");
        assert!(family("nope").is_err());
    }

    #[test]
    fn sweep_specs_all_instantiate() {
        for s in sweep_specs() {
            let f = family(s.family).unwrap_or_else(|e| panic!("{}: {e}", s.family));
            let p = f.instantiate(s.k, s.delta).unwrap_or_else(|e| panic!("{}: {e}", s.family));
            assert_eq!(p.delta(), s.delta);
        }
    }

    #[test]
    fn crossval_specs_all_instantiate() {
        for s in crossval_specs() {
            let f = family(s.family).unwrap_or_else(|e| panic!("{}: {e}", s.family));
            let p = f.instantiate(s.k, s.delta).unwrap_or_else(|e| panic!("{}: {e}", s.family));
            assert_eq!(p.delta(), s.delta);
            assert!(
                ["cole-vishkin", "greedy-mis", "greedy-matching", "weak2"].contains(&s.algorithm),
                "unknown algorithm {}",
                s.algorithm
            );
            assert!(["ring", "random-regular"].contains(&s.graph), "unknown graph {}", s.graph);
            // Ring cases are Δ = 2 by construction.
            assert!(s.graph != "ring" || s.delta == 2);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = families().iter().map(|f| f.name).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n);
    }
}
