//! Proper node coloring and edge coloring.

use roundelim_core::config::Config;
use roundelim_core::constraint::Constraint;
use roundelim_core::error::{Error, Result};
use roundelim_core::label::Alphabet;
use roundelim_core::problem::Problem;

/// Proper `k`-coloring at degree `delta` (§4.5 uses `delta = 2`, rings).
///
/// * Labels: colors `1..=k` (one output per port; a node repeats its color
///   on every port — the paper's `h(Δ) = {{c,…,c}}`).
/// * Node: all ports carry the same color.
/// * Edge: the two endpoint colors differ.
///
/// # Errors
///
/// Returns [`Error::Unsupported`] for `k < 2` or `delta < 1`, and
/// propagates alphabet overflow for huge `k`.
///
/// ```
/// use roundelim_problems::coloring::coloring;
/// let c3 = coloring(3, 2)?;
/// assert_eq!(c3.alphabet().len(), 3);
/// assert_eq!(c3.node().len(), 3);
/// assert_eq!(c3.edge().len(), 3);
/// # Ok::<(), roundelim_core::error::Error>(())
/// ```
pub fn coloring(k: usize, delta: usize) -> Result<Problem> {
    if k < 2 || delta < 1 {
        return Err(Error::Unsupported {
            reason: format!("coloring needs k ≥ 2 and Δ ≥ 1, got k={k}, Δ={delta}"),
        });
    }
    let mut alphabet = Alphabet::new();
    let labels: Vec<_> = (1..=k).map(|c| alphabet.intern(format!("{c}"))).collect::<Result<_>>()?;
    let mut node = Constraint::new(delta)?;
    for &c in &labels {
        node.insert(Config::from_groups([(c, delta)]))?;
    }
    let mut edge = Constraint::new(2)?;
    for i in 0..k {
        for j in (i + 1)..k {
            edge.insert(Config::new(vec![labels[i], labels[j]]))?;
        }
    }
    Problem::new(format!("{k}-coloring"), alphabet, node, edge)
}

/// Proper `k`-edge-coloring at degree `delta` (needs `k ≥ delta`).
///
/// * Labels: colors `1..=k`, one per port.
/// * Node: the Δ port colors are pairwise distinct.
/// * Edge: both endpoints agree on the edge's color.
///
/// # Errors
///
/// Returns [`Error::Unsupported`] if `k < delta` (no proper edge coloring
/// exists) or `delta < 1`.
pub fn edge_coloring(k: usize, delta: usize) -> Result<Problem> {
    if delta < 1 || k < delta {
        return Err(Error::Unsupported {
            reason: format!("edge coloring needs k ≥ Δ ≥ 1, got k={k}, Δ={delta}"),
        });
    }
    let mut alphabet = Alphabet::new();
    let labels: Vec<_> = (1..=k).map(|c| alphabet.intern(format!("{c}"))).collect::<Result<_>>()?;
    let mut node = Constraint::new(delta)?;
    // All delta-subsets of the k colors.
    let mut idx: Vec<usize> = (0..delta).collect();
    loop {
        node.insert(Config::new(idx.iter().map(|&i| labels[i]).collect()))?;
        // next combination
        let mut i = delta;
        loop {
            if i == 0 {
                break;
            }
            i -= 1;
            if idx[i] != i + k - delta {
                break;
            }
        }
        if idx[i] == i + k - delta {
            break;
        }
        idx[i] += 1;
        for j in i + 1..delta {
            idx[j] = idx[j - 1] + 1;
        }
    }
    let mut edge = Constraint::new(2)?;
    for &c in &labels {
        edge.insert(Config::new(vec![c, c]))?;
    }
    Problem::new(format!("{k}-edge-coloring"), alphabet, node, edge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use roundelim_core::zero_round::{zero_round_oriented, zero_round_pn};

    #[test]
    fn coloring_shape() {
        let c4 = coloring(4, 2).unwrap();
        assert_eq!(c4.alphabet().len(), 4);
        assert_eq!(c4.node().len(), 4);
        assert_eq!(c4.edge().len(), 6); // C(4,2)
        assert_eq!(c4.delta(), 2);
    }

    #[test]
    fn coloring_rejects_degenerate_parameters() {
        assert!(coloring(1, 2).is_err());
        assert!(coloring(3, 0).is_err());
    }

    #[test]
    fn coloring_never_zero_round() {
        for k in 2..=4 {
            let c = coloring(k, 3).unwrap();
            assert!(zero_round_pn(&c).is_none());
            assert!(zero_round_oriented(&c).is_none());
        }
    }

    #[test]
    fn edge_coloring_shape() {
        let ec = edge_coloring(3, 3).unwrap();
        assert_eq!(ec.node().len(), 1); // only {1,2,3}
        assert_eq!(ec.edge().len(), 3);
        let ec = edge_coloring(5, 3).unwrap();
        assert_eq!(ec.node().len(), 10); // C(5,3)
        assert!(edge_coloring(2, 3).is_err());
    }

    #[test]
    fn edge_coloring_with_orientation_zero_round_unsolvable() {
        // Proper edge coloring needs coordination beyond orientations.
        let ec = edge_coloring(3, 3).unwrap();
        assert!(zero_round_pn(&ec).is_none());
        assert!(zero_round_oriented(&ec).is_none());
    }
}
