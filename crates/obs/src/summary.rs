//! Reads a recorded `roundelim-trace-v1` file back: per-span-name
//! statistics, folded-stack output for flamegraph tooling, and the
//! timing-stripped / structural projections the determinism tests
//! compare.
//!
//! The parser targets exactly the grammar [`crate::trace`] emits (one
//! sorted-key JSON object per line); it is not a general JSON reader —
//! `roundelim_auto::json` cannot be used here because `obs` sits below
//! every other workspace crate.

use crate::metrics::Histogram;
use std::collections::BTreeMap;

/// One parsed trace event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    Enter { id: u64, parent: u64, thread: u32, name: String, value: Option<u64>, t: Option<u64> },
    Exit { id: u64, t: Option<u64> },
}

/// A parsed trace: events in file order plus the counter trailer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    pub events: Vec<TraceEvent>,
    pub counters: Vec<(String, u64)>,
    pub dropped: u64,
}

/// Extracts the number following `"key": ` on `line`, if present.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Extracts the string following `"key": "` on `line`, if present.
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let rest = &line[line.find(&pat)? + pat.len()..];
    rest.split('"').next()
}

/// Parses a trace document produced by [`crate::trace`].
///
/// # Errors
///
/// Returns a description when the header is missing/mismatched or an
/// event line is missing a required field.
pub fn parse(text: &str) -> Result<Trace, String> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| "empty trace file".to_owned())?;
    let schema = field_str(header, "schema").unwrap_or("<none>");
    if schema != "roundelim-trace-v1" {
        return Err(format!("unsupported trace schema {schema:?} (want roundelim-trace-v1)"));
    }
    let mut trace = Trace::default();
    for (ix, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let bad = |what: &str| format!("line {}: {what}: {line}", ix + 1);
        match field_str(line, "ev") {
            Some("enter") => trace.events.push(TraceEvent::Enter {
                id: field_u64(line, "id").ok_or_else(|| bad("enter without id"))?,
                parent: field_u64(line, "par").ok_or_else(|| bad("enter without par"))?,
                thread: u32::try_from(field_u64(line, "th").unwrap_or(0))
                    .map_err(|_| bad("thread id overflows u32"))?,
                name: field_str(line, "name").ok_or_else(|| bad("enter without name"))?.to_owned(),
                value: field_u64(line, "v"),
                t: field_u64(line, "t"),
            }),
            Some("exit") => trace.events.push(TraceEvent::Exit {
                id: field_u64(line, "id").ok_or_else(|| bad("exit without id"))?,
                t: field_u64(line, "t"),
            }),
            Some("counters") => {
                // {"ev": "counters", "values": {"a.b": 1, "c.d": 2}}
                let inner = line
                    .split_once('{')
                    .and_then(|(_, rest)| rest.split_once('{'))
                    .map(|(_, inner)| inner.trim_end_matches(['}', ' ']))
                    .ok_or_else(|| bad("counters without values object"))?;
                for pair in inner.split(", ") {
                    if pair.is_empty() {
                        continue;
                    }
                    let (name, v) = pair.split_once("\": ").ok_or_else(|| bad("bad counter"))?;
                    let v = v.parse::<u64>().map_err(|_| bad("bad counter value"))?;
                    trace.counters.push((name.trim_start_matches('"').to_owned(), v));
                }
            }
            Some("dropped") => {
                trace.dropped = field_u64(line, "n").ok_or_else(|| bad("dropped without n"))?;
            }
            other => return Err(bad(&format!("unknown event kind {other:?}"))),
        }
    }
    Ok(trace)
}

/// Removes every `"t"` timestamp field. Two traces of the same
/// single-threaded run stripped this way are byte-identical — the
/// determinism contract the test suite pins.
#[must_use]
pub fn strip_timings(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for line in text.lines() {
        if let Some(pos) = line.find(", \"t\": ") {
            let rest = &line[pos + 7..];
            let digits = rest.bytes().take_while(u8::is_ascii_digit).count();
            out.push_str(&line[..pos]);
            out.push_str(&rest[digits..]);
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

/// The structural projection of a trace: one line per `enter` event in
/// file order — `depth name [v=value]` — where depth counts enclosing
/// spans on the same thread. Together with the counter totals this is
/// the "span tree shape" the determinism tests compare across runs.
#[must_use]
pub fn shape(trace: &Trace) -> Vec<String> {
    let mut depth: BTreeMap<u64, usize> = BTreeMap::new(); // id -> depth
    let mut out = Vec::new();
    for ev in &trace.events {
        if let TraceEvent::Enter { id, parent, name, value, .. } = ev {
            let d = depth.get(parent).map_or(0, |p| p + 1);
            depth.insert(*id, d);
            match value {
                Some(v) => out.push(format!("{d} {name} v={v}")),
                None => out.push(format!("{d} {name}")),
            }
        }
    }
    out
}

/// Aggregated statistics for one span name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanSummary {
    pub name: String,
    /// Number of `enter` events.
    pub count: u64,
    /// Summed wall time of closed spans, ns.
    pub total_ns: u64,
    pub p50_ns: u64,
    pub p90_ns: u64,
    pub p99_ns: u64,
    pub max_ns: u64,
}

/// A whole-trace summary: per-name span statistics plus the counter
/// trailer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Summary {
    /// Sorted by name.
    pub spans: Vec<SpanSummary>,
    pub counters: Vec<(String, u64)>,
    pub total_events: u64,
    /// Spans with no matching exit (trace finished while they were open).
    pub unclosed: u64,
    pub dropped: u64,
}

/// Summarizes a parsed trace: per-name counts and duration quantiles
/// (closed spans only; timing-stripped traces summarize with zero
/// durations but full counts).
#[must_use]
pub fn summarize(trace: &Trace) -> Summary {
    let mut open: BTreeMap<u64, (usize, Option<u64>)> = BTreeMap::new(); // id -> (name ix, enter t)
    let mut names: Vec<String> = Vec::new();
    let mut name_ix: BTreeMap<String, usize> = BTreeMap::new();
    let mut counts: Vec<u64> = Vec::new();
    let mut hists: Vec<Histogram> = Vec::new();
    let mut unclosed = 0u64;
    for ev in &trace.events {
        match ev {
            TraceEvent::Enter { id, name, t, .. } => {
                let ix = *name_ix.entry(name.clone()).or_insert_with(|| {
                    names.push(name.clone());
                    counts.push(0);
                    hists.push(Histogram::new());
                    names.len() - 1
                });
                counts[ix] += 1;
                open.insert(*id, (ix, *t));
            }
            TraceEvent::Exit { id, t } => {
                if let Some((ix, entered)) = open.remove(id) {
                    if let (Some(t0), Some(t1)) = (entered, t) {
                        hists[ix].record(t1.saturating_sub(t0));
                    }
                }
            }
        }
    }
    unclosed += open.len() as u64;
    let mut spans: Vec<SpanSummary> = names
        .iter()
        .enumerate()
        .map(|(ix, name)| {
            let s = hists[ix].snapshot();
            SpanSummary {
                name: name.clone(),
                count: counts[ix],
                total_ns: s.sum,
                p50_ns: s.p50(),
                p90_ns: s.p90(),
                p99_ns: s.p99(),
                max_ns: s.max,
            }
        })
        .collect();
    spans.sort_by(|a, b| a.name.cmp(&b.name));
    Summary {
        spans,
        counters: trace.counters.clone(),
        total_events: trace.events.len() as u64,
        unclosed,
        dropped: trace.dropped,
    }
}

impl Summary {
    /// A human-readable table (the `roundelim trace summarize` output).
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} events, {} span names, {} unclosed, {} dropped",
            self.total_events,
            self.spans.len(),
            self.unclosed,
            self.dropped
        );
        let _ = writeln!(
            out,
            "  {:<28} {:>8} {:>12} {:>10} {:>10} {:>10}",
            "span", "count", "total ms", "p50 us", "p90 us", "p99 us"
        );
        for s in &self.spans {
            let _ = writeln!(
                out,
                "  {:<28} {:>8} {:>12.3} {:>10.1} {:>10.1} {:>10.1}",
                s.name,
                s.count,
                s.total_ns as f64 / 1e6,
                s.p50_ns as f64 / 1e3,
                s.p90_ns as f64 / 1e3,
                s.p99_ns as f64 / 1e3,
            );
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<36} {v:>12}");
            }
        }
        out
    }
}

/// Folds a trace into flamegraph stacks: one `root;child;leaf value`
/// line per distinct span path, sorted, where `value` is the path's
/// *exclusive* wall time in nanoseconds (children subtracted, clamped at
/// zero). The output feeds `flamegraph.pl` / `inferno-flamegraph`
/// directly. For traces without timings every path gets its enter count
/// instead, so stripped traces still fold non-empty.
#[must_use]
pub fn fold(trace: &Trace) -> Vec<String> {
    struct Node {
        parent: u64,
        name_ix: usize,
        dur: Option<u64>,
        child_ns: u64,
    }
    let mut names: Vec<&str> = Vec::new();
    let mut nodes: BTreeMap<u64, Node> = BTreeMap::new();
    let mut enter_t: BTreeMap<u64, Option<u64>> = BTreeMap::new();
    for ev in &trace.events {
        match ev {
            TraceEvent::Enter { id, parent, name, t, .. } => {
                names.push(name);
                nodes.insert(
                    *id,
                    Node { parent: *parent, name_ix: names.len() - 1, dur: None, child_ns: 0 },
                );
                enter_t.insert(*id, *t);
            }
            TraceEvent::Exit { id, t } => {
                if let (Some(Some(t0)), Some(t1)) = (enter_t.get(id), t) {
                    let dur = t1.saturating_sub(*t0);
                    let parent = nodes.get_mut(id).map(|n| {
                        n.dur = Some(dur);
                        n.parent
                    });
                    if let Some(p) = parent.and_then(|p| nodes.get_mut(&p)) {
                        p.child_ns += dur;
                    }
                }
            }
        }
    }
    let path_of = |id: u64| -> String {
        let mut parts = Vec::new();
        let mut cur = id;
        while let Some(n) = nodes.get(&cur) {
            parts.push(names[n.name_ix]);
            cur = n.parent;
        }
        parts.reverse();
        parts.join(";")
    };
    let mut by_path: BTreeMap<String, u64> = BTreeMap::new();
    let timed = nodes.values().any(|n| n.dur.is_some());
    for (&id, node) in &nodes {
        let value = match node.dur {
            Some(d) => d.saturating_sub(node.child_ns),
            None if timed => continue, // unclosed span in an otherwise timed trace
            None => 1,                 // stripped trace: fold by count
        };
        if value > 0 || !timed {
            *by_path.entry(path_of(id)).or_insert(0) += value;
        }
    }
    by_path.into_iter().map(|(path, v)| format!("{path} {v}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "{\"schema\": \"roundelim-trace-v1\"}\n\
        {\"ev\": \"enter\", \"id\": 1, \"name\": \"search.depth\", \"par\": 0, \"t\": 100, \"th\": 0, \"v\": 0}\n\
        {\"ev\": \"enter\", \"id\": 2, \"name\": \"stage.merge\", \"par\": 1, \"t\": 200, \"th\": 0}\n\
        {\"ev\": \"exit\", \"id\": 2, \"t\": 700}\n\
        {\"ev\": \"enter\", \"id\": 3, \"name\": \"stage.merge\", \"par\": 1, \"t\": 800, \"th\": 0}\n\
        {\"ev\": \"exit\", \"id\": 3, \"t\": 900}\n\
        {\"ev\": \"exit\", \"id\": 1, \"t\": 1100}\n\
        {\"ev\": \"counters\", \"values\": {\"cache.intern_hits\": 3, \"cache.intern_misses\": 14}}\n";

    #[test]
    fn parses_every_event_kind() {
        let t = parse(SAMPLE).unwrap();
        assert_eq!(t.events.len(), 6);
        assert_eq!(
            t.counters,
            vec![("cache.intern_hits".to_owned(), 3), ("cache.intern_misses".to_owned(), 14)]
        );
        assert_eq!(t.dropped, 0);
        assert_eq!(
            t.events[0],
            TraceEvent::Enter {
                id: 1,
                parent: 0,
                thread: 0,
                name: "search.depth".to_owned(),
                value: Some(0),
                t: Some(100),
            }
        );
        assert!(parse("{\"schema\": \"something-else\"}\n").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn strip_timings_removes_only_timestamps_and_is_idempotent() {
        let stripped = strip_timings(SAMPLE);
        assert!(!stripped.contains("\"t\":"), "{stripped}");
        assert!(stripped.contains("\"v\": 0"), "v fields survive: {stripped}");
        assert!(stripped.contains("\"th\": 0"), "thread ids survive: {stripped}");
        assert_eq!(strip_timings(&stripped), stripped);
        // A stripped trace still parses and keeps its structure.
        let t = parse(&stripped).unwrap();
        assert_eq!(t.events.len(), 6);
        assert_eq!(shape(&t), shape(&parse(SAMPLE).unwrap()));
    }

    #[test]
    fn shape_reports_depth_name_and_value_in_file_order() {
        let t = parse(SAMPLE).unwrap();
        assert_eq!(shape(&t), vec!["0 search.depth v=0", "1 stage.merge", "1 stage.merge"]);
    }

    #[test]
    fn summarize_aggregates_per_name_durations() {
        let s = summarize(&parse(SAMPLE).unwrap());
        assert_eq!(s.total_events, 6);
        assert_eq!(s.unclosed, 0);
        let merge = s.spans.iter().find(|x| x.name == "stage.merge").unwrap();
        assert_eq!(merge.count, 2);
        assert_eq!(merge.total_ns, 600); // 500 + 100
        assert_eq!(merge.max_ns, 500);
        let depth = s.spans.iter().find(|x| x.name == "search.depth").unwrap();
        assert_eq!((depth.count, depth.total_ns), (1, 1000));
        let rendered = s.render();
        assert!(rendered.contains("stage.merge"), "{rendered}");
        assert!(rendered.contains("cache.intern_misses"), "{rendered}");
    }

    #[test]
    fn fold_emits_exclusive_time_stacks() {
        let lines = fold(&parse(SAMPLE).unwrap());
        // depth span: 1000 total - 600 in children = 400 exclusive;
        // the two merge children aggregate on one path.
        assert_eq!(lines, vec!["search.depth 400", "search.depth;stage.merge 600"]);
        // A stripped trace folds by count instead of disappearing.
        let stripped = fold(&parse(&strip_timings(SAMPLE)).unwrap());
        assert_eq!(stripped, vec!["search.depth 1", "search.depth;stage.merge 2"]);
    }

    #[test]
    fn unclosed_spans_are_counted_not_fatal() {
        let text = "{\"schema\": \"roundelim-trace-v1\"}\n\
            {\"ev\": \"enter\", \"id\": 1, \"name\": \"a\", \"par\": 0, \"t\": 1, \"th\": 0}\n";
        let s = summarize(&parse(text).unwrap());
        assert_eq!(s.unclosed, 1);
        assert_eq!(s.spans[0].count, 1);
        assert_eq!(s.spans[0].total_ns, 0);
    }
}
