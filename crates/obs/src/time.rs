//! Monotonic time, quarantined.
//!
//! This module (plus `crates/bench`) is the only place in the workspace
//! allowed to use `std::time::Instant` directly — CI greps for violations.
//! Funnelling every clock read through here keeps timing out of
//! deterministic artifacts by construction: callers get opaque nanosecond
//! deltas that only ever flow into the metrics registry or trace events.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Process-wide epoch: the first clock read wins. All [`monotonic_ns`]
/// values are offsets from it, so timestamps within one process are
/// mutually comparable.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process epoch (saturating at `u64::MAX`, which
/// a monotonic clock cannot reach in practice).
pub fn monotonic_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A started stopwatch. Replaces ad-hoc `Instant::now()` pairs in product
/// crates; cheap to copy and to embed in long-lived structs.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Reads the clock once and starts counting.
    #[must_use]
    pub fn start() -> Self {
        Stopwatch { start: Instant::now() }
    }

    /// Elapsed wall time since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed nanoseconds, saturating at `u64::MAX`.
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_ns_never_decreases() {
        let a = monotonic_ns();
        let b = monotonic_ns();
        assert!(b >= a);
    }

    #[test]
    fn stopwatch_measures_forward_time() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(1));
        assert!(sw.elapsed_ns() >= 1_000_000);
        assert!(sw.elapsed() >= Duration::from_millis(1));
    }
}
