//! Span-based structured tracing with per-thread buffers.
//!
//! A trace is recorded between [`install`] and [`finish`]. While armed,
//! [`enter`]/[`exit`] (usually via the RAII [`span`]/[`span_v`] guards)
//! append events to a thread-local buffer; buffers drain into the global
//! sink when they hit a flush threshold, when their thread exits, and at
//! [`finish`], which renders the whole trace to a JSON-Lines document
//! (schema `roundelim-trace-v1`) and hands it to the installed writer —
//! the CLI passes an adapter around `roundelim_core::io::atomic_write`,
//! so a crash mid-write never leaves a truncated trace.
//!
//! With no sink installed every probe is one relaxed atomic load: no
//! clock read, no allocation, no lock (pinned by `O1_trace_overhead`).
//!
//! File format (one JSON object per line, keys sorted):
//!
//! ```text
//! {"schema": "roundelim-trace-v1"}
//! {"ev": "enter", "id": 1, "name": "search.depth", "par": 0, "t": 812, "th": 0, "v": 0}
//! {"ev": "exit", "id": 1, "t": 90211}
//! {"ev": "counters", "values": {"cache.intern_misses": 14}}
//! ```
//!
//! `id` is a per-trace span id (1-based; `par` 0 means "root"), `th` a
//! per-trace thread id in first-event order, `t` nanoseconds since the
//! trace started, and `v` an optional caller-supplied value (e.g. the
//! search depth). The trailer carries every registry counter total; a
//! `{"ev": "dropped", "n": …}` line follows if the event cap was hit.
//! Timestamps are the only nondeterministic payload — at one worker
//! thread, [`crate::summary::strip_timings`] of two runs is
//! byte-identical.

use crate::metrics;
use crate::time;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Writes the rendered trace document. A plain `fn` pointer so core can
/// stay free of obs→core dependency cycles: the binary that installs the
/// trace supplies the atomic-write adapter.
pub type WriterFn = fn(&Path, &str) -> Result<(), String>;

/// Thread-local buffer size that triggers a drain into the global sink.
const FLUSH_AT: usize = 4096;

/// Cap on buffered events per trace; one `full_step` emits a handful of
/// spans but canonical-cache probes fire per interned problem, so a long
/// daemon run or bench loop could otherwise grow without bound. Beyond
/// the cap events are counted as dropped, never reallocated.
pub const MAX_EVENTS: usize = 1 << 20;

/// True while a trace sink is installed.
static ARMED: AtomicBool = AtomicBool::new(false);
/// Bumped on every [`install`]; stale thread-local state and span guards
/// from a previous trace compare their generation and stand down.
static GENERATION: AtomicU64 = AtomicU64::new(0);
/// Next span id (1-based; 0 is the "no parent" sentinel).
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
/// Next per-trace thread id, assigned in first-event order.
static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);
/// `time::monotonic_ns` at [`install`]; event times are relative to it.
static START_NS: AtomicU64 = AtomicU64::new(0);

#[derive(Clone, Debug)]
enum Event {
    Enter { id: u64, parent: u64, thread: u32, name: &'static str, value: Option<u64>, t: u64 },
    Exit { id: u64, t: u64 },
}

struct Sink {
    path: PathBuf,
    writer: WriterFn,
    events: Vec<Event>,
    dropped: u64,
}

fn sink() -> &'static Mutex<Option<Sink>> {
    static SINK: OnceLock<Mutex<Option<Sink>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

fn lock_sink() -> std::sync::MutexGuard<'static, Option<Sink>> {
    // A panicking traced thread must not poison tracing for the rest of
    // the process; the buffer is structurally intact either way.
    sink().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Per-thread event buffer and open-span stack.
struct Local {
    generation: u64,
    thread: u32,
    thread_assigned: bool,
    stack: Vec<u64>,
    events: Vec<Event>,
}

impl Local {
    const fn new() -> Self {
        Local {
            generation: 0,
            thread: 0,
            thread_assigned: false,
            stack: Vec::new(),
            events: Vec::new(),
        }
    }

    fn reset_for(&mut self, generation: u64) {
        self.generation = generation;
        self.thread_assigned = false;
        self.stack.clear();
        self.events.clear();
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        flush_into_sink(self);
    }
}

thread_local! {
    static LOCAL: RefCell<Local> = const { RefCell::new(Local::new()) };
}

fn flush_into_sink(local: &mut Local) {
    if local.events.is_empty() {
        return;
    }
    let mut guard = lock_sink();
    match guard.as_mut() {
        Some(s) => {
            let room = MAX_EVENTS.saturating_sub(s.events.len());
            let take = local.events.len().min(room);
            s.dropped += (local.events.len() - take) as u64;
            s.events.extend(local.events.drain(..take));
            local.events.clear();
        }
        // The trace finished while this thread still buffered events from
        // it (or from an earlier generation): nothing to attach them to.
        None => local.events.clear(),
    }
}

/// True while a trace is being recorded.
pub fn tracing() -> bool {
    ARMED.load(Ordering::Acquire)
}

/// A handle for a span opened with [`enter`]; pass to [`exit`]. Inert
/// (id 0) when tracing was off at enter time or the trace has since been
/// replaced.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpanToken {
    id: u64,
    generation: u64,
}

impl SpanToken {
    /// True when the token refers to a recorded span.
    #[must_use]
    pub fn is_live(&self) -> bool {
        self.id != 0
    }
}

fn now_rel() -> u64 {
    time::monotonic_ns().saturating_sub(START_NS.load(Ordering::Relaxed))
}

/// Opens a span. Returns an inert token (and does no work beyond one
/// atomic load) when no trace is installed.
pub fn enter(name: &'static str, value: Option<u64>) -> SpanToken {
    if !tracing() {
        return SpanToken::default();
    }
    debug_assert!(
        name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-'),
        "span names must be JSON-safe identifiers: {name:?}"
    );
    let t = now_rel();
    LOCAL
        .try_with(|cell| {
            let mut local = cell.borrow_mut();
            let generation = GENERATION.load(Ordering::Relaxed);
            if local.generation != generation {
                local.reset_for(generation);
            }
            if !local.thread_assigned {
                local.thread = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
                local.thread_assigned = true;
            }
            let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
            let parent = local.stack.last().copied().unwrap_or(0);
            local.stack.push(id);
            let thread = local.thread;
            local.events.push(Event::Enter { id, parent, thread, name, value, t });
            if local.events.len() >= FLUSH_AT {
                flush_into_sink(&mut local);
            }
            SpanToken { id, generation }
        })
        .unwrap_or_default()
}

/// Closes a span opened by [`enter`]. A no-op for inert tokens, after
/// the trace finished, or across an [`install`] boundary.
pub fn exit(token: SpanToken) {
    if !token.is_live() || !tracing() {
        return;
    }
    let t = now_rel();
    let _ = LOCAL.try_with(|cell| {
        let mut local = cell.borrow_mut();
        if local.generation != token.generation
            || token.generation != GENERATION.load(Ordering::Relaxed)
        {
            return;
        }
        // RAII guards close in LIFO order per thread; tolerate a leaked
        // guard by truncating to the matching frame.
        if let Some(pos) = local.stack.iter().rposition(|&id| id == token.id) {
            local.stack.truncate(pos);
        }
        local.events.push(Event::Exit { id: token.id, t });
        if local.events.len() >= FLUSH_AT {
            flush_into_sink(&mut local);
        }
    });
}

/// RAII span: opens on construction, closes on drop.
#[derive(Debug)]
pub struct SpanGuard {
    token: SpanToken,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        exit(self.token);
    }
}

/// Opens a named span closed when the guard drops.
#[must_use = "the span closes when the guard drops"]
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard { token: enter(name, None) }
}

/// Opens a named span carrying a value (e.g. the search depth).
#[must_use = "the span closes when the guard drops"]
pub fn span_v(name: &'static str, value: u64) -> SpanGuard {
    SpanGuard { token: enter(name, Some(value)) }
}

/// Drains this thread's buffered events into the global sink. Called
/// automatically at thread exit and at [`finish`] (for the finishing
/// thread); long-lived threads that outlive a trace — daemon workers —
/// call it at request boundaries so their events are not stranded.
pub fn flush_thread() {
    let _ = LOCAL.try_with(|cell| flush_into_sink(&mut cell.borrow_mut()));
}

/// Installs a trace sink: resets span/thread numbering, arms tracing,
/// and remembers `path`/`writer` for [`finish`].
///
/// # Errors
///
/// Returns an error if a trace is already being recorded (one trace per
/// process at a time).
pub fn install(path: PathBuf, writer: WriterFn) -> Result<(), String> {
    let mut guard = lock_sink();
    if guard.is_some() {
        return Err("a trace is already being recorded".to_owned());
    }
    GENERATION.fetch_add(1, Ordering::Relaxed);
    NEXT_SPAN.store(1, Ordering::Relaxed);
    NEXT_THREAD.store(0, Ordering::Relaxed);
    START_NS.store(time::monotonic_ns(), Ordering::Relaxed);
    *guard = Some(Sink { path, writer, events: Vec::new(), dropped: 0 });
    // Release pairs with the Acquire in `tracing()`: a thread that sees
    // the trace armed also sees the reset numbering above.
    ARMED.store(true, Ordering::Release);
    Ok(())
}

/// Disarms tracing, drains the finishing thread's buffer, renders the
/// trace document, and writes it via the installed writer. Returns the
/// written path, or `Ok(None)` when no trace was installed. Spawned
/// threads must be joined first or their tail events may be lost (they
/// are counted nowhere — join before finishing).
///
/// # Errors
///
/// Propagates the writer's error (the sink is consumed either way).
pub fn finish() -> Result<Option<PathBuf>, String> {
    ARMED.store(false, Ordering::Release);
    flush_thread();
    let Some(s) = lock_sink().take() else {
        return Ok(None);
    };
    let body = render(&s);
    (s.writer)(&s.path, &body)?;
    Ok(Some(s.path))
}

/// Renders the trace as the `roundelim-trace-v1` JSON-Lines document.
/// Keys are sorted within each object (workspace JSON convention) and a
/// space follows each colon, matching `roundelim_auto::json`.
fn render(s: &Sink) -> String {
    let mut out = String::with_capacity(s.events.len() * 56 + 256);
    out.push_str("{\"schema\": \"roundelim-trace-v1\"}\n");
    for ev in &s.events {
        match *ev {
            Event::Enter { id, parent, thread, name, value, t } => {
                let _ = write!(
                    out,
                    "{{\"ev\": \"enter\", \"id\": {id}, \"name\": \"{name}\", \"par\": {parent}"
                );
                let _ = write!(out, ", \"t\": {t}, \"th\": {thread}");
                if let Some(v) = value {
                    let _ = write!(out, ", \"v\": {v}");
                }
                out.push_str("}\n");
            }
            Event::Exit { id, t } => {
                let _ = writeln!(out, "{{\"ev\": \"exit\", \"id\": {id}, \"t\": {t}}}");
            }
        }
    }
    let snap = metrics::snapshot();
    out.push_str("{\"ev\": \"counters\", \"values\": {");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{name}\": {v}");
    }
    out.push_str("}}\n");
    if s.dropped > 0 {
        let _ = writeln!(out, "{{\"ev\": \"dropped\", \"n\": {}}}", s.dropped);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trace state is process-global; tests that arm it take this lock.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn test_writer(path: &Path, contents: &str) -> Result<(), String> {
        std::fs::write(path, contents).map_err(|e| e.to_string())
    }

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("roundelim-obs-{tag}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn unarmed_probes_are_inert() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        assert!(!tracing());
        let token = enter("test.inert", None);
        assert!(!token.is_live());
        exit(token); // must not panic or record
        drop(span("test.inert_guard"));
    }

    #[test]
    fn install_record_finish_roundtrip() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let path = tmp("roundtrip");
        install(path.clone(), test_writer).unwrap();
        assert!(tracing());
        assert!(install(path.clone(), test_writer).is_err(), "one trace at a time");
        {
            let _outer = span_v("test.outer", 7);
            let _inner = span("test.inner");
        }
        let written = finish().unwrap().expect("a trace was installed");
        assert_eq!(written, path);
        assert!(!tracing());
        assert!(finish().unwrap().is_none(), "second finish is a no-op");

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "{\"schema\": \"roundelim-trace-v1\"}");
        assert!(lines[1].contains("\"ev\": \"enter\""), "{text}");
        assert!(lines[1].contains("\"id\": 1") && lines[1].contains("\"par\": 0"), "{text}");
        assert!(lines[1].contains("\"name\": \"test.outer\"") && lines[1].contains("\"v\": 7"));
        assert!(lines[2].contains("\"name\": \"test.inner\"") && lines[2].contains("\"par\": 1"));
        // Guards drop innermost-first.
        assert!(lines[3].contains("\"ev\": \"exit\"") && lines[3].contains("\"id\": 2"), "{text}");
        assert!(lines[4].contains("\"ev\": \"exit\"") && lines[4].contains("\"id\": 1"), "{text}");
        assert!(lines.last().unwrap().contains("\"ev\": \"counters\""), "{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn spans_from_a_previous_trace_do_not_leak_into_the_next() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let first = tmp("gen-first");
        install(first.clone(), test_writer).unwrap();
        let stale = enter("test.stale", None);
        assert!(stale.is_live());
        let _ = finish().unwrap();
        let second = tmp("gen-second");
        install(second.clone(), test_writer).unwrap();
        exit(stale); // belongs to the finished trace: must be dropped
        let _fresh = span("test.fresh");
        drop(_fresh);
        let _ = finish().unwrap();
        let text = std::fs::read_to_string(&second).unwrap();
        assert!(!text.contains("test.stale"), "{text}");
        assert!(text.contains("test.fresh"), "{text}");
        // Numbering restarted for the new trace.
        assert!(text.contains("\"id\": 1"), "{text}");
        let _ = std::fs::remove_file(&first);
        let _ = std::fs::remove_file(&second);
    }

    #[test]
    fn worker_thread_events_carry_their_own_thread_id() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let path = tmp("threads");
        install(path.clone(), test_writer).unwrap();
        {
            let _outer = span("test.main");
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    let _w = span("test.worker");
                });
            });
        }
        let _ = finish().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let main_line = text.lines().find(|l| l.contains("test.main")).unwrap();
        let worker_line = text.lines().find(|l| l.contains("test.worker")).unwrap();
        assert!(main_line.contains("\"th\": 0"), "{text}");
        assert!(worker_line.contains("\"th\": 1"), "{text}");
        // The worker span opened on a fresh thread: no cross-thread parent.
        assert!(worker_line.contains("\"par\": 0"), "{text}");
        let _ = std::fs::remove_file(&path);
    }
}
