//! Observability for the round-elimination workspace: structured span
//! tracing, atomic counters, and log-bucketed latency histograms.
//!
//! Every crate in the workspace emits into this one layer instead of
//! keeping private timing state:
//!
//! - [`metrics`] — a process-wide registry of named [`metrics::Counter`]s
//!   and HDR-style [`metrics::Histogram`]s with p50/p90/p99 summaries.
//!   Counters are always live (one relaxed `fetch_add`); timing histograms
//!   are recorded by call sites only while [`armed`] returns true, so an
//!   untraced, unprofiled run never reads the clock on hot paths.
//! - [`trace`] — span-based structured tracing. Enter/exit events carry
//!   parent span ids and land in per-thread buffers, flushed to a
//!   JSON-Lines file (schema `roundelim-trace-v1`) when the trace is
//!   finished. With no sink installed every probe is a single relaxed
//!   atomic load and no allocation — overhead is pinned by the
//!   `O1_trace_overhead` bench family.
//! - [`summary`] — reads a recorded trace back: per-span-name statistics,
//!   folded-stack output for flamegraph tooling, and timing-stripped
//!   projections used by the determinism tests.
//! - [`time`] — the one place in the workspace (outside `crates/bench`)
//!   allowed to touch `std::time::Instant`; everything else goes through
//!   [`time::Stopwatch`] / [`time::monotonic_ns`].
//!
//! Determinism contract: timing *values* are never deterministic and must
//! stay out of certificates, checkpoints, and the proof store. Event
//! *structure* — the span tree shape, per-span names/values, and counter
//! totals — is deterministic at `ROUNDELIM_THREADS=1`, and
//! [`summary::strip_timings`] of two such runs is byte-identical.

#![forbid(unsafe_code)]

pub mod metrics;
pub mod summary;
pub mod time;
pub mod trace;

use std::sync::atomic::{AtomicBool, Ordering};

/// Set while `--profile` is active (see `roundelim_core::profile`).
static PROFILING: AtomicBool = AtomicBool::new(false);

/// Arms or disarms timing collection for profiling (`--profile`).
pub fn set_profiling(on: bool) {
    PROFILING.store(on, Ordering::SeqCst);
}

/// True while `--profile` timing collection is armed.
pub fn profiling() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

/// True when timing histograms should be recorded: either profiling is
/// armed or a trace sink is installed. Hot paths gate their clock reads
/// on this so an unobserved run pays only an atomic load per probe.
pub fn armed() -> bool {
    profiling() || trace::tracing()
}
