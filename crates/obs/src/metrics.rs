//! Process-wide metrics registry: named atomic counters and log-bucketed
//! (HDR-style) histograms.
//!
//! Names are `&'static str` in dotted form (`"cache.step_memo_hits"`,
//! `"daemon.solve_ns"`; the `_ns` suffix marks nanosecond latencies).
//! [`counter`] / [`histogram`] return `&'static` handles — the registry
//! leaks one small allocation per unique name, so hot call sites cache
//! the handle in a `OnceLock` and pay a single relaxed `fetch_add` per
//! event afterwards.
//!
//! Histogram buckets are log-linear: values 0–3 are exact, then each
//! power-of-two octave `[2^m, 2^(m+1))` splits into 4 equal sub-buckets
//! (relative error ≤ 25%, 252 buckets covering all of `u64`). Quantiles
//! are answered by a bucket walk and return the matched bucket's upper
//! bound clamped to the observed min/max — integer math only, so two
//! identical record sequences always summarize identically.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Sub-bucket resolution: each octave splits into `2^SUB_BITS` buckets.
const SUB_BITS: u32 = 2;
/// Total bucket count (group 62 ends at index 251; round up for safety).
const BUCKETS: usize = 256;

/// A monotonically increasing atomic counter. Always live — incrementing
/// is one relaxed `fetch_add` whether or not anything reads it.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zeroed counter (registry use; call sites go via [`counter`]).
    #[must_use]
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Zeroes the counter (tests and `--profile` reset).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Maps a value to its log-linear bucket index.
fn bucket_index(v: u64) -> usize {
    let sub_count = 1u64 << SUB_BITS;
    if v < sub_count {
        return usize::try_from(v).expect("v < 4");
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS
    let group = msb - SUB_BITS + 1;
    let sub = (v >> (msb - SUB_BITS)) & (sub_count - 1);
    usize::try_from(u64::from(group) * sub_count + sub).expect("bucket index fits")
}

/// Largest value stored in bucket `i` (inverse of [`bucket_index`]).
fn bucket_upper_bound(i: usize) -> u64 {
    let i = u64::try_from(i).expect("bucket index");
    let sub_count = 1u64 << SUB_BITS;
    if i < sub_count {
        return i;
    }
    let group = i >> SUB_BITS;
    let sub = i & (sub_count - 1);
    // Octave base 2^(group+1), sub-bucket width 2^(group-1). Computed in
    // u128: the top buckets' bounds exceed u64 and saturate.
    let bound = (u128::from(sub_count + sub + 1) << (group - 1)) - 1;
    u64::try_from(bound).unwrap_or(u64::MAX)
}

/// A log-bucketed latency/value histogram with exact count/sum/min/max.
/// Recording is lock-free: one bucket `fetch_add` plus four bookkeeping
/// atomics, all relaxed.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh empty histogram (registry use; call sites go via
    /// [`histogram`]).
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations so far (wrapping; nanosecond sums would
    /// need five centuries of recorded time to wrap).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Forgets every observation.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// A point-in-time copy for summarizing. Not a consistent cut under
    /// concurrent writers (metrics, not accounting), but exact when the
    /// histogram is quiescent.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then(|| (bucket_upper_bound(i), n))
                })
                .collect(),
        }
    }
}

/// An immutable histogram summary: exact count/sum/min/max plus the
/// non-empty buckets as `(upper_bound, count)` pairs in ascending order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// The `p`-per-mille quantile (`500` = p50). Returns the upper bound
    /// of the bucket containing that rank, clamped to the observed
    /// min/max; 0 for an empty histogram. Integer math throughout.
    #[must_use]
    pub fn quantile_permille(&self, p: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = self.count.saturating_mul(p).div_ceil(1000).clamp(1, self.count);
        let mut seen = 0u64;
        for &(bound, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bound.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (by bucket upper bound).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile_permille(500)
    }

    /// 90th percentile.
    #[must_use]
    pub fn p90(&self) -> u64 {
        self.quantile_permille(900)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile_permille(990)
    }
}

/// The process-wide registry. Handles are leaked so call sites can hold
/// `&'static` references; the leak is bounded by the set of distinct
/// metric names (small and static in practice).
#[derive(Default)]
struct Registry {
    counters: BTreeMap<&'static str, &'static Counter>,
    histograms: BTreeMap<&'static str, &'static Histogram>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

fn lock_registry() -> std::sync::MutexGuard<'static, Registry> {
    // Metrics must survive a panicking worker thread: a poisoned lock
    // still guards a structurally intact map, so clear the poison flag
    // rather than propagating it into unrelated threads.
    registry().lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The counter registered under `name`, created on first use.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut reg = lock_registry();
    reg.counters.entry(name).or_insert_with(|| Box::leak(Box::new(Counter::new())))
}

/// The histogram registered under `name`, created on first use.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut reg = lock_registry();
    reg.histograms.entry(name).or_insert_with(|| Box::leak(Box::new(Histogram::new())))
}

/// A point-in-time copy of the whole registry, names sorted.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    pub counters: Vec<(String, u64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Snapshots every registered counter and histogram (sorted by name).
#[must_use]
pub fn snapshot() -> Snapshot {
    let reg = lock_registry();
    Snapshot {
        counters: reg.counters.iter().map(|(n, c)| ((*n).to_owned(), c.get())).collect(),
        histograms: reg.histograms.iter().map(|(n, h)| ((*n).to_owned(), h.snapshot())).collect(),
    }
}

/// Zeroes every registered counter and histogram (handles stay valid).
pub fn reset_all() {
    let reg = lock_registry();
    for c in reg.counters.values() {
        c.reset();
    }
    for h in reg.histograms.values() {
        h.reset();
    }
}

/// A metric name as a Prometheus identifier: `roundelim_` prefix, with
/// every non-alphanumeric character mapped to `_`.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 10);
    out.push_str("roundelim_");
    out.extend(name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }));
    out
}

/// Renders a snapshot in the Prometheus text exposition format:
/// counters as `counter` metrics, histograms as `summary` metrics with
/// p50/p90/p99 quantiles plus `_sum` and `_count`.
#[must_use]
pub fn prometheus_text(snap: &Snapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let p = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {p} counter");
        let _ = writeln!(out, "{p} {v}");
    }
    for (name, h) in &snap.histograms {
        let p = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {p} summary");
        for (q, permille) in [("0.5", 500), ("0.9", 900), ("0.99", 990)] {
            let _ = writeln!(out, "{p}{{quantile=\"{q}\"}} {}", h.quantile_permille(permille));
        }
        let _ = writeln!(out, "{p}_sum {}", h.sum);
        let _ = writeln!(out, "{p}_count {}", h.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_land_in_exact_buckets() {
        for v in 0..4u64 {
            let i = bucket_index(v);
            assert_eq!(i, usize::try_from(v).unwrap());
            assert_eq!(bucket_upper_bound(i), v);
        }
        // The [4, 8) octave is still exact (sub-bucket width 1).
        for v in 4..8u64 {
            assert_eq!(bucket_upper_bound(bucket_index(v)), v);
        }
    }

    #[test]
    fn buckets_are_monotone_and_bounds_contain_their_values() {
        let mut samples: Vec<u64> = (0..256).collect();
        for shift in 3..64u32 {
            for off in [0u64, 1, 2, 3] {
                samples.push((1u64 << shift).saturating_add(off << (shift - 3)));
            }
        }
        samples.push(u64::MAX);
        samples.sort_unstable();
        let mut prev = 0;
        for v in samples {
            let i = bucket_index(v);
            assert!(i >= prev, "bucket index must not decrease: v={v}");
            prev = i;
            assert!(i < BUCKETS, "v={v} overflows the bucket array");
            assert!(bucket_upper_bound(i) >= v, "upper bound below value: v={v}");
            if i > 0 {
                assert!(bucket_upper_bound(i - 1) < v, "previous bound covers v={v}");
            }
        }
    }

    #[test]
    fn relative_error_is_bounded_by_a_quarter() {
        for v in [10u64, 100, 1_000, 123_456, 1 << 40] {
            let bound = bucket_upper_bound(bucket_index(v));
            assert!(bound - v <= v / 4, "v={v} bound={bound}");
        }
    }

    #[test]
    fn quantiles_walk_buckets_deterministically() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        let p50 = s.p50();
        // Rank 50 lands in the bucket holding 50; its upper bound is 55
        // (octave [32,64), sub-bucket [48,56)).
        assert_eq!(p50, 55);
        assert!(s.p90() >= p50 && s.p99() >= s.p90());
        assert!(s.p99() <= 100, "clamped to the observed max");
        // Identical record sequences summarize identically.
        let h2 = Histogram::new();
        for v in 1..=100u64 {
            h2.record(v);
        }
        assert_eq!(h2.snapshot(), s);
    }

    #[test]
    fn empty_histogram_summarizes_to_zeroes() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.sum, s.min, s.max), (0, 0, 0, 0));
        assert_eq!(s.p50(), 0);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn registry_returns_the_same_handle_per_name() {
        let a = counter("test.registry_identity");
        let b = counter("test.registry_identity");
        assert!(std::ptr::eq(a, b));
        a.incr();
        b.add(2);
        assert_eq!(a.get(), 3);
        let h1 = histogram("test.registry_identity_h");
        let h2 = histogram("test.registry_identity_h");
        assert!(std::ptr::eq(h1, h2));
    }

    #[test]
    fn snapshot_sorts_names_and_prometheus_renders_both_kinds() {
        counter("test.prom_b").add(2);
        counter("test.prom_a").add(1);
        histogram("test.prom_ns").record(7);
        let snap = snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        let text = prometheus_text(&snap);
        assert!(text.contains("# TYPE roundelim_test_prom_a counter"), "{text}");
        assert!(text.contains("roundelim_test_prom_b 2"), "{text}");
        assert!(text.contains("roundelim_test_prom_ns{quantile=\"0.5\"} 7"), "{text}");
        assert!(text.contains("roundelim_test_prom_ns_count 1"), "{text}");
    }
}
