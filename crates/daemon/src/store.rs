//! The persistent proof store.
//!
//! An append-only file of `roundelim-bin-v1` frames (kind `proof`), each
//! holding one solved problem and the certificate backing its bound. The
//! whole store is replayed at open time into the search's own
//! [`CanonCache`], so lookups resolve **up to isomorphism**: a query that
//! renames the labels (or permutes the configurations) of a solved problem
//! hits the cache and is served the stored representative with its
//! certificate, no search.
//!
//! ## Durability
//!
//! * Every record is an individually checksummed frame; frames are
//!   self-delimiting, so the file is a plain concatenation and the index
//!   is always rebuildable by a linear scan.
//! * Appends rewrite the store through
//!   [`atomic_write`](roundelim_core::io::atomic_write) (temp file, fsync,
//!   rename) — a crash leaves the previous store, never a torn one.
//! * Insert order is the only thing that determines the bytes, so a
//!   sequence of requests produces a byte-identical store at every
//!   `ROUNDELIM_THREADS` setting (the search itself is deterministic).
//!
//! ## Warm-start snapshot
//!
//! Replaying a large store re-canonicalizes every problem. A graceful
//! shutdown writes a sidecar (`cache.snap.bin`, frame kind `store-cache`)
//! with the live [`CanonCache`] snapshot and the record index, guarded by
//! the FNV-1a checksum of the store bytes it describes. On open, a sidecar
//! whose guard matches the store restores the cache directly; any mismatch
//! (store appended to after the snapshot, partial copy, corruption) falls
//! back to the linear rebuild. The sidecar is an optimization only — its
//! loss is never an error.

use roundelim_auto::binenc::{
    decode_certificate, decode_snapshot, encode_certificate, encode_snapshot,
};
use roundelim_auto::certificate::{Certificate, Direction};
use roundelim_auto::CanonCache;
use roundelim_core::binenc::{
    decode_problem, encode_problem, fnv1a64, frame, read_frame, unframe, Dec, Enc,
};
use roundelim_core::error::{Error, Result};
use roundelim_core::io::atomic_write;
use roundelim_core::problem::Problem;
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// The store file inside a daemon directory.
pub const STORE_FILE: &str = "proofs.bin";

/// The warm-start sidecar inside a daemon directory.
pub const SNAP_FILE: &str = "cache.snap.bin";

const PROOF_KIND: &str = "proof";
const SNAP_KIND: &str = "store-cache";

fn dir_tag(d: Direction) -> u8 {
    match d {
        Direction::Lower => 0,
        Direction::Upper => 1,
    }
}

/// One stored proof: the problem as originally solved and its certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// The solved problem (the class representative served on hits).
    pub problem: Problem,
    /// The certificate backing the bound; replays against `problem`.
    pub certificate: Certificate,
}

/// The append-only, isomorphism-indexed proof store (see module docs).
#[derive(Debug)]
pub struct ProofStore {
    dir: PathBuf,
    /// The exact current store file contents.
    bytes: Vec<u8>,
    records: Vec<Record>,
    /// Interns every stored problem (plus looked-up queries), giving each
    /// isomorphism class a stable id.
    cache: CanonCache,
    /// (class id, direction) → index into `records`.
    index: HashMap<(u32, u8), usize>,
}

impl ProofStore {
    /// Opens (or initializes) the store in `dir`.
    ///
    /// # Errors
    ///
    /// I/O errors, or a corrupted/truncated store file (every frame is
    /// checksummed; a bad sidecar is ignored, a bad store is not).
    pub fn open(dir: impl Into<PathBuf>) -> Result<ProofStore> {
        let dir = dir.into();
        let path = dir.join(STORE_FILE);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => {
                return Err(Error::Io { path: path.display().to_string(), reason: e.to_string() })
            }
        };
        let mut d = Dec::new(&bytes);
        let mut records = Vec::new();
        while d.remaining() > 0 {
            let payload = read_frame(&mut d, PROOF_KIND)?;
            let mut pd = Dec::new(payload);
            let problem = decode_problem(&mut pd)?;
            let certificate = decode_certificate(&mut pd)?;
            pd.finish()?;
            records.push(Record { problem, certificate });
        }
        let mut store =
            ProofStore { dir, bytes, records, cache: CanonCache::default(), index: HashMap::new() };
        if !store.try_restore_sidecar() {
            store.rebuild_cache();
        }
        Ok(store)
    }

    /// Restores the cache and index from the warm-start sidecar, if it
    /// matches the store bytes. Returns whether it did.
    fn try_restore_sidecar(&mut self) -> bool {
        let Ok(bytes) = std::fs::read(self.dir.join(SNAP_FILE)) else { return false };
        let Ok(payload) = unframe(&bytes, SNAP_KIND) else { return false };
        let mut d = Dec::new(payload);
        type Restored = (CanonCache, HashMap<(u32, u8), usize>);
        let mut parse = || -> Result<Restored> {
            if d.u64("store guard")? != fnv1a64(&self.bytes) {
                return Err(Error::Inconsistent { reason: "sidecar guard mismatch".into() });
            }
            let cache = CanonCache::restore(decode_snapshot(&mut d)?)?;
            let n = d.u32("index count")? as usize;
            let mut index = HashMap::with_capacity(n);
            for _ in 0..n {
                let id = d.u32("index class id")?;
                let tag = d.u8("index direction")?;
                let ix = d.u32("index record")? as usize;
                if (id as usize) >= cache.len() || ix >= self.records.len() || tag > 1 {
                    return Err(Error::Inconsistent {
                        reason: "sidecar index out of range".into(),
                    });
                }
                index.insert((id, tag), ix);
            }
            d.finish()?;
            if index.len() != self.records.len() {
                return Err(Error::Inconsistent { reason: "sidecar index incomplete".into() });
            }
            Ok((cache, index))
        };
        match parse() {
            Ok((cache, index)) => {
                self.cache = cache;
                self.index = index;
                true
            }
            Err(_) => false,
        }
    }

    /// Rebuilds the isomorphism index by interning every record in order.
    fn rebuild_cache(&mut self) {
        self.cache = CanonCache::default();
        self.index = HashMap::new();
        for ix in 0..self.records.len() {
            let (id, _) = self.cache.intern(self.records[ix].problem.clone());
            let dir = self.records[ix].certificate.direction;
            self.index.entry((id.0, dir_tag(dir))).or_insert(ix);
        }
    }

    /// Number of stored proofs.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store holds no proofs.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of interned isomorphism classes (stored problems plus
    /// looked-up queries).
    pub fn classes(&self) -> usize {
        self.cache.len()
    }

    /// Looks up a proof for `p`'s isomorphism class in `direction`.
    ///
    /// Takes `&mut self` because the query is interned: a later insert of
    /// the same class (or any isomorphic spelling) resolves to the same id.
    pub fn lookup(&mut self, p: &Problem, direction: Direction) -> Option<&Record> {
        let (id, fresh) = self.cache.intern(p.clone());
        if fresh {
            return None;
        }
        self.index.get(&(id.0, dir_tag(direction))).map(|&ix| &self.records[ix])
    }

    /// Appends a proof, unless its isomorphism class is already stored for
    /// the certificate's direction (returns `false` — first write wins, so
    /// the store never grows duplicate classes).
    ///
    /// The append is durable before this returns: the store file is
    /// rewritten atomically with the new frame included.
    ///
    /// # Errors
    ///
    /// I/O errors from the atomic write (the in-memory state is unchanged
    /// on failure).
    pub fn insert(&mut self, problem: Problem, certificate: Certificate) -> Result<bool> {
        let tag = dir_tag(certificate.direction);
        let (id, _) = self.cache.intern(problem.clone());
        if self.index.contains_key(&(id.0, tag)) {
            return Ok(false);
        }
        let mut e = Enc::new();
        encode_problem(&problem, &mut e);
        encode_certificate(&certificate, &mut e);
        let rec = frame(PROOF_KIND, &e.into_bytes());
        let mut bytes = Vec::with_capacity(self.bytes.len() + rec.len());
        bytes.extend_from_slice(&self.bytes);
        bytes.extend_from_slice(&rec);
        atomic_write(self.dir.join(STORE_FILE), &bytes)?;
        self.bytes = bytes;
        self.index.insert((id.0, tag), self.records.len());
        self.records.push(Record { problem, certificate });
        Ok(true)
    }

    /// Writes the warm-start sidecar for the current store contents
    /// (called on graceful shutdown; see module docs).
    ///
    /// # Errors
    ///
    /// I/O errors from the atomic write.
    pub fn save_cache_snapshot(&self) -> Result<()> {
        let mut e = Enc::new();
        e.u64(fnv1a64(&self.bytes));
        encode_snapshot(&self.cache.snapshot(), &mut e);
        let mut entries: Vec<_> = self.index.iter().map(|(&k, &v)| (k, v)).collect();
        entries.sort_unstable();
        e.u32(entries.len() as u32);
        for ((id, tag), ix) in entries {
            e.u32(id);
            e.u8(tag);
            e.u32(ix as u32);
        }
        atomic_write(self.dir.join(SNAP_FILE), frame(SNAP_KIND, &e.into_bytes()))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roundelim_auto::search::{autolb, SearchOptions};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("roundelim-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sinkless() -> Problem {
        Problem::parse("name: so\nnode: O O O | O O I | O I I\nedge: O I").unwrap()
    }

    /// Sinkless orientation with the labels renamed — isomorphic, not equal.
    fn sinkless_renamed() -> Problem {
        Problem::parse("name: so2\nnode: Y X X | X X X | Y Y X\nedge: X Y").unwrap()
    }

    fn solved() -> (Problem, Certificate) {
        let p = sinkless();
        let out = autolb(&p, &SearchOptions { threads: 1, ..SearchOptions::default() }).unwrap();
        (p, out.certificate.expect("sinkless orientation certifies"))
    }

    #[test]
    fn insert_persist_reopen_lookup() {
        let dir = tmp_dir("basic");
        let (p, cert) = solved();
        {
            let mut store = ProofStore::open(&dir).unwrap();
            assert!(store.is_empty());
            assert!(store.lookup(&p, Direction::Lower).is_none());
            assert!(store.insert(p.clone(), cert.clone()).unwrap());
            assert!(!store.insert(p.clone(), cert.clone()).unwrap(), "duplicate class");
            assert_eq!(store.len(), 1);
        }
        // A fresh open (no sidecar) rebuilds the index by scanning.
        let mut store = ProofStore::open(&dir).unwrap();
        assert_eq!(store.len(), 1);
        let rec = store.lookup(&p, Direction::Lower).expect("hit after reopen");
        assert_eq!(rec.certificate, cert);
        rec.certificate.verify().unwrap();
        // An isomorphic renaming hits the same class; the served
        // certificate replays against the stored representative.
        let hit = store.lookup(&sinkless_renamed(), Direction::Lower).expect("isomorphic hit");
        assert_eq!(hit.problem, p);
        // The other direction is a different key.
        assert!(store.lookup(&p, Direction::Upper).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sidecar_restores_and_guards() {
        let dir = tmp_dir("sidecar");
        let (p, cert) = solved();
        {
            let mut store = ProofStore::open(&dir).unwrap();
            store.insert(p.clone(), cert.clone()).unwrap();
            // Intern a query miss too: the snapshot may hold more classes
            // than records.
            assert!(store.lookup(&sinkless_renamed(), Direction::Upper).is_none());
            store.save_cache_snapshot().unwrap();
        }
        let mut store = ProofStore::open(&dir).unwrap();
        assert_eq!(store.len(), 1);
        assert!(store.classes() >= 1);
        assert!(store.lookup(&sinkless_renamed(), Direction::Lower).is_some());
        // Append after the snapshot: the stale sidecar must be ignored,
        // not trusted.
        let q = Problem::parse("name: q\nnode: A A A\nedge: A A").unwrap();
        let out = autolb(&q, &SearchOptions { threads: 1, ..SearchOptions::default() }).unwrap();
        store.insert(q.clone(), out.certificate.unwrap()).unwrap();
        let mut reopened = ProofStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 2);
        assert!(reopened.lookup(&q, Direction::Lower).is_some());
        assert!(reopened.lookup(&p, Direction::Lower).is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_store_is_rejected() {
        let dir = tmp_dir("corrupt");
        let (p, cert) = solved();
        {
            let mut store = ProofStore::open(&dir).unwrap();
            store.insert(p, cert).unwrap();
        }
        let path = dir.join(STORE_FILE);
        let good = std::fs::read(&path).unwrap();
        // Flip a payload byte: the frame checksum must catch it.
        let mut torn = good.clone();
        torn[good.len() / 2] ^= 0x01;
        std::fs::write(&path, &torn).unwrap();
        let err = ProofStore::open(&dir).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        // Truncation is caught too.
        std::fs::write(&path, &good[..good.len() - 3]).unwrap();
        assert!(ProofStore::open(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_bytes_depend_only_on_insert_order() {
        let (p, cert) = solved();
        let dir_a = tmp_dir("order-a");
        let dir_b = tmp_dir("order-b");
        for dir in [&dir_a, &dir_b] {
            let mut store = ProofStore::open(dir).unwrap();
            store.insert(p.clone(), cert.clone()).unwrap();
        }
        assert_eq!(
            std::fs::read(dir_a.join(STORE_FILE)).unwrap(),
            std::fs::read(dir_b.join(STORE_FILE)).unwrap()
        );
        std::fs::remove_dir_all(&dir_a).unwrap();
        std::fs::remove_dir_all(&dir_b).unwrap();
    }
}
