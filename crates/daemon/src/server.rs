//! The `roundelimd` TCP server.
//!
//! One accept loop, one thread per connection, and a fixed pool of search
//! workers. Connections parse requests ([`crate::proto`]) and enqueue
//! `solve` jobs; workers consult the [`ProofStore`] first and only search
//! on a miss, streaming `progress` events back through the requesting
//! connection. Every in-flight search carries a
//! [`CancelToken`], so `shutdown` (a request, or the process signal probe
//! wired in by the CLI) stops the pool cooperatively: running searches
//! wind down at their next poll point, the warm-start cache snapshot is
//! persisted, and [`Server::run`] returns.

use crate::proto::{self, Budget, DaemonStats, Request, SolveRequest};
use crate::store::ProofStore;
use roundelim_auto::certificate::Direction;
use roundelim_auto::search::{autolb, autoub, CancelToken, ProgressHook, SearchOptions, StopCause};
use roundelim_core::error::{Error, Result};
use roundelim_core::problem::Problem;
use roundelim_obs as obs;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7412` (`:0` picks a free port).
    pub addr: String,
    /// Directory holding the proof store and its sidecar.
    pub store_dir: PathBuf,
    /// Search worker threads (`0` means 2). Each worker runs one search at
    /// a time; `threads` sets each search's own parallelism.
    pub workers: usize,
    /// Per-job search thread budget, handed to every search through the
    /// same [`SearchOptions::threads`] path the CLI uses (`0` resolves the
    /// workspace convention: `ROUNDELIM_THREADS`, else all cores).
    pub threads: usize,
    /// External shutdown probe (e.g. a SIGTERM/SIGINT flag), polled by the
    /// accept loop. Firing takes the same graceful path as a `shutdown`
    /// request.
    pub signal: Option<fn() -> bool>,
}

impl ServeConfig {
    /// A config with the given address and store directory, default pool,
    /// no signal probe.
    pub fn new(addr: impl Into<String>, store_dir: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            addr: addr.into(),
            store_dir: store_dir.into(),
            workers: 0,
            threads: 0,
            signal: None,
        }
    }
}

/// Why [`Server::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exit {
    /// A client sent `shutdown`.
    Requested,
    /// The [`ServeConfig::signal`] probe fired.
    Signalled,
}

/// The daemon's service counters, rebuilt on atomics: each cell is a
/// `daemon.*` counter in the `roundelim-obs` registry, so the `stats`
/// response, the `metrics` response, and trace counter trailers all read
/// the same numbers — and a panicking worker can never poison the stats
/// path (the old `Mutex<DaemonStats>` aborted unrelated connections once
/// poisoned).
///
/// Registry counters are process-global; a server counts from whatever
/// the process has accumulated (zero in the one-daemon-per-process
/// deployment the CLI sets up).
struct StatsCells {
    requests: &'static obs::metrics::Counter,
    cache_hits: &'static obs::metrics::Counter,
    cache_misses: &'static obs::metrics::Counter,
    solved: &'static obs::metrics::Counter,
    inconclusive: &'static obs::metrics::Counter,
    errors: &'static obs::metrics::Counter,
}

impl StatsCells {
    fn new() -> StatsCells {
        StatsCells {
            requests: obs::metrics::counter("daemon.requests"),
            cache_hits: obs::metrics::counter("daemon.cache_hits"),
            cache_misses: obs::metrics::counter("daemon.cache_misses"),
            solved: obs::metrics::counter("daemon.solved"),
            inconclusive: obs::metrics::counter("daemon.inconclusive"),
            errors: obs::metrics::counter("daemon.errors"),
        }
    }

    /// A point-in-time copy as the wire snapshot type.
    fn snapshot(&self) -> DaemonStats {
        DaemonStats {
            requests: self.requests.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            solved: self.solved.get(),
            inconclusive: self.inconclusive.get(),
            errors: self.errors.get(),
        }
    }
}

/// State shared between the accept loop, connections, and workers.
struct Shared {
    store: Mutex<ProofStore>,
    stats: StatsCells,
    /// Cancellation tokens of in-flight searches, by job id.
    active: Mutex<HashMap<u64, CancelToken>>,
    next_job: AtomicU64,
    shutdown: AtomicBool,
    workers: usize,
    /// Per-job search thread budget (see [`ServeConfig::threads`]).
    search_threads: usize,
}

impl Shared {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for token in self.active.lock().expect("active registry poisoned").values() {
            token.cancel();
        }
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// What a worker streams back to the requesting connection.
enum Reply {
    /// A `progress` event line.
    Progress(String),
    /// The terminal line of the request (result or error).
    Done(String),
}

/// A queued `solve` job.
struct Job {
    problem: Problem,
    direction: Direction,
    budget: Budget,
    reply: Sender<Reply>,
    /// `obs::time::monotonic_ns` at enqueue; the worker that dequeues the
    /// job records the difference as `daemon.queue_wait_ns`.
    enqueued_ns: u64,
}

/// A bound, not-yet-running `roundelimd` instance.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    signal: Option<fn() -> bool>,
}

impl Server {
    /// Opens the proof store and binds the listen socket.
    ///
    /// # Errors
    ///
    /// Store open failures (corrupted store) and socket errors.
    pub fn bind(cfg: &ServeConfig) -> Result<Server> {
        let store = ProofStore::open(&cfg.store_dir)?;
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| Error::Io { path: cfg.addr.clone(), reason: format!("bind: {e}") })?;
        listener.set_nonblocking(true).map_err(|e| Error::Io {
            path: cfg.addr.clone(),
            reason: format!("set_nonblocking: {e}"),
        })?;
        let shared = Arc::new(Shared {
            store: Mutex::new(store),
            stats: StatsCells::new(),
            active: Mutex::new(HashMap::new()),
            next_job: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            workers: if cfg.workers == 0 { 2 } else { cfg.workers },
            search_threads: cfg.threads,
        });
        Ok(Server { listener, shared, signal: cfg.signal })
    }

    /// The bound address (resolves `:0` to the actual port).
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn local_addr(&self) -> Result<SocketAddr> {
        self.listener
            .local_addr()
            .map_err(|e| Error::Io { path: "listener".into(), reason: format!("local_addr: {e}") })
    }

    /// Serves until shutdown, then persists the warm-start snapshot.
    ///
    /// # Errors
    ///
    /// Accept-loop socket failures and snapshot write failures. Per-request
    /// failures are reported to the requesting client, not here.
    pub fn run(self) -> Result<Exit> {
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let workers: Vec<_> = (0..self.shared.workers)
            .map(|_| {
                let shared = Arc::clone(&self.shared);
                let rx = Arc::clone(&job_rx);
                std::thread::spawn(move || worker_loop(&shared, &rx))
            })
            .collect();
        let mut exit = Exit::Requested;
        loop {
            if self.shared.shutting_down() {
                break;
            }
            if self.signal.is_some_and(|fired| fired()) {
                exit = Exit::Signalled;
                self.shared.begin_shutdown();
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&self.shared);
                    let tx = job_tx.clone();
                    std::thread::spawn(move || handle_connection(stream, &shared, &tx));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(15));
                }
                Err(e) => {
                    return Err(Error::Io { path: "accept".into(), reason: e.to_string() });
                }
            }
        }
        // Wake queued jobs' connections by draining the pool: workers exit
        // on the shutdown flag, dropped jobs surface as errors client-side.
        drop(job_tx);
        for w in workers {
            let _ = w.join();
        }
        self.shared.store.lock().expect("store poisoned").save_cache_snapshot()?;
        Ok(exit)
    }
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<Job>>) {
    loop {
        let job = {
            let rx = rx.lock().expect("job queue poisoned");
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(job) => job,
                Err(RecvTimeoutError::Timeout) => {
                    if shared.shutting_down() {
                        return;
                    }
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => return,
            }
        };
        if shared.shutting_down() {
            let _ = job.reply.send(Reply::Done(proto::error_line("daemon is shutting down")));
            continue;
        }
        run_job(shared, &job);
    }
}

/// Serves one `solve` job: store hit, or a real search followed by a
/// durable insert. The request is wrapped in a `daemon.request` trace
/// span with `daemon.solve`/`daemon.encode` children, and its queue
/// wait, solve, and encode latencies land in the `daemon.*_ns`
/// histograms (always recorded — the `metrics` command must answer
/// without `--profile`).
fn run_job(shared: &Shared, job: &Job) {
    let _request_span = obs::trace::span("daemon.request");
    obs::metrics::histogram("daemon.queue_wait_ns")
        .record(obs::time::monotonic_ns().saturating_sub(job.enqueued_ns));
    shared.stats.requests.incr();
    // Cache first: an isomorphic class solved in this direction is served
    // with its stored representative and certificate, no search.
    let hit = {
        let mut store = shared.store.lock().expect("store poisoned");
        store
            .lookup(&job.problem, job.direction)
            .map(|rec| (rec.problem.to_text(), rec.certificate.clone()))
    };
    if let Some((problem_text, cert)) = hit {
        shared.stats.cache_hits.incr();
        let encode_span = obs::trace::span("daemon.encode");
        let encode_watch = obs::time::Stopwatch::start();
        let line = proto::result_line(
            true,
            &problem_text,
            proto::cert_verdict_json(&cert.verdict),
            "cached",
            cert.incomplete,
            Some(&cert),
        );
        obs::metrics::histogram("daemon.encode_ns").record(encode_watch.elapsed_ns());
        drop(encode_span);
        let _ = job.reply.send(Reply::Done(line));
        obs::trace::flush_thread();
        return;
    }
    shared.stats.cache_misses.incr();
    let mut opts = SearchOptions::default();
    job.budget.apply(&mut opts);
    opts.threads = shared.search_threads;
    let token = CancelToken::new();
    let job_id = shared.next_job.fetch_add(1, Ordering::SeqCst);
    shared.active.lock().expect("active registry poisoned").insert(job_id, token.clone());
    opts.cancel = Some(token);
    let progress_tx = Mutex::new(job.reply.clone());
    opts.progress = Some(ProgressHook::new(move |p| {
        let tx = progress_tx.lock().expect("progress sender poisoned");
        let _ = tx.send(Reply::Progress(proto::progress_line(p)));
    }));
    let solve_span = obs::trace::span("daemon.solve");
    let solve_watch = obs::time::Stopwatch::start();
    let outcome = match job.direction {
        Direction::Lower => autolb(&job.problem, &opts),
        Direction::Upper => autoub(&job.problem, &opts),
    };
    obs::metrics::histogram("daemon.solve_ns").record(solve_watch.elapsed_ns());
    drop(solve_span);
    shared.active.lock().expect("active registry poisoned").remove(&job_id);
    let encode_span = obs::trace::span("daemon.encode");
    let encode_watch = obs::time::Stopwatch::start();
    let line = match outcome {
        Err(e) => {
            shared.stats.errors.incr();
            proto::error_line(&format!("search failed: {e}"))
        }
        Ok(out) => {
            let incomplete =
                out.certificate.as_ref().map_or(out.stop != StopCause::Completed, |c| c.incomplete);
            if let Some(cert) = &out.certificate {
                let inserted = {
                    let mut store = shared.store.lock().expect("store poisoned");
                    store.insert(job.problem.clone(), cert.clone())
                };
                if let Err(e) = inserted {
                    shared.stats.errors.incr();
                    let _ = job.reply.send(Reply::Done(proto::error_line(&format!(
                        "proof store write failed: {e}"
                    ))));
                    obs::trace::flush_thread();
                    return;
                }
                shared.stats.solved.incr();
            } else {
                shared.stats.inconclusive.incr();
            }
            proto::result_line(
                false,
                &job.problem.to_text(),
                proto::verdict_json(&out.verdict),
                out.stop.as_str(),
                incomplete,
                out.certificate.as_ref(),
            )
        }
    };
    obs::metrics::histogram("daemon.encode_ns").record(encode_watch.elapsed_ns());
    drop(encode_span);
    let _ = job.reply.send(Reply::Done(line));
    // Worker threads are long-lived: push this request's trace events to
    // the sink now instead of waiting for thread exit.
    obs::trace::flush_thread();
}

/// Writes one response line; returns whether the connection is still good.
fn send_line(stream: &mut TcpStream, line: &str) -> bool {
    stream.write_all(line.as_bytes()).is_ok()
        && stream.write_all(b"\n").is_ok()
        && stream.flush().is_ok()
}

fn handle_connection(stream: TcpStream, shared: &Shared, job_tx: &Sender<Job>) {
    let Ok(read_half) = stream.try_clone() else { return };
    let mut w = stream;
    let reader = BufReader::new(read_half);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let request = match proto::parse_request(&line) {
            Ok(r) => r,
            Err(msg) => {
                shared.stats.errors.incr();
                if send_line(&mut w, &proto::error_line(&msg)) {
                    continue;
                }
                break;
            }
        };
        let alive = match request {
            Request::Status => {
                let (records, classes) = {
                    let store = shared.store.lock().expect("store poisoned");
                    (store.len(), store.classes())
                };
                let active = shared.active.lock().expect("active registry poisoned").len();
                send_line(&mut w, &proto::status_line(records, classes, active, shared.workers))
            }
            Request::Stats => send_line(&mut w, &proto::stats_line(&shared.stats.snapshot())),
            Request::Metrics => send_line(&mut w, &proto::metrics_line(&obs::metrics::snapshot())),
            Request::Shutdown => {
                let _ = send_line(&mut w, &proto::shutdown_line());
                shared.begin_shutdown();
                false
            }
            Request::Solve(req) => handle_solve(&mut w, shared, job_tx, req),
        };
        if !alive {
            break;
        }
    }
}

/// Enqueues a `solve` and streams its replies back to the client.
fn handle_solve(
    w: &mut TcpStream,
    shared: &Shared,
    job_tx: &Sender<Job>,
    req: SolveRequest,
) -> bool {
    let problem = match Problem::parse(&req.problem) {
        Ok(p) => p,
        Err(e) => {
            shared.stats.errors.incr();
            return send_line(w, &proto::error_line(&format!("bad problem: {e}")));
        }
    };
    if shared.shutting_down() {
        return send_line(w, &proto::error_line("daemon is shutting down"));
    }
    let (tx, rx) = mpsc::channel();
    let job = Job {
        problem,
        direction: req.direction,
        budget: req.budget,
        reply: tx,
        enqueued_ns: obs::time::monotonic_ns(),
    };
    if job_tx.send(job).is_err() {
        return send_line(w, &proto::error_line("daemon is shutting down"));
    }
    loop {
        match rx.recv() {
            Ok(Reply::Progress(line)) => {
                if !send_line(w, &line) {
                    return false;
                }
            }
            Ok(Reply::Done(line)) => return send_line(w, &line),
            // The worker pool died under us (shutdown drained the queue).
            Err(_) => return send_line(w, &proto::error_line("daemon is shutting down")),
        }
    }
}
