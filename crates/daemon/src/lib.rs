//! # roundelim-daemon
//!
//! `roundelimd`: a persistent proof-cache service for the autolb/autoub
//! bound search (Brandt, PODC 2019).
//!
//! Bound searches are expensive and their results — replayable
//! [`Certificate`](roundelim_auto::certificate::Certificate)s — are
//! immutable facts about a problem's isomorphism class. This crate turns
//! that observation into a small service:
//!
//! * [`store`] — an append-only proof store in the versioned
//!   `roundelim-bin-v1` binary encoding (see [`roundelim_core::binenc`]),
//!   indexed up to isomorphism through the search's own
//!   [`CanonCache`](roundelim_auto::CanonCache), so a query that merely
//!   renames the labels of a solved problem is a cache hit;
//! * [`proto`] — the line-delimited JSON request/response protocol
//!   (`solve`, `status`, `stats`, `shutdown`, streamed `progress` events);
//! * [`server`] — the TCP server: an accept loop, a worker pool running
//!   the real search with cooperative cancellation, and a graceful
//!   shutdown path that persists a warm-start cache snapshot.
//!
//! The store is written through
//! [`atomic_write`](roundelim_core::io::atomic_write) after every insert
//! and every record is individually checksummed, so a killed daemon
//! restarts from its store bit-identically and keeps serving previously
//! solved problems (and their isomorphic renamings) without re-searching.
//! Clients are expected to re-verify served certificates locally — the
//! daemon is a cache, not a trust root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod proto;
pub mod server;
pub mod store;

pub use server::{Exit, ServeConfig, Server};
pub use store::ProofStore;
