//! The `roundelimd` wire protocol.
//!
//! One request per line, one or more responses per line, everything UTF-8
//! JSON (via the workspace's own [`roundelim_auto::json`] — the protocol
//! adds no dependencies). A client connects over TCP, writes a request
//! object terminated by `\n`, and reads response objects until it sees the
//! terminal event for that request:
//!
//! | request | terminal event | streamed events |
//! |---|---|---|
//! | `{"req":"solve", ...}` | `result` | `progress` (one per search depth) |
//! | `{"req":"status"}` | `status` | — |
//! | `{"req":"stats"}` | `stats` | — |
//! | `{"req":"metrics"}` | `metrics` | — |
//! | `{"req":"shutdown"}` | `shutdown` | — |
//!
//! Every response object carries `"ok"`: protocol/search failures are
//! reported as `{"ok":false,"error":"..."}` and the connection stays
//! usable. The full format, with examples, is pinned in
//! `docs/PROTOCOL.md`.

use roundelim_auto::certificate::{CertVerdict, Certificate, Direction};
use roundelim_auto::json::Json;
use roundelim_auto::search::{Progress, SearchOptions, Verdict};
use roundelim_obs as obs;
use std::time::Duration;

/// Protocol identifier, reported by `status`. Bump on breaking changes.
pub const PROTOCOL: &str = "roundelimd-1";

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Solve a problem (or serve it from the proof store).
    Solve(SolveRequest),
    /// Service liveness and configuration.
    Status,
    /// Service counters.
    Stats,
    /// The full observability registry: counter totals plus latency
    /// histogram summaries, as JSON and as a Prometheus text exposition.
    Metrics,
    /// Graceful shutdown: cancel in-flight searches, persist the cache
    /// snapshot, exit.
    Shutdown,
}

/// The payload of a `solve` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolveRequest {
    /// The problem, in the standard text format (`name:`/`node:`/`edge:`).
    pub problem: String,
    /// Which bound to search.
    pub direction: Direction,
    /// Per-request search budgets; unset fields use the daemon defaults.
    pub budget: Budget,
}

/// Per-request overrides of the search budgets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Budget {
    /// [`SearchOptions::max_steps`].
    pub max_steps: Option<usize>,
    /// [`SearchOptions::beam_width`].
    pub beam_width: Option<usize>,
    /// [`SearchOptions::max_labels`].
    pub max_labels: Option<usize>,
    /// [`SearchOptions::max_expansions`].
    pub max_expansions: Option<usize>,
    /// [`SearchOptions::time_budget`], in milliseconds.
    pub time_budget_ms: Option<u64>,
}

impl Budget {
    /// Applies the set fields on top of `opts`.
    pub fn apply(&self, opts: &mut SearchOptions) {
        if let Some(v) = self.max_steps {
            opts.max_steps = v;
        }
        if let Some(v) = self.beam_width {
            opts.beam_width = v;
        }
        if let Some(v) = self.max_labels {
            opts.max_labels = v;
        }
        if let Some(v) = self.max_expansions {
            opts.max_expansions = Some(v);
        }
        if let Some(ms) = self.time_budget_ms {
            opts.time_budget = Some(Duration::from_millis(ms));
        }
    }
}

/// Service counters, reported by the `stats` request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// `solve` requests received (well-formed ones).
    pub requests: u64,
    /// Served from the proof store without searching.
    pub cache_hits: u64,
    /// Required a fresh search.
    pub cache_misses: u64,
    /// Fresh searches that produced a certificate.
    pub solved: u64,
    /// Fresh searches that ended inconclusive.
    pub inconclusive: u64,
    /// Malformed requests and failed searches.
    pub errors: u64,
}

fn direction_from_str(s: &str) -> Option<Direction> {
    match s {
        "lower" | "lower-bound" => Some(Direction::Lower),
        "upper" | "upper-bound" => Some(Direction::Upper),
        _ => None,
    }
}

/// Stable name of a direction, as used on the wire.
pub fn direction_str(d: Direction) -> &'static str {
    match d {
        Direction::Lower => "lower-bound",
        Direction::Upper => "upper-bound",
    }
}

/// Parses one request line.
///
/// # Errors
///
/// A human-readable description of what is malformed (sent back to the
/// client as an `error` response; the connection survives).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = Json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    let req = v.get("req").and_then(Json::as_str).ok_or("missing string field `req`")?;
    match req {
        "status" => Ok(Request::Status),
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "shutdown" => Ok(Request::Shutdown),
        "solve" => {
            let problem = v
                .get("problem")
                .and_then(Json::as_str)
                .ok_or("solve needs a string field `problem` (problem text format)")?
                .to_owned();
            let direction = v
                .get("direction")
                .and_then(Json::as_str)
                .and_then(direction_from_str)
                .ok_or("solve needs `direction`: \"lower\" or \"upper\"")?;
            let mut budget = Budget::default();
            if let Some(b) = v.get("budget") {
                let field = |key: &str| -> Result<Option<u64>, String> {
                    match b.get(key) {
                        None => Ok(None),
                        Some(j) => j
                            .as_u64()
                            .map(Some)
                            .ok_or_else(|| format!("budget field `{key}` must be a number")),
                    }
                };
                budget.max_steps = field("max_steps")?.map(|n| n as usize);
                budget.beam_width = field("beam_width")?.map(|n| n as usize);
                budget.max_labels = field("max_labels")?.map(|n| n as usize);
                budget.max_expansions = field("max_expansions")?.map(|n| n as usize);
                budget.time_budget_ms = field("time_budget_ms")?;
            }
            Ok(Request::Solve(SolveRequest { problem, direction, budget }))
        }
        other => Err(format!("unknown request `{other}`")),
    }
}

/// Renders a `solve` request line (what the CLI client sends).
pub fn solve_line(problem: &str, direction: Direction, budget: &Budget) -> String {
    let mut fields = vec![
        ("req", Json::Str("solve".into())),
        ("problem", Json::Str(problem.to_owned())),
        ("direction", Json::Str(direction_str(direction).into())),
    ];
    let mut b = Vec::new();
    if let Some(v) = budget.max_steps {
        b.push(("max_steps", Json::Num(v as u64)));
    }
    if let Some(v) = budget.beam_width {
        b.push(("beam_width", Json::Num(v as u64)));
    }
    if let Some(v) = budget.max_labels {
        b.push(("max_labels", Json::Num(v as u64)));
    }
    if let Some(v) = budget.max_expansions {
        b.push(("max_expansions", Json::Num(v as u64)));
    }
    if let Some(v) = budget.time_budget_ms {
        b.push(("time_budget_ms", Json::Num(v)));
    }
    if !b.is_empty() {
        fields.push(("budget", Json::obj(b)));
    }
    Json::obj(fields).to_string_compact()
}

/// Renders a no-payload request line (`status` / `stats` / `shutdown`).
pub fn plain_request_line(req: &str) -> String {
    Json::obj([("req", Json::Str(req.to_owned()))]).to_string_compact()
}

/// Renders an error response line.
pub fn error_line(msg: &str) -> String {
    Json::obj([("ok", Json::Bool(false)), ("error", Json::Str(msg.to_owned()))]).to_string_compact()
}

/// Renders a streamed progress event.
pub fn progress_line(p: Progress) -> String {
    Json::obj([
        ("ok", Json::Bool(true)),
        ("event", Json::Str("progress".into())),
        ("depth", Json::Num(p.depth as u64)),
        ("expanded", Json::Num(p.expanded as u64)),
        ("classes", Json::Num(p.classes as u64)),
        ("frontier", Json::Num(p.frontier as u64)),
    ])
    .to_string_compact()
}

/// Renders the `status` response.
pub fn status_line(records: usize, classes: usize, active: usize, workers: usize) -> String {
    Json::obj([
        ("ok", Json::Bool(true)),
        ("event", Json::Str("status".into())),
        ("protocol", Json::Str(PROTOCOL.into())),
        ("records", Json::Num(records as u64)),
        ("classes", Json::Num(classes as u64)),
        ("active", Json::Num(active as u64)),
        ("workers", Json::Num(workers as u64)),
    ])
    .to_string_compact()
}

/// Renders the `stats` response.
pub fn stats_line(s: &DaemonStats) -> String {
    Json::obj([
        ("ok", Json::Bool(true)),
        ("event", Json::Str("stats".into())),
        ("requests", Json::Num(s.requests)),
        ("cache_hits", Json::Num(s.cache_hits)),
        ("cache_misses", Json::Num(s.cache_misses)),
        ("solved", Json::Num(s.solved)),
        ("inconclusive", Json::Num(s.inconclusive)),
        ("errors", Json::Num(s.errors)),
    ])
    .to_string_compact()
}

/// Renders the `metrics` response: every registry counter total, every
/// histogram as `{count, sum, min, max, p50, p90, p99}` (latency metrics
/// are in nanoseconds, `_ns` suffix), plus the same registry rendered as
/// a Prometheus text exposition in the `prometheus` string field.
pub fn metrics_line(snap: &obs::metrics::Snapshot) -> String {
    let counters =
        Json::Obj(snap.counters.iter().map(|(name, v)| (name.clone(), Json::Num(*v))).collect());
    let histograms = Json::Obj(
        snap.histograms
            .iter()
            .map(|(name, h)| {
                (
                    name.clone(),
                    Json::obj([
                        ("count", Json::Num(h.count)),
                        ("sum", Json::Num(h.sum)),
                        ("min", Json::Num(h.min)),
                        ("max", Json::Num(h.max)),
                        ("p50", Json::Num(h.p50())),
                        ("p90", Json::Num(h.p90())),
                        ("p99", Json::Num(h.p99())),
                    ]),
                )
            })
            .collect(),
    );
    Json::obj([
        ("ok", Json::Bool(true)),
        ("event", Json::Str("metrics".into())),
        ("counters", counters),
        ("histograms", histograms),
        ("prometheus", Json::Str(obs::metrics::prometheus_text(snap))),
    ])
    .to_string_compact()
}

/// Renders the `shutdown` acknowledgement.
pub fn shutdown_line() -> String {
    Json::obj([("ok", Json::Bool(true)), ("event", Json::Str("shutdown".into()))])
        .to_string_compact()
}

/// A search verdict as wire JSON (`{"kind": ..., "rounds"?: ...}`).
pub fn verdict_json(v: &Verdict) -> Json {
    match v {
        Verdict::Unbounded => Json::obj([("kind", Json::Str("unbounded".into()))]),
        Verdict::LowerBound { rounds } => Json::obj([
            ("kind", Json::Str("lower-bound".into())),
            ("rounds", Json::Num(*rounds as u64)),
        ]),
        Verdict::UpperBound { rounds } => Json::obj([
            ("kind", Json::Str("upper-bound".into())),
            ("rounds", Json::Num(*rounds as u64)),
        ]),
        Verdict::Inconclusive => Json::obj([("kind", Json::Str("inconclusive".into()))]),
    }
}

/// A stored certificate's verdict as wire JSON (same shape as
/// [`verdict_json`], so clients handle hits and fresh solves uniformly).
pub fn cert_verdict_json(v: &CertVerdict) -> Json {
    match v {
        CertVerdict::Unbounded { .. } => Json::obj([("kind", Json::Str("unbounded".into()))]),
        CertVerdict::LowerBound { rounds } => Json::obj([
            ("kind", Json::Str("lower-bound".into())),
            ("rounds", Json::Num(*rounds as u64)),
        ]),
        CertVerdict::UpperBound { rounds } => Json::obj([
            ("kind", Json::Str("upper-bound".into())),
            ("rounds", Json::Num(*rounds as u64)),
        ]),
    }
}

/// Renders the terminal `result` response of a `solve` request.
///
/// `problem` is the text of the problem the certificate derives — for a
/// cache hit on an isomorphic renaming, the stored representative (the
/// certificate replays against *it*, not against the query's spelling).
pub fn result_line(
    cached: bool,
    problem: &str,
    verdict: Json,
    stop: &str,
    incomplete: bool,
    certificate: Option<&Certificate>,
) -> String {
    Json::obj([
        ("ok", Json::Bool(true)),
        ("event", Json::Str("result".into())),
        ("cached", Json::Bool(cached)),
        ("problem", Json::Str(problem.to_owned())),
        ("verdict", verdict),
        ("stop", Json::Str(stop.to_owned())),
        ("incomplete", Json::Bool(incomplete)),
        ("certificate", certificate.map_or(Json::Null, Certificate::json_value)),
    ])
    .to_string_compact()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_request_round_trips() {
        let budget = Budget { max_steps: Some(6), time_budget_ms: Some(500), ..Budget::default() };
        let line = solve_line("name: p\nnode: A A\nedge: A A", Direction::Lower, &budget);
        match parse_request(&line).unwrap() {
            Request::Solve(s) => {
                assert_eq!(s.problem, "name: p\nnode: A A\nedge: A A");
                assert_eq!(s.direction, Direction::Lower);
                assert_eq!(s.budget, budget);
            }
            other => panic!("expected solve, got {other:?}"),
        }
    }

    #[test]
    fn plain_requests_parse() {
        for (name, want) in [
            ("status", Request::Status),
            ("stats", Request::Stats),
            ("metrics", Request::Metrics),
            ("shutdown", Request::Shutdown),
        ] {
            assert_eq!(parse_request(&plain_request_line(name)).unwrap(), want);
        }
    }

    #[test]
    fn malformed_requests_are_described() {
        assert!(parse_request("not json").unwrap_err().contains("bad JSON"));
        assert!(parse_request("{}").unwrap_err().contains("req"));
        assert!(parse_request("{\"req\": \"dance\"}").unwrap_err().contains("dance"));
        assert!(parse_request("{\"req\": \"solve\"}").unwrap_err().contains("problem"));
        assert!(parse_request(
            "{\"req\": \"solve\", \"problem\": \"x\", \"direction\": \"sideways\"}"
        )
        .unwrap_err()
        .contains("direction"));
        assert!(parse_request(
            "{\"req\": \"solve\", \"problem\": \"x\", \"direction\": \"lower\", \
             \"budget\": {\"max_steps\": \"six\"}}"
        )
        .unwrap_err()
        .contains("max_steps"));
    }

    #[test]
    fn metrics_line_renders_counters_histograms_and_prometheus() {
        let snap = obs::metrics::Snapshot {
            counters: vec![("daemon.requests".to_owned(), 2)],
            histograms: vec![(
                "daemon.solve_ns".to_owned(),
                obs::metrics::HistogramSnapshot {
                    count: 1,
                    sum: 1500,
                    min: 1500,
                    max: 1500,
                    buckets: vec![(1535, 1)],
                },
            )],
        };
        let line = metrics_line(&snap);
        assert!(line.contains("\"event\": \"metrics\""), "{line}");
        assert!(line.contains("\"daemon.requests\": 2"), "{line}");
        assert!(line.contains("\"count\": 1"), "{line}");
        assert!(line.contains("\"p50\": 1500"), "{line}");
        assert!(line.contains("roundelim_daemon_requests 2"), "{line}");
        assert!(line.contains("roundelim_daemon_solve_ns_count 1"), "{line}");
        assert!(parse_request(&line).is_err(), "responses are not requests");
    }

    #[test]
    fn budget_applies_only_set_fields() {
        let mut opts = SearchOptions::default();
        let defaults = SearchOptions::default();
        Budget::default().apply(&mut opts);
        assert_eq!(opts.max_steps, defaults.max_steps);
        assert_eq!(opts.time_budget, None);
        Budget { max_steps: Some(3), time_budget_ms: Some(250), ..Budget::default() }
            .apply(&mut opts);
        assert_eq!(opts.max_steps, 3);
        assert_eq!(opts.time_budget, Some(Duration::from_millis(250)));
        assert_eq!(opts.beam_width, defaults.beam_width);
    }
}
