//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The build environment has no crates registry, so this crate provides the
//! minimal trait skeleton the workspace compiles against: the
//! [`Serialize`]/[`Deserialize`] traits, the [`Serializer`]/[`Deserializer`]
//! abstract interfaces, the `ser::Error`/`de::Error` constructor traits, and
//! re-exported placeholder derives. No data format is included, and the
//! derived impls error out if invoked at runtime — the workspace only needs
//! the *bounds* to hold so that types stay forward-compatible with the real
//! serde once a registry is available.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A data structure that can be serialized.
pub trait Serialize {
    /// Serializes `self` with the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data structure that can be deserialized from format-agnostic input.
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value with the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A serialization format driver (abstract; no formats are shipped here).
pub trait Serializer {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: ser::Error;
}

/// A deserialization format driver (abstract; no formats are shipped here).
pub trait Deserializer<'de> {
    /// Error produced on failure.
    type Error: de::Error;
}

/// Serialization-side helpers.
pub mod ser {
    /// Constructor for custom serialization errors.
    pub trait Error: Sized {
        /// Builds an error from a message.
        fn custom<T: core::fmt::Display>(msg: T) -> Self;
    }
}

/// Deserialization-side helpers.
pub mod de {
    /// Constructor for custom deserialization errors.
    pub trait Error: Sized {
        /// Builds an error from a message.
        fn custom<T: core::fmt::Display>(msg: T) -> Self;
    }
}
