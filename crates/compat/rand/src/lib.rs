//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to a crates
//! registry, so this crate vendors the *exact* subset of the rand 0.8 API
//! the workspace uses: [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom::shuffle`]. The generator is SplitMix64 — not
//! cryptographic, but high-quality enough for graph generation and
//! shuffling in tests and benches, and fully deterministic per seed.
//!
//! ```
//! use rand::{Rng, SeedableRng};
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let x = rng.gen_range(0..10usize);
//! assert!(x < 10);
//! ```

#![forbid(unsafe_code)]

/// A source of randomness, mirroring `rand::RngCore` + `rand::Rng`.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        // 53 uniform mantissa bits, as rand does.
        let f = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        f < p
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws a uniform sample.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end - start) as u128 + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng` (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014) — the mixer Vigna
            // recommends for seeding xoshiro, used here as the stream itself.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Shuffling for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = super::rngs::StdRng::seed_from_u64(7);
        let mut b = super::rngs::StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = super::rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0..=5u8);
            assert!(y <= 5);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = super::rngs::StdRng::seed_from_u64(2);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = super::rngs::StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
