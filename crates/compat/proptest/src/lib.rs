//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no crates registry, so this crate implements
//! the subset of the proptest API the workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map`, `prop_flat_map`, `prop_filter`,
//!   and `prop_filter_map` combinators;
//! * strategies for integer ranges, [`Just`], tuples (arity ≤ 8),
//!   [`any::<bool>()`](any), and [`collection::vec`];
//! * the [`proptest!`] macro with `#![proptest_config(..)]` support, plus
//!   [`prop_assert!`], [`prop_assert_eq!`], and [`prop_assert_ne!`];
//! * [`prelude::ProptestConfig`] with `with_cases`.
//!
//! Unlike the real proptest it does **no shrinking** and is *deterministic
//! by default*: the per-test RNG is seeded from the test name, so CI runs
//! are reproducible and need no `proptest-regressions/` files. Set
//! `PROPTEST_SEED=<u64>` to explore a different part of the input space,
//! and re-run with that seed printed by a failure to reproduce it.
//!
//! ```
//! use proptest::prelude::*;
//! let mut rng = proptest::TestRng::new(42);
//! let strat = (0usize..10).prop_map(|x| x * 2);
//! let v = strat.generate(&mut rng).unwrap();
//! assert!(v < 20 && v % 2 == 0);
//! ```

#![forbid(unsafe_code)]

use std::fmt;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 128 random bits.
    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// A uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "TestRng::below: empty range");
        (self.next_u64() % bound as u64) as usize
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating values of type `Value`.
///
/// `generate` returns `None` when the candidate was rejected (by a filter);
/// the runner retries rejected cases with fresh randomness.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value, or `None` on rejection.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds on it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects values failing the predicate. The reason is informational.
    fn prop_filter<R, F>(self, _reason: R, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    /// Combined map + filter: `None` results are rejected.
    fn prop_filter_map<U, R, F>(self, _reason: R, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap { inner: self, f }
    }
}

/// Local retry budget inside a filtering combinator before the rejection is
/// propagated to the runner (which then retries the whole strategy tree).
const LOCAL_RETRIES: usize = 64;

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S2::Value> {
        let first = self.inner.generate(rng)?;
        (self.f)(first).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        for _ in 0..LOCAL_RETRIES {
            if let Some(v) = self.inner.generate(rng) {
                if (self.f)(&v) {
                    return Some(v);
                }
            }
        }
        None
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<U>,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> Option<U> {
        for _ in 0..LOCAL_RETRIES {
            if let Some(v) = self.inner.generate(rng) {
                if let Some(u) = (self.f)(v) {
                    return Some(u);
                }
            }
        }
        None
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "strategy on empty range");
                let span = (self.end - self.start) as u128;
                Some(self.start + (rng.next_u128() % span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "strategy on empty range");
                match ((end - start) as u128).checked_add(1) {
                    // start..=end covers the whole type: raw bits are uniform.
                    None => Some(rng.next_u128() as $t),
                    Some(span) => Some(start.wrapping_add((rng.next_u128() % span) as $t)),
                }
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident / $ix:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$ix.generate(rng)?,)+))
            }
        }
    )*};
}

tuple_strategies! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
}

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Canonical strategy for `bool`: a fair coin.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> Option<bool> {
        Some(rng.next_u64() & 1 == 1)
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! arbitrary_uniform_ints {
    ($($t:ty => $any:ident),*) => {$(
        /// Canonical full-range strategy for the integer type.
        #[derive(Debug, Clone, Copy)]
        pub struct $any;
        impl Strategy for $any {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.next_u128() as $t)
            }
        }
        impl Arbitrary for $t {
            type Strategy = $any;
            fn arbitrary() -> $any { $any }
        }
    )*};
}

arbitrary_uniform_ints! {
    u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64, u128 => AnyU128,
    usize => AnyUsize, i8 => AnyI8, i16 => AnyI16, i32 => AnyI32, i64 => AnyI64,
    isize => AnyIsize
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A length specification: fixed or a range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { start: n, end_excl: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "vec strategy: empty size range");
            SizeRange { start: r.start, end_excl: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "vec strategy: empty size range");
            SizeRange { start: *r.start(), end_excl: *r.end() + 1 }
        }
    }

    /// A strategy for `Vec`s of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let len = if self.size.end_excl - self.size.start <= 1 {
                self.size.start
            } else {
                self.size.start + rng.below(self.size.end_excl - self.size.start)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Runner configuration, mirroring `proptest::test_runner::Config`.
pub mod test_runner {
    /// How many accepted cases each property runs.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted cases to run.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }
}

/// A failed property case (carried through `prop_assert!` early returns).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// FNV-1a, used to derive a per-test seed from the test name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Total rejected candidates tolerated before a property gives up.
const MAX_GLOBAL_REJECTS: u32 = 1 << 16;

/// Drives one property: generates inputs from `strategy` and applies `test`
/// until `config.cases` accepted cases pass (used by [`proptest!`]).
///
/// Deterministic: the seed is `fnv1a(name)` unless `PROPTEST_SEED` is set.
///
/// # Panics
///
/// Panics (failing the surrounding `#[test]`) on the first failing case or
/// when the rejection budget is exhausted.
pub fn run_proptest<S, F>(config: &test_runner::Config, name: &str, strategy: &S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let seed = match std::env::var("PROPTEST_SEED") {
        Ok(s) => s.parse::<u64>().unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64: {s:?}")),
        Err(_) => fnv1a(name.as_bytes()),
    };
    let mut rng = TestRng::new(seed);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    while accepted < config.cases {
        match strategy.generate(&mut rng) {
            None => {
                rejected += 1;
                assert!(
                    rejected < MAX_GLOBAL_REJECTS,
                    "property '{name}': too many rejected candidates ({rejected}); \
                     strategy filters are too strict"
                );
            }
            Some(input) => {
                accepted += 1;
                if let Err(e) = test(input) {
                    panic!(
                        "property '{name}' failed at case {accepted}/{} (seed {seed}): {e}\n\
                         reproduce with PROPTEST_SEED={seed}",
                        config.cases
                    );
                }
            }
        }
    }
}

/// Everything a property test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, Arbitrary, Just, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests; see the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = (<$crate::test_runner::Config as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr); ) => {};
    (config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let strategy = ($($strat,)+);
            $crate::run_proptest(&config, stringify!($name), &strategy, |($($arg,)+)| {
                $body
                Ok(())
            });
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

/// Fails the current property case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Fails the current property case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn filter_map_retries_then_rejects() {
        let strat = (0u32..4).prop_filter_map("even", |x| (x % 2 == 0).then_some(x));
        let mut rng = crate::TestRng::new(9);
        for _ in 0..50 {
            let v = strat.generate(&mut rng).unwrap();
            assert_eq!(v % 2, 0);
        }
    }

    #[test]
    fn flat_map_threads_randomness() {
        let strat = (1usize..4).prop_flat_map(|n| collection::vec(any::<bool>(), n));
        let mut rng = crate::TestRng::new(10);
        for _ in 0..50 {
            let v = strat.generate(&mut rng).unwrap();
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn deterministic_without_env_seed() {
        let strat = (0u64..1000, 0u64..1000);
        let a: Vec<_> =
            (0..20).map(|_| strat.generate(&mut crate::TestRng::new(5)).unwrap()).collect();
        let b: Vec<_> =
            (0..20).map(|_| strat.generate(&mut crate::TestRng::new(5)).unwrap()).collect();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: multiple args, patterns, and prop_assert forms.
        #[test]
        fn macro_end_to_end((a, b) in (0u8..10, 0u8..10), v in collection::vec(any::<bool>(), 3)) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(v.len(), 3);
            prop_assert_ne!(v.len(), 4);
        }
    }
}
