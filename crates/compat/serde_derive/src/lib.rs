//! Offline stand-in for `serde_derive`.
//!
//! The workspace builds without a crates registry, so the derives here emit
//! *placeholder* trait impls: they satisfy the `Serialize`/`Deserialize`
//! bounds at compile time (which is all this workspace needs — nothing
//! serializes at runtime) and return a descriptive error if ever invoked.
//! The `#[serde(...)]` field attributes are accepted and ignored.
//!
//! Written against `proc_macro` only (no syn/quote): it scans the token
//! stream for the `struct`/`enum` keyword and takes the following ident as
//! the type name. Generic types are not supported — the workspace derives
//! only on plain types.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the type a derive is applied to.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => {
                        if let Some(TokenTree::Punct(p)) = tokens.next() {
                            assert!(
                                p.as_char() != '<',
                                "offline serde_derive stub: generic type `{name}` unsupported"
                            );
                        }
                        return name.to_string();
                    }
                    other => panic!("offline serde_derive stub: expected type name, got {other:?}"),
                }
            }
        }
    }
    panic!("offline serde_derive stub: no struct/enum found in derive input")
}

/// Placeholder `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize<S: ::serde::Serializer>(&self, _serializer: S)\n\
                 -> ::core::result::Result<S::Ok, S::Error> {{\n\
                 Err(<S::Error as ::serde::ser::Error>::custom(\n\
                     \"offline serde stub: serialization of {name} not implemented\"))\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated impl parses")
}

/// Placeholder `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: ::serde::Deserializer<'de>>(_deserializer: D)\n\
                 -> ::core::result::Result<Self, D::Error> {{\n\
                 Err(<D::Error as ::serde::de::Error>::custom(\n\
                     \"offline serde stub: deserialization of {name} not implemented\"))\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated impl parses")
}
