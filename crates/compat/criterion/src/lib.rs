//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment has no crates registry, so this crate provides the
//! benchmark-group API subset the workspace's benches use —
//! [`Criterion::benchmark_group`], `sample_size`, `bench_with_input`,
//! `bench_function`, [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by a simple
//! wall-clock timer instead of criterion's statistical machinery. Each
//! benchmark is warmed up once, then timed over `sample_size` batches, and
//! the mean time per iteration is printed in a `cargo bench`-like format.
//!
//! ```
//! use criterion::{BenchmarkId, Criterion};
//! let mut c = Criterion::default();
//! let mut g = c.benchmark_group("demo");
//! g.sample_size(2);
//! g.bench_with_input(BenchmarkId::from_parameter(10), &10u64, |b, &n| {
//!     b.iter(|| (0..n).sum::<u64>())
//! });
//! g.finish();
//! ```

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

/// Re-export of the standard optimization barrier, as criterion offers.
pub use std::hint::black_box;

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 10 }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(id.clone());
        group.run(id, f);
        group.finish();
        self
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed batches each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let samples = self.sample_size;
        let mut bencher = Bencher { samples, total_nanos: 0.0, iters: 0 };
        f(&mut bencher, input);
        self.report(&id.0, &bencher);
        self
    }

    /// Benchmarks `f` without an input value.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(id.0, f);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let samples = self.sample_size;
        let mut bencher = Bencher { samples, total_nanos: 0.0, iters: 0 };
        f(&mut bencher);
        self.report(&id, &bencher);
    }

    fn report(&self, id: &str, bencher: &Bencher) {
        let mean =
            if bencher.iters == 0 { 0.0 } else { bencher.total_nanos / bencher.iters as f64 };
        println!("bench {}/{id}: {mean:.0} ns/iter ({} iters)", self.name, bencher.iters);
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    total_nanos: f64,
    iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly (one warm-up plus `sample_size` timed batches)
    /// and records the elapsed wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.total_nanos += start.elapsed().as_nanos() as f64;
            self.iters += 1;
        }
    }
}

/// A benchmark's identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{parameter}", name.into()))
    }

    /// An id made of a parameter rendering alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl<S: Into<String>> From<S> for BenchmarkId {
    fn from(s: S) -> BenchmarkId {
        BenchmarkId(s.into())
    }
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_end_to_end() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        let mut runs = 0u32;
        g.bench_with_input(BenchmarkId::new("a", 1), &3u64, |b, &n| {
            b.iter(|| {
                runs += 1;
                n * 2
            })
        });
        g.finish();
        // one warm-up + two timed batches
        assert_eq!(runs, 3);
    }

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default();
        c.bench_function("free", |b| b.iter(|| 1 + 1));
    }
}
