//! Oracle cross-checks for the engine rewrites: the set-based oriented
//! 0-round decider against the original split-backtracking decider, and
//! the refined-invariant isomorphism machinery against renamed copies
//! (the canonical key must be labeling-independent — the historic
//! implementation anchored permutation targets to source indices and was
//! not, which silently duplicated cache classes).

use rand::{Rng, SeedableRng};
use roundelim_core::config::Config;
use roundelim_core::constraint::Constraint;
use roundelim_core::label::{Alphabet, Label};
use roundelim_core::problem::Problem;
use roundelim_core::zero_round::zero_round_oriented;

fn random_problem(rng: &mut rand::rngs::StdRng) -> Option<Problem> {
    let n = rng.gen_range(2..=5);
    let delta = rng.gen_range(2..=4);
    let names: Vec<String> = (0..n).map(|i| format!("L{i}")).collect();
    let alphabet = Alphabet::from_names(names.iter().map(String::as_str)).unwrap();
    let mut node = Constraint::new(delta).unwrap();
    for m in roundelim_core::config::all_multisets(n, delta) {
        if rng.gen_bool(0.3) {
            node.insert(m).unwrap();
        }
    }
    let mut edge = Constraint::new(2).unwrap();
    for m in roundelim_core::config::all_multisets(n, 2) {
        if rng.gen_bool(0.45) {
            edge.insert(m).unwrap();
        }
    }
    if node.is_empty() || edge.is_empty() {
        return None;
    }
    Problem::new("t", alphabet, node, edge).ok()
}

/// The pre-rewrite decider, verbatim.
mod old {
    use super::*;
    pub fn zero_round_oriented_old(p: &Problem) -> bool {
        let delta = p.delta();
        let mut options: Vec<Vec<(Vec<Label>, Vec<Label>)>> = Vec::with_capacity(delta + 1);
        for k in 0..=delta {
            let mut opts = Vec::new();
            for cfg in p.node().iter() {
                splits_of(cfg, k, &mut opts);
            }
            if opts.is_empty() {
                return false;
            }
            options.push(opts);
        }
        let mut chosen: Vec<usize> = Vec::with_capacity(delta + 1);
        search(p, &options, 0, &mut chosen)
    }

    fn splits_of(cfg: &Config, k: usize, out: &mut Vec<(Vec<Label>, Vec<Label>)>) {
        let labels = cfg.labels();
        let n = labels.len();
        if k > n {
            return;
        }
        let mut seen = std::collections::HashSet::new();
        let mut idx: Vec<usize> = (0..k).collect();
        loop {
            let mut ins = Vec::with_capacity(k);
            let mut outs = Vec::with_capacity(n - k);
            let mut which = vec![false; n];
            for &i in &idx {
                which[i] = true;
            }
            for i in 0..n {
                if which[i] {
                    ins.push(labels[i]);
                } else {
                    outs.push(labels[i]);
                }
            }
            ins.sort_unstable();
            outs.sort_unstable();
            if seen.insert((ins.clone(), outs.clone())) {
                out.push((ins, outs));
            }
            if k == 0 {
                break;
            }
            let mut i = k;
            loop {
                if i == 0 {
                    return;
                }
                i -= 1;
                if idx[i] != i + n - k {
                    break;
                }
            }
            if idx[i] == i + n - k {
                return;
            }
            idx[i] += 1;
            for j in i + 1..k {
                idx[j] = idx[j - 1] + 1;
            }
        }
    }

    fn search(
        p: &Problem,
        options: &[Vec<(Vec<Label>, Vec<Label>)>],
        k: usize,
        chosen: &mut Vec<usize>,
    ) -> bool {
        if k == options.len() {
            return true;
        }
        'opt: for (ix, (ins, outs)) in options[k].iter().enumerate() {
            for (k2, &ix2) in chosen.iter().enumerate() {
                let (ins2, outs2) = &options[k2][ix2];
                if !cross_ok(p, outs, ins2) || !cross_ok(p, outs2, ins) {
                    continue 'opt;
                }
            }
            if !cross_ok(p, outs, ins) {
                continue 'opt;
            }
            chosen.push(ix);
            if search(p, options, k + 1, chosen) {
                return true;
            }
            chosen.pop();
        }
        false
    }

    fn cross_ok(p: &Problem, outs: &[Label], ins: &[Label]) -> bool {
        outs.iter().all(|&o| ins.iter().all(|&i| p.edge_ok(o, i)))
    }
}

#[test]
fn zero_round_matches_old_decider() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xDEAD);
    let mut checked = 0;
    for trial in 0..500 {
        let Some(p) = random_problem(&mut rng) else { continue };
        checked += 1;
        let new = zero_round_oriented(&p).is_some();
        let old = old::zero_round_oriented_old(&p);
        assert_eq!(new, old, "trial {trial} mismatch on {p}");
    }
    assert!(checked > 100);
}

#[test]
fn refined_iso_invariant_under_renaming() {
    use roundelim_core::iso::{are_isomorphic, canonical_key, refined_label_hashes};
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xBEEF);
    for trial in 0..300 {
        let Some(p) = random_problem(&mut rng) else { continue };
        let n = p.alphabet().len();
        // random permutation
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        let names: Vec<String> = (0..n).map(|i| format!("R{i}")).collect();
        let alphabet = Alphabet::from_names(names.iter().map(String::as_str)).unwrap();
        let node = p.node().map_labels(|l| Label::from_index(perm[l.index()]));
        let edge = p.edge().map_labels(|l| Label::from_index(perm[l.index()]));
        let q = Problem::new("q", alphabet, node, edge).unwrap();
        assert!(are_isomorphic(&p, &q), "trial {trial}: renamed copy must be isomorphic\n{p}");
        assert_eq!(canonical_key(&p), canonical_key(&q), "trial {trial} canonical key");
        let mut hp = refined_label_hashes(&p);
        let mut hq = refined_label_hashes(&q);
        hp.sort_unstable();
        hq.sort_unstable();
        assert_eq!(hp, hq, "trial {trial} hash multiset");
    }
}
