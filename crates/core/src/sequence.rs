//! Iterated speedup: problem sequences and bound certificates (§2.1).
//!
//! The roadmap of the paper: starting from Π, apply [`crate::speedup::full_step`]
//! repeatedly, obtaining Π₁, Π₂, … with complexities T−1, T−2, …; stop when
//! a problem is 0-round solvable (then T = number of steps, on high-girth
//! t-independent classes) or when the sequence revisits a problem up to
//! isomorphism (then no step ever becomes 0-round solvable, so T exceeds
//! every t for which suitable graph classes exist — e.g. Ω(log n) for
//! sinkless orientation).

use crate::error::Result;
use crate::iso::{are_isomorphic, dedup_key, DedupKey};
use crate::problem::Problem;
use crate::speedup::full_step;
use crate::zero_round::{zero_round_oriented, zero_round_pn};
use std::collections::HashMap;

/// A problems-seen-so-far index for fixed-point detection: a
/// [`dedup_key`]-keyed map from isomorphism class to the step at which it
/// first appeared. One canonicalization (or cheap invariant, above the
/// exact-key size cap) and one hash probe per step replaces the old
/// pairwise `are_isomorphic` scan over the whole history; coarse-bucket
/// collisions fall back to an isomorphism check against the few bucket
/// members.
#[derive(Default)]
struct SeenIndex {
    buckets: HashMap<DedupKey, Vec<usize>>,
}

impl SeenIndex {
    /// If a problem isomorphic to `p` was recorded, returns its step;
    /// otherwise records `p` under `step`. `history(i)` resolves a
    /// recorded step back to its problem for coarse-bucket checks.
    fn find_or_insert<'a>(
        &mut self,
        p: &Problem,
        step: usize,
        history: impl Fn(usize) -> &'a Problem,
    ) -> Option<usize> {
        let key = dedup_key(p);
        let exact = key.is_exact();
        let bucket = self.buckets.entry(key).or_default();
        let hit = bucket.iter().copied().find(|&i| exact || are_isomorphic(history(i), p));
        if hit.is_none() {
            bucket.push(step);
        }
        hit
    }
}

/// Which 0-round decider terminates the iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ZeroRoundModel {
    /// Plain port numbering, no inputs: [`zero_round_pn`].
    PlainPn,
    /// Port numbering with input edge orientations (the regime required by
    /// the Theorem-2 maximality step): [`zero_round_oriented`].
    #[default]
    Oriented,
}

/// Why the iteration stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// `problems[index]` is 0-round solvable (and earlier ones are not).
    ZeroRound {
        /// Index into [`SpeedupSequence::problems`].
        index: usize,
    },
    /// `problems[index]` is isomorphic to the earlier `problems[earlier]`;
    /// the sequence is periodic with period `index - earlier` and never
    /// reaches a 0-round-solvable problem.
    FixedPoint {
        /// Index of the repeated problem.
        index: usize,
        /// Index of its earlier isomorphic occurrence.
        earlier: usize,
    },
    /// The step limit was exhausted with no verdict.
    LimitReached,
}

/// A speedup sequence Π = Π₀, Π₁, … together with the stopping verdict.
#[derive(Debug, Clone)]
pub struct SpeedupSequence {
    /// The derived problems, starting with the input problem.
    pub problems: Vec<Problem>,
    /// Why iteration stopped.
    pub stop: StopReason,
    /// The 0-round model used for the verdict.
    pub model: ZeroRoundModel,
}

impl SpeedupSequence {
    /// The lower bound this sequence certifies for the *input* problem, in
    /// rounds, on t-independent graph classes of sufficient girth:
    ///
    /// * `ZeroRound { index }` certifies complexity exactly `index` in that
    ///   setting (lower bound `index` in general);
    /// * `FixedPoint { .. }` certifies that no finite speedup count reaches
    ///   a 0-round problem: the complexity exceeds every `t` for which a
    ///   t-independent girth-(2t+2) class exists — reported as `None`
    ///   ("unbounded in this framework");
    /// * `LimitReached` certifies at least `problems.len() - 1` steps were
    ///   non-0-round-solvable, hence a lower bound of `problems.len() - 1`.
    pub fn certified_lower_bound(&self) -> Option<usize> {
        match self.stop {
            StopReason::ZeroRound { index } => Some(index),
            StopReason::FixedPoint { .. } => None,
            StopReason::LimitReached => Some(self.problems.len() - 1),
        }
    }

    /// Number of speedup steps performed.
    pub fn steps(&self) -> usize {
        self.problems.len() - 1
    }
}

fn is_zero_round(p: &Problem, model: ZeroRoundModel) -> bool {
    match model {
        ZeroRoundModel::PlainPn => zero_round_pn(p).is_some(),
        ZeroRoundModel::Oriented => zero_round_oriented(p).is_some(),
    }
}

/// Iterates the full simplified speedup from `p`, stopping on a 0-round
/// solvable problem, a fixed point (up to isomorphism), or after
/// `max_steps` steps. Uses the [`ZeroRoundModel::Oriented`] decider.
///
/// # Errors
///
/// Propagates speedup errors (e.g. alphabet overflow).
pub fn iterate(p: &Problem, max_steps: usize) -> Result<SpeedupSequence> {
    iterate_with(p, max_steps, ZeroRoundModel::Oriented)
}

/// [`iterate`] with an explicit 0-round model.
///
/// # Errors
///
/// Propagates speedup errors (e.g. alphabet overflow).
pub fn iterate_with(
    p: &Problem,
    max_steps: usize,
    model: ZeroRoundModel,
) -> Result<SpeedupSequence> {
    let mut problems = vec![p.clone()];
    if is_zero_round(p, model) {
        return Ok(SpeedupSequence { problems, stop: StopReason::ZeroRound { index: 0 }, model });
    }
    let mut seen = SeenIndex::default();
    seen.find_or_insert(p, 0, |_| unreachable!("empty index has no hits"));
    for step in 1..=max_steps {
        let next = full_step(problems.last().expect("nonempty"))?.problem().clone();
        // Zero-round check first: a 0-round problem may also be periodic.
        if is_zero_round(&next, model) {
            problems.push(next);
            return Ok(SpeedupSequence {
                problems,
                stop: StopReason::ZeroRound { index: step },
                model,
            });
        }
        // Fixed-point check against all earlier problems, one probe per step.
        if let Some(earlier) = seen.find_or_insert(&next, step, |i| &problems[i]) {
            problems.push(next);
            return Ok(SpeedupSequence {
                problems,
                stop: StopReason::FixedPoint { index: step, earlier },
                model,
            });
        }
        problems.push(next);
    }
    Ok(SpeedupSequence { problems, stop: StopReason::LimitReached, model })
}

/// One entry of a relax-then-speedup run.
#[derive(Debug, Clone)]
pub struct RelaxedEntry {
    /// The problem in play at this step (a derived problem or a template
    /// it was relaxed to).
    pub problem: Problem,
    /// Index into the template list, if this entry came from a relaxation.
    pub template: Option<usize>,
}

/// A relax-then-speedup run (§2.1's alternation, automated over a
/// candidate template list).
#[derive(Debug, Clone)]
pub struct RelaxedSequence {
    /// The visited problems.
    pub entries: Vec<RelaxedEntry>,
    /// The stopping verdict (same semantics as [`SpeedupSequence`]).
    pub stop: StopReason,
}

impl RelaxedSequence {
    /// Steps performed (each is one round of certified lower bound, as in
    /// [`SpeedupSequence::certified_lower_bound`] — relaxations are free).
    pub fn certified_lower_bound(&self) -> Option<usize> {
        match self.stop {
            StopReason::ZeroRound { index } => Some(index),
            StopReason::FixedPoint { .. } => None,
            StopReason::LimitReached => Some(self.entries.len() - 1),
        }
    }
}

/// §2.1's alternation, automated: after every speedup step, try to relax
/// the derived problem to one of the supplied *templates* (simpler,
/// provably-not-harder problems) and continue from the template instead.
/// Relaxing keeps the lower bound sound and tames the description
/// explosion — exactly how the paper's weak-2-coloring proof proceeds
/// (relax to superweak k-coloring after every step).
///
/// Stops on a 0-round problem, on revisiting a template or problem (up to
/// isomorphism), or at the step limit.
///
/// # Errors
///
/// Propagates speedup errors (e.g. alphabet overflow when no template
/// catches the growth).
pub fn iterate_relaxed(
    p: &Problem,
    templates: &[Problem],
    max_steps: usize,
    model: ZeroRoundModel,
) -> Result<RelaxedSequence> {
    let mut entries = vec![RelaxedEntry { problem: p.clone(), template: None }];
    if is_zero_round(p, model) {
        return Ok(RelaxedSequence { entries, stop: StopReason::ZeroRound { index: 0 } });
    }
    // Same dedup-keyed fixed-point index as `iterate_with`.
    let mut seen = SeenIndex::default();
    seen.find_or_insert(p, 0, |_| unreachable!("empty index has no hits"));
    for step in 1..=max_steps {
        let current = entries.last().expect("nonempty").problem.clone();
        let derived = full_step(&current)?.problem().clone();
        // Try templates in order; fall back to the raw derived problem.
        let (next, template) = templates
            .iter()
            .enumerate()
            .find(|(_, t)| crate::relax::is_relaxation_of(&derived, t))
            .map(|(ix, t)| (t.clone(), Some(ix)))
            .unwrap_or((derived, None));
        if is_zero_round(&next, model) {
            entries.push(RelaxedEntry { problem: next, template });
            return Ok(RelaxedSequence { entries, stop: StopReason::ZeroRound { index: step } });
        }
        if let Some(earlier) = seen.find_or_insert(&next, step, |i| &entries[i].problem) {
            entries.push(RelaxedEntry { problem: next, template });
            return Ok(RelaxedSequence {
                entries,
                stop: StopReason::FixedPoint { index: step, earlier },
            });
        }
        entries.push(RelaxedEntry { problem: next, template });
    }
    Ok(RelaxedSequence { entries, stop: StopReason::LimitReached })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sinkless_coloring_loops_forever() {
        // §4.4: the sequence is periodic with period 1 after compression
        // (Π₁ ≅ Π), certifying the Ω(log n) bound of [9].
        let sc = Problem::parse("name: sc\nnode: 1 0 0\nedge: 0 0 | 0 1").unwrap();
        let seq = iterate(&sc, 6).unwrap();
        match seq.stop {
            StopReason::FixedPoint { index, earlier } => {
                assert!(index > earlier);
                assert!(index - earlier <= 2, "period should be at most 2");
            }
            ref other => panic!("expected fixed point, got {other:?}"),
        }
        assert_eq!(seq.certified_lower_bound(), None);
    }

    #[test]
    fn trivial_problem_stops_immediately() {
        let t = Problem::parse("name: t\nnode: X X X\nedge: X X").unwrap();
        let seq = iterate(&t, 3).unwrap();
        assert_eq!(seq.stop, StopReason::ZeroRound { index: 0 });
        assert_eq!(seq.certified_lower_bound(), Some(0));
    }

    #[test]
    fn limit_reached_reports_partial_bound() {
        let sc = Problem::parse("name: sc\nnode: 1 0 0\nedge: 0 0 | 0 1").unwrap();
        let seq = iterate_with(&sc, 0, ZeroRoundModel::Oriented).unwrap();
        assert_eq!(seq.stop, StopReason::LimitReached);
        assert_eq!(seq.certified_lower_bound(), Some(0));
    }

    #[test]
    fn plain_pn_model_selectable() {
        let t = Problem::parse("name: t\nnode: X X X\nedge: X X").unwrap();
        let seq = iterate_with(&t, 1, ZeroRoundModel::PlainPn).unwrap();
        assert_eq!(seq.stop, StopReason::ZeroRound { index: 0 });
    }

    #[test]
    fn relaxed_iteration_catches_the_fixed_point_via_template() {
        // With sinkless coloring itself as the template, the derived
        // problem relaxes to it after every step and the loop is detected
        // at the template level.
        let sc = Problem::parse("name: sc\nnode: 1 0 0\nedge: 0 0 | 0 1").unwrap();
        let seq =
            iterate_relaxed(&sc, std::slice::from_ref(&sc), 5, ZeroRoundModel::Oriented).unwrap();
        assert!(matches!(seq.stop, StopReason::FixedPoint { .. }), "{:?}", seq.stop);
        // The relaxation was actually used.
        assert!(seq.entries.iter().any(|e| e.template == Some(0)));
        assert_eq!(seq.certified_lower_bound(), None);
    }

    #[test]
    fn relaxed_iteration_without_matching_template_behaves_like_plain() {
        let sc = Problem::parse("name: sc\nnode: 1 0 0\nedge: 0 0 | 0 1").unwrap();
        // A template the derived problems never relax to (2-coloring-ish).
        let odd = Problem::parse("name: odd\nnode: A A B\nedge: A B").unwrap();
        let seq = iterate_relaxed(&sc, &[odd], 4, ZeroRoundModel::Oriented).unwrap();
        assert!(seq.entries.iter().skip(1).all(|e| e.template.is_none()));
        assert!(matches!(seq.stop, StopReason::FixedPoint { .. }));
    }

    #[test]
    fn relaxed_iteration_zero_round_at_start() {
        let t = Problem::parse("name: t\nnode: X X X\nedge: X X").unwrap();
        let seq = iterate_relaxed(&t, &[], 3, ZeroRoundModel::PlainPn).unwrap();
        assert_eq!(seq.certified_lower_bound(), Some(0));
    }
}
