//! Sorted-multiset tries over constraint configurations.
//!
//! A [`ConfigTrie`] indexes the configurations of a
//! [`Constraint`](crate::constraint::Constraint) as a trie over their
//! *sorted* label sequences: every root-to-leaf path of length `arity`
//! spells one configuration, and configurations sharing a sorted prefix
//! share trie nodes. Two queries become allocation-free trie walks:
//!
//! * [`ConfigTrie::contains_sorted`] — membership of an already-sorted
//!   label slice, without building a [`Config`](crate::config::Config);
//! * [`ConfigTrie::all_choices_contained`] — the universal "good line"
//!   check: given components grouped as `(set, count)` pairs, decide
//!   whether **every** way of picking one label per component lands in
//!   the constraint.
//!
//! The latter is the hot core of the speedup transform. Instead of
//! enumerating the full combination product and probing a `BTreeSet` per
//! choice (an allocation plus a sort plus an `O(arity)` comparison walk,
//! per probe), the trie check branches over *label values in increasing
//! order*: at each label it decides how many still-unassigned components
//! take that label, advances the trie along the corresponding run of
//! equal labels, and recurses. Choices sharing a sorted prefix share both
//! the enumeration work and the trie walk, and the first missing trie
//! edge refutes an entire subtree of choices at once. Set membership per
//! branch is a bitmask test on [`LabelSet`], so the inner loop touches no
//! heap at all.

use crate::config::Config;
use crate::label::Label;
use crate::labelset::LabelSet;
use std::collections::HashMap;

/// A trie over the sorted label sequences of a constraint's configurations.
///
/// Built once per constraint (see
/// [`Constraint::trie`](crate::constraint::Constraint::trie)) and queried
/// many times by the speedup engine. All configurations have the same
/// length, so a walk is accepting exactly when it consumes `arity` labels.
///
/// Stored in first-child/next-sibling form in a single flat vector: one
/// allocation per build (constraints are rebuilt every half-step, so
/// construction is itself on the hot path), sibling chains sorted by label.
#[derive(Debug, Clone, Default)]
pub struct ConfigTrie {
    arity: usize,
    /// Node 0 is the root sentinel; its `label` is unused.
    nodes: Vec<Node>,
    /// Union of all configuration labels.
    universe: LabelSet,
}

const NONE: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node {
    label: Label,
    first_child: u32,
    next_sibling: u32,
    /// Whether this node's subtree contains **every** non-decreasing
    /// continuation over `universe ∩ [label..]` of the remaining depth.
    /// Lets the all-choices DFS accept whole subtrees in O(1) — the
    /// dominant savings on constraints of the form "anything goes once a
    /// prefix condition is met".
    complete: bool,
}

/// Reusable buffers for the all-choices DFS (remaining counts per group
/// and the per-level eligible-group stack).
#[derive(Debug, Clone, Default)]
pub struct DfsScratch {
    rem: Vec<usize>,
    eligible: Vec<usize>,
}

/// Memo for the all-choices DFS, shared across probes against **one**
/// trie (callers own one per engine run; results are only valid for the
/// trie they were computed against).
///
/// Two tables make probes share work:
///
/// * grouped-set vectors (sorted, duplicate sets merged) are interned to a
///   small id, so the per-state key below stays a few machine words;
/// * DFS states are memoized as `(groups-id, trie node, next label,
///   remaining-multiplicity signature)` → verdict, where the signature
///   packs each group's remaining count into a byte.
///
/// The componentwise closure probes every missing label of every position
/// of thousands of candidate lines per round, and candidates funnel onto
/// few distinct closed lines — so whole probes (and subtrees of partially
/// distinct probes) repeat verbatim across candidates. The memo answers a
/// repeat at its first DFS state. Buffers are reused across probes (the
/// scratch-arena property: steady-state probing allocates only on genuine
/// table growth).
#[derive(Debug, Default)]
pub struct DfsMemo {
    /// Canonical (sorted) set vector → dense id. Counts are *not* part of
    /// the id: they live in the per-state remaining-multiplicity
    /// signature, so probes over the same sets with different
    /// multiplicities share every common DFS state.
    group_ids: HashMap<Vec<LabelSet>, u32>,
    /// `(groups-id, node, next-label, packed remaining counts)` → verdict.
    results: HashMap<(u32, u32, u32, u128), bool>,
    /// Probe-canonicalization buffer.
    canon: Vec<(LabelSet, usize)>,
    /// Set-vector lookup buffer (avoids a per-probe key allocation).
    sets_buf: Vec<LabelSet>,
}

/// Groups above this count skip memoization (their remaining-multiplicity
/// signature would not fit the packed key); the plain DFS handles them.
const MEMO_MAX_GROUPS: usize = 16;

impl DfsMemo {
    /// Packs the remaining counts (each < 256 — counts are bounded by the
    /// constraint arity) into the state key.
    fn pack(rem: &[usize]) -> u128 {
        debug_assert!(rem.len() <= MEMO_MAX_GROUPS);
        let mut packed = 0u128;
        for (i, &r) in rem.iter().enumerate() {
            debug_assert!(r < 256);
            packed |= (r as u128) << (8 * i);
        }
        packed
    }
}

impl ConfigTrie {
    /// Builds the trie for `arity`-sized configurations.
    ///
    /// Configurations must arrive in lexicographic order of their sorted
    /// label sequences (a `BTreeSet<Config>` iterates exactly so), which
    /// lets the build run as a prefix-stack walk: per configuration, pop
    /// to the common prefix with its predecessor and append fresh nodes
    /// for the suffix. Sibling chains stay label-sorted for free.
    pub fn build<'a, I: IntoIterator<Item = &'a Config>>(arity: usize, configs: I) -> ConfigTrie {
        let fresh =
            |l: Label| Node { label: l, first_child: NONE, next_sibling: NONE, complete: false };
        let mut nodes = vec![fresh(Label::from_index(0))];
        let mut universe = LabelSet::empty();
        // path[d]: node id of the previous configuration's label at depth d.
        let mut path: Vec<u32> = Vec::with_capacity(arity);
        let mut prev: Vec<Label> = Vec::new();
        for cfg in configs {
            let labels = cfg.labels();
            debug_assert_eq!(labels.len(), arity);
            debug_assert!(
                prev.is_empty() || prev.as_slice() < labels,
                "configs must arrive sorted"
            );
            universe = universe.union(&cfg.support());
            let common = labels.iter().zip(&prev).take_while(|&(a, b)| a == b).count();
            // The new branch forks right of the predecessor's node at the
            // fork depth; every deeper node starts a fresh child chain.
            let fork_sibling = path.get(common).copied();
            path.truncate(common);
            for (d, &l) in labels.iter().enumerate().skip(common) {
                let id = nodes.len() as u32;
                match (d == common, fork_sibling) {
                    (true, Some(sib)) => nodes[sib as usize].next_sibling = id,
                    _ => {
                        let parent = path.last().map_or(0, |&p| p);
                        nodes[parent as usize].first_child = id;
                    }
                }
                nodes.push(fresh(l));
                path.push(id);
            }
            prev.clear();
            prev.extend_from_slice(labels);
        }
        // Completeness, bottom-up (children always have higher ids than
        // their parent): a leaf is trivially complete; an inner node is
        // complete iff its (label-sorted) children are exactly
        // `universe ∩ [from..]` and each child is complete, where `from`
        // is the node's own label (0 at the root — sorted continuations
        // never revisit smaller labels).
        for id in (0..nodes.len()).rev() {
            let first = nodes[id].first_child;
            if first == NONE {
                nodes[id].complete = id != 0; // empty root stays incomplete
                continue;
            }
            let from = if id == 0 { 0 } else { nodes[id].label.index() };
            let mut expected = universe.min_label_at_least(from);
            let mut child = first;
            let mut complete = true;
            while child != NONE {
                let c = &nodes[child as usize];
                if !c.complete || expected != Some(c.label) {
                    complete = false;
                    break;
                }
                expected = universe.min_label_at_least(c.label.index() + 1);
                child = c.next_sibling;
            }
            nodes[id].complete = complete && (child != NONE || expected.is_none());
        }
        ConfigTrie { arity, nodes, universe }
    }

    /// The configuration arity this trie indexes.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Union of all configuration labels (computed during the build).
    #[inline]
    pub fn universe(&self) -> &LabelSet {
        &self.universe
    }

    /// Follows the edge labelled `l` out of `node`, if present.
    #[inline]
    fn step(&self, node: u32, l: Label) -> Option<u32> {
        // Sibling chains are label-sorted and short in practice: a linear
        // scan with early exit beats binary search's branch overhead on
        // the tiny common case, and stays acceptable up to the 256-label
        // cap.
        let mut c = self.nodes[node as usize].first_child;
        while c != NONE {
            let n = &self.nodes[c as usize];
            if n.label >= l {
                return (n.label == l).then_some(c);
            }
            c = n.next_sibling;
        }
        None
    }

    /// Membership of an already-sorted label slice, as an allocation-free
    /// trie walk.
    pub fn contains_sorted(&self, labels: &[Label]) -> bool {
        debug_assert!(
            labels.windows(2).all(|w| w[0] <= w[1]),
            "contains_sorted needs sorted input"
        );
        if labels.len() != self.arity {
            return false;
        }
        let mut node = 0u32;
        for &l in labels {
            match self.step(node, l) {
                Some(next) => node = next,
                None => return false,
            }
        }
        true
    }

    /// Whether **every** choice of one label per component is a
    /// configuration of the underlying constraint.
    ///
    /// Components are grouped as `(set, count)` pairs — `count` components
    /// share the label set `set` — so a choice is, per group, a multiset of
    /// `count` labels from `set`. Group order is irrelevant. Returns
    /// `false` if the counts do not sum to the trie's arity or any set is
    /// empty.
    pub fn all_choices_contained(&self, groups: &[(LabelSet, usize)]) -> bool {
        self.all_choices_contained_scratch(groups, &mut DfsScratch::default())
    }

    /// [`ConfigTrie::all_choices_contained`] with caller-owned scratch
    /// space, so tight probe loops (the componentwise closure) pay no
    /// allocations per call.
    pub(crate) fn all_choices_contained_scratch(
        &self,
        groups: &[(LabelSet, usize)],
        scratch: &mut DfsScratch,
    ) -> bool {
        let total: usize = groups.iter().map(|&(_, n)| n).sum();
        if total != self.arity || groups.iter().any(|(s, _)| s.is_empty()) {
            return false;
        }
        // A component with a label outside the universe admits a choice
        // using that label, which no configuration contains. (This also
        // licenses the completeness shortcut below: every remaining choice
        // draws from the universe.)
        if groups.iter().any(|(s, _)| !s.is_subset(&self.universe)) {
            return false;
        }
        scratch.rem.clear();
        scratch.rem.extend(groups.iter().map(|&(_, n)| n));
        scratch.eligible.clear();
        let DfsScratch { rem, eligible } = scratch;
        self.all_choices_rec(0, 0, groups, rem, eligible)
    }

    /// Memoized [`ConfigTrie::all_choices_contained_scratch`]: the grouped
    /// line is canonicalized (sorted by set, duplicate sets merged — group
    /// order and splitting are irrelevant to the answer), interned in the
    /// memo, and the DFS consults/extends the memo at every branch state.
    /// `memo` must only ever be used with one trie; results are undefined
    /// otherwise (callers tie one [`DfsMemo`] to one engine run).
    pub fn all_choices_contained_memo(
        &self,
        groups: &[(LabelSet, usize)],
        scratch: &mut DfsScratch,
        memo: &mut DfsMemo,
    ) -> bool {
        let total: usize = groups.iter().map(|&(_, n)| n).sum();
        if total != self.arity || groups.iter().any(|(s, _)| s.is_empty()) {
            return false;
        }
        if groups.iter().any(|(s, _)| !s.is_subset(&self.universe)) {
            return false;
        }
        // Canonicalize: sort by set, merge runs of equal sets.
        memo.canon.clear();
        memo.canon.extend_from_slice(groups);
        memo.canon.sort_unstable_by_key(|&(s, _)| s);
        memo.canon.dedup_by(|next, prev| {
            if next.0 == prev.0 {
                prev.1 += next.1;
                true
            } else {
                false
            }
        });
        if memo.canon.len() > MEMO_MAX_GROUPS {
            // Signature does not fit the packed key: plain DFS.
            scratch.rem.clear();
            scratch.rem.extend(memo.canon.iter().map(|&(_, n)| n));
            scratch.eligible.clear();
            let DfsScratch { rem, eligible } = scratch;
            return self.all_choices_rec(0, 0, &memo.canon, rem, eligible);
        }
        memo.sets_buf.clear();
        memo.sets_buf.extend(memo.canon.iter().map(|&(s, _)| s));
        let gid = match memo.group_ids.get(memo.sets_buf.as_slice()) {
            Some(&gid) => gid,
            None => {
                let gid = memo.group_ids.len() as u32;
                memo.group_ids.insert(memo.sets_buf.clone(), gid);
                gid
            }
        };
        scratch.rem.clear();
        scratch.rem.extend(memo.canon.iter().map(|&(_, n)| n));
        scratch.eligible.clear();
        // Split borrows: the canonical groups are moved into a local so the
        // memo tables can be borrowed mutably during the DFS.
        let canon = std::mem::take(&mut memo.canon);
        let DfsScratch { rem, eligible } = scratch;
        let ok = self.rec_memo(0, 0, gid, &canon, rem, eligible, &mut memo.results);
        memo.canon = canon;
        ok
    }

    /// Memoized variant of [`ConfigTrie::all_choices_rec`].
    #[allow(clippy::too_many_arguments)]
    fn rec_memo(
        &self,
        node: u32,
        cursor: usize,
        gid: u32,
        groups: &[(LabelSet, usize)],
        rem: &mut [usize],
        scratch: &mut Vec<usize>,
        results: &mut HashMap<(u32, u32, u32, u128), bool>,
    ) -> bool {
        if self.nodes[node as usize].complete {
            return true;
        }
        let mut next: Option<Label> = None;
        for (gi, &(set, _)) in groups.iter().enumerate() {
            if rem[gi] > 0 {
                let m = set.min_label_at_least(cursor);
                debug_assert!(m.is_some(), "group exhausted its set before its count");
                if let Some(l) = m {
                    next = Some(next.map_or(l, |n: Label| n.min(l)));
                }
            }
        }
        let Some(l) = next else {
            return true;
        };
        // The state is keyed on the *computed* next label, which
        // normalizes cursors that skip over unassignable labels.
        let key = (gid, node, l.index() as u32, DfsMemo::pack(rem));
        if let Some(&v) = results.get(&key) {
            return v;
        }
        let eligible_from = scratch.len();
        for (gi, &(set, _)) in groups.iter().enumerate() {
            if rem[gi] > 0 && set.contains(l) {
                scratch.push(gi);
            }
        }
        let ok = self.combos_memo(node, l, eligible_from, gid, groups, rem, scratch, results);
        scratch.truncate(eligible_from);
        results.insert(key, ok);
        ok
    }

    /// Memoized variant of [`ConfigTrie::combos`].
    #[allow(clippy::too_many_arguments)]
    fn combos_memo(
        &self,
        node: u32,
        l: Label,
        idx: usize,
        gid: u32,
        groups: &[(LabelSet, usize)],
        rem: &mut [usize],
        scratch: &mut Vec<usize>,
        results: &mut HashMap<(u32, u32, u32, u128), bool>,
    ) -> bool {
        if self.nodes[node as usize].complete {
            return true;
        }
        if idx == scratch.len() {
            return self.rec_memo(node, l.index() + 1, gid, groups, rem, scratch, results);
        }
        let gi = scratch[idx];
        let saved = rem[gi];
        let forced = groups[gi].0.min_label_at_least(l.index() + 1).is_none();
        let lo = if forced { saved } else { 0 };
        let mut node = node;
        for _ in 0..lo {
            match self.step(node, l) {
                Some(next) if self.nodes[next as usize].complete => return true,
                Some(next) => node = next,
                None => return false,
            }
        }
        let mut take = lo;
        loop {
            rem[gi] = saved - take;
            if !self.combos_memo(node, l, idx + 1, gid, groups, rem, scratch, results) {
                rem[gi] = saved;
                return false;
            }
            if take == saved {
                break;
            }
            take += 1;
            match self.step(node, l) {
                Some(next) if self.nodes[next as usize].complete => {
                    rem[gi] = saved;
                    return true;
                }
                Some(next) => node = next,
                None => {
                    rem[gi] = saved;
                    return false;
                }
            }
        }
        rem[gi] = saved;
        true
    }

    /// Branches over the multiplicity of the smallest still-assignable
    /// label, advancing the trie along the chosen run.
    fn all_choices_rec(
        &self,
        node: u32,
        cursor: usize,
        groups: &[(LabelSet, usize)],
        rem: &mut [usize],
        scratch: &mut Vec<usize>,
    ) -> bool {
        // Complete subtree: every remaining choice draws from
        // `universe ∩ [cursor..]` (sets were pre-checked against the
        // universe), and this subtree contains all such continuations.
        if self.nodes[node as usize].complete {
            return true;
        }
        // Smallest label ≥ cursor that some unfinished group can still take.
        let mut next: Option<Label> = None;
        for (gi, &(set, _)) in groups.iter().enumerate() {
            if rem[gi] > 0 {
                let m = set.min_label_at_least(cursor);
                debug_assert!(m.is_some(), "group exhausted its set before its count");
                if let Some(l) = m {
                    next = Some(next.map_or(l, |n: Label| n.min(l)));
                }
            }
        }
        let Some(l) = next else {
            // Every component assigned; the walk consumed exactly `arity`
            // labels, which is the trie's accepting depth.
            return true;
        };
        let eligible_from = scratch.len();
        for (gi, &(set, _)) in groups.iter().enumerate() {
            if rem[gi] > 0 && set.contains(l) {
                scratch.push(gi);
            }
        }
        let ok = self.combos(node, l, eligible_from, groups, rem, scratch);
        scratch.truncate(eligible_from);
        ok
    }

    /// Enumerates, for each eligible group, how many of its components take
    /// label `l`; the trie advances one `l`-edge per taken component. Every
    /// enumerated combination must succeed.
    fn combos(
        &self,
        node: u32,
        l: Label,
        idx: usize,
        groups: &[(LabelSet, usize)],
        rem: &mut [usize],
        scratch: &mut Vec<usize>,
    ) -> bool {
        // A complete node accepts every continuation: all remaining
        // multiplicity splits at this label, and everything deeper, are in
        // the trie (a complete node's children are themselves complete).
        if self.nodes[node as usize].complete {
            return true;
        }
        if idx == scratch.len() {
            return self.all_choices_rec(node, l.index() + 1, groups, rem, scratch);
        }
        let gi = scratch[idx];
        let saved = rem[gi];
        // A group whose set has no label above `l` must spend its whole
        // remaining count here.
        let forced = groups[gi].0.min_label_at_least(l.index() + 1).is_none();
        let lo = if forced { saved } else { 0 };
        let mut node = node;
        for _ in 0..lo {
            match self.step(node, l) {
                // Every later branch point passes through this node, so a
                // complete node here settles the whole call.
                Some(next) if self.nodes[next as usize].complete => return true,
                Some(next) => node = next,
                // A forced choice spells a configuration the trie lacks.
                None => return false,
            }
        }
        let mut take = lo;
        loop {
            rem[gi] = saved - take;
            if !self.combos(node, l, idx + 1, groups, rem, scratch) {
                rem[gi] = saved;
                return false;
            }
            if take == saved {
                break;
            }
            take += 1;
            match self.step(node, l) {
                Some(next) if self.nodes[next as usize].complete => {
                    // All remaining takes continue from this node.
                    rem[gi] = saved;
                    return true;
                }
                Some(next) => node = next,
                None => {
                    rem[gi] = saved;
                    // Some choice takes ≥ `take` copies of `l` beyond what
                    // the trie admits: that choice is missing from C.
                    return false;
                }
            }
        }
        rem[gi] = saved;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;

    fn l(i: usize) -> Label {
        Label::from_index(i)
    }

    fn cfg(ixs: &[usize]) -> Config {
        Config::new(ixs.iter().map(|&i| l(i)).collect())
    }

    fn set(ixs: &[usize]) -> LabelSet {
        ixs.iter().map(|&i| l(i)).collect()
    }

    #[test]
    fn contains_sorted_matches_btreeset() {
        let c = Constraint::from_configs(3, [cfg(&[0, 0, 1]), cfg(&[0, 1, 2]), cfg(&[2, 2, 2])])
            .unwrap();
        let trie = ConfigTrie::build(3, c.iter());
        for probe in crate::config::all_multisets(4, 3) {
            assert_eq!(trie.contains_sorted(probe.labels()), c.contains(&probe), "{probe:?}");
        }
        assert!(!trie.contains_sorted(&[l(0), l(1)])); // wrong arity
    }

    #[test]
    fn all_choices_matches_product_enumeration() {
        // "at least one 1" over {0,1}, arity 3.
        let c = Constraint::from_configs(3, [cfg(&[0, 0, 1]), cfg(&[0, 1, 1]), cfg(&[1, 1, 1])])
            .unwrap();
        let trie = ConfigTrie::build(3, c.iter());
        // Every choice from ({1},{0,1},{0,1}) has a 1.
        assert!(trie.all_choices_contained(&[(set(&[1]), 1), (set(&[0, 1]), 2)]));
        // ({0,1},{0,1},{0,1}) includes 000, which is missing.
        assert!(!trie.all_choices_contained(&[(set(&[0, 1]), 3)]));
        // Wrong total arity.
        assert!(!trie.all_choices_contained(&[(set(&[1]), 2)]));
        // Empty component.
        assert!(!trie.all_choices_contained(&[(LabelSet::empty(), 1), (set(&[1]), 2)]));
    }

    #[test]
    fn memoized_dfs_matches_unmemoized_oracle() {
        use rand::{Rng, SeedableRng};
        // One memo shared across every probe of a trie (the engine's usage
        // pattern): repeated and permuted groupings must keep answering
        // exactly like the memo-free DFS. ≤6 labels, arity 4 per the
        // engine's property-test contract.
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x3E30);
        for _ in 0..120 {
            let n = rng.gen_range(2..=6);
            let arity = 4;
            let mut c = Constraint::new(arity).unwrap();
            for m in crate::config::all_multisets(n, arity) {
                if rng.gen_bool(0.45) {
                    c.insert(m).unwrap();
                }
            }
            let trie = ConfigTrie::build(arity, c.iter());
            let mut memo = DfsMemo::default();
            let mut scratch = DfsScratch::default();
            let mut probes: Vec<Vec<(LabelSet, usize)>> = Vec::new();
            for _ in 0..40 {
                let mut groups: Vec<(LabelSet, usize)> = Vec::new();
                let mut left = arity;
                while left > 0 {
                    let count = rng.gen_range(1..=left);
                    let mut s = LabelSet::empty();
                    for i in 0..n {
                        if rng.gen_bool(0.5) {
                            s.insert(l(i));
                        }
                    }
                    if s.is_empty() {
                        s.insert(l(rng.gen_range(0..n)));
                    }
                    groups.push((s, count));
                    left -= count;
                }
                probes.push(groups);
            }
            // Probe twice (second pass hits the memo) plus shuffled copies
            // (canonicalization must make order irrelevant).
            for round in 0..2 {
                for groups in &probes {
                    let plain = trie.all_choices_contained(groups);
                    let memoized = trie.all_choices_contained_memo(groups, &mut scratch, &mut memo);
                    assert_eq!(memoized, plain, "round {round}: {groups:?} vs {c:?}");
                    let mut rev: Vec<(LabelSet, usize)> = groups.clone();
                    rev.reverse();
                    assert_eq!(
                        trie.all_choices_contained_memo(&rev, &mut scratch, &mut memo),
                        plain,
                        "reversed grouping must agree: {groups:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn all_choices_randomized_against_bruteforce() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xBEEF);
        for _ in 0..200 {
            let n = rng.gen_range(2..=5);
            let arity = rng.gen_range(2..=4);
            let mut c = Constraint::new(arity).unwrap();
            for m in crate::config::all_multisets(n, arity) {
                if rng.gen_bool(0.5) {
                    c.insert(m).unwrap();
                }
            }
            let trie = ConfigTrie::build(arity, c.iter());
            // Random grouped line.
            let mut groups: Vec<(LabelSet, usize)> = Vec::new();
            let mut left = arity;
            while left > 0 {
                let count = rng.gen_range(1..=left);
                let mut s = LabelSet::empty();
                for i in 0..n {
                    if rng.gen_bool(0.5) {
                        s.insert(l(i));
                    }
                }
                if s.is_empty() {
                    s.insert(l(rng.gen_range(0..n)));
                }
                groups.push((s, count));
                left -= count;
            }
            // Oracle: expand the full product of choices.
            let mut choices: Vec<Vec<Label>> = vec![Vec::new()];
            for &(s, count) in &groups {
                for _ in 0..count {
                    let mut next = Vec::new();
                    for partial in &choices {
                        for x in s.iter() {
                            let mut p = partial.clone();
                            p.push(x);
                            next.push(p);
                        }
                    }
                    choices = next;
                }
            }
            let oracle = choices.iter().all(|ch| c.contains(&Config::new(ch.clone())));
            assert_eq!(trie.all_choices_contained(&groups), oracle, "{groups:?} vs {c:?}");
        }
    }
}
