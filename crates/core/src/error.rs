//! Error types for the round-elimination engine.
//!
//! Every fallible public operation in this crate returns [`Result`] with
//! [`Error`]; the engine never panics on malformed user input (panics are
//! reserved for internal invariant violations, which are bugs).

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by problem construction, parsing, and the speedup engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A label name was used that is not part of the problem's alphabet.
    UnknownLabel {
        /// The offending label name.
        name: String,
    },
    /// A label name was interned twice.
    DuplicateLabel {
        /// The offending label name.
        name: String,
    },
    /// The alphabet exceeded [`crate::labelset::MAX_LABELS`] labels.
    ///
    /// Round elimination can square the alphabet per step; the engine uses
    /// fixed 256-bit label sets for speed and reports this error instead of
    /// silently truncating.
    AlphabetOverflow {
        /// Number of labels that was requested.
        requested: usize,
    },
    /// A configuration had the wrong number of labels for its constraint.
    ArityMismatch {
        /// Arity declared by the constraint.
        expected: usize,
        /// Arity of the offending configuration.
        found: usize,
    },
    /// A constraint was declared with arity 0.
    EmptyArity,
    /// A problem was constructed whose constraints disagree about something
    /// structural (e.g. a constraint mentions a label the alphabet lacks).
    Inconsistent {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// Text-format parse error.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// Human-readable description.
        reason: String,
    },
    /// An operation needed the problem to satisfy a precondition it did not.
    Unsupported {
        /// Human-readable description.
        reason: String,
    },
    /// An iteration limit was exhausted before the requested event occurred.
    LimitExhausted {
        /// What was being searched for.
        what: String,
        /// The limit that was hit.
        limit: usize,
    },
    /// A filesystem operation failed (see [`crate::io::atomic_write`]).
    ///
    /// The underlying [`std::io::Error`] is flattened to a string so the
    /// error type stays `Clone + PartialEq`.
    Io {
        /// The path involved.
        path: String,
        /// What failed, including the OS error text.
        reason: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownLabel { name } => write!(f, "unknown label `{name}`"),
            Error::DuplicateLabel { name } => write!(f, "duplicate label `{name}`"),
            Error::AlphabetOverflow { requested } => write!(
                f,
                "alphabet overflow: {requested} labels requested, at most {} supported",
                crate::labelset::MAX_LABELS
            ),
            Error::ArityMismatch { expected, found } => {
                write!(f, "arity mismatch: expected {expected} labels, found {found}")
            }
            Error::EmptyArity => write!(f, "constraint arity must be at least 1"),
            Error::Inconsistent { reason } => write!(f, "inconsistent problem: {reason}"),
            Error::Parse { line, reason } => write!(f, "parse error on line {line}: {reason}"),
            Error::Unsupported { reason } => write!(f, "unsupported operation: {reason}"),
            Error::LimitExhausted { what, limit } => {
                write!(f, "limit of {limit} exhausted while searching for {what}")
            }
            Error::Io { path, reason } => write!(f, "i/o error on `{path}`: {reason}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_ish() {
        let errs = [
            Error::UnknownLabel { name: "X".into() },
            Error::DuplicateLabel { name: "X".into() },
            Error::AlphabetOverflow { requested: 999 },
            Error::ArityMismatch { expected: 2, found: 3 },
            Error::EmptyArity,
            Error::Inconsistent { reason: "r".into() },
            Error::Parse { line: 3, reason: "r".into() },
            Error::Unsupported { reason: "r".into() },
            Error::LimitExhausted { what: "fixed point".into(), limit: 5 },
            Error::Io { path: "/x".into(), reason: "r".into() },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
