//! Constraints: finite sets of allowed configurations of a fixed arity.
//!
//! A [`Constraint`] models one of the paper's `g(Δ)` (arity 2) or `h(Δ)`
//! (arity Δ) families for a concrete Δ. Constraints are the unit on which
//! the two halves of the speedup transform operate.

use crate::config::Config;
use crate::error::{Error, Result};
use crate::label::{Alphabet, Label};
use crate::labelset::LabelSet;
use crate::trie::ConfigTrie;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::OnceLock;

/// A set of allowed label configurations, all of the same arity.
///
/// Alongside the ordered `BTreeSet` of configurations, a constraint lazily
/// builds and caches a [`ConfigTrie`] index (see [`Constraint::trie`]): the
/// speedup engine's universal checks walk the trie instead of probing the
/// set per candidate choice. The cache is invalidated on mutation and is
/// invisible to equality, hashing, and serialization.
///
/// ```
/// use roundelim_core::constraint::Constraint;
/// use roundelim_core::config::Config;
/// use roundelim_core::label::Label;
/// let l = Label::from_index;
/// let mut g = Constraint::new(2).unwrap();
/// g.insert(Config::new(vec![l(0), l(1)])).unwrap();
/// assert!(g.contains(&Config::new(vec![l(1), l(0)])));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Constraint {
    arity: usize,
    configs: BTreeSet<Config>,
    /// Lazily built trie index over `configs`; reset by every mutation.
    trie: OnceLock<ConfigTrie>,
}

impl PartialEq for Constraint {
    fn eq(&self, other: &Constraint) -> bool {
        self.arity == other.arity && self.configs == other.configs
    }
}

impl Eq for Constraint {}

impl std::hash::Hash for Constraint {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.arity.hash(state);
        self.configs.hash(state);
    }
}

impl Constraint {
    /// Creates an empty constraint of the given arity.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyArity`] for arity 0.
    pub fn new(arity: usize) -> Result<Constraint> {
        if arity == 0 {
            return Err(Error::EmptyArity);
        }
        Ok(Constraint { arity, configs: BTreeSet::new(), trie: OnceLock::new() })
    }

    /// Builds a constraint from configurations, checking arities.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ArityMismatch`] if any configuration has the wrong
    /// arity and [`Error::EmptyArity`] for arity 0.
    pub fn from_configs<I: IntoIterator<Item = Config>>(
        arity: usize,
        configs: I,
    ) -> Result<Constraint> {
        let mut c = Constraint::new(arity)?;
        for cfg in configs {
            c.insert(cfg)?;
        }
        Ok(c)
    }

    /// Builds a constraint from configurations already in ascending order
    /// without arity checks: the ordered `BTreeSet` bulk-loads in linear
    /// time instead of rebalancing per insert. Callers guarantee every
    /// configuration has arity `arity` (debug-asserted).
    pub(crate) fn from_sorted_configs_unchecked(arity: usize, configs: Vec<Config>) -> Constraint {
        debug_assert!(configs.iter().all(|c| c.arity() == arity));
        debug_assert!(configs.windows(2).all(|w| w[0] < w[1]), "configs must be sorted and unique");
        Constraint { arity, configs: configs.into_iter().collect(), trie: OnceLock::new() }
    }

    /// The arity of every configuration in this constraint.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of configurations.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Whether the constraint allows nothing.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Inserts a configuration. Returns whether it was newly inserted.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ArityMismatch`] on wrong arity.
    pub fn insert(&mut self, cfg: Config) -> Result<bool> {
        if cfg.arity() != self.arity {
            return Err(Error::ArityMismatch { expected: self.arity, found: cfg.arity() });
        }
        let newly = self.configs.insert(cfg);
        if newly {
            self.trie.take(); // the cached index no longer matches
        }
        Ok(newly)
    }

    /// Membership test (multiset semantics, any label order).
    pub fn contains(&self, cfg: &Config) -> bool {
        self.configs.contains(cfg)
    }

    /// Membership test of an already-sorted label slice via the cached
    /// trie index: no allocation, no per-probe `Config` construction.
    ///
    /// Prefer this over [`Constraint::contains`] in loops that already
    /// hold sorted labels. Returns `false` on arity mismatch.
    pub fn contains_sorted(&self, labels: &[Label]) -> bool {
        self.trie().contains_sorted(labels)
    }

    /// The trie index over this constraint's configurations, built on
    /// first use and cached until the next mutation.
    pub fn trie(&self) -> &ConfigTrie {
        self.trie.get_or_init(|| ConfigTrie::build(self.arity, self.configs.iter()))
    }

    /// Convenience membership test from an unsorted label slice.
    pub fn contains_labels(&self, labels: &[Label]) -> bool {
        if labels.len() != self.arity {
            return false;
        }
        self.contains(&Config::new(labels.to_vec()))
    }

    /// Iterates over configurations in canonical (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = &Config> + '_ {
        self.configs.iter()
    }

    /// The set of labels that occur in at least one configuration.
    pub fn used_labels(&self) -> LabelSet {
        let mut s = LabelSet::empty();
        for c in &self.configs {
            s = s.union(&c.support());
        }
        s
    }

    /// Returns a new constraint with every label mapped through `f`.
    ///
    /// Used for renaming/restriction; the arity is preserved. The mapped
    /// configurations are sorted and deduplicated up front so the ordered
    /// set bulk-loads in linear time instead of rebalancing per insert —
    /// quotient construction in the bound search maps constraints for
    /// every relax candidate.
    pub fn map_labels<F: FnMut(Label) -> Label>(&self, mut f: F) -> Constraint {
        let mut configs: Vec<Config> = self.configs.iter().map(|c| c.map(&mut f)).collect();
        configs.sort_unstable();
        configs.dedup();
        Constraint::from_sorted_configs_unchecked(self.arity, configs)
    }

    /// Returns the sub-constraint of configurations whose labels all lie in
    /// `allowed`.
    pub fn restrict(&self, allowed: &LabelSet) -> Constraint {
        let configs =
            self.configs.iter().filter(|c| c.support().is_subset(allowed)).cloned().collect();
        Constraint { arity: self.arity, configs, trie: OnceLock::new() }
    }

    /// Validates every configuration against an alphabet.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Inconsistent`] on out-of-alphabet labels.
    pub fn validate(&self, alphabet: &Alphabet) -> Result<()> {
        for c in &self.configs {
            c.validate(alphabet)?;
        }
        Ok(())
    }

    /// Whether this constraint is a subset of `other` (same arity assumed).
    pub fn is_subset(&self, other: &Constraint) -> bool {
        self.configs.is_subset(&other.configs)
    }

    /// For arity-2 constraints: the symmetric compatibility matrix
    /// `C[a][b] = {a,b} ∈ self`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Unsupported`] for other arities.
    pub fn compatibility_matrix(&self, alphabet_len: usize) -> Result<Vec<Vec<bool>>> {
        if self.arity != 2 {
            return Err(Error::Unsupported {
                reason: format!(
                    "compatibility matrix needs arity 2, constraint has arity {}",
                    self.arity
                ),
            });
        }
        let mut m = vec![vec![false; alphabet_len]; alphabet_len];
        for c in &self.configs {
            let ls = c.labels();
            let (a, b) = (ls[0].index(), ls[1].index());
            m[a][b] = true;
            m[b][a] = true;
        }
        Ok(m)
    }
}

impl FromIterator<Config> for Constraint {
    /// Builds a constraint inferring the arity from the first configuration.
    ///
    /// # Panics
    ///
    /// Panics if the iterator is empty or configurations disagree on arity;
    /// use [`Constraint::from_configs`] for fallible construction.
    fn from_iter<I: IntoIterator<Item = Config>>(iter: I) -> Constraint {
        let configs: Vec<Config> = iter.into_iter().collect();
        let arity =
            configs.first().expect("FromIterator<Config> needs at least one configuration").arity();
        Constraint::from_configs(arity, configs).expect("configurations disagree on arity")
    }
}

impl Extend<Config> for Constraint {
    /// Extends the constraint; configurations of the wrong arity panic
    /// (use [`Constraint::insert`] for fallible insertion).
    fn extend<I: IntoIterator<Item = Config>>(&mut self, iter: I) {
        for c in iter {
            self.insert(c).expect("extend: arity mismatch");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: usize) -> Label {
        Label::from_index(i)
    }

    fn cfg(ixs: &[usize]) -> Config {
        Config::new(ixs.iter().map(|&i| l(i)).collect())
    }

    #[test]
    fn arity_checked() {
        let mut c = Constraint::new(2).unwrap();
        assert!(c.insert(cfg(&[0, 1])).unwrap());
        assert!(!c.insert(cfg(&[1, 0])).unwrap()); // same multiset
        assert!(matches!(c.insert(cfg(&[0, 1, 2])), Err(Error::ArityMismatch { .. })));
        assert!(matches!(Constraint::new(0), Err(Error::EmptyArity)));
    }

    #[test]
    fn membership_is_multiset() {
        let c = Constraint::from_configs(3, [cfg(&[0, 0, 1])]).unwrap();
        assert!(c.contains_labels(&[l(0), l(1), l(0)]));
        assert!(!c.contains_labels(&[l(0), l(1), l(1)]));
        assert!(!c.contains_labels(&[l(0), l(1)])); // wrong arity
    }

    #[test]
    fn used_labels_and_restrict() {
        let c = Constraint::from_configs(2, [cfg(&[0, 1]), cfg(&[2, 2])]).unwrap();
        assert_eq!(c.used_labels().len(), 3);
        let allowed = LabelSet::from_labels([l(0), l(1)]);
        let r = c.restrict(&allowed);
        assert_eq!(r.len(), 1);
        assert!(r.contains(&cfg(&[0, 1])));
    }

    #[test]
    fn compatibility_matrix_symmetric() {
        let c = Constraint::from_configs(2, [cfg(&[0, 1]), cfg(&[0, 0])]).unwrap();
        let m = c.compatibility_matrix(3).unwrap();
        assert!(m[0][1] && m[1][0] && m[0][0]);
        assert!(!m[1][1] && !m[2][2] && !m[0][2]);
        let h = Constraint::from_configs(3, [cfg(&[0, 0, 0])]).unwrap();
        assert!(h.compatibility_matrix(3).is_err());
    }

    #[test]
    fn trie_cache_tracks_mutation() {
        let mut c = Constraint::from_configs(2, [cfg(&[0, 1])]).unwrap();
        assert!(c.contains_sorted(&[l(0), l(1)]));
        assert!(!c.contains_sorted(&[l(0), l(0)]));
        c.insert(cfg(&[0, 0])).unwrap();
        assert!(c.contains_sorted(&[l(0), l(0)])); // index rebuilt after insert
        assert!(!c.contains_sorted(&[l(0)])); // arity mismatch
                                              // The cache is invisible to equality and hashing.
        let fresh = Constraint::from_configs(2, [cfg(&[0, 1]), cfg(&[0, 0])]).unwrap();
        assert_eq!(c, fresh);
    }

    #[test]
    fn map_labels_renames() {
        let c = Constraint::from_configs(2, [cfg(&[0, 1])]).unwrap();
        let m = c.map_labels(|x| if x == l(0) { l(5) } else { x });
        assert!(m.contains(&cfg(&[1, 5])));
    }
}
