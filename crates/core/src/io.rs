//! Crash-safe file output.
//!
//! Every artifact the workspace writes — certificates, `BENCH_speedup.json`,
//! `SIM_crossval.json`, search checkpoints — goes through [`atomic_write`]:
//! the contents land in a temporary file in the destination directory, are
//! flushed to disk, and only then renamed over the target. A crash (power
//! loss, OOM-kill, CI timeout) at any point leaves either the previous file
//! or the new one, never a truncated hybrid, so downstream byte-diffs and
//! replays always see a complete document.

use crate::error::{Error, Result};
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-process sequence number making concurrent [`atomic_write`] calls to
/// the same destination use distinct temporary names.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn io_err(path: &Path, what: &str, e: &std::io::Error) -> Error {
    Error::Io { path: path.display().to_string(), reason: format!("{what}: {e}") }
}

/// Writes `contents` to `path` atomically: temp file in the same directory,
/// `fsync`, then rename. The destination directory is created if missing.
/// On any failure the temporary file is removed (best effort) and the
/// destination is untouched.
///
/// # Errors
///
/// Returns [`Error::Io`] describing the failing operation.
pub fn atomic_write(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> Result<()> {
    let path = path.as_ref();
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    std::fs::create_dir_all(dir).map_err(|e| io_err(path, "create parent directory", &e))?;
    let file_name = path
        .file_name()
        .ok_or_else(|| Error::Io {
            path: path.display().to_string(),
            reason: "path has no file name".to_owned(),
        })?
        .to_string_lossy()
        .into_owned();
    let tmp = dir.join(format!(
        ".{file_name}.tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let write_all = || -> std::result::Result<(), (&'static str, std::io::Error)> {
        let mut f = std::fs::File::create(&tmp).map_err(|e| ("create temp file", e))?;
        f.write_all(contents.as_ref()).map_err(|e| ("write temp file", e))?;
        // Flush file contents before the rename publishes them: a rename of
        // an unsynced file can surface as a truncated document after a
        // crash, which is exactly what this helper exists to rule out.
        f.sync_all().map_err(|e| ("sync temp file", e))?;
        Ok(())
    };
    if let Err((what, e)) = write_all() {
        let _ = std::fs::remove_file(&tmp);
        return Err(io_err(path, what, &e));
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(io_err(path, "rename temp file into place", &e));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("roundelim-io-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_overwrites() {
        let path = tmp_dir("basic").join("out.json");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer contents").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer contents");
    }

    #[test]
    fn creates_missing_parent_directories() {
        let path = tmp_dir("mkdir").join("a/b/out.txt");
        atomic_write(&path, b"x").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"x");
    }

    #[test]
    fn leaves_no_temp_files_behind() {
        let dir = tmp_dir("clean");
        let path = dir.join("out.txt");
        atomic_write(&path, b"payload").unwrap();
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(stray.is_empty(), "temp files left behind: {stray:?}");
    }

    #[test]
    fn rejects_directory_target() {
        let dir = tmp_dir("dirtarget");
        // Writing over an existing directory must fail with Error::Io and
        // leave the directory in place.
        let err = atomic_write(&dir, b"x").unwrap_err();
        assert!(matches!(err, Error::Io { .. }), "{err:?}");
        assert!(dir.is_dir());
    }
}
