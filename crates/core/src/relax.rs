//! Relaxation witnesses (the simplification tool of §2.1).
//!
//! Problem `to` is a *relaxation* of problem `from` — written
//! `from ⟶ to` and meaning "`to` is at most as hard as `from`" — whenever
//! there is a label map `m : labels(from) → labels(to)` such that the image
//! of every node configuration of `from` is a node configuration of `to`,
//! and likewise for edge configurations. Any algorithm for `from` then
//! solves `to` in the same number of rounds by translating each output
//! label through `m` (a 0-round, per-port postprocessing).
//!
//! The *dual* use — making a problem harder to push an upper bound through
//! the speedup, as in the §4.5 color-reduction derivation — is the same
//! search in the opposite direction: `harder ⟶ easier`.
//!
//! This witness notion is sound but (deliberately) not complete: the paper
//! also uses bespoke relaxations whose output translation inspects the
//! whole node output (e.g. Lemma 3), which live in `roundelim-superweak`.

use crate::config::Config;
use crate::label::Label;
use crate::problem::Problem;

/// Searches for a relaxation witness `from ⟶ to`.
///
/// Returns the label map (indexed by `from` labels) if one exists.
///
/// ```
/// use roundelim_core::problem::Problem;
/// use roundelim_core::relax::relaxation_map;
/// // 2-coloring relaxes to 3-coloring (inject the color set).
/// let c2 = Problem::parse("name: c2\nnode: 1 1 | 2 2\nedge: 1 2").unwrap();
/// let c3 = Problem::parse("name: c3\nnode: a a | b b | c c\nedge: a b | a c | b c").unwrap();
/// assert!(relaxation_map(&c2, &c3).is_some());
/// assert!(relaxation_map(&c3, &c2).is_none()); // 3 colors don't fit in 2
/// ```
pub fn relaxation_map(from: &Problem, to: &Problem) -> Option<Vec<Label>> {
    if from.delta() != to.delta() || from.edge().arity() != to.edge().arity() {
        return None;
    }
    let n = from.alphabet().len();
    let m = to.alphabet().len();
    if n == 0 {
        return Some(Vec::new());
    }
    let mut mapping: Vec<Option<Label>> = vec![None; n];
    // Order source labels by frequency (most constrained first).
    let mut freq = vec![0usize; n];
    for cfg in from.node().iter().chain(from.edge().iter()) {
        for &l in cfg.labels() {
            freq[l.index()] += 1;
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(freq[i]));

    fn consistent(from: &Problem, to: &Problem, mapping: &[Option<Label>]) -> bool {
        let check = |ca: &crate::constraint::Constraint,
                     cb: &crate::constraint::Constraint|
         -> bool {
            for cfg in ca.iter() {
                if cfg.labels().iter().all(|l| mapping[l.index()].is_some()) {
                    let mapped = Config::new(
                        cfg.labels().iter().map(|l| mapping[l.index()].expect("checked")).collect(),
                    );
                    if !cb.contains(&mapped) {
                        return false;
                    }
                }
            }
            true
        };
        check(from.node(), to.node()) && check(from.edge(), to.edge())
    }

    fn rec(
        from: &Problem,
        to: &Problem,
        order: &[usize],
        depth: usize,
        m: usize,
        mapping: &mut Vec<Option<Label>>,
    ) -> bool {
        if depth == order.len() {
            return true;
        }
        let src = order[depth];
        for tgt in 0..m {
            mapping[src] = Some(Label::from_index(tgt));
            if consistent(from, to, mapping) && rec(from, to, order, depth + 1, m, mapping) {
                return true;
            }
            mapping[src] = None;
        }
        false
    }

    if rec(from, to, &order, 0, m, &mut mapping) {
        Some(mapping.into_iter().map(|x| x.expect("assignment complete")).collect())
    } else {
        None
    }
}

/// Whether `to` is a relaxation of `from` (see module docs).
pub fn is_relaxation_of(from: &Problem, to: &Problem) -> bool {
    relaxation_map(from, to).is_some()
}

/// Checks a *claimed* relaxation witness instead of searching for one:
/// `map[l.index()]` (one `to`-label per `from`-label) must carry every node
/// and edge configuration of `from` into one of `to`.
///
/// This is the certificate-replay hook: an independent verifier re-checks a
/// recorded witness in polynomial time, without re-running the witness
/// search that produced it.
pub fn check_relaxation(from: &Problem, to: &Problem, map: &[Label]) -> bool {
    if from.delta() != to.delta()
        || from.edge().arity() != to.edge().arity()
        || map.len() != from.alphabet().len()
        || map.iter().any(|l| l.index() >= to.alphabet().len())
    {
        return false;
    }
    let check = |ca: &crate::constraint::Constraint, cb: &crate::constraint::Constraint| -> bool {
        ca.iter().all(|cfg| cb.contains(&cfg.map(|l| map[l.index()])))
    };
    check(from.node(), to.node()) && check(from.edge(), to.edge())
}

/// Whether the two problems are mutually relaxable (0-round equivalent):
/// each simulates the other by a label map. Weaker than isomorphism.
pub fn are_zero_round_equivalent(a: &Problem, b: &Problem) -> bool {
    is_relaxation_of(a, b) && is_relaxation_of(b, a)
}

/// Applies a relaxation map to per-port outputs (the 0-round translation an
/// algorithm performs after solving `from`).
pub fn translate_outputs(map: &[Label], outputs: &[Label]) -> Vec<Label> {
    outputs.iter().map(|l| map[l.index()]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coloring(k: usize, delta: usize) -> Problem {
        let mut node = String::new();
        for c in 1..=k {
            if c > 1 {
                node.push_str(" | ");
            }
            node.push_str(&format!("c{c}^{delta}"));
        }
        let mut edge = String::new();
        let mut first = true;
        for a in 1..=k {
            for b in (a + 1)..=k {
                if !first {
                    edge.push_str(" | ");
                }
                first = false;
                edge.push_str(&format!("c{a} c{b}"));
            }
        }
        Problem::parse(&format!("name: {k}col\nnode: {node}\nedge: {edge}")).unwrap()
    }

    #[test]
    fn coloring_relaxes_upward_only() {
        let c3 = coloring(3, 2);
        let c4 = coloring(4, 2);
        assert!(is_relaxation_of(&c3, &c4));
        assert!(!is_relaxation_of(&c4, &c3));
    }

    #[test]
    fn relaxation_is_reflexive_and_transitive() {
        let c3 = coloring(3, 2);
        let c4 = coloring(4, 2);
        let c5 = coloring(5, 2);
        assert!(is_relaxation_of(&c3, &c3));
        assert!(is_relaxation_of(&c3, &c4) && is_relaxation_of(&c4, &c5));
        assert!(is_relaxation_of(&c3, &c5));
    }

    #[test]
    fn sinkless_coloring_relaxes_to_trivial() {
        let sc = Problem::parse("name: sc\nnode: 1 0 0\nedge: 0 0 | 0 1").unwrap();
        let trivial = Problem::parse("name: t\nnode: X X X\nedge: X X").unwrap();
        // Map both labels to X: node config {X,X,X} ✓, edges {X,X} ✓.
        assert!(is_relaxation_of(&sc, &trivial));
        assert!(!is_relaxation_of(&trivial, &sc));
    }

    #[test]
    fn zero_round_equivalence_detects_renaming_and_more() {
        let p = Problem::parse("name: p\nnode: 1 0 0\nedge: 0 0 | 0 1").unwrap();
        let q = Problem::parse("name: q\nnode: B A A\nedge: A A | A B").unwrap();
        assert!(are_zero_round_equivalent(&p, &q));
    }

    #[test]
    fn delta_mismatch_rejected() {
        let c3a = coloring(3, 2);
        let c3b = coloring(3, 3);
        assert!(relaxation_map(&c3a, &c3b).is_none());
    }

    #[test]
    fn translate_outputs_applies_map() {
        let map = vec![Label::from_index(1), Label::from_index(0)];
        let out = translate_outputs(&map, &[Label::from_index(0), Label::from_index(1)]);
        assert_eq!(out, vec![Label::from_index(1), Label::from_index(0)]);
    }
}
