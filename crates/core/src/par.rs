//! The workspace's work-stealing executor: deterministic data
//! parallelism for the search, the merge closure, and the simulator.
//!
//! Everything here maps a *pure* function over a task list and returns
//! per-task results in task order, so outputs are **bit-identical for
//! every thread count** — only the schedule is nondeterministic. The
//! schedule itself is a chunked atomic claim index with stealing: each
//! worker owns a contiguous range of the task list behind an atomic
//! cursor, claims tasks from its own range first, and when the range
//! drains switches to claiming from the other workers' cursors. One slow
//! task (a heavyweight `full_step`, a dense merge chunk) therefore never
//! idles the rest of the pool the way the old static fork-join chunks
//! did — the remaining workers steal the stragglers' queued work.
//!
//! Panic containment: [`par_map_catch`] captures unwinds **per task** and
//! stores every completed result into its slot immediately, so a panic —
//! even one whose payload escapes `catch_unwind` — costs exactly the
//! panicking task, never a whole chunk. [`par_map`] is the strict
//! variant for callers whose tasks must not panic.
//!
//! The executor reports into the `roundelim-obs` registry: `exec.tasks`
//! and `exec.steals` counters are always live; the `exec.worker_idle_ns`
//! histogram (per-worker wall time not spent inside tasks) records only
//! while [`roundelim_obs::armed`] — an unobserved run never reads the
//! clock here.

use roundelim_obs as obs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Resolves a worker-thread count: explicit option if positive, else the
/// `ROUNDELIM_THREADS` environment variable, else all available cores.
///
/// This is the one thread-budget convention of the workspace: the beam
/// search, the merge closure, the simulator, and the daemon's per-job
/// searches all resolve through here.
pub fn resolve_threads(opt: usize) -> usize {
    if opt > 0 {
        return opt;
    }
    std::env::var("ROUNDELIM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Registry handles for the executor probes, resolved once so the hot
/// paths pay one relaxed `fetch_add` per event instead of a registry
/// lock.
struct ExecMetrics {
    tasks: &'static obs::metrics::Counter,
    steals: &'static obs::metrics::Counter,
    idle_ns: &'static obs::metrics::Histogram,
}

fn exec_metrics() -> &'static ExecMetrics {
    static M: OnceLock<ExecMetrics> = OnceLock::new();
    M.get_or_init(|| ExecMetrics {
        tasks: obs::metrics::counter("exec.tasks"),
        steals: obs::metrics::counter("exec.steals"),
        idle_ns: obs::metrics::histogram("exec.worker_idle_ns"),
    })
}

/// Maps `f` over `items` on stealing workers, returning per-item results
/// in item order. A panic inside `f` is captured **per item**: the item's
/// slot comes back `None` and the second return value counts the panics.
/// Completed results are stored into their slots the moment they finish,
/// so even an unwind that escapes `catch_unwind` (a panicking panic
/// payload) can only lose the one in-flight item, never a chunk. (The
/// panic payload is dropped; the default panic hook has already printed
/// it.)
///
/// `threads <= 1` or a single item runs inline on the caller's thread —
/// same results, no spawns.
pub fn par_map_catch<T, R, F>(items: &[T], threads: usize, f: F) -> (Vec<Option<R>>, usize)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let metrics = exec_metrics();
    metrics.tasks.add(n as u64);
    // `f` is pure per-item work over `&T`; a panic cannot leave behind
    // broken shared state, so the unwind-safety assertion is sound.
    if threads <= 1 || n < 2 {
        let out: Vec<Option<R>> =
            items.iter().map(|item| catch_unwind(AssertUnwindSafe(|| f(item))).ok()).collect();
        let panics = out.iter().filter(|r| r.is_none()).count();
        return (out, panics);
    }
    let workers = threads.min(n);
    let per = n.div_ceil(workers);
    // Worker `w` owns tasks `bounds[w]..bounds[w + 1]` behind `cursors[w]`.
    let bounds: Vec<usize> = (0..=workers).map(|w| (w * per).min(n)).collect();
    let cursors: Vec<AtomicUsize> =
        bounds[..workers].iter().map(|&lo| AtomicUsize::new(lo)).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let steals = AtomicUsize::new(0);
    let armed = obs::armed();
    let busy: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    let region = armed.then(obs::time::Stopwatch::start);
    std::thread::scope(|s| {
        for w in 0..workers {
            let (bounds, cursors, slots) = (&bounds, &cursors, &slots);
            let (steals, busy, f) = (&steals, &busy, &f);
            s.spawn(move || {
                // Sweep the ranges starting with our own. A range's cursor
                // only moves forward, so by the time the sweep leaves a
                // range every one of its tasks has been claimed by someone;
                // after a full sweep nothing is left anywhere.
                for v in 0..workers {
                    let victim = (w + v) % workers;
                    loop {
                        let i = cursors[victim].fetch_add(1, Ordering::Relaxed);
                        if i >= bounds[victim + 1] {
                            break;
                        }
                        if victim != w {
                            steals.fetch_add(1, Ordering::Relaxed);
                        }
                        let watch = armed.then(obs::time::Stopwatch::start);
                        if let Ok(r) = catch_unwind(AssertUnwindSafe(|| f(&items[i]))) {
                            *slots[i].lock().expect("result slot poisoned") = Some(r);
                        }
                        if let Some(watch) = watch {
                            busy[w].fetch_add(watch.elapsed_ns(), Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    metrics.steals.add(steals.load(Ordering::Relaxed) as u64);
    if let Some(region) = region {
        let wall = region.elapsed_ns();
        for b in &busy {
            metrics.idle_ns.record(wall.saturating_sub(b.load(Ordering::Relaxed)));
        }
    }
    let out: Vec<Option<R>> =
        slots.into_iter().map(|slot| slot.into_inner().expect("result slot poisoned")).collect();
    let panics = out.iter().filter(|r| r.is_none()).count();
    (out, panics)
}

/// Strict [`par_map_catch`]: maps `f` over `items` and panics if any task
/// panicked. For stages whose tasks are infallible by construction (the
/// merge closure, the simulator) — a panic there is a bug, not a
/// degradable condition.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let (out, panics) = par_map_catch(items, threads, f);
    assert!(panics == 0, "parallel worker panicked ({panics} task(s) lost)");
    out.into_iter().map(|r| r.expect("no panics counted")).collect()
}

/// Runs `f(0), f(1), …, f(tasks - 1)` to completion on stealing workers,
/// discarding results. The closure typically claims exclusive state (a
/// `Mutex`-wrapped `&mut` chunk) by index. Panics if any task panics.
pub fn par_for_each_index<F>(tasks: usize, threads: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let indices: Vec<usize> = (0..tasks).collect();
    par_map(&indices, threads, |&i| f(i));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(par_map(&items, threads, |&x| x * 3 + 1), expect, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_item_inputs_run_inline() {
        let empty: Vec<u32> = Vec::new();
        assert_eq!(par_map(&empty, 8, |&x| x), Vec::<u32>::new());
        assert_eq!(par_map(&[7u32], 8, |&x| x + 1), vec![8]);
    }

    #[test]
    fn panics_are_captured_per_item() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 4] {
            let (out, panics) = par_map_catch(&items, threads, |&i| {
                assert!(i % 10 != 3, "injected");
                i * 2
            });
            assert_eq!(panics, 10, "threads={threads}");
            for (i, r) in out.iter().enumerate() {
                if i % 10 == 3 {
                    assert!(r.is_none());
                } else {
                    assert_eq!(*r, Some(i * 2));
                }
            }
        }
    }

    #[test]
    fn more_threads_than_items_still_covers_everything() {
        let items: Vec<usize> = (0..5).collect();
        assert_eq!(par_map(&items, 64, |&i| i + 1), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn stealing_drains_a_slow_range() {
        // One pathological item at the front of worker 0's range; the
        // other workers must steal the rest of range 0's tasks. The
        // assertion is on results only (the schedule is free), but the
        // case exercises the steal path deterministically enough to keep
        // it covered.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, 4, |&x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn mutex_claimed_mutable_chunks_compose_with_the_executor() {
        // The in-place pattern the simulator uses: disjoint &mut chunks
        // behind per-task Mutexes, claimed by index.
        let mut data = vec![0u32; 100];
        {
            type Chunk<'a> = Mutex<Option<(usize, &'a mut [u32])>>;
            let chunks: Vec<Chunk> = data
                .chunks_mut(17)
                .enumerate()
                .map(|(ci, part)| Mutex::new(Some((ci * 17, part))))
                .collect();
            par_for_each_index(chunks.len(), 4, |i| {
                let (base, part) =
                    chunks[i].lock().expect("chunk slot").take().expect("claimed once");
                for (j, slot) in part.iter_mut().enumerate() {
                    *slot = (base + j) as u32;
                }
            });
        }
        let expect: Vec<u32> = (0..100).collect();
        assert_eq!(data, expect);
    }

    #[test]
    fn resolve_threads_prefers_the_explicit_option() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }
}
