//! `roundelim-bin-v1`: the compact, versioned binary at-rest encoding.
//!
//! The engine's hot paths intern labels as dense indices; this module makes
//! the at-rest format match. A binary message is a sequence of fixed-width
//! little-endian integers and **length-prefixed sections** (a `u32` byte
//! count followed by the section body), wrapped in a self-delimiting frame:
//!
//! ```text
//! magic   "RELIMB1\n"            8 bytes
//! kind    u8 length + UTF-8      what the payload encodes ("problem", …)
//! payload u32 length + bytes     the message body
//! check   u64 LE                 FNV-1a-64 of the payload bytes
//! ```
//!
//! The frame makes every reader fail loudly on truncation (the declared
//! lengths outrun the buffer) and on corruption (the checksum mismatches),
//! mirroring the checkpoint discipline in `roundelim-auto`. Frames
//! concatenate cleanly, which is what the daemon's append-only proof store
//! relies on: a store file is just a run of frames, each independently
//! verifiable.
//!
//! This module owns the primitives and the [`Problem`] codec; the
//! `Certificate` and cache-snapshot codecs live in `roundelim-auto`, whose
//! types they serialize. All codecs are **bit-exact**: decode ∘ encode is
//! the identity on bytes as well as on values (alphabet order, constraint
//! order, and names all round-trip), which is what lets restarted services
//! reproduce byte-identical files.

use crate::config::Config;
use crate::constraint::Constraint;
use crate::error::{Error, Result};
use crate::label::{Alphabet, Label};
use crate::problem::Problem;

/// Schema tag of the binary encoding (documented in `docs/PROTOCOL.md`).
pub const SCHEMA: &str = "roundelim-bin-v1";

/// Frame magic: fixed 8 bytes starting every framed message.
pub const MAGIC: &[u8; 8] = b"RELIMB1\n";

/// 64-bit FNV-1a over a byte string — small, dependency-free, and more
/// than enough to catch truncation and bit rot (adversarial tampering is
/// out of scope: these files are the engine's own private state, and
/// certificates are *re-verified*, not trusted).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn bad(reason: impl Into<String>) -> Error {
    Error::Parse { line: 0, reason: format!("binenc: {}", reason.into()) }
}

/// An append-only byte encoder for `roundelim-bin-v1` messages.
#[derive(Debug, Default, Clone)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// A fresh, empty encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// The encoded bytes so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (the encoding is architecture-free).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends a length-prefixed byte section.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(u32::try_from(v.len()).expect("section exceeds u32 length"));
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string section.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// A checked cursor over `roundelim-bin-v1` bytes.
///
/// Every read validates that the buffer still holds the declared bytes, so
/// truncated input surfaces as an [`Error::Parse`] instead of a panic or a
/// silently short value.
#[derive(Debug, Clone)]
pub struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A cursor at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Dec<'a> {
        Dec { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(bad(format!(
                "truncated input: wanted {n} bytes for {what}, {} left",
                self.remaining()
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32> {
        let s = self.take(4, what)?;
        Ok(u32::from_le_bytes(s.try_into().expect("4-byte slice")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64> {
        let s = self.take(8, what)?;
        Ok(u64::from_le_bytes(s.try_into().expect("8-byte slice")))
    }

    /// Reads a `u64` and narrows it to `usize`.
    pub fn usize(&mut self, what: &str) -> Result<usize> {
        let v = self.u64(what)?;
        usize::try_from(v).map_err(|_| bad(format!("{what} out of range: {v}")))
    }

    /// Reads a 0/1 bool byte.
    pub fn bool(&mut self, what: &str) -> Result<bool> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(bad(format!("{what} must be 0 or 1, found {b}"))),
        }
    }

    /// Reads a length-prefixed byte section.
    pub fn bytes(&mut self, what: &str) -> Result<&'a [u8]> {
        let n = self.u32(what)? as usize;
        self.take(n, what)
    }

    /// Reads a length-prefixed UTF-8 string section.
    pub fn str(&mut self, what: &str) -> Result<&'a str> {
        std::str::from_utf8(self.bytes(what)?)
            .map_err(|_| bad(format!("{what} is not valid UTF-8")))
    }

    /// Asserts that the input was fully consumed.
    ///
    /// # Errors
    ///
    /// [`Error::Parse`] if trailing bytes remain (a framing bug or a
    /// mis-declared length).
    pub fn finish(&self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(bad(format!("{} trailing bytes after message", self.remaining())));
        }
        Ok(())
    }
}

/// Wraps a payload in a checksummed `roundelim-bin-v1` frame.
pub fn frame(kind: &str, payload: &[u8]) -> Vec<u8> {
    assert!(kind.len() <= u8::MAX as usize, "frame kind too long");
    let mut out = Vec::with_capacity(8 + 1 + kind.len() + 4 + payload.len() + 8);
    out.extend_from_slice(MAGIC);
    out.push(kind.len() as u8);
    out.extend_from_slice(kind.as_bytes());
    out.extend_from_slice(&u32::try_from(payload.len()).expect("payload fits u32").to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out
}

/// Reads one frame of the expected `kind` starting at the cursor, returning
/// its verified payload. Frames are self-delimiting, so callers can iterate
/// this over a concatenated store file.
///
/// # Errors
///
/// [`Error::Parse`] on bad magic, an unexpected kind, or truncation;
/// [`Error::Inconsistent`] on a checksum mismatch (torn or corrupted data).
pub fn read_frame<'a>(d: &mut Dec<'a>, kind: &str) -> Result<&'a [u8]> {
    let magic = d.take(MAGIC.len(), "frame magic")?;
    if magic != MAGIC {
        return Err(bad("bad frame magic (not a roundelim-bin-v1 frame)"));
    }
    let klen = d.u8("frame kind length")? as usize;
    let found = std::str::from_utf8(d.take(klen, "frame kind")?)
        .map_err(|_| bad("frame kind is not valid UTF-8"))?;
    if found != kind {
        return Err(bad(format!("frame kind mismatch: expected `{kind}`, found `{found}`")));
    }
    let payload = d.bytes("frame payload")?;
    let sum = d.u64("frame checksum")?;
    if fnv1a64(payload) != sum {
        return Err(Error::Inconsistent {
            reason: format!("binenc: checksum mismatch on `{kind}` frame (torn or corrupted data)"),
        });
    }
    Ok(payload)
}

/// Convenience: unwraps a buffer holding exactly one frame of `kind`.
///
/// # Errors
///
/// As [`read_frame`], plus [`Error::Parse`] on trailing bytes.
pub fn unframe<'a>(bytes: &'a [u8], kind: &str) -> Result<&'a [u8]> {
    let mut d = Dec::new(bytes);
    let payload = read_frame(&mut d, kind)?;
    d.finish()?;
    Ok(payload)
}

/// Encodes a constraint: arity, configuration count, then each
/// configuration's labels as `u32` indices — configurations in the
/// constraint's sorted canonical order, labels in each configuration's
/// sorted order, so the encoding is a pure function of the value.
pub fn encode_constraint(c: &Constraint, e: &mut Enc) {
    e.u32(c.arity() as u32);
    e.u32(c.len() as u32);
    for cfg in c.iter() {
        for l in cfg.iter() {
            e.u32(l.index() as u32);
        }
    }
}

/// Decodes a constraint encoded by [`encode_constraint`], validating label
/// indices against `n_labels`.
///
/// # Errors
///
/// [`Error::Parse`] on truncation or out-of-range labels; construction
/// errors ([`Error::EmptyArity`], [`Error::ArityMismatch`]) pass through.
pub fn decode_constraint(d: &mut Dec<'_>, n_labels: usize) -> Result<Constraint> {
    let arity = d.u32("constraint arity")? as usize;
    let n = d.u32("constraint size")? as usize;
    let mut configs = Vec::with_capacity(n);
    for _ in 0..n {
        let mut labels = Vec::with_capacity(arity);
        for _ in 0..arity {
            let ix = d.u32("config label")? as usize;
            if ix >= n_labels {
                return Err(bad(format!("label index {ix} out of range ({n_labels} labels)")));
            }
            labels.push(Label::from_index(ix));
        }
        configs.push(Config::new(labels));
    }
    Constraint::from_configs(arity, configs)
}

/// Encodes a problem: name, the alphabet as an ordered name list, then the
/// node and edge constraints (see [`encode_constraint`]).
pub fn encode_problem(p: &Problem, e: &mut Enc) {
    e.str(p.name());
    e.u32(p.alphabet().len() as u32);
    for name in p.alphabet().names() {
        e.str(name);
    }
    encode_constraint(p.node(), e);
    encode_constraint(p.edge(), e);
}

/// Decodes a problem encoded by [`encode_problem`].
///
/// The general constructor is used (edge arity is not forced to 2), so the
/// codec covers the hypergraph-generalized problems some oracles build.
///
/// # Errors
///
/// [`Error::Parse`] on malformed input; alphabet/constraint construction
/// errors pass through (duplicate labels, inconsistent constraints).
pub fn decode_problem(d: &mut Dec<'_>) -> Result<Problem> {
    let name = d.str("problem name")?.to_owned();
    let n_labels = d.u32("alphabet size")? as usize;
    let mut names = Vec::with_capacity(n_labels);
    for _ in 0..n_labels {
        names.push(d.str("label name")?.to_owned());
    }
    let alphabet = Alphabet::from_names(names)?;
    let node = decode_constraint(d, n_labels)?;
    let edge = decode_constraint(d, n_labels)?;
    Problem::new_general(name, alphabet, node, edge)
}

/// Encodes a problem as one framed `problem` message.
pub fn problem_to_bytes(p: &Problem) -> Vec<u8> {
    let mut e = Enc::new();
    encode_problem(p, &mut e);
    frame("problem", &e.into_bytes())
}

/// Decodes one framed `problem` message.
///
/// # Errors
///
/// As [`unframe`] and [`decode_problem`].
pub fn problem_from_bytes(bytes: &[u8]) -> Result<Problem> {
    let payload = unframe(bytes, "problem")?;
    let mut d = Dec::new(payload);
    let p = decode_problem(&mut d)?;
    d.finish()?;
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Problem {
        Problem::parse(
            "name: mm\nlabels: M O P X\nnode: M O O | P O O | O O X\nedge: M M | P O | X X\n",
        )
        .unwrap()
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn scalars_round_trip() {
        let mut e = Enc::new();
        e.u8(7);
        e.u32(0xdead_beef);
        e.u64(u64::MAX);
        e.bool(true);
        e.str("héllo");
        e.bytes(b"");
        let buf = e.into_bytes();
        let mut d = Dec::new(&buf);
        assert_eq!(d.u8("a").unwrap(), 7);
        assert_eq!(d.u32("b").unwrap(), 0xdead_beef);
        assert_eq!(d.u64("c").unwrap(), u64::MAX);
        assert!(d.bool("d").unwrap());
        assert_eq!(d.str("e").unwrap(), "héllo");
        assert_eq!(d.bytes("f").unwrap(), b"");
        d.finish().unwrap();
    }

    #[test]
    fn problem_round_trips_bit_identically() {
        let p = sample();
        let bytes = problem_to_bytes(&p);
        let back = problem_from_bytes(&bytes).unwrap();
        assert_eq!(p, back);
        assert_eq!(p.to_text(), back.to_text(), "alphabet order must survive");
        assert_eq!(bytes, problem_to_bytes(&back), "re-encoding must be byte-identical");
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = problem_to_bytes(&sample());
        for n in 0..bytes.len() {
            assert!(problem_from_bytes(&bytes[..n]).is_err(), "prefix of {n} bytes accepted");
        }
    }

    #[test]
    fn corruption_is_rejected_by_the_checksum() {
        let good = problem_to_bytes(&sample());
        // Flip each payload byte in turn (skip the frame header; header
        // corruption is caught structurally, payload corruption by FNV).
        let payload_start = MAGIC.len() + 1 + "problem".len() + 4;
        for ix in payload_start..good.len() {
            let mut bytes = good.clone();
            bytes[ix] ^= 0x20;
            assert!(problem_from_bytes(&bytes).is_err(), "flip at {ix} accepted");
        }
    }

    #[test]
    fn checksum_failure_names_the_checksum() {
        let mut bytes = problem_to_bytes(&sample());
        let ix = bytes.len() - 9; // last payload byte
        bytes[ix] ^= 1;
        let err = problem_from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn frame_kind_is_checked() {
        let bytes = problem_to_bytes(&sample());
        assert!(unframe(&bytes, "certificate").is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = problem_to_bytes(&sample());
        bytes.push(0);
        assert!(problem_from_bytes(&bytes).is_err());
    }

    #[test]
    fn frames_concatenate_and_stream() {
        let p = sample();
        let mut buf = problem_to_bytes(&p);
        buf.extend_from_slice(&problem_to_bytes(&p));
        let mut d = Dec::new(&buf);
        let mut seen = 0;
        while d.remaining() > 0 {
            let payload = read_frame(&mut d, "problem").unwrap();
            let mut pd = Dec::new(payload);
            assert_eq!(decode_problem(&mut pd).unwrap(), p);
            seen += 1;
        }
        assert_eq!(seen, 2);
    }

    #[test]
    fn general_arity_problems_round_trip() {
        // Hypergraph-generalized edge side (arity 3).
        let alphabet = Alphabet::from_names(["A", "B"]).unwrap();
        let l = Label::from_index;
        let node = Constraint::from_configs(2, [Config::new(vec![l(0), l(1)])]).unwrap();
        let edge = Constraint::from_configs(3, [Config::new(vec![l(0), l(0), l(1)])]).unwrap();
        let p = Problem::new_general("hyper", alphabet, node, edge).unwrap();
        assert_eq!(problem_from_bytes(&problem_to_bytes(&p)).unwrap(), p);
    }
}
