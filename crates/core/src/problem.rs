//! The problem type: a locally checkable problem instantiated at a degree Δ.
//!
//! Following §3 of the paper, a problem Π is a triple of an output alphabet
//! (`f(Δ)`), an *edge constraint* `g(Δ)` of 2-element multisets, and a *node
//! constraint* `h(Δ)` of Δ-element multisets. The engine works with a
//! concrete Δ; problem *families* (functions of Δ) live in
//! `roundelim-problems` as constructors `fn family(delta) -> Problem`.
//!
//! Outputs live on node–edge pairs `(v,e) ∈ B(G)` — one label per port — so
//! both constraints speak about the same labels. This is the paper's
//! edge-checkable normal form, to which every locally checkable problem can
//! be transformed (see §3).

use crate::config::Config;
use crate::constraint::Constraint;
use crate::error::{Error, Result};
use crate::label::{Alphabet, Label};
use crate::labelset::LabelSet;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A locally checkable problem in edge-checkable normal form, at fixed Δ.
///
/// # Example: sinkless orientation (Δ = 3)
///
/// ```
/// use roundelim_core::problem::Problem;
/// // node: at least one outgoing edge (O); edge: endpoints disagree (I vs O)
/// let p = Problem::parse(
///     "name: sinkless-orientation\n\
///      node: O O O | O O I | O I I\n\
///      edge: O I",
/// ).unwrap();
/// assert_eq!(p.delta(), 3);
/// assert_eq!(p.alphabet().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Problem {
    name: String,
    alphabet: Alphabet,
    node: Constraint,
    edge: Constraint,
}

impl Problem {
    /// Assembles a problem from parts, validating consistency.
    ///
    /// # Errors
    ///
    /// * [`Error::Inconsistent`] if a constraint uses labels outside the
    ///   alphabet, or if the edge constraint does not have arity 2.
    pub fn new(
        name: impl Into<String>,
        alphabet: Alphabet,
        node: Constraint,
        edge: Constraint,
    ) -> Result<Problem> {
        node.validate(&alphabet)?;
        edge.validate(&alphabet)?;
        if edge.arity() != 2 {
            return Err(Error::Inconsistent {
                reason: format!("edge constraint must have arity 2, found {}", edge.arity()),
            });
        }
        Ok(Problem { name: name.into(), alphabet, node, edge })
    }

    /// Assembles a problem from parts the caller guarantees consistent
    /// (constraints only use alphabet labels, edge arity 2); validation
    /// runs in debug builds only. For engine-derived problems whose labels
    /// are in-range by construction — e.g. the speedup transform and the
    /// bound search's quotient construction, where per-candidate
    /// validation is measurable.
    pub fn new_unchecked(
        name: String,
        alphabet: Alphabet,
        node: Constraint,
        edge: Constraint,
    ) -> Problem {
        debug_assert!(node.validate(&alphabet).is_ok());
        debug_assert!(edge.validate(&alphabet).is_ok());
        debug_assert_eq!(edge.arity(), 2);
        Problem { name, alphabet, node, edge }
    }

    /// Assembles a problem whose edge side has arbitrary arity (hypergraph
    /// generalization used by some tests/oracles). Most callers want
    /// [`Problem::new`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Inconsistent`] on labels outside the alphabet.
    pub fn new_general(
        name: impl Into<String>,
        alphabet: Alphabet,
        node: Constraint,
        edge: Constraint,
    ) -> Result<Problem> {
        node.validate(&alphabet)?;
        edge.validate(&alphabet)?;
        Ok(Problem { name: name.into(), alphabet, node, edge })
    }

    /// Parses the compact text format; see [`crate::parser`] for the grammar.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`] on malformed input.
    pub fn parse(text: &str) -> Result<Problem> {
        crate::parser::parse_problem(text)
    }

    /// A human-readable name (carried through transforms for provenance).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Replaces the name, returning the problem (builder-style).
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Problem {
        self.name = name.into();
        self
    }

    /// The output alphabet `f(Δ)`.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The node constraint `h(Δ)`.
    pub fn node(&self) -> &Constraint {
        &self.node
    }

    /// The edge constraint `g(Δ)`.
    pub fn edge(&self) -> &Constraint {
        &self.edge
    }

    /// The node arity Δ (number of ports of a regular node).
    pub fn delta(&self) -> usize {
        self.node.arity()
    }

    /// Labels usable in a correct solution: those occurring in at least one
    /// node configuration *and* one edge configuration (the paper's
    /// "compress the problem description" convention, §4.2).
    pub fn usable_labels(&self) -> LabelSet {
        self.node.used_labels().intersection(&self.edge.used_labels())
    }

    /// Whether [`Problem::compress`] would be the identity: every alphabet
    /// label is usable, so there is nothing to drop.
    pub fn is_fully_usable(&self) -> bool {
        self.usable_labels() == LabelSet::first_n(self.alphabet.len())
    }

    /// Removes unusable labels and configurations mentioning them, iterating
    /// to a fixed point; returns the compressed problem and the mapping from
    /// old to new labels (None for dropped ones).
    ///
    /// Compressing never changes solvability: dropped labels cannot occur in
    /// any correct solution.
    pub fn compress(&self) -> (Problem, Vec<Option<Label>>) {
        // Fast path: every alphabet label is usable — nothing to drop, no
        // constraint rebuilds, identity mapping. Fixed-point problems hit
        // this on every speedup step.
        if self.is_fully_usable() {
            let mapping = (0..self.alphabet.len()).map(|i| Some(Label::from_index(i))).collect();
            return (self.clone(), mapping);
        }
        let mut node = self.node.clone();
        let mut edge = self.edge.clone();
        loop {
            let usable = node.used_labels().intersection(&edge.used_labels());
            let n2 = node.restrict(&usable);
            let e2 = edge.restrict(&usable);
            let stable = n2 == node && e2 == edge;
            node = n2;
            edge = e2;
            if stable {
                break;
            }
        }
        let usable = node.used_labels().intersection(&edge.used_labels());
        let mut mapping: Vec<Option<Label>> = vec![None; self.alphabet.len()];
        let mut alphabet = Alphabet::new();
        for l in self.alphabet.labels() {
            if usable.contains(l) {
                let nl = alphabet
                    .intern(self.alphabet.name(l))
                    .expect("compressed alphabet is no larger than the original");
                mapping[l.index()] = Some(nl);
            }
        }
        let remap =
            |l: Label| mapping[l.index()].expect("restricted constraints only use usable labels");
        let node = node.map_labels(remap);
        let edge = edge.map_labels(remap);
        let p = Problem { name: self.name.clone(), alphabet, node, edge };
        (p, mapping)
    }

    /// Looks up several label names at once (test/construction convenience).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownLabel`] on any unknown name.
    pub fn labels(&self, names: &[&str]) -> Result<Vec<Label>> {
        names.iter().map(|n| self.alphabet.require(n)).collect()
    }

    /// Builds a [`Config`] from label names (test/construction convenience).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownLabel`] on any unknown name.
    pub fn config(&self, names: &[&str]) -> Result<Config> {
        Ok(Config::new(self.labels(names)?))
    }

    /// Whether an assignment of one label per port satisfies the node
    /// constraint.
    pub fn node_ok(&self, labels: &[Label]) -> bool {
        self.node.contains_labels(labels)
    }

    /// Whether the pair of labels on an edge satisfies the edge constraint.
    ///
    /// Probes the constraint's cached trie index with a stack-sorted pair:
    /// no allocation, which matters to the 0-round deciders and simulators
    /// that call this in tight loops.
    pub fn edge_ok(&self, a: Label, b: Label) -> bool {
        let pair = if a <= b { [a, b] } else { [b, a] };
        self.edge.contains_sorted(&pair)
    }

    /// Per-label edge-compatibility rows: `rows[l] = {x : {l, x} ∈ edge}`,
    /// one bitset per alphabet label. All rows are empty when the edge
    /// constraint is not arity 2 (the hypergraph generalization has no
    /// pairwise compatibility notion). Shared by the 0-round deciders and
    /// the bound search's row-structure pruning.
    pub fn edge_rows(&self) -> Vec<crate::labelset::LabelSet> {
        let mut rows = vec![crate::labelset::LabelSet::empty(); self.alphabet.len()];
        if self.edge.arity() == 2 {
            for cfg in self.edge.iter() {
                let ls = cfg.labels();
                rows[ls[0].index()].insert(ls[1]);
                rows[ls[1].index()].insert(ls[0]);
            }
        }
        rows
    }

    /// Renders the problem in the same text format [`Problem::parse`] reads.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("name: {}\n", self.name));
        s.push_str("labels:");
        for n in self.alphabet.names() {
            s.push(' ');
            s.push_str(n);
        }
        s.push('\n');
        s.push_str("node:");
        let mut first = true;
        for c in self.node.iter() {
            s.push_str(if first { " " } else { " | " });
            first = false;
            s.push_str(&c.display(&self.alphabet).to_string());
        }
        s.push('\n');
        s.push_str("edge:");
        let mut first = true;
        for c in self.edge.iter() {
            s.push_str(if first { " " } else { " | " });
            first = false;
            s.push_str(&c.display(&self.alphabet).to_string());
        }
        s.push('\n');
        s
    }

    /// A compact single-line summary (label/configuration counts).
    pub fn summary(&self) -> String {
        format!(
            "{}: Δ={}, {} labels, |node|={}, |edge|={}",
            self.name,
            self.delta(),
            self.alphabet.len(),
            self.node.len(),
            self.edge.len()
        )
    }
}

impl fmt::Display for Problem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sinkless_orientation() -> Problem {
        Problem::parse(
            "name: so\n\
             node: O O O | O O I | O I I\n\
             edge: O I",
        )
        .unwrap()
    }

    #[test]
    fn basic_accessors() {
        let p = sinkless_orientation();
        assert_eq!(p.delta(), 3);
        assert_eq!(p.name(), "so");
        assert_eq!(p.alphabet().len(), 2);
        assert_eq!(p.node().len(), 3);
        assert_eq!(p.edge().len(), 1);
        let o = p.alphabet().require("O").unwrap();
        let i = p.alphabet().require("I").unwrap();
        assert!(p.edge_ok(o, i));
        assert!(!p.edge_ok(o, o));
        assert!(p.node_ok(&[o, o, i]));
        assert!(!p.node_ok(&[i, i, i]));
    }

    #[test]
    fn edge_arity_enforced() {
        let a = Alphabet::from_names(["A"]).unwrap();
        let node =
            Constraint::from_configs(2, [Config::new(vec![Label::from_index(0); 2])]).unwrap();
        let edge =
            Constraint::from_configs(3, [Config::new(vec![Label::from_index(0); 3])]).unwrap();
        assert!(Problem::new("bad", a.clone(), node.clone(), edge.clone()).is_err());
        assert!(Problem::new_general("ok", a, node, edge).is_ok());
    }

    #[test]
    fn out_of_alphabet_rejected() {
        let a = Alphabet::from_names(["A"]).unwrap();
        let node = Constraint::from_configs(1, [Config::new(vec![Label::from_index(7)])]).unwrap();
        let edge = Constraint::new(2).unwrap();
        assert!(matches!(Problem::new("bad", a, node, edge), Err(Error::Inconsistent { .. })));
    }

    #[test]
    fn compress_drops_unusable_labels() {
        // Label C appears only on the node side: unusable.
        let p = Problem::parse(
            "name: t\n\
             node: A A | A C\n\
             edge: A A | A B",
        )
        .unwrap();
        let (q, mapping) = p.compress();
        assert_eq!(q.alphabet().len(), 1); // only A survives (B unusable on node side)
        assert_eq!(q.node().len(), 1);
        assert_eq!(q.edge().len(), 1);
        assert!(mapping[p.alphabet().require("A").unwrap().index()].is_some());
        assert!(mapping[p.alphabet().require("C").unwrap().index()].is_none());
    }

    #[test]
    fn to_text_parse_round_trip() {
        let p = sinkless_orientation();
        let q = Problem::parse(&p.to_text()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn usable_labels_intersection() {
        let p = Problem::parse("name: t\nnode: A B\nedge: A A").unwrap();
        let u = p.usable_labels();
        assert_eq!(u.len(), 1);
        assert!(u.contains(p.alphabet().require("A").unwrap()));
    }
}
