//! # roundelim-core
//!
//! Core engine for **automatic round elimination**, implementing
//!
//! > Sebastian Brandt, *An Automatic Speedup Theorem for Distributed
//! > Problems*, PODC 2019 (arXiv:1902.09958).
//!
//! A locally checkable problem Π (in the paper's edge-checkable normal
//! form, instantiated at a degree Δ) is represented by a [`problem::Problem`]:
//! an output alphabet, a node constraint `h(Δ)` of Δ-element label
//! multisets, and an edge constraint `g(Δ)` of 2-element label multisets.
//!
//! The central operation is [`speedup::full_step`], the fixed procedure of
//! Theorems 1–2 that derives a problem Π'₁ solvable *exactly one round
//! faster* than Π on t-independent graph classes of girth ≥ 2t+2. Around it
//! the crate provides:
//!
//! * [`zero_round`] — deciders for 0-round solvability, the endgame of any
//!   speedup sequence (§2.1);
//! * [`iso`] — problem isomorphism and canonical forms, for detecting fixed
//!   points such as the sinkless-orientation loop of §4.4;
//! * [`relax`] — relaxation/hardening witnesses (label maps), the
//!   simplification tool of §2.1;
//! * [`sequence`] — the iterated speedup driver that produces lower-bound
//!   certificates.
//!
//! ## Quick start
//!
//! ```
//! use roundelim_core::problem::Problem;
//! use roundelim_core::sequence::{iterate, StopReason};
//!
//! // Sinkless coloring at Δ=3 (paper §4.4).
//! let sc = Problem::parse("name: sc\nnode: 1 0 0\nedge: 0 0 | 0 1")?;
//! let seq = iterate(&sc, 8)?;
//! // The sequence loops (Π₂ ≅ Π) without ever reaching a 0-round problem:
//! assert!(matches!(seq.stop, StopReason::FixedPoint { .. }));
//! # Ok::<(), roundelim_core::error::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binenc;
pub mod config;
pub mod constraint;
pub mod error;
pub mod fmt;
pub mod io;
pub mod iso;
pub mod label;
pub mod labelset;
pub mod par;
pub mod parser;
pub mod problem;
pub mod profile;
pub mod relax;
pub mod sequence;
pub mod speedup;
pub mod trie;
pub mod zero_round;

pub use config::Config;
pub use constraint::Constraint;
pub use error::{Error, Result};
pub use label::{Alphabet, Label};
pub use labelset::LabelSet;
pub use problem::Problem;
