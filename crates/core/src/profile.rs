//! Per-stage wall-clock accounting for the hot engine paths.
//!
//! The speedup engine and the automated bound search are dominated by a
//! handful of stages (merge emission, componentwise closure, domination
//! filtering, canonical keys, the relax closure). This module gives them a
//! shared, allocation-free accounting surface: stages are a fixed enum,
//! counters are process-global atomics, and a [`span`] guard adds its
//! elapsed time to its stage on drop.
//!
//! Accounting is **off by default** and costs one relaxed atomic load per
//! span while disabled. The CLI's `--profile` flag flips it on around one
//! command and prints [`report`] afterwards; parallel stages sum the time
//! of every worker, so on multicore runs a stage can exceed wall-clock
//! (the report says so).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// The accounted engine stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Merge emission: alignment enumeration + candidate interning
    /// (`maximal_good_lines` stage 1).
    Merge,
    /// Componentwise closure of candidate lines (`close_line` probes).
    Close,
    /// Domination queries against the antichain (pre-filters, installs,
    /// evictions, and the final maximality pass).
    Domination,
    /// Canonical keys (`iso::dedup_key`) computed by the bound search.
    Canon,
    /// The relax/harden closure of the bound search (move generation,
    /// sibling pruning, interning). Canonical-key time spent inside the
    /// closure is *also* counted under [`Stage::Canon`].
    RelaxClosure,
    /// `full_step` computations taken by the bound search's step stage.
    Step,
    /// The existential constraint enumeration (Properties 2/3: all
    /// multisets over the new alphabet admitting a choice in the sibling
    /// constraint).
    Existential,
    /// 0-round solvability checks taken by the bound search's goal tests.
    ZeroRound,
}

const STAGES: [Stage; 8] = [
    Stage::Merge,
    Stage::Close,
    Stage::Domination,
    Stage::Canon,
    Stage::RelaxClosure,
    Stage::Step,
    Stage::Existential,
    Stage::ZeroRound,
];

impl Stage {
    /// Stable display name (matches the `--profile` report and the CI
    /// stage-breakdown artifact).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Merge => "merge",
            Stage::Close => "close",
            Stage::Domination => "domination",
            Stage::Canon => "canon",
            Stage::RelaxClosure => "relax-closure",
            Stage::Step => "step",
            Stage::Existential => "existential",
            Stage::ZeroRound => "zero-round",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NANOS: [AtomicU64; STAGES.len()] = [const { AtomicU64::new(0) }; STAGES.len()];
static SPANS: [AtomicU64; STAGES.len()] = [const { AtomicU64::new(0) }; STAGES.len()];

/// Whether accounting is on (one relaxed load — safe to call per probe).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns accounting on or off. Turning it on does not reset counters; use
/// [`reset`] for a clean measurement window.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Zeroes every stage counter.
pub fn reset() {
    for i in 0..STAGES.len() {
        NANOS[i].store(0, Ordering::Relaxed);
        SPANS[i].store(0, Ordering::Relaxed);
    }
}

/// One stage's accumulated totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageTotals {
    /// The stage.
    pub stage: Stage,
    /// Summed span nanoseconds (across all workers).
    pub nanos: u64,
    /// Number of spans recorded.
    pub spans: u64,
}

/// Current totals for every stage, in fixed stage order.
pub fn snapshot() -> Vec<StageTotals> {
    STAGES
        .iter()
        .map(|&stage| StageTotals {
            stage,
            nanos: NANOS[stage.index()].load(Ordering::Relaxed),
            spans: SPANS[stage.index()].load(Ordering::Relaxed),
        })
        .collect()
}

/// Renders the stage breakdown as the `--profile` report.
pub fn report() -> String {
    let mut out = String::from("per-stage breakdown (time summed across workers):\n");
    for t in snapshot() {
        let ms = t.nanos as f64 / 1e6;
        out.push_str(&format!("  {:<14} {:>10.3} ms  ({} spans)\n", t.stage.name(), ms, t.spans));
    }
    out
}

/// An RAII span: created by [`span`], adds its elapsed time to its stage on
/// drop. A no-op (no clock read) while accounting is disabled.
#[must_use = "a span accounts its stage when dropped"]
pub struct Span {
    live: Option<(Stage, Instant)>,
}

/// Opens an accounting span for `stage`.
#[inline]
pub fn span(stage: Stage) -> Span {
    Span { live: enabled().then(|| (stage, Instant::now())) }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((stage, start)) = self.live.take() {
            let ns = start.elapsed().as_nanos() as u64;
            NANOS[stage.index()].fetch_add(ns, Ordering::Relaxed);
            SPANS[stage.index()].fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_only_while_enabled() {
        // The counters are process-global and other tests run in parallel;
        // while accounting is enabled here, a concurrently running engine
        // test may record spans too. Assertions are therefore one-sided
        // (≥) during the enabled window; the disabled-window asserts are
        // exact because nothing else enables accounting.
        reset();
        {
            let _s = span(Stage::Merge);
        }
        assert_eq!(snapshot()[Stage::Merge as usize].spans, 0, "disabled spans are no-ops");
        set_enabled(true);
        {
            let _s = span(Stage::Merge);
            std::hint::black_box(());
        }
        set_enabled(false);
        let t = snapshot()[Stage::Merge as usize];
        assert!(t.spans >= 1, "the enabled span must be recorded");
        assert_eq!(t.stage.name(), "merge");
        let text = report();
        assert!(text.contains("merge") && text.contains("relax-closure"), "{text}");
        reset();
        assert_eq!(snapshot()[Stage::Merge as usize].spans, 0);
    }
}
