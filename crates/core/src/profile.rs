//! Per-stage wall-clock accounting for the hot engine paths.
//!
//! The speedup engine and the automated bound search are dominated by a
//! handful of stages (merge emission, componentwise closure, domination
//! filtering, canonical keys, the relax closure). This module gives them a
//! shared, allocation-free accounting surface: stages are a fixed enum and
//! a [`span`] guard accounts its elapsed time to its stage on drop.
//!
//! Storage lives in the `roundelim-obs` metrics registry — each stage is
//! the histogram `stage.<name>`, so `--profile` totals, the daemon's
//! `metrics` command, and trace files all read the same numbers — and a
//! stage span doubles as a structured trace span whenever a trace sink is
//! installed (`--trace`).
//!
//! Accounting is **off by default** and costs one relaxed atomic load per
//! span while disabled. The CLI's `--profile` flag flips it on around one
//! command and prints [`report`] afterwards; parallel stages sum the time
//! of every worker, so on multicore runs a stage can exceed wall-clock
//! (the report says so).

use roundelim_obs as obs;
use std::sync::OnceLock;

/// The accounted engine stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Merge emission: alignment enumeration + candidate interning
    /// (`maximal_good_lines` stage 1).
    Merge,
    /// Componentwise closure of candidate lines (`close_line` probes).
    Close,
    /// Domination queries against the antichain (pre-filters, installs,
    /// evictions, and the final maximality pass).
    Domination,
    /// Canonical keys (`iso::dedup_key`) computed by the bound search.
    Canon,
    /// The relax/harden closure of the bound search (move generation,
    /// sibling pruning, interning). Canonical-key time spent inside the
    /// closure is *also* counted under [`Stage::Canon`].
    RelaxClosure,
    /// `full_step` computations taken by the bound search's step stage.
    Step,
    /// The existential constraint enumeration (Properties 2/3: all
    /// multisets over the new alphabet admitting a choice in the sibling
    /// constraint).
    Existential,
    /// 0-round solvability checks taken by the bound search's goal tests.
    ZeroRound,
}

const STAGES: [Stage; 8] = [
    Stage::Merge,
    Stage::Close,
    Stage::Domination,
    Stage::Canon,
    Stage::RelaxClosure,
    Stage::Step,
    Stage::Existential,
    Stage::ZeroRound,
];

impl Stage {
    /// Stable display name (matches the `--profile` report and the CI
    /// stage-breakdown artifact).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Merge => "merge",
            Stage::Close => "close",
            Stage::Domination => "domination",
            Stage::Canon => "canon",
            Stage::RelaxClosure => "relax-closure",
            Stage::Step => "step",
            Stage::Existential => "existential",
            Stage::ZeroRound => "zero-round",
        }
    }

    /// The stage's name in the metrics registry and in trace files.
    pub fn metric_name(self) -> &'static str {
        match self {
            Stage::Merge => "stage.merge",
            Stage::Close => "stage.close",
            Stage::Domination => "stage.domination",
            Stage::Canon => "stage.canon",
            Stage::RelaxClosure => "stage.relax-closure",
            Stage::Step => "stage.step",
            Stage::Existential => "stage.existential",
            Stage::ZeroRound => "stage.zero-round",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// The per-stage histograms, resolved from the registry once.
fn stage_histogram(stage: Stage) -> &'static obs::metrics::Histogram {
    static HISTOGRAMS: OnceLock<[&'static obs::metrics::Histogram; STAGES.len()]> = OnceLock::new();
    HISTOGRAMS.get_or_init(|| STAGES.map(|s| obs::metrics::histogram(s.metric_name())))
        [stage.index()]
}

/// Whether accounting is on (one relaxed load — safe to call per probe).
#[inline]
pub fn enabled() -> bool {
    obs::profiling()
}

/// Turns accounting on or off. Turning it on does not reset counters; use
/// [`reset`] for a clean measurement window.
pub fn set_enabled(on: bool) {
    obs::set_profiling(on);
}

/// Zeroes every stage counter (other registry metrics are untouched).
pub fn reset() {
    for stage in STAGES {
        stage_histogram(stage).reset();
    }
}

/// One stage's accumulated totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageTotals {
    /// The stage.
    pub stage: Stage,
    /// Summed span nanoseconds (across all workers).
    pub nanos: u64,
    /// Number of spans recorded.
    pub spans: u64,
}

/// Current totals for every stage, in fixed stage order.
pub fn snapshot() -> Vec<StageTotals> {
    STAGES
        .iter()
        .map(|&stage| {
            let h = stage_histogram(stage);
            StageTotals { stage, nanos: h.sum(), spans: h.count() }
        })
        .collect()
}

/// Renders the stage breakdown as the `--profile` report, including
/// p50/p99 per-span latency from the stage histograms. The parenthesized
/// span count stays the last field of each line — the CI artifact and
/// test suite parse it.
pub fn report() -> String {
    let mut out = String::from("per-stage breakdown (time summed across workers):\n");
    for t in snapshot() {
        let h = stage_histogram(t.stage).snapshot();
        let ms = t.nanos as f64 / 1e6;
        out.push_str(&format!(
            "  {:<14} {:>10.3} ms  p50 {:>9.1} us  p99 {:>9.1} us  ({} spans)\n",
            t.stage.name(),
            ms,
            h.p50() as f64 / 1e3,
            h.p99() as f64 / 1e3,
            t.spans
        ));
    }
    out
}

/// An RAII span: created by [`span`], adds its elapsed time to its stage
/// histogram on drop and emits a trace span while a sink is installed. A
/// no-op (no clock read) while both accounting and tracing are off.
#[must_use = "a span accounts its stage when dropped"]
pub struct Span {
    live: Option<(Stage, obs::time::Stopwatch, obs::trace::SpanToken)>,
}

/// Opens an accounting span for `stage`.
#[inline]
pub fn span(stage: Stage) -> Span {
    if !(enabled() || obs::trace::tracing()) {
        return Span { live: None };
    }
    let token = obs::trace::enter(stage.metric_name(), None);
    Span { live: Some((stage, obs::time::Stopwatch::start(), token)) }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((stage, watch, token)) = self.live.take() {
            let ns = watch.elapsed_ns();
            obs::trace::exit(token);
            stage_histogram(stage).record(ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_only_while_enabled() {
        // The counters are process-global and other tests run in parallel;
        // while accounting is enabled here, a concurrently running engine
        // test may record spans too. Assertions are therefore one-sided
        // (≥) during the enabled window; the disabled-window asserts are
        // exact because nothing else enables accounting.
        reset();
        {
            let _s = span(Stage::Merge);
        }
        assert_eq!(snapshot()[Stage::Merge as usize].spans, 0, "disabled spans are no-ops");
        set_enabled(true);
        {
            let _s = span(Stage::Merge);
            std::hint::black_box(());
        }
        set_enabled(false);
        let t = snapshot()[Stage::Merge as usize];
        assert!(t.spans >= 1, "the enabled span must be recorded");
        assert_eq!(t.stage.name(), "merge");
        assert_eq!(t.stage.metric_name(), "stage.merge");
        let text = report();
        assert!(text.contains("merge") && text.contains("relax-closure"), "{text}");
        reset();
        assert_eq!(snapshot()[Stage::Merge as usize].spans, 0);
    }

    #[test]
    fn totals_come_from_the_shared_registry() {
        // The same numbers must be visible through the obs registry (the
        // daemon `metrics` command and trace counter trailer read it).
        set_enabled(true);
        {
            let _s = span(Stage::ZeroRound);
        }
        set_enabled(false);
        let ours = snapshot()[Stage::ZeroRound as usize];
        let reg = obs::metrics::histogram("stage.zero-round");
        assert!(reg.count() >= ours.spans);
        assert!(ours.spans >= 1);
    }
}
