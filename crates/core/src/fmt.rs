//! Pretty rendering of problems and speedup artifacts.
//!
//! The text format of [`crate::parser`] is the machine interface; this
//! module renders aligned, human-oriented tables for terminals — used by
//! the `roundelim` CLI and handy in tests and examples.

use crate::problem::Problem;
use crate::speedup::{FullStep, HalfStep};

/// Renders a problem as an aligned table:
///
/// ```text
/// sinkless-orientation            Δ = 3, 2 labels
///   node │ O O O │ O O I │ O I I
///   edge │ O I
/// ```
pub fn problem_table(p: &Problem) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<32}Δ = {}, {} labels\n", p.name(), p.delta(), p.alphabet().len()));
    let render = |label: &str, c: &crate::constraint::Constraint| -> String {
        let mut line = format!("  {label:>4} │ ");
        let mut first = true;
        for cfg in c.iter() {
            if !first {
                line.push_str(" │ ");
            }
            first = false;
            line.push_str(&cfg.display(p.alphabet()).to_string());
        }
        if first {
            line.push_str("∅ (unsatisfiable)");
        }
        line.push('\n');
        line
    };
    out.push_str(&render("node", p.node()));
    out.push_str(&render("edge", p.edge()));
    out
}

/// Renders the label provenance of a half-step: each derived label with
/// the set of base labels it denotes.
pub fn provenance_table(hs: &HalfStep, base: &Problem) -> String {
    let mut out = String::new();
    let width = hs.problem.alphabet().names().iter().map(|n| n.chars().count()).max().unwrap_or(1);
    for (ix, meaning) in hs.meanings.iter().enumerate() {
        let name = hs.problem.alphabet().name(crate::label::Label::from_index(ix));
        let members: Vec<&str> = meaning.iter().map(|l| base.alphabet().name(l)).collect();
        out.push_str(&format!("  {name:<w$} ↦ {{{}}}\n", members.join(", "), w = width));
    }
    out
}

/// Renders a whole speedup step: the base problem, Π'_{1/2}, Π'₁, and both
/// provenance tables.
pub fn step_report(base: &Problem, step: &FullStep) -> String {
    let mut out = String::new();
    out.push_str("── base problem ─────────────────────────────\n");
    out.push_str(&problem_table(base));
    out.push_str("── Π'_1/2 (half step) ───────────────────────\n");
    out.push_str(&problem_table(&step.half.problem));
    out.push_str(&provenance_table(&step.half, base));
    out.push_str("── Π'₁ (full step: one round faster) ────────\n");
    out.push_str(&problem_table(&step.full.problem));
    out
}

/// Renders the verdict of an iterated speedup sequence.
pub fn sequence_report(seq: &crate::sequence::SpeedupSequence) -> String {
    use crate::sequence::StopReason;
    let mut out = String::new();
    for (i, p) in seq.problems.iter().enumerate() {
        out.push_str(&format!("Π_{i}: {}\n", p.summary()));
    }
    match &seq.stop {
        StopReason::ZeroRound { index } => out.push_str(&format!(
            "verdict: Π_{index} is 0-round solvable ⇒ complexity exactly {index} \
             on high-girth t-independent classes\n"
        )),
        StopReason::FixedPoint { index, earlier } => out.push_str(&format!(
            "verdict: Π_{index} ≅ Π_{earlier} (period {}) ⇒ no 0-round problem is ever \
             reached; the complexity exceeds every t admitting a suitable graph class\n",
            index - earlier
        )),
        StopReason::LimitReached => out.push_str(&format!(
            "verdict: inconclusive after {} steps (lower bound {} certified)\n",
            seq.steps(),
            seq.steps()
        )),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::iterate;
    use crate::speedup::full_step;

    fn sc() -> Problem {
        Problem::parse("name: sc\nnode: 1 0 0\nedge: 0 0 | 0 1").unwrap()
    }

    #[test]
    fn problem_table_contains_all_configs() {
        let t = problem_table(&sc());
        assert!(t.contains("node"));
        assert!(t.contains("edge"));
        assert!(t.contains("1 0^2"), "{t}");
        assert!(t.contains("Δ = 3"));
    }

    #[test]
    fn empty_constraint_rendered_explicitly() {
        use crate::constraint::Constraint;
        use crate::label::Alphabet;
        let a = Alphabet::from_names(["X"]).unwrap();
        let node = Constraint::from_configs(
            2,
            [crate::config::Config::new(vec![crate::label::Label::from_index(0); 2])],
        )
        .unwrap();
        let edge = Constraint::new(2).unwrap();
        let p = Problem::new("dead", a, node, edge).unwrap();
        assert!(problem_table(&p).contains("unsatisfiable"));
    }

    #[test]
    fn step_report_mentions_all_parts() {
        let base = sc();
        let step = full_step(&base).unwrap();
        let r = step_report(&base, &step);
        assert!(r.contains("base problem"));
        assert!(r.contains("Π'_1/2"));
        assert!(r.contains("Π'₁"));
        assert!(r.contains("↦"));
    }

    #[test]
    fn sequence_report_has_verdict() {
        let seq = iterate(&sc(), 4).unwrap();
        let r = sequence_report(&seq);
        assert!(r.contains("verdict"));
        assert!(r.contains("Π_0"));
    }
}
