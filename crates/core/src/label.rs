//! Labels and alphabets.
//!
//! A *label* is an output symbol of a locally checkable problem (the paper's
//! set `O`, restricted to the finite usable subset `f(Δ)`). Labels are
//! interned into an [`Alphabet`] and referred to by dense indices, which
//! keeps configurations and the bitset machinery in
//! [`crate::labelset::LabelSet`] cheap.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A dense index into an [`Alphabet`].
///
/// `Label` is deliberately a thin newtype ([C-NEWTYPE]): it prevents mixing
/// raw indices with labels while costing nothing at runtime.
///
/// ```
/// use roundelim_core::label::{Alphabet, Label};
/// let mut a = Alphabet::new();
/// let x: Label = a.intern("X").unwrap();
/// assert_eq!(a.name(x), "X");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Label(pub(crate) u16);

impl Label {
    /// Creates a label from a raw index.
    ///
    /// Callers are responsible for the index being valid for the alphabet the
    /// label will be used with; [`Alphabet::name`] panics on stale indices.
    #[inline]
    pub fn from_index(ix: usize) -> Label {
        Label(ix as u16)
    }

    /// The dense index of this label in its alphabet.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An interned set of label names.
///
/// Alphabets own the mapping between human-readable label names and the
/// dense [`Label`] indices used everywhere else. Two alphabets are equal iff
/// they contain the same names in the same order.
///
/// ```
/// use roundelim_core::label::Alphabet;
/// let a = Alphabet::from_names(["A", "B", "C"]).unwrap();
/// assert_eq!(a.len(), 3);
/// assert_eq!(a.name(a.lookup("B").unwrap()), "B");
/// ```
#[derive(Debug, Clone, Default, Serialize)]
pub struct Alphabet {
    names: Vec<String>,
    /// Name → label lookup, built lazily on first use: the speedup
    /// transform constructs many short-lived alphabets that are never
    /// queried by name, so eager index building (one hash + one `String`
    /// clone per label) would dominate their construction cost.
    #[serde(skip)]
    index: std::sync::OnceLock<HashMap<String, Label>>,
}

impl PartialEq for Alphabet {
    fn eq(&self, other: &Alphabet) -> bool {
        self.names == other.names
    }
}

impl Eq for Alphabet {}

impl std::hash::Hash for Alphabet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.names.hash(state);
    }
}

impl<'de> Deserialize<'de> for Alphabet {
    fn deserialize<D>(deserializer: D) -> std::result::Result<Alphabet, D::Error>
    where
        D: serde::Deserializer<'de>,
    {
        #[derive(Deserialize)]
        struct Raw {
            names: Vec<String>,
        }
        let raw = Raw::deserialize(deserializer)?;
        Ok(Alphabet { names: raw.names, index: std::sync::OnceLock::new() })
    }
}

impl Alphabet {
    /// Creates an empty alphabet.
    pub fn new() -> Alphabet {
        Alphabet::default()
    }

    /// Builds an alphabet from an iterator of names.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DuplicateLabel`] on repeated names and
    /// [`Error::AlphabetOverflow`] past [`crate::labelset::MAX_LABELS`].
    pub fn from_names<I, S>(names: I) -> Result<Alphabet>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut a = Alphabet::new();
        for n in names {
            a.intern(n)?;
        }
        Ok(a)
    }

    /// Interns a name, returning its label.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DuplicateLabel`] if the name is already present and
    /// [`Error::AlphabetOverflow`] if the alphabet is full.
    pub fn intern<S: Into<String>>(&mut self, name: S) -> Result<Label> {
        let name = name.into();
        if self.lookup(&name).is_some() {
            return Err(Error::DuplicateLabel { name });
        }
        if self.names.len() >= crate::labelset::MAX_LABELS {
            return Err(Error::AlphabetOverflow { requested: self.names.len() + 1 });
        }
        let l = Label(self.names.len() as u16);
        if let Some(index) = self.index.get_mut() {
            index.insert(name.clone(), l);
        }
        self.names.push(name);
        Ok(l)
    }

    /// Builds an alphabet from names the caller guarantees to be distinct
    /// (debug-asserted), skipping per-name duplicate probes; the lookup
    /// index stays unbuilt until first queried.
    pub(crate) fn from_unique_names_unchecked(names: Vec<String>) -> Alphabet {
        debug_assert!(names.len() <= crate::labelset::MAX_LABELS);
        debug_assert!(
            (1..names.len()).all(|i| !names[..i].contains(&names[i])),
            "from_unique_names_unchecked requires distinct names"
        );
        Alphabet { names, index: std::sync::OnceLock::new() }
    }

    /// Interns a name if new, otherwise returns the existing label.
    pub fn intern_or_get<S: Into<String> + AsRef<str>>(&mut self, name: S) -> Result<Label> {
        if let Some(l) = self.lookup(name.as_ref()) {
            return Ok(l);
        }
        self.intern(name)
    }

    /// Looks a name up.
    pub fn lookup(&self, name: &str) -> Option<Label> {
        let index = self.index.get_or_init(|| {
            self.names.iter().enumerate().map(|(i, n)| (n.clone(), Label(i as u16))).collect()
        });
        index.get(name).copied()
    }

    /// Looks a name up, erroring on absence.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownLabel`] if the name is not interned.
    pub fn require(&self, name: &str) -> Result<Label> {
        self.lookup(name).ok_or_else(|| Error::UnknownLabel { name: name.to_owned() })
    }

    /// The name of a label.
    ///
    /// # Panics
    ///
    /// Panics if `l` does not belong to this alphabet (an internal logic
    /// error, never triggerable from validated input).
    pub fn name(&self, l: Label) -> &str {
        &self.names[l.index()]
    }

    /// Number of labels.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the alphabet is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all labels in index order.
    pub fn labels(&self) -> impl Iterator<Item = Label> + '_ {
        (0..self.names.len()).map(|i| Label(i as u16))
    }

    /// Iterates over `(label, name)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (Label, &str)> + '_ {
        self.names.iter().enumerate().map(|(i, n)| (Label(i as u16), n.as_str()))
    }

    /// All names, in index order.
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

/// Generates fresh, readable names for derived labels.
///
/// The speedup transform creates labels that denote *sets* of old labels;
/// this helper renders them as `⟨A B⟩` while guaranteeing uniqueness within
/// the new alphabet (collisions get a numeric suffix).
#[derive(Debug, Default)]
pub struct NameGen {
    used: HashMap<String, usize>,
}

impl NameGen {
    /// Creates a fresh generator.
    pub fn new() -> NameGen {
        NameGen::default()
    }

    /// Returns `base` if unused, otherwise `base.k` for the smallest free k.
    pub fn fresh(&mut self, base: &str) -> String {
        match self.used.get_mut(base) {
            None => {
                self.used.insert(base.to_owned(), 0);
                base.to_owned()
            }
            Some(k) => {
                *k += 1;
                let name = format!("{base}.{k}");
                // Recurse in case the suffixed form is itself taken.
                if self.used.contains_key(&name) {
                    self.fresh(&name)
                } else {
                    self.used.insert(name.clone(), 0);
                    name
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_and_lookup_round_trip() {
        let mut a = Alphabet::new();
        let x = a.intern("X").unwrap();
        let y = a.intern("Y").unwrap();
        assert_ne!(x, y);
        assert_eq!(a.lookup("X"), Some(x));
        assert_eq!(a.lookup("Z"), None);
        assert_eq!(a.name(y), "Y");
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn duplicate_label_rejected() {
        let mut a = Alphabet::new();
        a.intern("X").unwrap();
        assert_eq!(a.intern("X"), Err(Error::DuplicateLabel { name: "X".into() }));
        // intern_or_get tolerates duplicates.
        assert_eq!(a.intern_or_get("X").unwrap(), a.lookup("X").unwrap());
    }

    #[test]
    fn overflow_detected() {
        let mut a = Alphabet::new();
        for i in 0..crate::labelset::MAX_LABELS {
            a.intern(format!("L{i}")).unwrap();
        }
        assert!(matches!(a.intern("one-too-many"), Err(Error::AlphabetOverflow { .. })));
    }

    #[test]
    fn labels_iterate_in_order() {
        let a = Alphabet::from_names(["p", "q", "r"]).unwrap();
        let ls: Vec<_> = a.labels().collect();
        assert_eq!(ls, vec![Label(0), Label(1), Label(2)]);
        let names: Vec<_> = a.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["p", "q", "r"]);
    }

    #[test]
    fn namegen_produces_unique_names() {
        let mut g = NameGen::new();
        let a = g.fresh("X");
        let b = g.fresh("X");
        let c = g.fresh("X");
        assert_eq!(a, "X");
        assert_ne!(b, a);
        assert_ne!(c, b);
        assert_ne!(c, a);
    }

    #[test]
    fn require_reports_unknown() {
        let a = Alphabet::from_names(["A"]).unwrap();
        assert!(matches!(a.require("B"), Err(Error::UnknownLabel { .. })));
    }
}
