//! Problem isomorphism and fixed-point detection.
//!
//! Two problems are *isomorphic* if some bijection of their alphabets maps
//! one's node and edge constraints exactly onto the other's. Detecting
//! isomorphism is how the iterated-speedup driver recognizes fixed points
//! such as the §4.4 loop (sinkless coloring → sinkless orientation →
//! sinkless coloring), which certifies that the speedup sequence never
//! reaches a 0-round-solvable problem.

use crate::config::Config;
use crate::constraint::Constraint;
use crate::label::Label;
use crate::problem::Problem;

/// The canonical `(node, edge)` image computed by [`canonical_key`].
pub type CanonicalKey = (Vec<Vec<usize>>, Vec<Vec<usize>>);

/// Deterministic 64-bit mixer for invariant hashing (splitmix64 finalizer).
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Folds `w` into the running invariant hash `h` (order-dependent).
#[inline]
fn fold(h: u64, w: u64) -> u64 {
    mix64(h ^ w.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Per-label *refined* invariant hashes: Weisfeiler–Leman-style
/// neighborhood refinement over the constraint structure. Each round
/// replaces a label's hash with a digest of (its own hash, and the sorted
/// multiset of side-tagged digests of the configurations containing it,
/// each folding the co-label hashes with multiplicities). Refinement stops
/// as soon as a round fails to split any class.
///
/// Isomorphic problems produce hash multisets that correspond under every
/// isomorphism — the hashes are computed from label-name-independent data
/// only — so the result can prune isomorphism searches (equal-hash
/// candidate filtering), group canonical-key permutations, and serve as a
/// coarse dedup profile. Refinement splits symmetric-looking labels that
/// plain signatures conflate, which is what keeps the permutation
/// enumerations and coarse-bucket collision chains short on the derived
/// problems the speedup engine produces.
pub fn refined_label_hashes(p: &Problem) -> Vec<u64> {
    let n = p.alphabet().len();
    // Seed with a constant: round 1 then separates labels by their
    // configuration-shape profile (the classic signature), later rounds by
    // neighborhood structure.
    let mut h: Vec<u64> = vec![0xA076_1D64_78BD_642Fu64; n];
    let mut distinct = 1usize;
    for _ in 0..MAX_REFINE_ROUNDS {
        let next = refine_round(p, &h);
        let d = count_distinct(&next);
        if d <= distinct && distinct > 1 {
            break;
        }
        distinct = d;
        h = next;
        if distinct == n {
            break; // fully discrete — further rounds cannot split more
        }
    }
    h
}

/// Refinement-round cap for [`refined_label_hashes`]. The hashes are
/// computed per relax candidate on the search's hot path, so rounds are
/// precious; after the shape round, two rounds of neighborhood refinement
/// are where the problems this engine produces stop splitting.
const MAX_REFINE_ROUNDS: usize = 3;

fn count_distinct(h: &[u64]) -> usize {
    let mut sorted = h.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

/// One refinement round (see [`refined_label_hashes`]): a single pass over
/// the configurations — each configuration's co-label digest is pushed to
/// every label it contains — followed by a per-label fold of the sorted
/// digests. `O(configs × arity)` plus the sorts, independent of how many
/// labels a configuration misses.
fn refine_round(p: &Problem, h: &[u64]) -> Vec<u64> {
    let n = h.len();
    // cfg_hashes[l]: digests of the configurations containing l, per
    // constraint side (tagged so node/edge multisets stay distinguishable).
    let mut cfg_hashes: Vec<Vec<u64>> = vec![Vec::new(); n];
    let mut co: Vec<u64> = Vec::new();
    for (side, c) in [p.node(), p.edge()].into_iter().enumerate() {
        let side_tag = fold(0x2545_F491_4F6C_DD1Du64, side as u64);
        for cfg in c.iter() {
            let groups = cfg.groups();
            co.clear();
            co.extend(groups.iter().map(|&(x, m)| fold(h[x.index()], m as u64)));
            co.sort_unstable();
            let mut base = side_tag;
            for &w in &co {
                base = fold(base, w);
            }
            for &(x, m) in &groups {
                cfg_hashes[x.index()].push(fold(base, m as u64));
            }
        }
    }
    cfg_hashes
        .into_iter()
        .enumerate()
        .map(|(l, mut v)| {
            v.sort_unstable();
            let mut acc = fold(0xE703_7ED1_A0B4_28DBu64, h[l]);
            acc = fold(acc, v.len() as u64);
            for w in v {
                acc = fold(acc, w);
            }
            acc
        })
        .collect()
}

/// Searches for an isomorphism from `a` to `b`.
///
/// Returns, if one exists, the label mapping `m` with
/// `m[l.index()]` = the `b`-label corresponding to `a`-label `l`.
///
/// ```
/// use roundelim_core::problem::Problem;
/// use roundelim_core::iso::isomorphism;
/// let p = Problem::parse("name: p\nnode: A A B\nedge: A B").unwrap();
/// let q = Problem::parse("name: q\nnode: Y X X\nedge: X Y").unwrap();
/// assert!(isomorphism(&p, &q).is_some());
/// ```
pub fn isomorphism(a: &Problem, b: &Problem) -> Option<Vec<Label>> {
    if a.alphabet().len() != b.alphabet().len()
        || a.node().len() != b.node().len()
        || a.edge().len() != b.edge().len()
        || a.delta() != b.delta()
        || a.edge().arity() != b.edge().arity()
    {
        return None;
    }
    let n = a.alphabet().len();
    // Candidate targets per source label, filtered by the refined invariant
    // hashes (a necessary condition: any isomorphism maps a label onto one
    // with identical invariants).
    let ha = refined_label_hashes(a);
    let hb = refined_label_hashes(b);
    {
        let mut sa = ha.clone();
        let mut sb = hb.clone();
        sa.sort_unstable();
        sb.sort_unstable();
        if sa != sb {
            return None;
        }
    }
    let mut candidates: Vec<Vec<Label>> = Vec::with_capacity(n);
    for l in a.alphabet().labels() {
        let cands: Vec<Label> =
            b.alphabet().labels().filter(|&m| hb[m.index()] == ha[l.index()]).collect();
        if cands.is_empty() {
            return None;
        }
        candidates.push(cands);
    }
    // Order source labels by fewest candidates first.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| candidates[i].len());

    let mut mapping: Vec<Option<Label>> = vec![None; n];
    let mut used = vec![false; n];
    if assign(a, b, &candidates, &order, 0, &mut mapping, &mut used) {
        Some(mapping.into_iter().map(|m| m.expect("assignment complete")).collect())
    } else {
        None
    }
}

fn assign(
    a: &Problem,
    b: &Problem,
    candidates: &[Vec<Label>],
    order: &[usize],
    depth: usize,
    mapping: &mut Vec<Option<Label>>,
    used: &mut Vec<bool>,
) -> bool {
    if depth == order.len() {
        return check_full(a, b, mapping);
    }
    let src = order[depth];
    for &tgt in &candidates[src] {
        if used[tgt.index()] {
            continue;
        }
        mapping[src] = Some(tgt);
        used[tgt.index()] = true;
        if partial_consistent(a, b, mapping)
            && assign(a, b, candidates, order, depth + 1, mapping, used)
        {
            // Leave the successful assignment in `mapping` for the caller.
            return true;
        }
        mapping[src] = None;
        used[tgt.index()] = false;
    }
    false
}

/// Quick necessary check on fully-mapped configurations.
fn partial_consistent(a: &Problem, b: &Problem, mapping: &[Option<Label>]) -> bool {
    let check = |ca: &Constraint, cb: &Constraint| -> bool {
        for cfg in ca.iter() {
            if cfg.labels().iter().all(|l| mapping[l.index()].is_some()) {
                let mapped = Config::new(
                    cfg.labels()
                        .iter()
                        .map(|l| mapping[l.index()].expect("checked above"))
                        .collect(),
                );
                if !cb.contains(&mapped) {
                    return false;
                }
            }
        }
        true
    };
    check(a.node(), b.node()) && check(a.edge(), b.edge())
}

fn check_full(a: &Problem, b: &Problem, mapping: &[Option<Label>]) -> bool {
    let map_constraint = |c: &Constraint| -> Constraint {
        c.map_labels(|l| mapping[l.index()].expect("assignment complete"))
    };
    &map_constraint(a.node()) == b.node() && &map_constraint(a.edge()) == b.edge()
}

/// Whether two problems are isomorphic (alphabet renaming only).
pub fn are_isomorphic(a: &Problem, b: &Problem) -> bool {
    isomorphism(a, b).is_some()
}

/// Checks a *claimed* isomorphism witness instead of searching for one:
/// `map[l.index()]` must be a bijection from `a`'s labels onto `b`'s that
/// carries `a`'s node and edge constraints exactly onto `b`'s.
///
/// This is the certificate-replay hook: an independent verifier re-checks a
/// recorded witness in polynomial time, without re-running the isomorphism
/// search that produced it.
pub fn check_isomorphism(a: &Problem, b: &Problem, map: &[Label]) -> bool {
    let n = a.alphabet().len();
    if map.len() != n || b.alphabet().len() != n {
        return false;
    }
    let mut used = vec![false; n];
    for &t in map {
        if t.index() >= n || used[t.index()] {
            return false;
        }
        used[t.index()] = true;
    }
    let mapping: Vec<Option<Label>> = map.iter().map(|&l| Some(l)).collect();
    check_full(a, b, &mapping)
}

/// A 64-bit digest of a problem's isomorphism invariants: label count,
/// arities, configuration counts, and the sorted
/// [`refined_label_hashes`]. Isomorphic problems always agree on it;
/// distinct problems may collide, so any index keyed by it must resolve
/// collisions with [`are_isomorphic`]. Much cheaper than [`dedup_key`] —
/// a few refinement passes, no permutation enumeration. The bound
/// search's fingerprint interning and process-wide step memo are built on
/// it.
pub fn fingerprint(p: &Problem) -> u64 {
    let mut h = fold(0xCBF2_9CE4_8422_2325u64, p.alphabet().len() as u64);
    h = fold(h, p.delta() as u64);
    h = fold(h, p.edge().arity() as u64);
    h = fold(h, ((p.node().len() as u64) << 32) | p.edge().len() as u64);
    let mut hashes = refined_label_hashes(p);
    hashes.sort_unstable();
    for w in hashes {
        h = fold(h, w);
    }
    h
}

/// The sorted multiset of per-label refined invariant hashes
/// ([`refined_label_hashes`]): an isomorphism *invariant* (isomorphic
/// problems always agree on it) that is much cheaper than
/// [`canonical_key`] — a few refinement passes over the constraints
/// instead of a permutation enumeration. Not *complete*: distinct problems
/// can collide, so a cache keyed by this profile must resolve collisions
/// with [`are_isomorphic`]. This is what makes canonical-form dedup
/// affordable for the large, symmetric alphabets the speedup transform
/// produces; the refinement keeps the collision chains (and with them the
/// isomorphism-resolution scans) short.
pub fn signature_profile(p: &Problem) -> Vec<u64> {
    let mut hashes = refined_label_hashes(p);
    hashes.sort_unstable();
    hashes
}

/// Alphabet size up to which [`dedup_key`] uses the exact
/// [`canonical_key`]. The canonical enumeration visits every
/// signature-respecting renaming — factorial in the largest
/// same-signature label group — so 9 fully symmetric labels (≤ 9!
/// renamings) is the largest size that stays sub-millisecond; measured
/// cost at 16 symmetric labels is already tens of milliseconds per key.
const CANON_MAX_LABELS: usize = 9;

/// An isomorphism-dedup key: exact canonical form for small alphabets, the
/// cheap [`signature_profile`] invariant above [`CANON_MAX_LABELS`].
///
/// Two isomorphic problems always produce equal keys. For
/// [`DedupKey::Exact`] the converse holds too; [`DedupKey::Coarse`] keys
/// may collide across non-isomorphic problems, so a map keyed by
/// `DedupKey` must resolve coarse-bucket collisions with
/// [`are_isomorphic`] (see [`DedupKey::is_exact`]). Problems with
/// different label counts never share a key of either kind.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DedupKey {
    /// Exact: equal keys ⇔ isomorphic problems.
    Exact(CanonicalKey),
    /// Invariant only: isomorphic problems collide for sure, distinct
    /// problems may too.
    Coarse {
        /// Node-constraint arity (Δ).
        delta: usize,
        /// Edge-constraint arity.
        arity: usize,
        /// `(|node|, |edge|)` configuration counts.
        sizes: (usize, usize),
        /// Sorted per-label refined-invariant hash multiset.
        profile: Vec<u64>,
    },
}

impl DedupKey {
    /// Whether equal keys imply isomorphism (no collision check needed).
    pub fn is_exact(&self) -> bool {
        matches!(self, DedupKey::Exact(_))
    }
}

/// Computes the [`DedupKey`] of a problem: the affordable way to key a
/// problems-up-to-isomorphism map at any alphabet size.
pub fn dedup_key(p: &Problem) -> DedupKey {
    if p.alphabet().len() <= CANON_MAX_LABELS {
        DedupKey::Exact(canonical_key(p))
    } else {
        DedupKey::Coarse {
            delta: p.delta(),
            arity: p.edge().arity(),
            sizes: (p.node().len(), p.edge().len()),
            profile: signature_profile(p),
        }
    }
}

/// A canonical key for a problem, equal for isomorphic problems.
///
/// Computed by trying all signature-respecting renamings and keeping the
/// lexicographically smallest `(node, edge)` image; intended for the small
/// alphabets the generic engine produces. Complexity is bounded by the
/// isomorphism search over the problem against itself.
pub fn canonical_key(p: &Problem) -> CanonicalKey {
    let n = p.alphabet().len();
    // Refined invariant classes, each assigned a contiguous range of
    // *canonical slots* ordered by the (label-name-independent) class hash
    // value. A renaming may map a label onto any free slot of its class's
    // range — and nothing else. Anchoring targets to invariant slot ranks
    // (rather than to same-class *source indices*) is what makes the
    // minimum image independent of the input labeling: isomorphic problems
    // enumerate renamings onto the same canonical slot layout, so their
    // minima coincide. Refinement keeps the classes (and with them the
    // factorial enumeration) small; fully-refined problems admit exactly
    // one renaming.
    let hashes: Vec<u64> = refined_label_hashes(p);
    let mut class_values: Vec<u64> = hashes.clone();
    class_values.sort_unstable();
    class_values.dedup();
    // slots[l] = the canonical slot range of l's class.
    let class_start = |h: u64| -> usize {
        let rank = class_values.binary_search(&h).expect("hash of an existing class");
        hashes.iter().filter(|&&x| class_values.binary_search(&x).unwrap() < rank).count()
    };
    let slots: Vec<(usize, usize)> = hashes
        .iter()
        .map(|&h| {
            let start = class_start(h);
            let size = hashes.iter().filter(|&&x| x == h).count();
            (start, start + size)
        })
        .collect();
    let mut best: Option<CanonicalKey> = None;
    let mut perm: Vec<usize> = (0..n).collect();
    // Enumerate class-respecting renamings onto canonical slots.
    fn rec(
        p: &Problem,
        slots: &[(usize, usize)],
        pos: usize,
        used: &mut Vec<bool>,
        perm: &mut Vec<usize>,
        best: &mut Option<CanonicalKey>,
    ) {
        let n = slots.len();
        if pos == n {
            let key = render(p, perm);
            match best {
                None => *best = Some(key),
                Some(b) => {
                    if key < *b {
                        *b = key;
                    }
                }
            }
            return;
        }
        let (lo, hi) = slots[pos];
        for tgt in lo..hi {
            if !used[tgt] {
                used[tgt] = true;
                perm[pos] = tgt;
                rec(p, slots, pos + 1, used, perm, best);
                used[tgt] = false;
            }
        }
    }
    fn render(p: &Problem, perm: &[usize]) -> CanonicalKey {
        let conv = |c: &Constraint| -> Vec<Vec<usize>> {
            let mut v: Vec<Vec<usize>> = c
                .iter()
                .map(|cfg| {
                    let mut labels: Vec<usize> =
                        cfg.labels().iter().map(|l| perm[l.index()]).collect();
                    labels.sort_unstable();
                    labels
                })
                .collect();
            v.sort();
            v
        };
        (conv(p.node()), conv(p.edge()))
    }
    let mut used = vec![false; n];
    rec(p, &slots, 0, &mut used, &mut perm, &mut best);
    best.expect("every label has a non-empty slot range")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renamed_problems_are_isomorphic() {
        let p = Problem::parse("name: p\nnode: 1 0 0\nedge: 0 0 | 0 1").unwrap();
        let q = Problem::parse("name: q\nnode: B A A\nedge: A A | B A").unwrap();
        let m = isomorphism(&p, &q).unwrap();
        // 0 must map to A, 1 to B (signatures differ).
        let zero = p.alphabet().require("0").unwrap();
        assert_eq!(q.alphabet().name(m[zero.index()]), "A");
        assert!(are_isomorphic(&q, &p));
    }

    #[test]
    fn different_structure_not_isomorphic() {
        let p = Problem::parse("name: p\nnode: 1 0 0\nedge: 0 0 | 0 1").unwrap();
        let q = Problem::parse("name: q\nnode: B A A\nedge: A A | B B").unwrap();
        assert!(!are_isomorphic(&p, &q));
        let r = Problem::parse("name: r\nnode: 1 0\nedge: 0 0 | 0 1").unwrap();
        assert!(!are_isomorphic(&p, &r)); // Δ differs
    }

    #[test]
    fn symmetric_labels_need_search() {
        // 3-coloring: all three labels have identical signatures.
        let p = Problem::parse("name: p\nnode: 1 1 | 2 2 | 3 3\nedge: 1 2 | 1 3 | 2 3").unwrap();
        let q = Problem::parse("name: q\nnode: c c | a a | b b\nedge: b a | c a | b c").unwrap();
        assert!(are_isomorphic(&p, &q));
    }

    #[test]
    fn canonical_key_invariant_under_renaming() {
        let p = Problem::parse("name: p\nnode: 1 0 0\nedge: 0 0 | 0 1").unwrap();
        let q = Problem::parse("name: q\nnode: B A A\nedge: A A | B A").unwrap();
        assert_eq!(canonical_key(&p), canonical_key(&q));
        let r = Problem::parse("name: r\nnode: B A A\nedge: A A | B B").unwrap();
        assert_ne!(canonical_key(&p), canonical_key(&r));
    }

    #[test]
    fn dedup_key_invariant_under_renaming_in_both_regimes() {
        // Small alphabet: exact regime.
        let p = Problem::parse("name: p\nnode: 1 0 0\nedge: 0 0 | 0 1").unwrap();
        let q = Problem::parse("name: q\nnode: B A A\nedge: A A | B A").unwrap();
        assert!(dedup_key(&p).is_exact());
        assert_eq!(dedup_key(&p), dedup_key(&q));
        // Large alphabet (> CANON_MAX_LABELS): coarse regime still matches
        // across renamings, and differs across label counts.
        let names: Vec<String> = (0..12).map(|i| format!("l{i}")).collect();
        let mk = |names: &[String]| {
            let node = names.chunks(2).map(|c| c.join(" ")).collect::<Vec<_>>().join(" | ");
            let edge = names.windows(2).map(|c| c.join(" ")).collect::<Vec<_>>().join(" | ");
            Problem::parse(&format!("name: big\nnode: {node}\nedge: {edge}")).unwrap()
        };
        let renamed: Vec<String> = (0..12).map(|i| format!("x{i}")).collect();
        let big = mk(&names);
        assert!(!dedup_key(&big).is_exact());
        assert_eq!(dedup_key(&big), dedup_key(&mk(&renamed)));
        assert_ne!(dedup_key(&big), dedup_key(&p));
    }

    #[test]
    fn iso_is_reflexive() {
        let p = Problem::parse("name: p\nnode: 1 1 | 2 2 | 3 3\nedge: 1 2 | 1 3 | 2 3").unwrap();
        assert!(are_isomorphic(&p, &p));
    }
}
