//! Fixed-capacity bitsets over labels.
//!
//! The speedup transform's derived labels denote *sets* of current labels
//! (the paper's `2^{f(Δ)}`). [`LabelSet`] is a 256-bit, `Copy`, allocation
//! free bitset keyed by [`Label`] indices, which keeps the inner loops of
//! the merge-closure engine branch-light.

use crate::label::Label;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{BitAnd, BitOr, Sub};

/// Maximum number of labels an alphabet may hold.
///
/// 256 is comfortably above anything a simplified round-elimination sequence
/// produces for the problems in this repository; hitting the cap raises
/// [`crate::error::Error::AlphabetOverflow`] instead of silently truncating.
pub const MAX_LABELS: usize = 256;

const WORDS: usize = MAX_LABELS / 64;

/// A set of labels, stored as a 256-bit mask.
///
/// ```
/// use roundelim_core::label::Label;
/// use roundelim_core::labelset::LabelSet;
/// let mut s = LabelSet::empty();
/// s.insert(Label::from_index(3));
/// s.insert(Label::from_index(200));
/// assert!(s.contains(Label::from_index(3)));
/// assert_eq!(s.len(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LabelSet {
    words: [u64; WORDS],
}

impl LabelSet {
    /// The empty set.
    #[inline]
    pub const fn empty() -> LabelSet {
        LabelSet { words: [0; WORDS] }
    }

    /// The set `{0, 1, …, n-1}` of the first `n` label indices.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_LABELS` (internal invariant: alphabets never exceed
    /// the cap).
    pub fn first_n(n: usize) -> LabelSet {
        assert!(n <= MAX_LABELS, "LabelSet::first_n out of range");
        let mut s = LabelSet::empty();
        for i in 0..n {
            s.insert(Label::from_index(i));
        }
        s
    }

    /// Builds a set from an iterator of labels.
    pub fn from_labels<I: IntoIterator<Item = Label>>(iter: I) -> LabelSet {
        let mut s = LabelSet::empty();
        for l in iter {
            s.insert(l);
        }
        s
    }

    /// The singleton set `{l}`.
    #[inline]
    pub fn singleton(l: Label) -> LabelSet {
        let mut s = LabelSet::empty();
        s.insert(l);
        s
    }

    /// Inserts a label. Returns whether it was newly inserted.
    #[inline]
    pub fn insert(&mut self, l: Label) -> bool {
        let (w, b) = (l.index() / 64, l.index() % 64);
        let newly = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        newly
    }

    /// Removes a label. Returns whether it was present.
    #[inline]
    pub fn remove(&mut self, l: Label) -> bool {
        let (w, b) = (l.index() / 64, l.index() % 64);
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, l: Label) -> bool {
        let (w, b) = (l.index() / 64, l.index() % 64);
        self.words[w] & (1 << b) != 0
    }

    /// Number of labels in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether `self ⊆ other`.
    #[inline]
    pub fn is_subset(&self, other: &LabelSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & !b == 0)
    }

    /// Whether `self ⊂ other` strictly.
    #[inline]
    pub fn is_proper_subset(&self, other: &LabelSet) -> bool {
        self != other && self.is_subset(other)
    }

    /// Whether the two sets intersect.
    #[inline]
    pub fn intersects(&self, other: &LabelSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Set union.
    #[inline]
    pub fn union(&self, other: &LabelSet) -> LabelSet {
        let mut w = [0u64; WORDS];
        for (w, (a, b)) in w.iter_mut().zip(self.words.iter().zip(&other.words)) {
            *w = a | b;
        }
        LabelSet { words: w }
    }

    /// Set intersection.
    #[inline]
    pub fn intersection(&self, other: &LabelSet) -> LabelSet {
        let mut w = [0u64; WORDS];
        for (w, (a, b)) in w.iter_mut().zip(self.words.iter().zip(&other.words)) {
            *w = a & b;
        }
        LabelSet { words: w }
    }

    /// Set difference `self \ other`.
    #[inline]
    pub fn difference(&self, other: &LabelSet) -> LabelSet {
        let mut w = [0u64; WORDS];
        for (w, (a, b)) in w.iter_mut().zip(self.words.iter().zip(&other.words)) {
            *w = a & !b;
        }
        LabelSet { words: w }
    }

    /// The raw backing words (crate-internal; lets the line pool hash sets
    /// without going through the generic `Hash` machinery).
    #[inline]
    pub(crate) fn words(&self) -> &[u64; WORDS] {
        &self.words
    }

    /// Iterates over the labels in increasing index order.
    pub fn iter(&self) -> Iter {
        Iter { set: *self, word: 0, mask: self.words[0] }
    }

    /// The smallest label in the set, if any. (Named to avoid clashing with `Ord::min`.)
    pub fn min_label(&self) -> Option<Label> {
        self.iter().next()
    }

    /// The smallest label with index ≥ `from`, if any.
    ///
    /// This is the branch-light cursor step of the trie engine's
    /// label-ordered DFS (see [`crate::trie::ConfigTrie`]): two shifts and
    /// a trailing-zeros count per word, no iteration over set members.
    #[inline]
    pub fn min_label_at_least(&self, from: usize) -> Option<Label> {
        if from >= MAX_LABELS {
            return None;
        }
        let (mut w, b) = (from / 64, from % 64);
        // Mask off bits below `from` in its word, then scan upward.
        let mut word = self.words[w] & (!0u64 << b);
        loop {
            if word != 0 {
                return Some(Label::from_index(w * 64 + word.trailing_zeros() as usize));
            }
            w += 1;
            if w >= WORDS {
                return None;
            }
            word = self.words[w];
        }
    }
}

impl Default for LabelSet {
    fn default() -> Self {
        LabelSet::empty()
    }
}

impl fmt::Debug for LabelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, l) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", l.index())?;
        }
        write!(f, "}}")
    }
}

impl BitOr for LabelSet {
    type Output = LabelSet;
    fn bitor(self, rhs: LabelSet) -> LabelSet {
        self.union(&rhs)
    }
}

impl BitAnd for LabelSet {
    type Output = LabelSet;
    fn bitand(self, rhs: LabelSet) -> LabelSet {
        self.intersection(&rhs)
    }
}

impl Sub for LabelSet {
    type Output = LabelSet;
    fn sub(self, rhs: LabelSet) -> LabelSet {
        self.difference(&rhs)
    }
}

impl FromIterator<Label> for LabelSet {
    fn from_iter<I: IntoIterator<Item = Label>>(iter: I) -> LabelSet {
        LabelSet::from_labels(iter)
    }
}

impl Extend<Label> for LabelSet {
    fn extend<I: IntoIterator<Item = Label>>(&mut self, iter: I) {
        for l in iter {
            self.insert(l);
        }
    }
}

impl IntoIterator for LabelSet {
    type Item = Label;
    type IntoIter = Iter;
    fn into_iter(self) -> Iter {
        self.iter()
    }
}

impl IntoIterator for &LabelSet {
    type Item = Label;
    type IntoIter = Iter;
    fn into_iter(self) -> Iter {
        self.iter()
    }
}

/// Iterator over the labels of a [`LabelSet`] in increasing order.
#[derive(Debug, Clone)]
pub struct Iter {
    set: LabelSet,
    word: usize,
    mask: u64,
}

impl Iterator for Iter {
    type Item = Label;

    fn next(&mut self) -> Option<Label> {
        loop {
            if self.mask != 0 {
                let b = self.mask.trailing_zeros() as usize;
                self.mask &= self.mask - 1;
                return Some(Label::from_index(self.word * 64 + b));
            }
            self.word += 1;
            if self.word >= WORDS {
                return None;
            }
            self.mask = self.set.words[self.word];
        }
    }
}

/// Enumerates all non-empty subsets of `universe`.
///
/// Used by the *unsimplified* Theorem-1 transform and by brute-force test
/// oracles; exponential in `universe.len()`, so callers bound the universe.
pub fn nonempty_subsets(universe: &LabelSet) -> Vec<LabelSet> {
    let elems: Vec<Label> = universe.iter().collect();
    let n = elems.len();
    assert!(n <= 24, "nonempty_subsets is for small universes only");
    let mut out = Vec::with_capacity((1usize << n) - 1);
    for mask in 1usize..(1 << n) {
        let mut s = LabelSet::empty();
        for (i, &l) in elems.iter().enumerate() {
            if mask & (1 << i) != 0 {
                s.insert(l);
            }
        }
        out.push(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: usize) -> Label {
        Label::from_index(i)
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = LabelSet::empty();
        assert!(s.insert(l(7)));
        assert!(!s.insert(l(7)));
        assert!(s.contains(l(7)));
        assert!(s.insert(l(255)));
        assert_eq!(s.len(), 2);
        assert!(s.remove(l(7)));
        assert!(!s.remove(l(7)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn subset_relations() {
        let a = LabelSet::from_labels([l(1), l(2)]);
        let b = LabelSet::from_labels([l(1), l(2), l(3)]);
        assert!(a.is_subset(&b));
        assert!(a.is_proper_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_subset(&a));
        assert!(!a.is_proper_subset(&a));
    }

    #[test]
    fn boolean_ops() {
        let a = LabelSet::from_labels([l(0), l(64), l(128)]);
        let b = LabelSet::from_labels([l(64), l(200)]);
        assert_eq!(a.union(&b).len(), 4);
        assert_eq!(a.intersection(&b).len(), 1);
        assert_eq!(a.difference(&b).len(), 2);
        assert!(a.intersects(&b));
        assert_eq!((a | b).len(), 4);
        assert_eq!((a & b).len(), 1);
        assert_eq!((a - b).len(), 2);
    }

    #[test]
    fn iter_order_spans_words() {
        let s = LabelSet::from_labels([l(200), l(3), l(65)]);
        let v: Vec<usize> = s.iter().map(|x| x.index()).collect();
        assert_eq!(v, vec![3, 65, 200]);
        assert_eq!(s.min_label(), Some(l(3)));
    }

    #[test]
    fn min_label_at_least_scans_forward() {
        let s = LabelSet::from_labels([l(3), l(65), l(200)]);
        assert_eq!(s.min_label_at_least(0), Some(l(3)));
        assert_eq!(s.min_label_at_least(3), Some(l(3)));
        assert_eq!(s.min_label_at_least(4), Some(l(65)));
        assert_eq!(s.min_label_at_least(65), Some(l(65)));
        assert_eq!(s.min_label_at_least(66), Some(l(200)));
        assert_eq!(s.min_label_at_least(201), None);
        assert_eq!(s.min_label_at_least(400), None);
        assert_eq!(LabelSet::empty().min_label_at_least(0), None);
    }

    #[test]
    fn first_n_and_collect() {
        let s = LabelSet::first_n(5);
        assert_eq!(s.len(), 5);
        let t: LabelSet = (0..5).map(l).collect();
        assert_eq!(s, t);
    }

    #[test]
    fn nonempty_subsets_counts() {
        let u = LabelSet::first_n(4);
        let subs = nonempty_subsets(&u);
        assert_eq!(subs.len(), 15);
        // all distinct
        let mut sorted = subs.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 15);
    }

    #[test]
    fn debug_is_nonempty() {
        assert_eq!(format!("{:?}", LabelSet::empty()), "{}");
        assert_eq!(format!("{:?}", LabelSet::from_labels([l(1), l(9)])), "{1,9}");
    }
}
