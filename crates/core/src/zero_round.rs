//! Zero-round solvability deciders.
//!
//! The endgame of every lower-bound argument in the paper (§2.1): iterate
//! the speedup until the current problem is solvable in 0 rounds; the
//! number of steps is then (a lower bound on) the complexity of the
//! original problem. These deciders characterize 0-round solvability in the
//! port-numbering model for the two input regimes used by the paper.
//!
//! ## Plain port numbering (no inputs)
//!
//! With no symmetry-breaking input, every node of a Δ-regular graph has the
//! same radius-0 view, so a deterministic 0-round algorithm assigns one
//! fixed label per port: a single configuration `y₁, …, y_Δ`. The adversary
//! controls the port alignment across each edge (including connecting port
//! i of one node to port i of another), so correctness requires
//! `{y_i, y_j} ∈ g` for **all** i, j — including i = j, since two adjacent
//! nodes may use the same port for their shared edge.
//!
//! ## Port numbering + input edge orientations
//!
//! With consistent edge orientations as input (the regime Theorem 2 needs),
//! a node's radius-0 view is the orientation pattern of its ports; by
//! worst-case port renumbering only the *indegree* k matters, and the
//! algorithm may choose, for each k it can observe, a multiset of labels
//! for its in-ports and one for its out-ports. The adversary wires any
//! out-port of any view to any in-port of any view.

use crate::config::Config;
use crate::label::Label;
use crate::problem::Problem;

/// A witness that a problem is 0-round solvable in the plain PN model: the
/// single configuration every node outputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZeroRoundWitness {
    /// The node configuration (one label per port).
    pub config: Config,
}

/// Decides 0-round solvability in the plain port-numbering model (no
/// inputs), returning a witness configuration if one exists.
///
/// A configuration works iff it is in `h` and all its label pairs
/// (unordered, with repetition) are in `g`.
///
/// ```
/// use roundelim_core::problem::Problem;
/// use roundelim_core::zero_round::zero_round_pn;
/// // Sinkless orientation is not 0-round solvable …
/// let so = Problem::parse("name: so\nnode: O O O | O O I | O I I\nedge: O I").unwrap();
/// assert!(zero_round_pn(&so).is_none());
/// // … but "everyone outputs X" is.
/// let triv = Problem::parse("name: t\nnode: X X X\nedge: X X").unwrap();
/// assert!(zero_round_pn(&triv).is_some());
/// ```
pub fn zero_round_pn(p: &Problem) -> Option<ZeroRoundWitness> {
    'cfg: for cfg in p.node().iter() {
        let support: Vec<Label> = cfg.support().iter().collect();
        for (i, &a) in support.iter().enumerate() {
            for &b in &support[i..] {
                if !p.edge_ok(a, b) {
                    continue 'cfg;
                }
            }
        }
        return Some(ZeroRoundWitness { config: cfg.clone() });
    }
    None
}

/// A 0-round algorithm in the orientation-input regime: for each indegree
/// `k` (0 ≤ k ≤ Δ) a split of one node configuration into labels for
/// in-ports and labels for out-ports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrientedZeroRoundWitness {
    /// `plans[k] = (labels on the k in-ports, labels on the Δ-k out-ports)`.
    pub plans: Vec<(Vec<Label>, Vec<Label>)>,
}

/// Decides 0-round solvability in the PN model **with input edge
/// orientations**, returning the per-indegree output plan if one exists.
///
/// Correctness conditions encoded:
/// * for every indegree `k`, `in_labels ∪ out_labels ∈ h`;
/// * every label placed on *any* out-port is `g`-compatible with every
///   label placed on *any* in-port (of any view, including the same view):
///   the adversary may wire any out-port to any in-port of any other node.
///
/// The graph class contains all orientations, so **all** indegrees
/// 0, …, Δ occur and each needs a plan. (Indegree 0 has only out-ports and
/// indegree Δ only in-ports; their cross conditions still apply.)
///
/// This decider searches over all splits of all node configurations per
/// indegree, which is exponential in Δ in the worst case; it is intended
/// for the small instantiated problems the generic engine handles.
pub fn zero_round_oriented(p: &Problem) -> Option<OrientedZeroRoundWitness> {
    let delta = p.delta();
    // Enumerate candidate splits per indegree: (multiset_in, multiset_out).
    let mut options: Vec<Vec<(Vec<Label>, Vec<Label>)>> = Vec::with_capacity(delta + 1);
    for k in 0..=delta {
        let mut opts = Vec::new();
        for cfg in p.node().iter() {
            splits_of(cfg, k, &mut opts);
        }
        if opts.is_empty() {
            return None;
        }
        options.push(opts);
    }
    // Choose one split per indegree so that all cross pairs are compatible.
    // Track chosen in-label set and out-label set globally.
    let mut chosen: Vec<usize> = Vec::with_capacity(delta + 1);
    if search(p, &options, 0, &mut chosen) {
        let plans = chosen.iter().enumerate().map(|(k, &ix)| options[k][ix].clone()).collect();
        return Some(OrientedZeroRoundWitness { plans });
    }
    None
}

fn splits_of(cfg: &Config, k: usize, out: &mut Vec<(Vec<Label>, Vec<Label>)>) {
    let labels = cfg.labels();
    let n = labels.len();
    if k > n {
        return;
    }
    // Enumerate k-subsets of positions; dedupe identical splits.
    let mut seen = std::collections::HashSet::new();
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        let mut ins = Vec::with_capacity(k);
        let mut outs = Vec::with_capacity(n - k);
        let mut which = vec![false; n];
        for &i in &idx {
            which[i] = true;
        }
        for i in 0..n {
            if which[i] {
                ins.push(labels[i]);
            } else {
                outs.push(labels[i]);
            }
        }
        ins.sort_unstable();
        outs.sort_unstable();
        if seen.insert((ins.clone(), outs.clone())) {
            out.push((ins, outs));
        }
        // next combination
        if k == 0 {
            break;
        }
        let mut i = k;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
        }
        if idx[i] == i + n - k {
            return;
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

fn search(
    p: &Problem,
    options: &[Vec<(Vec<Label>, Vec<Label>)>],
    k: usize,
    chosen: &mut Vec<usize>,
) -> bool {
    if k == options.len() {
        return true;
    }
    'opt: for (ix, (ins, outs)) in options[k].iter().enumerate() {
        // Cross-compatibility against previously chosen views and itself.
        for (k2, &ix2) in chosen.iter().enumerate() {
            let (ins2, outs2) = &options[k2][ix2];
            if !cross_ok(p, outs, ins2) || !cross_ok(p, outs2, ins) {
                continue 'opt;
            }
        }
        if !cross_ok(p, outs, ins) {
            continue 'opt;
        }
        chosen.push(ix);
        if search(p, options, k + 1, chosen) {
            return true;
        }
        chosen.pop();
    }
    false
}

fn cross_ok(p: &Problem, outs: &[Label], ins: &[Label]) -> bool {
    outs.iter().all(|&o| ins.iter().all(|&i| p.edge_ok(o, i)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_problem_zero_round_both_models() {
        let p = Problem::parse("name: t\nnode: X X X\nedge: X X").unwrap();
        assert!(zero_round_pn(&p).is_some());
        assert!(zero_round_oriented(&p).is_some());
    }

    #[test]
    fn sinkless_orientation_not_zero_round() {
        let so = Problem::parse("name: so\nnode: O O O | O O I | O I I\nedge: O I").unwrap();
        assert!(zero_round_pn(&so).is_none());
        // Even with input orientations it is not 0-round solvable: every
        // edge must carry {O,I}, so either no view puts O on an in-port
        // (then the all-in "sink" view has no O, violating h) or no view
        // puts O on an out-port (then the all-out "source" view has no O).
        assert!(zero_round_oriented(&so).is_none());
    }

    #[test]
    fn sinkless_coloring_not_zero_round_even_oriented() {
        let sc = Problem::parse("name: sc\nnode: 1 0 0\nedge: 0 0 | 0 1").unwrap();
        assert!(zero_round_pn(&sc).is_none());
        assert!(zero_round_oriented(&sc).is_none());
    }

    #[test]
    fn coloring_not_zero_round() {
        let c3 =
            Problem::parse("name: 3col\nnode: 1 1 | 2 2 | 3 3\nedge: 1 2 | 1 3 | 2 3").unwrap();
        assert!(zero_round_pn(&c3).is_none());
        // Proper coloring needs adjacent nodes to differ; with orientations
        // the indegree-1 view can color by orientation? No: two indegree-1
        // nodes can be adjacent (path of 3). Still unsolvable.
        assert!(zero_round_oriented(&c3).is_none());
    }

    #[test]
    fn self_pair_required_in_pn_model() {
        // h = {A,B}, g = {A,B} only: the pair {A,A} missing, so the single
        // view cannot avoid an A-A edge under adversarial alignment.
        let p = Problem::parse("name: t\nnode: A B\nedge: A B").unwrap();
        assert!(zero_round_pn(&p).is_none());
        // With orientations: indegree-1 view can put A on in-port, B on
        // out-port: every edge pairs an out-label (B …) with an in-label
        // (A …) — B-A ∈ g, and indegree-0/2 views exist too:
        // indegree 0: both ports out: labels {A,B} on out-ports means A
        // pairs against in-labels … A(out) meets A(in): {A,A} ∉ g. The
        // search decides; just assert it does not panic and is consistent.
        let res = zero_round_oriented(&p);
        if let Some(w) = res {
            // verify the witness actually satisfies the conditions
            for (ins, outs) in &w.plans {
                let mut all = ins.clone();
                all.extend_from_slice(outs);
                assert!(p.node_ok(&all));
            }
        }
    }

    #[test]
    fn oriented_witness_is_validated() {
        // "orientation copy" problem: output I on in-ports, O on out-ports.
        let p =
            Problem::parse("name: copy\nnode: O O O | O O I | O I I | I I I\nedge: O I").unwrap();
        let w = zero_round_oriented(&p).expect("copying the orientation works");
        for (k, (ins, outs)) in w.plans.iter().enumerate() {
            assert_eq!(ins.len(), k);
            assert_eq!(outs.len(), 3 - k);
            let mut all = ins.clone();
            all.extend_from_slice(outs);
            assert!(p.node_ok(&all));
        }
    }
}
