//! Zero-round solvability deciders.
//!
//! The endgame of every lower-bound argument in the paper (§2.1): iterate
//! the speedup until the current problem is solvable in 0 rounds; the
//! number of steps is then (a lower bound on) the complexity of the
//! original problem. These deciders characterize 0-round solvability in the
//! port-numbering model for the two input regimes used by the paper.
//!
//! ## Plain port numbering (no inputs)
//!
//! With no symmetry-breaking input, every node of a Δ-regular graph has the
//! same radius-0 view, so a deterministic 0-round algorithm assigns one
//! fixed label per port: a single configuration `y₁, …, y_Δ`. The adversary
//! controls the port alignment across each edge (including connecting port
//! i of one node to port i of another), so correctness requires
//! `{y_i, y_j} ∈ g` for **all** i, j — including i = j, since two adjacent
//! nodes may use the same port for their shared edge.
//!
//! ## Port numbering + input edge orientations
//!
//! With consistent edge orientations as input (the regime Theorem 2 needs),
//! a node's radius-0 view is the orientation pattern of its ports; by
//! worst-case port renumbering only the *indegree* k matters, and the
//! algorithm may choose, for each k it can observe, a multiset of labels
//! for its in-ports and one for its out-ports. The adversary wires any
//! out-port of any view to any in-port of any view.

use crate::config::Config;
use crate::label::Label;
use crate::labelset::LabelSet;
use crate::problem::Problem;

/// A witness that a problem is 0-round solvable in the plain PN model: the
/// single configuration every node outputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZeroRoundWitness {
    /// The node configuration (one label per port).
    pub config: Config,
}

/// Decides 0-round solvability in the plain port-numbering model (no
/// inputs), returning a witness configuration if one exists.
///
/// A configuration works iff it is in `h` and all its label pairs
/// (unordered, with repetition) are in `g`.
///
/// ```
/// use roundelim_core::problem::Problem;
/// use roundelim_core::zero_round::zero_round_pn;
/// // Sinkless orientation is not 0-round solvable …
/// let so = Problem::parse("name: so\nnode: O O O | O O I | O I I\nedge: O I").unwrap();
/// assert!(zero_round_pn(&so).is_none());
/// // … but "everyone outputs X" is.
/// let triv = Problem::parse("name: t\nnode: X X X\nedge: X X").unwrap();
/// assert!(zero_round_pn(&triv).is_some());
/// ```
pub fn zero_round_pn(p: &Problem) -> Option<ZeroRoundWitness> {
    'cfg: for cfg in p.node().iter() {
        let support: Vec<Label> = cfg.support().iter().collect();
        for (i, &a) in support.iter().enumerate() {
            for &b in &support[i..] {
                if !p.edge_ok(a, b) {
                    continue 'cfg;
                }
            }
        }
        return Some(ZeroRoundWitness { config: cfg.clone() });
    }
    None
}

/// A 0-round algorithm in the orientation-input regime: for each indegree
/// `k` (0 ≤ k ≤ Δ) a split of one node configuration into labels for
/// in-ports and labels for out-ports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrientedZeroRoundWitness {
    /// `plans[k] = (labels on the k in-ports, labels on the Δ-k out-ports)`.
    pub plans: Vec<(Vec<Label>, Vec<Label>)>,
}

/// Decides 0-round solvability in the PN model **with input edge
/// orientations**, returning the per-indegree output plan if one exists.
///
/// Correctness conditions encoded:
/// * for every indegree `k`, `in_labels ∪ out_labels ∈ h`;
/// * every label placed on *any* out-port is `g`-compatible with every
///   label placed on *any* in-port (of any view, including the same view):
///   the adversary may wire any out-port to any in-port of any other node.
///
/// The graph class contains all orientations, so **all** indegrees
/// 0, …, Δ occur and each needs a plan. (Indegree 0 has only out-ports and
/// indegree Δ only in-ports; their cross conditions still apply.)
///
/// The decider reduces each candidate split to its `(in, out)` support
/// pair (Pareto-pruned per indegree) and backtracks over one view per
/// indegree with the accumulated `(in-union, compatible-set)` state
/// memoized on failure — every condition is a bitset subset test against
/// precomputed edge-compatibility rows. The automated bound search runs
/// this decider on every new canonical class, so it sits on the autolb
/// hot path.
pub fn zero_round_oriented(p: &Problem) -> Option<OrientedZeroRoundWitness> {
    let delta = p.delta();
    let n = p.alphabet().len();
    // Per-label edge-compatibility rows: every cross condition reduces to
    // bitset subset tests against these.
    let row = p.edge_rows();
    // cl(S) = labels compatible with every label of S.
    let cl = |s: &LabelSet| -> LabelSet {
        let mut out = LabelSet::first_n(n);
        for l in s.iter() {
            out = out.intersection(&row[l.index()]);
        }
        out
    };

    // Candidate views per indegree. Correctness depends only on the label
    // *supports* of a view (the adversary wires ports by label, not by
    // multiplicity), so splits are deduplicated by their (in, out) support
    // pair — one representative multiset is kept for the witness — and
    // Pareto-pruned: a view whose supports contain another view's supports
    // imposes strictly more cross constraints and can never help. The old
    // decider backtracked over every multiset split of every configuration,
    // which made 0-round checks the dominant cost of the automated bound
    // search on derived problems.
    let mut options: Vec<Vec<View>> = Vec::with_capacity(delta + 1);
    let mut splits: Vec<(Vec<Label>, Vec<Label>)> = Vec::new();
    for k in 0..=delta {
        splits.clear();
        for cfg in p.node().iter() {
            splits_of(cfg, k, &mut splits);
        }
        let mut views: Vec<View> = Vec::new();
        for (ins, outs) in splits.drain(..) {
            let ins_set = LabelSet::from_labels(ins.iter().copied());
            let outs_set = LabelSet::from_labels(outs.iter().copied());
            if views.iter().any(|v| v.ins_set == ins_set && v.outs_set == outs_set) {
                continue;
            }
            let cl_out = cl(&outs_set);
            // Self cross condition: any out-port may face any in-port of
            // the same view (the adversary can pair a node with a copy of
            // itself).
            if !ins_set.is_subset(&cl_out) {
                continue;
            }
            views.push(View { ins_set, outs_set, cl_out, ins, outs });
        }
        // Pareto prune (quadratic in the deduplicated view count); ties on
        // equal support pairs cannot occur after the dedup above.
        let dominated: Vec<bool> = (0..views.len())
            .map(|i| {
                views.iter().enumerate().any(|(j, w)| {
                    j != i
                        && w.ins_set.is_subset(&views[i].ins_set)
                        && w.outs_set.is_subset(&views[i].outs_set)
                })
            })
            .collect();
        let mut it = dominated.iter();
        views.retain(|_| !*it.next().expect("one flag per view"));
        if views.is_empty() {
            return None;
        }
        options.push(views);
    }

    // Choose one view per indegree. The only global state that matters is
    // `(ins_all, cap_in)`: the union of chosen in-supports and the set of
    // labels still usable on in-ports (compatible with every chosen
    // out-label). Adding a view requires `ins_all ⊆ cl(view.outs)` and
    // `view.ins ⊆ cap_in`; failed states are memoized, which turns the
    // exponential split search into a walk over distinct set pairs.
    let mut order: Vec<usize> = (0..=delta).collect();
    order.sort_by_key(|&k| options[k].len());
    let mut chosen: Vec<usize> = vec![usize::MAX; delta + 1];
    let mut failed: std::collections::HashSet<(usize, LabelSet, LabelSet)> =
        std::collections::HashSet::new();
    if choose(
        &options,
        &order,
        0,
        LabelSet::empty(),
        LabelSet::first_n(n),
        &mut chosen,
        &mut failed,
    ) {
        let plans = chosen
            .iter()
            .enumerate()
            .map(|(k, &ix)| (options[k][ix].ins.clone(), options[k][ix].outs.clone()))
            .collect();
        return Some(OrientedZeroRoundWitness { plans });
    }
    None
}

/// One candidate 0-round view: a split of a node configuration into
/// in-port and out-port labels, reduced to the sets the search needs.
struct View {
    /// Support of the in-port labels.
    ins_set: LabelSet,
    /// Support of the out-port labels.
    outs_set: LabelSet,
    /// Labels compatible with every out-label of this view.
    cl_out: LabelSet,
    /// Representative in-port multiset (for the witness).
    ins: Vec<Label>,
    /// Representative out-port multiset (for the witness).
    outs: Vec<Label>,
}

/// Backtracking view choice for [`zero_round_oriented`], with failure
/// memoization on the `(level, ins_all, cap_in)` state.
fn choose(
    options: &[Vec<View>],
    order: &[usize],
    level: usize,
    ins_all: LabelSet,
    cap_in: LabelSet,
    chosen: &mut [usize],
    failed: &mut std::collections::HashSet<(usize, LabelSet, LabelSet)>,
) -> bool {
    if level == order.len() {
        return true;
    }
    if failed.contains(&(level, ins_all, cap_in)) {
        return false;
    }
    let k = order[level];
    for (ix, v) in options[k].iter().enumerate() {
        if v.ins_set.is_subset(&cap_in) && ins_all.is_subset(&v.cl_out) {
            chosen[k] = ix;
            let ins2 = ins_all.union(&v.ins_set);
            let cap2 = cap_in.intersection(&v.cl_out);
            if choose(options, order, level + 1, ins2, cap2, chosen, failed) {
                return true;
            }
            chosen[k] = usize::MAX;
        }
    }
    failed.insert((level, ins_all, cap_in));
    false
}

fn splits_of(cfg: &Config, k: usize, out: &mut Vec<(Vec<Label>, Vec<Label>)>) {
    let labels = cfg.labels();
    let n = labels.len();
    if k > n {
        return;
    }
    // Enumerate k-subsets of positions; dedupe identical splits.
    let mut seen = std::collections::HashSet::new();
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        let mut ins = Vec::with_capacity(k);
        let mut outs = Vec::with_capacity(n - k);
        let mut which = vec![false; n];
        for &i in &idx {
            which[i] = true;
        }
        for i in 0..n {
            if which[i] {
                ins.push(labels[i]);
            } else {
                outs.push(labels[i]);
            }
        }
        ins.sort_unstable();
        outs.sort_unstable();
        if seen.insert((ins.clone(), outs.clone())) {
            out.push((ins, outs));
        }
        // next combination
        if k == 0 {
            break;
        }
        let mut i = k;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
        }
        if idx[i] == i + n - k {
            return;
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_problem_zero_round_both_models() {
        let p = Problem::parse("name: t\nnode: X X X\nedge: X X").unwrap();
        assert!(zero_round_pn(&p).is_some());
        assert!(zero_round_oriented(&p).is_some());
    }

    #[test]
    fn sinkless_orientation_not_zero_round() {
        let so = Problem::parse("name: so\nnode: O O O | O O I | O I I\nedge: O I").unwrap();
        assert!(zero_round_pn(&so).is_none());
        // Even with input orientations it is not 0-round solvable: every
        // edge must carry {O,I}, so either no view puts O on an in-port
        // (then the all-in "sink" view has no O, violating h) or no view
        // puts O on an out-port (then the all-out "source" view has no O).
        assert!(zero_round_oriented(&so).is_none());
    }

    #[test]
    fn sinkless_coloring_not_zero_round_even_oriented() {
        let sc = Problem::parse("name: sc\nnode: 1 0 0\nedge: 0 0 | 0 1").unwrap();
        assert!(zero_round_pn(&sc).is_none());
        assert!(zero_round_oriented(&sc).is_none());
    }

    #[test]
    fn coloring_not_zero_round() {
        let c3 =
            Problem::parse("name: 3col\nnode: 1 1 | 2 2 | 3 3\nedge: 1 2 | 1 3 | 2 3").unwrap();
        assert!(zero_round_pn(&c3).is_none());
        // Proper coloring needs adjacent nodes to differ; with orientations
        // the indegree-1 view can color by orientation? No: two indegree-1
        // nodes can be adjacent (path of 3). Still unsolvable.
        assert!(zero_round_oriented(&c3).is_none());
    }

    #[test]
    fn self_pair_required_in_pn_model() {
        // h = {A,B}, g = {A,B} only: the pair {A,A} missing, so the single
        // view cannot avoid an A-A edge under adversarial alignment.
        let p = Problem::parse("name: t\nnode: A B\nedge: A B").unwrap();
        assert!(zero_round_pn(&p).is_none());
        // With orientations: indegree-1 view can put A on in-port, B on
        // out-port: every edge pairs an out-label (B …) with an in-label
        // (A …) — B-A ∈ g, and indegree-0/2 views exist too:
        // indegree 0: both ports out: labels {A,B} on out-ports means A
        // pairs against in-labels … A(out) meets A(in): {A,A} ∉ g. The
        // search decides; just assert it does not panic and is consistent.
        let res = zero_round_oriented(&p);
        if let Some(w) = res {
            // verify the witness actually satisfies the conditions
            for (ins, outs) in &w.plans {
                let mut all = ins.clone();
                all.extend_from_slice(outs);
                assert!(p.node_ok(&all));
            }
        }
    }

    #[test]
    fn oriented_witness_is_validated() {
        // "orientation copy" problem: output I on in-ports, O on out-ports.
        let p =
            Problem::parse("name: copy\nnode: O O O | O O I | O I I | I I I\nedge: O I").unwrap();
        let w = zero_round_oriented(&p).expect("copying the orientation works");
        for (k, (ins, outs)) in w.plans.iter().enumerate() {
            assert_eq!(ins.len(), k);
            assert_eq!(outs.len(), 3 - k);
            let mut all = ins.clone();
            all.extend_from_slice(outs);
            assert!(p.node_ok(&all));
        }
    }
}
