//! Text format for problems.
//!
//! The grammar is deliberately close to how the paper writes problem
//! descriptions:
//!
//! ```text
//! # comment
//! name: weak-2-coloring          (optional)
//! labels: 1→ 1• 2→ 2•            (optional: fixes the alphabet order)
//! node: 1→ 1•^2 | 2→ 2•^2        (configurations separated by `|` …)
//! edge:
//!   1→ 2→                        (… or by newlines)
//!   1→ 2•
//! ```
//!
//! * A *configuration* is a whitespace-separated list of label tokens,
//!   each optionally with a multiplicity `label^k`.
//! * Label tokens may contain any non-whitespace characters except
//!   `|`, `^`, `:` and `#`.
//! * The alphabet is inferred from the labels that occur.
//! * `#` starts a comment until end of line.
//!
//! All node configurations must share one arity (Δ) and all edge
//! configurations must have arity 2.

use crate::config::Config;
use crate::constraint::Constraint;
use crate::error::{Error, Result};
use crate::label::{Alphabet, Label};
use crate::problem::Problem;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    None,
    Node,
    Edge,
}

/// Parses a problem from the text format; see the module docs for grammar.
///
/// # Errors
///
/// Returns [`Error::Parse`] with a line number on malformed input, and the
/// construction errors of [`Problem::new`] on inconsistent content.
pub fn parse_problem(text: &str) -> Result<Problem> {
    let mut name = String::from("unnamed");
    let mut alphabet = Alphabet::new();
    let mut node_cfgs: Vec<(usize, Vec<Label>)> = Vec::new();
    let mut edge_cfgs: Vec<(usize, Vec<Label>)> = Vec::new();
    let mut section = Section::None;

    for (lineno0, raw) in text.lines().enumerate() {
        let lineno = lineno0 + 1;
        let line = match raw.find('#') {
            Some(ix) => &raw[..ix],
            None => raw,
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (keyword, rest) = match line.split_once(':') {
            Some((k, r)) if matches!(k.trim(), "name" | "node" | "edge" | "labels") => {
                (Some(k.trim()), r.trim())
            }
            _ => (None, line),
        };
        match keyword {
            Some("name") => {
                if rest.is_empty() {
                    return Err(Error::Parse { line: lineno, reason: "empty problem name".into() });
                }
                name = rest.to_owned();
                section = Section::None;
                continue;
            }
            Some("labels") => {
                // Pre-intern the alphabet in the declared order.
                for tok in rest.split_whitespace() {
                    alphabet.intern_or_get(tok)?;
                }
                section = Section::None;
                continue;
            }
            Some("node") => section = Section::Node,
            Some("edge") => section = Section::Edge,
            Some(_) => unreachable!("matched keywords above"),
            None => {}
        }
        if rest.is_empty() {
            continue;
        }
        let target = match section {
            Section::Node => &mut node_cfgs,
            Section::Edge => &mut edge_cfgs,
            Section::None => {
                return Err(Error::Parse {
                    line: lineno,
                    reason: "configuration outside of a `node:`/`edge:` section".into(),
                })
            }
        };
        for piece in rest.split('|') {
            let piece = piece.trim();
            if piece.is_empty() {
                continue;
            }
            let labels = parse_config(piece, &mut alphabet, lineno)?;
            target.push((lineno, labels));
        }
    }

    if node_cfgs.is_empty() {
        return Err(Error::Parse { line: 0, reason: "no node configurations".into() });
    }
    if edge_cfgs.is_empty() {
        return Err(Error::Parse { line: 0, reason: "no edge configurations".into() });
    }

    let delta = node_cfgs[0].1.len();
    let mut node = Constraint::new(delta).map_err(|_| Error::Parse {
        line: node_cfgs[0].0,
        reason: "node configuration is empty".into(),
    })?;
    for (lineno, labels) in node_cfgs {
        if labels.len() != delta {
            return Err(Error::Parse {
                line: lineno,
                reason: format!(
                    "node configurations disagree on arity: expected {delta}, found {}",
                    labels.len()
                ),
            });
        }
        node.insert(Config::new(labels))?;
    }
    let mut edge = Constraint::new(2)?;
    for (lineno, labels) in edge_cfgs {
        if labels.len() != 2 {
            return Err(Error::Parse {
                line: lineno,
                reason: format!("edge configurations must have arity 2, found {}", labels.len()),
            });
        }
        edge.insert(Config::new(labels))?;
    }

    Problem::new(name, alphabet, node, edge)
}

fn parse_config(piece: &str, alphabet: &mut Alphabet, lineno: usize) -> Result<Vec<Label>> {
    let mut labels = Vec::new();
    for tok in piece.split_whitespace() {
        let (name, mult) = match tok.split_once('^') {
            None => (tok, 1usize),
            Some((n, m)) => {
                let mult: usize = m.parse().map_err(|_| Error::Parse {
                    line: lineno,
                    reason: format!("invalid multiplicity `{m}` in token `{tok}`"),
                })?;
                if mult == 0 {
                    return Err(Error::Parse {
                        line: lineno,
                        reason: format!("zero multiplicity in token `{tok}`"),
                    });
                }
                (n, mult)
            }
        };
        if name.is_empty() {
            return Err(Error::Parse {
                line: lineno,
                reason: format!("empty label in token `{tok}`"),
            });
        }
        if name.contains(':') {
            return Err(Error::Parse {
                line: lineno,
                reason: format!("label `{name}` contains `:`"),
            });
        }
        let l = alphabet.intern_or_get(name)?;
        labels.extend(std::iter::repeat_n(l, mult));
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_inline_and_multiline() {
        let p = parse_problem(
            "name: demo\n\
             node: A A B | B B B\n\
             edge:\n  A B\n  B B\n",
        )
        .unwrap();
        assert_eq!(p.name(), "demo");
        assert_eq!(p.delta(), 3);
        assert_eq!(p.node().len(), 2);
        assert_eq!(p.edge().len(), 2);
    }

    #[test]
    fn exponent_notation() {
        let p = parse_problem("node: A^3\nedge: A^2").unwrap();
        assert_eq!(p.delta(), 3);
        assert!(p.node().contains(&p.config(&["A", "A", "A"]).unwrap()));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p =
            parse_problem("# header\n\nname: c\n# mid\nnode: A A # trailing\nedge: A A\n").unwrap();
        assert_eq!(p.name(), "c");
        assert_eq!(p.delta(), 2);
    }

    #[test]
    fn unicode_labels_allowed() {
        let p = parse_problem("node: 1→ 1•^2\nedge: 1→ 1•").unwrap();
        assert!(p.alphabet().lookup("1→").is_some());
        assert!(p.alphabet().lookup("1•").is_some());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_problem("node: A A\nedge: A A A\n").unwrap_err();
        assert!(matches!(e, Error::Parse { line: 2, .. }), "{e:?}");
        let e = parse_problem("A A\n").unwrap_err();
        assert!(matches!(e, Error::Parse { line: 1, .. }), "{e:?}");
        let e = parse_problem("node: A^x\nedge: A A\n").unwrap_err();
        assert!(matches!(e, Error::Parse { line: 1, .. }), "{e:?}");
        let e = parse_problem("node: A^0\nedge: A A\n").unwrap_err();
        assert!(matches!(e, Error::Parse { line: 1, .. }), "{e:?}");
    }

    #[test]
    fn missing_sections_rejected() {
        assert!(parse_problem("node: A A\n").is_err());
        assert!(parse_problem("edge: A A\n").is_err());
        assert!(parse_problem("").is_err());
    }

    #[test]
    fn node_arity_mismatch_rejected() {
        let e = parse_problem("node: A A | A A A\nedge: A A\n").unwrap_err();
        assert!(matches!(e, Error::Parse { line: 1, .. }));
    }
}
