//! Multiset configurations.
//!
//! The paper defines a problem by two families of multisets: the edge
//! constraint `g(Δ)` (2-element multisets of labels) and the node constraint
//! `h(Δ)` (multisets of at most Δ labels). A [`Config`] is one such multiset,
//! stored as a sorted vector of labels so that equality and ordering agree
//! with multiset semantics.

use crate::error::{Error, Result};
use crate::label::{Alphabet, Label};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A multiset of labels (one configuration of a constraint).
///
/// Internally a sorted `Vec<Label>`, so two configurations are equal iff
/// they are equal as multisets:
///
/// ```
/// use roundelim_core::config::Config;
/// use roundelim_core::label::Label;
/// let l = Label::from_index;
/// assert_eq!(Config::new(vec![l(2), l(0), l(2)]), Config::new(vec![l(2), l(2), l(0)]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Config {
    labels: Vec<Label>,
}

impl Config {
    /// Creates a configuration from labels (sorted internally).
    pub fn new(mut labels: Vec<Label>) -> Config {
        labels.sort_unstable();
        Config { labels }
    }

    /// Creates a configuration from `(label, multiplicity)` groups.
    ///
    /// ```
    /// use roundelim_core::config::Config;
    /// use roundelim_core::label::Label;
    /// let l = Label::from_index;
    /// let c = Config::from_groups([(l(0), 2), (l(1), 1)]);
    /// assert_eq!(c.arity(), 3);
    /// ```
    pub fn from_groups<I: IntoIterator<Item = (Label, usize)>>(groups: I) -> Config {
        let mut labels = Vec::new();
        for (l, m) in groups {
            labels.extend(std::iter::repeat_n(l, m));
        }
        Config::new(labels)
    }

    /// Number of labels (with multiplicity).
    #[inline]
    pub fn arity(&self) -> usize {
        self.labels.len()
    }

    /// The labels in sorted order.
    #[inline]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Iterates over the labels in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = Label> + '_ {
        self.labels.iter().copied()
    }

    /// Multiplicity of `l` in this configuration.
    pub fn multiplicity(&self, l: Label) -> usize {
        // Sorted vector: count the run.
        let start = self.labels.partition_point(|&x| x < l);
        self.labels[start..].iter().take_while(|&&x| x == l).count()
    }

    /// Whether the configuration contains `l` at least once.
    pub fn contains(&self, l: Label) -> bool {
        self.labels.binary_search(&l).is_ok()
    }

    /// Groups as `(label, multiplicity)` pairs, labels strictly increasing.
    pub fn groups(&self) -> Vec<(Label, usize)> {
        let mut out: Vec<(Label, usize)> = Vec::new();
        for &l in &self.labels {
            match out.last_mut() {
                Some((last, m)) if *last == l => *m += 1,
                _ => out.push((l, 1)),
            }
        }
        out
    }

    /// The set of distinct labels.
    pub fn support(&self) -> crate::labelset::LabelSet {
        self.labels.iter().copied().collect()
    }

    /// Returns a new configuration with each label mapped through `f`.
    pub fn map<F: FnMut(Label) -> Label>(&self, mut f: F) -> Config {
        Config::new(self.labels.iter().map(|&l| f(l)).collect())
    }

    /// Returns a new configuration with `old` replaced by `new` everywhere.
    pub fn replace(&self, old: Label, new: Label) -> Config {
        self.map(|l| if l == old { new } else { l })
    }

    /// Renders the configuration with names from `alphabet`, using exponent
    /// notation for repeated labels (`A^3 B`).
    pub fn display<'a>(&'a self, alphabet: &'a Alphabet) -> ConfigDisplay<'a> {
        ConfigDisplay { config: self, alphabet }
    }

    /// Validates that every label is within `alphabet`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Inconsistent`] on out-of-range labels.
    pub fn validate(&self, alphabet: &Alphabet) -> Result<()> {
        for &l in &self.labels {
            if l.index() >= alphabet.len() {
                return Err(Error::Inconsistent {
                    reason: format!(
                        "configuration references label index {} outside alphabet of size {}",
                        l.index(),
                        alphabet.len()
                    ),
                });
            }
        }
        Ok(())
    }
}

impl FromIterator<Label> for Config {
    fn from_iter<I: IntoIterator<Item = Label>>(iter: I) -> Config {
        Config::new(iter.into_iter().collect())
    }
}

/// Helper returned by [`Config::display`].
#[derive(Debug)]
pub struct ConfigDisplay<'a> {
    config: &'a Config,
    alphabet: &'a Alphabet,
}

impl fmt::Display for ConfigDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (l, m) in self.config.groups() {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            if m == 1 {
                write!(f, "{}", self.alphabet.name(l))?;
            } else {
                write!(f, "{}^{}", self.alphabet.name(l), m)?;
            }
        }
        if first {
            write!(f, "ε")?; // the empty configuration (never valid, but printable)
        }
        Ok(())
    }
}

/// Enumerates all multisets of size `arity` over labels `0..alphabet_len`.
///
/// This is `C(alphabet_len + arity - 1, arity)` configurations; callers are
/// expected to keep both parameters modest (the generic engine is for
/// instantiated small-Δ problems; large-Δ families use the specialized
/// superweak machinery).
pub fn all_multisets(alphabet_len: usize, arity: usize) -> Vec<Config> {
    let mut out = Vec::new();
    let mut cur: Vec<Label> = Vec::with_capacity(arity);
    fn rec(out: &mut Vec<Config>, cur: &mut Vec<Label>, start: usize, left: usize, n: usize) {
        if left == 0 {
            out.push(Config::new(cur.clone()));
            return;
        }
        for i in start..n {
            cur.push(Label::from_index(i));
            rec(out, cur, i, left - 1, n);
            cur.pop();
        }
    }
    rec(&mut out, &mut cur, 0, arity, alphabet_len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: usize) -> Label {
        Label::from_index(i)
    }

    #[test]
    fn multiset_semantics() {
        let a = Config::new(vec![l(1), l(0), l(1)]);
        assert_eq!(a.arity(), 3);
        assert_eq!(a.multiplicity(l(1)), 2);
        assert_eq!(a.multiplicity(l(0)), 1);
        assert_eq!(a.multiplicity(l(9)), 0);
        assert!(a.contains(l(0)));
        assert!(!a.contains(l(2)));
        assert_eq!(a.groups(), vec![(l(0), 1), (l(1), 2)]);
    }

    #[test]
    fn from_groups_round_trip() {
        let c = Config::from_groups([(l(2), 3), (l(0), 1)]);
        assert_eq!(c, Config::new(vec![l(0), l(2), l(2), l(2)]));
    }

    #[test]
    fn display_with_exponents() {
        let a = Alphabet::from_names(["A", "B"]).unwrap();
        let c = Config::from_groups([(l(0), 2), (l(1), 1)]);
        assert_eq!(c.display(&a).to_string(), "A^2 B");
        let single = Config::new(vec![l(1)]);
        assert_eq!(single.display(&a).to_string(), "B");
        let empty = Config::new(vec![]);
        assert_eq!(empty.display(&a).to_string(), "ε");
    }

    #[test]
    fn support_and_map() {
        let c = Config::new(vec![l(0), l(0), l(3)]);
        assert_eq!(c.support().len(), 2);
        let d = c.replace(l(0), l(5));
        assert_eq!(d, Config::new(vec![l(3), l(5), l(5)]));
    }

    #[test]
    fn all_multisets_count() {
        // C(3+2-1, 2) = 6 multisets of size 2 over 3 labels.
        let ms = all_multisets(3, 2);
        assert_eq!(ms.len(), 6);
        // C(4+3-1, 3) = 20.
        assert_eq!(all_multisets(4, 3).len(), 20);
        // all distinct and sorted
        let mut sorted = ms.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
    }

    #[test]
    fn validate_detects_out_of_range() {
        let a = Alphabet::from_names(["A"]).unwrap();
        let bad = Config::new(vec![l(3)]);
        assert!(bad.validate(&a).is_err());
        let good = Config::new(vec![l(0)]);
        assert!(good.validate(&a).is_ok());
    }
}
