//! The *existential* half of a speedup step.
//!
//! After the universal half has produced a new alphabet of set-labels
//! `S₁, …, S_m` (each denoting a set of old labels), the sibling constraint
//! `D` of arity `s` is transformed existentially: a multiset
//! `(Y₁, …, Y_s)` of new labels is allowed iff *some* choice of old labels
//! `y_i ∈ meaning(Y_i)` is a configuration of `D` — Property 2 (for
//! `h_{1/2}`) and Property 3 (for `g₁`) of the paper.

use crate::config::Config;
use crate::constraint::Constraint;
use crate::label::Label;
use crate::labelset::LabelSet;

/// Whether some choice `y_i ∈ sets[i]` forms a configuration of `d`.
///
/// Implemented by scanning `d`'s configurations and testing whether the
/// configuration's labels can be matched bijectively to positions whose set
/// contains them (a small bipartite matching, cheap for the arities that
/// occur in practice).
pub fn exists_choice(sets: &[LabelSet], d: &Constraint) -> bool {
    if sets.len() != d.arity() {
        return false;
    }
    d.iter().any(|cfg| config_matches(cfg.labels(), sets))
}

/// Whether the multiset `labels` can be assigned bijectively to positions
/// such that `labels[i] ∈ sets[assign(i)]`.
pub fn config_matches(labels: &[Label], sets: &[LabelSet]) -> bool {
    debug_assert_eq!(labels.len(), sets.len());
    let n = labels.len();
    let mut used = vec![false; n];
    fn assign(labels: &[Label], sets: &[LabelSet], used: &mut [bool], i: usize) -> bool {
        if i == labels.len() {
            return true;
        }
        // Skip over equal labels deterministically: positions are
        // interchangeable for equal labels, so only try each distinct set
        // once per label value.
        for j in 0..sets.len() {
            if !used[j] && sets[j].contains(labels[i]) {
                used[j] = true;
                if assign(labels, sets, used, i + 1) {
                    used[j] = false;
                    return true;
                }
                used[j] = false;
            }
        }
        false
    }
    assign(labels, sets, &mut used, 0)
}

/// Enumerates the existential constraint: all arity-`s` multisets over the
/// new alphabet (indices into `meanings`) admitting a choice in `d`, where
/// `meanings[i]` is the old-label set denoted by new label `i`.
///
/// The output configurations are over the *new* alphabet.
pub fn existential_constraint(meanings: &[LabelSet], d: &Constraint) -> Constraint {
    let s = d.arity();
    let m = meanings.len();
    let mut out = Constraint::new(s).expect("arity ≥ 1 by Constraint invariant");
    let mut stack: Vec<usize> = Vec::with_capacity(s);
    fn rec(
        meanings: &[LabelSet],
        d: &Constraint,
        m: usize,
        s: usize,
        start: usize,
        stack: &mut Vec<usize>,
        out: &mut Constraint,
    ) {
        if stack.len() == s {
            let sets: Vec<LabelSet> = stack.iter().map(|&i| meanings[i]).collect();
            if exists_choice(&sets, d) {
                let cfg = Config::new(stack.iter().map(|&i| Label::from_index(i)).collect());
                out.insert(cfg).expect("arity matches by construction");
            }
            return;
        }
        for i in start..m {
            stack.push(i);
            rec(meanings, d, m, s, i, stack, out);
            stack.pop();
        }
    }
    rec(meanings, d, m, s, 0, &mut stack, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: usize) -> Label {
        Label::from_index(i)
    }

    fn cfg(ixs: &[usize]) -> Config {
        Config::new(ixs.iter().map(|&i| l(i)).collect())
    }

    fn set(ixs: &[usize]) -> LabelSet {
        ixs.iter().map(|&i| l(i)).collect()
    }

    #[test]
    fn exists_choice_positive_and_negative() {
        // d = {{0,1}} (one allowed pair)
        let d = Constraint::from_configs(2, [cfg(&[0, 1])]).unwrap();
        assert!(exists_choice(&[set(&[0]), set(&[1, 2])], &d));
        assert!(exists_choice(&[set(&[1]), set(&[0])], &d));
        assert!(!exists_choice(&[set(&[0]), set(&[0, 2])], &d));
        assert!(!exists_choice(&[set(&[0])], &d)); // arity mismatch
    }

    #[test]
    fn config_matches_needs_bijection() {
        // config {0,0} against sets ({0}, {1}): second position cannot take 0.
        assert!(!config_matches(&[l(0), l(0)], &[set(&[0]), set(&[1])]));
        assert!(config_matches(&[l(0), l(0)], &[set(&[0]), set(&[0, 1])]));
        // Permutation required: labels sorted (0,1), sets ({1},{0}).
        assert!(config_matches(&[l(0), l(1)], &[set(&[1]), set(&[0])]));
    }

    #[test]
    fn existential_constraint_sinkless_coloring() {
        // Paper §4.4: Π_{1/2} of sinkless coloring. Old node constraint
        // (Δ=3): exactly one 1 → config {0,0,1}. New alphabet after the
        // universal edge step: A = {0}, B = {0,1}.
        let h = Constraint::from_configs(3, [cfg(&[0, 0, 1])]).unwrap();
        let meanings = vec![set(&[0]), set(&[0, 1])];
        let h_half = existential_constraint(&meanings, &h);
        // Allowed: any multiset over {A,B} with at least one B
        // (B provides the 1; everything provides a 0 — but a line of all B
        // works too: pick 1 from one B, 0 from the rest).
        // Over {A,B} with arity 3 there are 4 multisets; all except AAA.
        assert_eq!(h_half.len(), 3);
        assert!(!h_half.contains(&cfg(&[0, 0, 0]))); // AAA has no 1
        assert!(h_half.contains(&cfg(&[0, 0, 1]))); // AAB
        assert!(h_half.contains(&cfg(&[0, 1, 1]))); // ABB
        assert!(h_half.contains(&cfg(&[1, 1, 1]))); // BBB
    }

    #[test]
    fn existential_constraint_empty_when_no_choice() {
        let d = Constraint::from_configs(2, [cfg(&[0, 0])]).unwrap();
        let meanings = vec![set(&[1]), set(&[2])];
        let e = existential_constraint(&meanings, &d);
        assert!(e.is_empty());
    }

    #[test]
    fn exhaustive_against_product_enumeration() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..40 {
            let n = rng.gen_range(2..=4);
            let arity = rng.gen_range(2..=3);
            let mut d = Constraint::new(arity).unwrap();
            for c in crate::config::all_multisets(n, arity) {
                if rng.gen_bool(0.4) {
                    d.insert(c).unwrap();
                }
            }
            // Random sets.
            let sets: Vec<LabelSet> = (0..arity)
                .map(|_| {
                    let mut s = LabelSet::empty();
                    for i in 0..n {
                        if rng.gen_bool(0.6) {
                            s.insert(l(i));
                        }
                    }
                    if s.is_empty() {
                        s.insert(l(0));
                    }
                    s
                })
                .collect();
            // Oracle: full product.
            let mut found = false;
            let idx: Vec<Vec<Label>> = sets.iter().map(|s| s.iter().collect()).collect();
            let mut counters = vec![0usize; arity];
            'outer: loop {
                let choice: Vec<Label> = (0..arity).map(|i| idx[i][counters[i]]).collect();
                if d.contains(&Config::new(choice)) {
                    found = true;
                    break;
                }
                // increment
                for i in 0..arity {
                    counters[i] += 1;
                    if counters[i] < idx[i].len() {
                        continue 'outer;
                    }
                    counters[i] = 0;
                }
                break;
            }
            assert_eq!(exists_choice(&sets, &d), found);
        }
    }
}
