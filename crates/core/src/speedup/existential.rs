//! The *existential* half of a speedup step.
//!
//! After the universal half has produced a new alphabet of set-labels
//! `S₁, …, S_m` (each denoting a set of old labels), the sibling constraint
//! `D` of arity `s` is transformed existentially: a multiset
//! `(Y₁, …, Y_s)` of new labels is allowed iff *some* choice of old labels
//! `y_i ∈ meaning(Y_i)` is a configuration of `D` — Property 2 (for
//! `h_{1/2}`) and Property 3 (for `g₁`) of the paper.

use crate::config::Config;
use crate::constraint::Constraint;
use crate::label::Label;
use crate::labelset::LabelSet;

/// Whether some choice `y_i ∈ sets[i]` forms a configuration of `d`.
///
/// Implemented by scanning `d`'s configurations and testing whether the
/// configuration's labels can be matched bijectively to positions whose set
/// contains them (a small bipartite matching, cheap for the arities that
/// occur in practice).
pub fn exists_choice(sets: &[LabelSet], d: &Constraint) -> bool {
    if sets.len() != d.arity() {
        return false;
    }
    d.iter().any(|cfg| config_matches(cfg.labels(), sets))
}

/// Whether the multiset `labels` can be assigned bijectively to positions
/// such that `labels[i] ∈ sets[assign(i)]`.
///
/// Runs as a candidate-bitmask backtracking matcher (one `u64` mask per
/// label, no allocation) for the arities that occur in practice; arities
/// above 64 fall back to a boolean-vector matcher.
pub fn config_matches(labels: &[Label], sets: &[LabelSet]) -> bool {
    debug_assert_eq!(labels.len(), sets.len());
    let n = labels.len();
    if n > 64 {
        return config_matches_general(labels, sets);
    }
    // cand[i]: positions whose set admits labels[i]. Equal labels share a
    // mask, so the per-label loop reuses the previous mask for runs.
    let mut cand = [0u64; 64];
    for (i, &l) in labels.iter().enumerate() {
        let mask = if i > 0 && labels[i - 1] == l {
            cand[i - 1]
        } else {
            let mut m = 0u64;
            for (j, s) in sets.iter().enumerate() {
                if s.contains(l) {
                    m |= 1 << j;
                }
            }
            m
        };
        if mask == 0 {
            return false;
        }
        cand[i] = mask;
    }
    matches_masks(&cand[..n])
}

/// Items up to which a greedy jam falls back to plain backtracking: its
/// zero-setup recursion beats the flow matcher's array initialization, and
/// at ≤ 6 items the worst case is a few thousand steps. Above, repeated
/// labels make backtracking worst-case factorial in their multiplicity —
/// `{A B^8}`-shaped configurations made it the dominant cost of the weak2
/// Δ≥9 speedup — so the polynomial flow matcher takes over.
const FLOW_MIN_ITEMS: usize = 7;

/// Bijective matching over per-item candidate masks: greedy first (the
/// common success path needs no recursion); when the greedy pass jams,
/// plain backtracking for short inputs and augmenting-path matching over
/// grouped masks (Kuhn's algorithm with multiplicities) for long ones.
/// All three decide the same question.
pub(crate) fn matches_masks(cand: &[u64]) -> bool {
    let mut used = 0u64;
    for &m in cand {
        let avail = m & !used;
        if avail == 0 {
            return if cand.len() < FLOW_MIN_ITEMS {
                matches_masks_backtrack(cand, 0, 0)
            } else {
                matches_masks_flow(cand)
            };
        }
        used |= avail & avail.wrapping_neg();
    }
    true
}

fn matches_masks_backtrack(cand: &[u64], used: u64, i: usize) -> bool {
    if i == cand.len() {
        return true;
    }
    let mut avail = cand[i] & !used;
    while avail != 0 {
        let j = avail & avail.wrapping_neg();
        if matches_masks_backtrack(cand, used | j, i + 1) {
            return true;
        }
        avail ^= j;
    }
    false
}

/// Exact matching feasibility via augmenting paths over grouped masks.
/// Allocation-free: `cand.len() ≤ 64` (the callers' bitmask width), so all
/// working state lives in fixed stack arrays.
fn matches_masks_flow(cand: &[u64]) -> bool {
    // Distinct masks with multiplicities (equal labels share a mask, so
    // grouping collapses the factorial symmetry of the backtracking).
    debug_assert!(cand.len() <= 64);
    let mut masks = [0u64; 64];
    let mut count = [0u32; 64];
    let mut groups = 0usize;
    for &m in cand {
        match masks[..groups].iter().position(|&x| x == m) {
            Some(i) => count[i] += 1,
            None => {
                masks[groups] = m;
                count[groups] = 1;
                groups += 1;
            }
        }
    }
    let (masks, count) = (&masks[..groups], &count[..groups]);
    /// Tries to place one more unit of group `g`, reassigning previously
    /// placed units along an augmenting path. `visited` marks positions
    /// already explored in this augmentation.
    fn augment(g: usize, masks: &[u64], owner: &mut [usize; 64], visited: &mut u64) -> bool {
        loop {
            let avail = masks[g] & !*visited;
            if avail == 0 {
                return false;
            }
            let bit = avail & avail.wrapping_neg();
            let p = bit.trailing_zeros() as usize;
            *visited |= bit;
            if owner[p] == usize::MAX || augment(owner[p], masks, owner, visited) {
                owner[p] = g;
                return true;
            }
        }
    }
    let mut owner: [usize; 64] = [usize::MAX; 64];
    for (g, &c) in count.iter().enumerate() {
        for _ in 0..c {
            let mut visited = 0u64;
            if !augment(g, masks, &mut owner, &mut visited) {
                return false;
            }
        }
    }
    true
}

/// Fallback matcher for arities above 64 (no bitmasks).
fn config_matches_general(labels: &[Label], sets: &[LabelSet]) -> bool {
    let n = labels.len();
    let mut used = vec![false; n];
    fn assign(labels: &[Label], sets: &[LabelSet], used: &mut [bool], i: usize) -> bool {
        if i == labels.len() {
            return true;
        }
        for j in 0..sets.len() {
            if !used[j] && sets[j].contains(labels[i]) {
                used[j] = true;
                if assign(labels, sets, used, i + 1) {
                    used[j] = false;
                    return true;
                }
                used[j] = false;
            }
        }
        false
    }
    assign(labels, sets, &mut used, 0)
}

/// Enumerates the existential constraint: all arity-`s` multisets over the
/// new alphabet (indices into `meanings`) admitting a choice in `d`, where
/// `meanings[i]` is the old-label set denoted by new label `i`.
///
/// The output configurations are over the *new* alphabet.
///
/// The choice test is incremental: per old label, a bitmask of multiset
/// positions whose meaning contains it is maintained across the multiset
/// enumeration (updated as positions are pushed and popped), so each leaf
/// runs the bijective matcher straight off precomputed masks instead of
/// rebuilding position sets per configuration probe. Arities above 64 take
/// the allocation-per-leaf fallback.
pub fn existential_constraint(meanings: &[LabelSet], d: &Constraint) -> Constraint {
    let _sp = crate::profile::span(crate::profile::Stage::Existential);
    let s = d.arity();
    let m = meanings.len();
    if s > 64 {
        return existential_constraint_general(meanings, d);
    }
    // The multiset enumeration emits accepted configurations in ascending
    // lexicographic order, so the result bulk-loads from a sorted vector.
    let mut out: Vec<Config> = Vec::new();
    // masks[l]: positions of the current partial multiset whose meaning
    // contains old label `l`. Sized by d's support.
    let max_label = d.iter().flat_map(Config::iter).map(Label::index).max();
    let Some(max_label) = max_label else {
        return Constraint::new(s).expect("arity ≥ 1 by Constraint invariant");
    };
    let mut masks: Vec<u64> = vec![0; max_label + 1];
    let mut stack: Vec<usize> = Vec::with_capacity(s);
    let mut cand = [0u64; 64];

    #[allow(clippy::too_many_arguments)]
    fn rec(
        meanings: &[LabelSet],
        d: &Constraint,
        m: usize,
        s: usize,
        start: usize,
        stack: &mut Vec<usize>,
        masks: &mut [u64],
        cand: &mut [u64],
        out: &mut Vec<Config>,
    ) {
        if stack.len() == s {
            'configs: for cfg in d.iter() {
                for (i, &l) in cfg.labels().iter().enumerate() {
                    let mask = masks[l.index()];
                    if mask == 0 {
                        continue 'configs;
                    }
                    cand[i] = mask;
                }
                if matches_masks(cand) {
                    out.push(Config::new(stack.iter().map(|&i| Label::from_index(i)).collect()));
                    return;
                }
            }
            return;
        }
        let bit = 1u64 << stack.len();
        for i in start..m {
            stack.push(i);
            for l in meanings[i].iter() {
                if let Some(slot) = masks.get_mut(l.index()) {
                    *slot |= bit;
                }
            }
            rec(meanings, d, m, s, i, stack, masks, cand, out);
            for l in meanings[i].iter() {
                if let Some(slot) = masks.get_mut(l.index()) {
                    *slot &= !bit;
                }
            }
            stack.pop();
        }
    }
    rec(meanings, d, m, s, 0, &mut stack, &mut masks, &mut cand[..s], &mut out);
    Constraint::from_sorted_configs_unchecked(s, out)
}

/// Fallback enumeration for arities above the matcher's 64-bit width.
fn existential_constraint_general(meanings: &[LabelSet], d: &Constraint) -> Constraint {
    let mut out = Constraint::new(d.arity()).expect("arity ≥ 1 by Constraint invariant");
    let s = d.arity();
    let m = meanings.len();
    let mut stack: Vec<usize> = Vec::with_capacity(s);
    fn rec(
        meanings: &[LabelSet],
        d: &Constraint,
        m: usize,
        s: usize,
        start: usize,
        stack: &mut Vec<usize>,
        out: &mut Constraint,
    ) {
        if stack.len() == s {
            let sets: Vec<LabelSet> = stack.iter().map(|&i| meanings[i]).collect();
            if exists_choice(&sets, d) {
                let cfg = Config::new(stack.iter().map(|&i| Label::from_index(i)).collect());
                out.insert(cfg).expect("arity matches by construction");
            }
            return;
        }
        for i in start..m {
            stack.push(i);
            rec(meanings, d, m, s, i, stack, out);
            stack.pop();
        }
    }
    rec(meanings, d, m, s, 0, &mut stack, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: usize) -> Label {
        Label::from_index(i)
    }

    fn cfg(ixs: &[usize]) -> Config {
        Config::new(ixs.iter().map(|&i| l(i)).collect())
    }

    fn set(ixs: &[usize]) -> LabelSet {
        ixs.iter().map(|&i| l(i)).collect()
    }

    #[test]
    fn exists_choice_positive_and_negative() {
        // d = {{0,1}} (one allowed pair)
        let d = Constraint::from_configs(2, [cfg(&[0, 1])]).unwrap();
        assert!(exists_choice(&[set(&[0]), set(&[1, 2])], &d));
        assert!(exists_choice(&[set(&[1]), set(&[0])], &d));
        assert!(!exists_choice(&[set(&[0]), set(&[0, 2])], &d));
        assert!(!exists_choice(&[set(&[0])], &d)); // arity mismatch
    }

    #[test]
    fn config_matches_needs_bijection() {
        // config {0,0} against sets ({0}, {1}): second position cannot take 0.
        assert!(!config_matches(&[l(0), l(0)], &[set(&[0]), set(&[1])]));
        assert!(config_matches(&[l(0), l(0)], &[set(&[0]), set(&[0, 1])]));
        // Permutation required: labels sorted (0,1), sets ({1},{0}).
        assert!(config_matches(&[l(0), l(1)], &[set(&[1]), set(&[0])]));
    }

    #[test]
    fn existential_constraint_sinkless_coloring() {
        // Paper §4.4: Π_{1/2} of sinkless coloring. Old node constraint
        // (Δ=3): exactly one 1 → config {0,0,1}. New alphabet after the
        // universal edge step: A = {0}, B = {0,1}.
        let h = Constraint::from_configs(3, [cfg(&[0, 0, 1])]).unwrap();
        let meanings = vec![set(&[0]), set(&[0, 1])];
        let h_half = existential_constraint(&meanings, &h);
        // Allowed: any multiset over {A,B} with at least one B
        // (B provides the 1; everything provides a 0 — but a line of all B
        // works too: pick 1 from one B, 0 from the rest).
        // Over {A,B} with arity 3 there are 4 multisets; all except AAA.
        assert_eq!(h_half.len(), 3);
        assert!(!h_half.contains(&cfg(&[0, 0, 0]))); // AAA has no 1
        assert!(h_half.contains(&cfg(&[0, 0, 1]))); // AAB
        assert!(h_half.contains(&cfg(&[0, 1, 1]))); // ABB
        assert!(h_half.contains(&cfg(&[1, 1, 1]))); // BBB
    }

    #[test]
    fn existential_constraint_empty_when_no_choice() {
        let d = Constraint::from_configs(2, [cfg(&[0, 0])]).unwrap();
        let meanings = vec![set(&[1]), set(&[2])];
        let e = existential_constraint(&meanings, &d);
        assert!(e.is_empty());
    }

    #[test]
    fn exhaustive_against_product_enumeration() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..40 {
            let n = rng.gen_range(2..=4);
            let arity = rng.gen_range(2..=3);
            let mut d = Constraint::new(arity).unwrap();
            for c in crate::config::all_multisets(n, arity) {
                if rng.gen_bool(0.4) {
                    d.insert(c).unwrap();
                }
            }
            // Random sets.
            let sets: Vec<LabelSet> = (0..arity)
                .map(|_| {
                    let mut s = LabelSet::empty();
                    for i in 0..n {
                        if rng.gen_bool(0.6) {
                            s.insert(l(i));
                        }
                    }
                    if s.is_empty() {
                        s.insert(l(0));
                    }
                    s
                })
                .collect();
            // Oracle: full product.
            let mut found = false;
            let idx: Vec<Vec<Label>> = sets.iter().map(|s| s.iter().collect()).collect();
            let mut counters = vec![0usize; arity];
            'outer: loop {
                let choice: Vec<Label> = (0..arity).map(|i| idx[i][counters[i]]).collect();
                if d.contains(&Config::new(choice)) {
                    found = true;
                    break;
                }
                // increment
                for i in 0..arity {
                    counters[i] += 1;
                    if counters[i] < idx[i].len() {
                        continue 'outer;
                    }
                    counters[i] = 0;
                }
                break;
            }
            assert_eq!(exists_choice(&sets, &d), found);
        }
    }
}
