//! The speedup steps Π → Π_{1/2} → Π₁ (Theorem 1 + Theorem 2).
//!
//! A *full step* applies two dual half-steps:
//!
//! 1. [`half_step_edge`] (Π → Π'_{1/2}): the **edge** constraint is
//!    transformed universally-with-maximality (Properties 1+5), the **node**
//!    constraint existentially (Property 2). New labels denote sets of old
//!    labels; intuitively, an algorithm that only sees the radius-t
//!    neighborhood of an *edge* outputs the set of labels the original
//!    algorithm could output over all extensions towards the node.
//! 2. [`half_step_node`] (Π_{1/2} → Π'₁): dual — the **node** constraint is
//!    transformed universally-with-maximality (Properties 4+6), the **edge**
//!    constraint existentially (Property 3).
//!
//! By Theorems 1 and 2, on t-independent graph classes of girth ≥ 2t+2
//! (with input edge orientations for the maximality step), Π is solvable in
//! t rounds iff Π'₁ is solvable in t−1 rounds.
//!
//! [`full_step_unsimplified`] implements the plain Theorem-1 transform
//! (all subsets, no maximality) for small instances; tests verify it is
//! equivalent to the simplified transform in the sense of Theorem 2
//! (mutual 0-round relaxations).

use crate::constraint::Constraint;
use crate::error::{Error, Result};
use crate::label::{Alphabet, NameGen};
use crate::labelset::LabelSet;
use crate::problem::Problem;
use crate::speedup::existential::existential_constraint;
use crate::speedup::universal::{all_good_lines_bruteforce, maximal_good_lines, Line};

/// Which side of the problem the universal transform acted on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The edge constraint was transformed universally (Π → Π_{1/2}).
    Edge,
    /// The node constraint was transformed universally (Π_{1/2} → Π₁).
    Node,
}

/// Result of a half-step: the derived problem plus label provenance.
#[derive(Debug, Clone)]
pub struct HalfStep {
    /// The derived problem.
    pub problem: Problem,
    /// For each new label (by index), the set of *old* labels it denotes.
    pub meanings: Vec<LabelSet>,
    /// Which side was transformed universally.
    pub side: Side,
}

/// Result of a full step Π → Π'₁.
#[derive(Debug, Clone)]
pub struct FullStep {
    /// Π'_{1/2} with provenance relative to Π.
    pub half: HalfStep,
    /// Π'₁ with provenance relative to Π'_{1/2}.
    pub full: HalfStep,
}

impl FullStep {
    /// The derived problem Π'₁.
    pub fn problem(&self) -> &Problem {
        &self.full.problem
    }

    /// The meaning of a Π'₁ label as a set of sets of Π labels.
    pub fn meaning_in_base(&self, new_label: crate::label::Label) -> Vec<LabelSet> {
        self.full.meanings[new_label.index()]
            .iter()
            .map(|mid| self.half.meanings[mid.index()])
            .collect()
    }
}

fn set_name(alphabet: &Alphabet, set: &LabelSet) -> String {
    let mut s = String::from("⟨");
    for (i, l) in set.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(alphabet.name(l));
    }
    s.push('⟩');
    s
}

/// Builds the derived problem from maximal lines of the universal side.
fn assemble(base: &Problem, lines: Vec<Line>, side: Side, name_suffix: &str) -> Result<HalfStep> {
    // New alphabet: distinct sets occurring in the maximal lines.
    let mut meanings: Vec<LabelSet> = Vec::new();
    for line in &lines {
        for s in line {
            if !meanings.contains(s) {
                meanings.push(*s);
            }
        }
    }
    meanings.sort();
    if meanings.len() > crate::labelset::MAX_LABELS {
        return Err(Error::AlphabetOverflow { requested: meanings.len() });
    }

    // Distinct meaning-sets render to distinct ⟨…⟩ names for every
    // alphabet this engine generates; verify cheaply and skip the
    // suffixing machinery (and the alphabet's per-name duplicate probes)
    // on that common path.
    let mut names: Vec<String> = meanings.iter().map(|m| set_name(base.alphabet(), m)).collect();
    // The ⟨…⟩ names nest across iterated steps and grow exponentially —
    // two steps past a moderate problem they reach tens of kilobytes per
    // label, and every downstream clone/hash/render of the problem drags
    // them along. Once any name passes the cap, the whole alphabet falls
    // back to short synthetic names; provenance stays machine-readable in
    // `meanings` (and via `FullStep::meaning_in_base`).
    const MAX_RENDERED_NAME: usize = 256;
    if names.iter().any(|n| n.len() > MAX_RENDERED_NAME) {
        names = (0..meanings.len()).map(|i| format!("s{i}")).collect();
    }
    let unique = if names.len() <= 16 {
        (1..names.len()).all(|i| !names[..i].contains(&names[i]))
    } else {
        let mut seen = std::collections::HashSet::with_capacity(names.len());
        names.iter().all(|n| seen.insert(n.as_str()))
    };
    let alphabet = if unique {
        Alphabet::from_unique_names_unchecked(names)
    } else {
        let mut gen = NameGen::new();
        let mut alphabet = Alphabet::new();
        for base_name in &names {
            alphabet.intern(gen.fresh(base_name))?;
        }
        alphabet
    };

    let index_of = |s: &LabelSet| -> crate::label::Label {
        let ix = meanings.binary_search(s).expect("line sets are in the meanings list");
        crate::label::Label::from_index(ix)
    };

    let universal_arity = match side {
        Side::Edge => 2,
        Side::Node => base.delta(),
    };
    let mut universal = Constraint::new(universal_arity)?;
    for line in &lines {
        let cfg: crate::config::Config = line.iter().map(index_of).collect();
        universal.insert(cfg)?;
    }

    let existential = match side {
        Side::Edge => existential_constraint(&meanings, base.node()),
        Side::Node => existential_constraint(&meanings, base.edge()),
    };

    let (node, edge) = match side {
        Side::Edge => (existential, universal),
        Side::Node => (universal, existential),
    };

    let name = format!("{}{}", base.name(), name_suffix);
    let problem = Problem::new_unchecked(name, alphabet, node, edge);
    Ok(HalfStep { problem, meanings, side })
}

/// Π → Π'_{1/2}: universal+maximal on the edge constraint, existential on
/// the node constraint (§4.1–4.2 of the paper).
///
/// # Errors
///
/// Returns [`Error::AlphabetOverflow`] if the derived alphabet would exceed
/// the engine's 256-label cap.
pub fn half_step_edge(p: &Problem) -> Result<HalfStep> {
    let lines = maximal_good_lines(p.edge());
    assemble(p, lines, Side::Edge, " ½")
}

/// Π_{1/2} → Π'₁: universal+maximal on the node constraint, existential on
/// the edge constraint.
///
/// # Errors
///
/// Returns [`Error::AlphabetOverflow`] if the derived alphabet would exceed
/// the engine's 256-label cap.
pub fn half_step_node(p: &Problem) -> Result<HalfStep> {
    let lines = maximal_good_lines(p.node());
    assemble(p, lines, Side::Node, " ₁")
}

/// One full simplified speedup step Π → Π'₁ (Theorem 2), followed by the
/// compression convention (drop labels that cannot occur in a correct
/// solution).
///
/// # Errors
///
/// Propagates alphabet-overflow errors from the half-steps.
///
/// ```
/// use roundelim_core::problem::Problem;
/// use roundelim_core::speedup::full_step;
/// // Sinkless coloring, Δ=3 (paper §4.4): 1 = "pick the edge's color".
/// let sc = Problem::parse("name: sc\nnode: 1 0 0\nedge: 0 0 | 0 1").unwrap();
/// let step = full_step(&sc).unwrap();
/// // Π'₁ is sinkless coloring again (period-2 fixed point through SO).
/// assert_eq!(step.problem().alphabet().len(), 2);
/// ```
pub fn full_step(p: &Problem) -> Result<FullStep> {
    let half = half_step_edge(p)?;
    let full = half_step_node(&half.problem)?;
    // Compress: drop outputs that occur on only one side. When compression
    // would be the identity (fixed-point problems, every step) the problem
    // is returned as-is — no clone, no remap.
    if full.problem.is_fully_usable() {
        return Ok(FullStep { half, full });
    }
    let (compressed, mapping) = full.problem.compress();
    let mut meanings = Vec::new();
    for (old_ix, m) in mapping.iter().enumerate() {
        if m.is_some() {
            meanings.push(full.meanings[old_ix]);
        }
    }
    let full = HalfStep {
        problem: compressed.with_name(full.problem.name().to_owned()),
        meanings,
        side: Side::Node,
    };
    Ok(FullStep { half, full })
}

/// The unsimplified Theorem-1 transform: derived labels range over *all*
/// non-empty subsets, and no maximality pruning is applied. Exponential in
/// the alphabet; restricted to alphabets of ≤ 12 labels.
///
/// # Errors
///
/// Returns [`Error::Unsupported`] for larger alphabets and
/// [`Error::AlphabetOverflow`] if the derived alphabet exceeds the cap.
pub fn half_step_edge_unsimplified(p: &Problem) -> Result<HalfStep> {
    if p.alphabet().len() > 12 {
        return Err(Error::Unsupported {
            reason: format!(
                "unsimplified transform limited to 12 labels, problem has {}",
                p.alphabet().len()
            ),
        });
    }
    let universe = LabelSet::first_n(p.alphabet().len());
    let lines = all_good_lines_bruteforce(p.edge(), &universe);
    assemble(p, lines, Side::Edge, " ½u")
}

/// Node-side counterpart of [`half_step_edge_unsimplified`].
///
/// # Errors
///
/// Same as [`half_step_edge_unsimplified`].
pub fn half_step_node_unsimplified(p: &Problem) -> Result<HalfStep> {
    if p.alphabet().len() > 12 {
        return Err(Error::Unsupported {
            reason: format!(
                "unsimplified transform limited to 12 labels, problem has {}",
                p.alphabet().len()
            ),
        });
    }
    let universe = LabelSet::first_n(p.alphabet().len());
    let lines = all_good_lines_bruteforce(p.node(), &universe);
    assemble(p, lines, Side::Node, " ₁u")
}

/// One full unsimplified Theorem-1 step (for cross-checking Theorem 2 on
/// tiny instances).
///
/// # Errors
///
/// Same as the unsimplified half-steps.
pub fn full_step_unsimplified(p: &Problem) -> Result<FullStep> {
    let half = half_step_edge_unsimplified(p)?;
    let full = half_step_node_unsimplified(&half.problem)?;
    Ok(FullStep { half, full })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sinkless coloring (§4.4): labels {0,1}; node: exactly one 1;
    /// edge: {0,0} or {0,1}.
    fn sinkless_coloring(delta: usize) -> Problem {
        let node = format!("0^{} 1", delta - 1);
        Problem::parse(&format!("name: sc\nnode: {node}\nedge: 0 0 | 0 1")).unwrap()
    }

    #[test]
    fn sinkless_coloring_half_step_is_sinkless_orientation() {
        // Paper §4.4: Π'_{1/2} of sinkless coloring is sinkless orientation.
        let sc = sinkless_coloring(3);
        let hs = half_step_edge(&sc).unwrap();
        let p = &hs.problem;
        assert_eq!(p.alphabet().len(), 2, "{p}");
        // Edge: exactly one configuration {A,B} (= {0},{0,1}).
        assert_eq!(p.edge().len(), 1);
        // Node: all multisets with ≥ 1 B, i.e. 3 of the 4 possible.
        assert_eq!(p.node().len(), 3);
        // meanings: {0} and {0,1}
        assert_eq!(hs.meanings.len(), 2);
        assert_eq!(hs.meanings[0].len(), 1);
        assert_eq!(hs.meanings[1].len(), 2);
    }

    #[test]
    fn sinkless_coloring_full_step_returns_to_itself() {
        // Paper §4.4: Π'₁ = sinkless coloring again (after renaming).
        for delta in 3..=5 {
            let sc = sinkless_coloring(delta);
            let step = full_step(&sc).unwrap();
            let p = step.problem();
            assert_eq!(p.alphabet().len(), 2, "Δ={delta}: {p}");
            assert_eq!(p.node().len(), 1, "Δ={delta}: {p}");
            assert_eq!(p.edge().len(), 2, "Δ={delta}: {p}");
            // Structure check: node constraint is {X, Y^{Δ-1}} with
            // edge {Y,X},{Y,Y} — i.e. sinkless coloring with X=1,Y=0.
            let node_cfg = p.node().iter().next().unwrap();
            let groups = node_cfg.groups();
            assert_eq!(groups.len(), 2);
            let counts: Vec<usize> = groups.iter().map(|&(_, m)| m).collect();
            assert!(counts.contains(&1) && counts.contains(&(delta - 1)));
        }
    }

    #[test]
    fn full_step_provenance_maps_to_base() {
        let sc = sinkless_coloring(3);
        let step = full_step(&sc).unwrap();
        for l in step.problem().alphabet().labels() {
            let meaning = step.meaning_in_base(l);
            assert!(!meaning.is_empty());
            for set in meaning {
                assert!(!set.is_empty());
                // sets over the base alphabet {0,1}
                for lbl in set.iter() {
                    assert!(lbl.index() < sc.alphabet().len());
                }
            }
        }
    }

    #[test]
    fn unsimplified_step_runs_on_tiny_problem() {
        let sc = sinkless_coloring(3);
        let u = full_step_unsimplified(&sc).unwrap();
        // Unsimplified alphabets are larger (all good lines, not only maximal).
        assert!(u.problem().alphabet().len() >= full_step(&sc).unwrap().problem().alphabet().len());
    }

    #[test]
    fn unsimplified_rejected_on_large_alphabet() {
        let names: Vec<String> = (0..13).map(|i| format!("L{i}")).collect();
        let mut text = String::from("node: ");
        text.push_str(&names.join(" "));
        text.push_str("\nedge: L0 L1\n");
        let p = Problem::parse(&text).unwrap();
        assert!(matches!(half_step_edge_unsimplified(&p), Err(Error::Unsupported { .. })));
    }
}
