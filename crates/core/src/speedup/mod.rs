//! The automatic speedup transform (Theorems 1 and 2 of the paper).
//!
//! * [`universal`] — maximal "good lines" (the ∀ + maximality half).
//! * [`existential`] — the ∃ half.
//! * [`step`] — assembled half/full steps with label provenance.
//!
//! The main entry points are re-exported here:
//!
//! ```
//! use roundelim_core::problem::Problem;
//! use roundelim_core::speedup::{full_step, half_step_edge};
//! let sc = Problem::parse("name: sc\nnode: 1 0 0\nedge: 0 0 | 0 1").unwrap();
//! let so = half_step_edge(&sc).unwrap();          // Π'_{1/2}: sinkless orientation
//! let back = full_step(&sc).unwrap();             // Π'₁: sinkless coloring again
//! assert_eq!(back.problem().alphabet().len(), 2);
//! # let _ = so;
//! ```

pub mod existential;
pub(crate) mod pool;
pub mod step;
pub mod universal;

pub use step::{
    full_step, full_step_unsimplified, half_step_edge, half_step_edge_unsimplified, half_step_node,
    half_step_node_unsimplified, FullStep, HalfStep, Side,
};
pub use universal::{dominates, line_good, maximal_good_lines, maximal_good_lines_threaded, Line};
