//! Interned line storage for the merge-closure engine.
//!
//! The closure over merges touches the same canonical lines many times:
//! every merge of two kept lines re-derives mostly-known candidates, and
//! every candidate is compared against the antichain. A [`LinePool`]
//! interns each distinct line once into a flat arena (`id * arity`
//! addressing, no per-line heap allocation) and hands out dense `u32` ids,
//! so
//!
//! * "have we ever seen this line?" is one hash probe plus a slice compare
//!   (replacing a `HashSet<Vec<LabelSet>>` that re-hashed an owned vector
//!   per query and allocated per insert), and
//! * every interned line carries a [`Sig`] — its component-size multiset
//!   and the union of its components — used as a cheap necessary-condition
//!   filter in front of the backtracking domination matcher.
//!
//! Ids are assigned in first-intern order, which the engine keeps
//! deterministic across thread counts (workers emit in item order and the
//! single interning thread consumes chunk outputs in item order).

use crate::labelset::LabelSet;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Pass-through hasher for keys that are already well-mixed 64-bit hashes
/// ([`hash_line`] output); skips SipHash on the pool's hot probe path.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("IdentityHasher is only used with u64 keys");
    }
    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

/// An arena of canonical (component-sorted) lines of one fixed arity.
#[derive(Debug, Clone)]
pub(crate) struct LinePool {
    arity: usize,
    /// Concatenated components; line `id` lives at `id*arity .. (id+1)*arity`.
    data: Vec<LabelSet>,
    sigs: Vec<Sig>,
    /// Content hash → ids with that hash (collisions resolved by compare).
    map: HashMap<u64, Vec<u32>, BuildHasherDefault<IdentityHasher>>,
    /// Most recently interned-or-looked-up id: merge enumeration emits
    /// runs of identical candidates, which this memo answers with a single
    /// slice compare instead of a hash + probe.
    last: Option<u32>,
}

/// Cheap domination pre-filter data for one line.
///
/// If `a` dominates `b` (componentwise ⊆ under some alignment), then
/// `union(b) ⊆ union(a)` and the ascending-sorted component sizes of `b`
/// are pointwise ≤ those of `a` (a matching where each `b`-component fits
/// in its partner induces the sorted pointwise bound). Both checks are a
/// handful of word ops, against a backtracking matcher that is worst-case
/// factorial.
#[derive(Debug, Clone)]
struct Sig {
    union: LabelSet,
    /// Component sizes, sorted ascending.
    sizes: Vec<u16>,
}

impl Sig {
    fn of(line: &[LabelSet]) -> Sig {
        let mut union = LabelSet::empty();
        let mut sizes: Vec<u16> = Vec::with_capacity(line.len());
        for s in line {
            union = union.union(s);
            sizes.push(s.len() as u16);
        }
        sizes.sort_unstable();
        Sig { union, sizes }
    }
}

impl LinePool {
    pub(crate) fn new(arity: usize) -> LinePool {
        LinePool { arity, data: Vec::new(), sigs: Vec::new(), map: HashMap::default(), last: None }
    }

    /// Number of interned lines.
    pub(crate) fn len(&self) -> usize {
        self.sigs.len()
    }

    /// The components of line `id`.
    #[inline]
    pub(crate) fn get(&self, id: u32) -> &[LabelSet] {
        let start = id as usize * self.arity;
        &self.data[start..start + self.arity]
    }

    /// Interns a canonical line, returning its id and whether it is new.
    ///
    /// The slice is copied into the arena only on first sight, so callers
    /// can intern straight from a reusable scratch buffer.
    pub(crate) fn intern(&mut self, line: &[LabelSet]) -> (u32, bool) {
        debug_assert_eq!(line.len(), self.arity);
        debug_assert!(line.windows(2).all(|w| w[0] <= w[1]), "intern needs a canonical line");
        if let Some(last) = self.last {
            if self.get(last) == line {
                return (last, false);
            }
        }
        let h = hash_line(line);
        if let Some(ids) = self.map.get(&h) {
            for &id in ids {
                if self.get(id) == line {
                    self.last = Some(id);
                    return (id, false);
                }
            }
        }
        let id = self.sigs.len() as u32;
        self.data.extend_from_slice(line);
        self.sigs.push(Sig::of(line));
        self.map.entry(h).or_default().push(id);
        self.last = Some(id);
        (id, true)
    }

    /// Signature pre-filter: `false` means line `a` certainly does not
    /// dominate line `b`; `true` means the backtracking matcher must decide.
    #[inline]
    pub(crate) fn may_dominate(&self, a: u32, b: u32) -> bool {
        let (sa, sb) = (&self.sigs[a as usize], &self.sigs[b as usize]);
        sb.union.is_subset(&sa.union)
            && sb.sizes.iter().zip(&sa.sizes).all(|(sb_k, sa_k)| sb_k <= sa_k)
    }

    /// Iterates interned lines in id (first-intern) order.
    pub(crate) fn lines(&self) -> impl Iterator<Item = &[LabelSet]> + '_ {
        (0..self.len() as u32).map(|id| self.get(id))
    }

    /// The component-union of line `id` (from its signature).
    #[inline]
    pub(crate) fn union_of(&self, id: u32) -> LabelSet {
        self.sigs[id as usize].union
    }
}

/// Signature-bucketed domination index over the engine's current
/// antichain.
///
/// Every candidate line is filtered against the antichain ("does some kept
/// line dominate it?"), and every installed line evicts the antichain
/// members it dominates. A linear scan pays one signature check per
/// member; this index instead maintains, per label, a bitset over
/// antichain slots whose line-union contains the label, so
///
/// * **dominator candidates** of a line with union `U` are the AND of the
///   rows of `U`'s labels (a dominator's union must contain `U`), and
/// * **eviction candidates** of a line with union `U` are the alive slots
///   hit by no row outside `U` (an evictee's union must be contained in
///   `U`),
///
/// a handful of word operations each, sublinear in the antichain size and
/// usually empty — only surviving slots pay the per-pair signature check
/// and alignment matcher. Removed members are tombstoned (their row bits
/// are cleared); slots are not reused within a run.
#[derive(Debug, Default)]
pub(crate) struct DomIndex {
    /// Slot → line id.
    slots: Vec<u32>,
    /// Alive bitset over slots (tombstoned on eviction).
    alive: Vec<u64>,
    /// rows[label] = bitset over slots whose line-union contains label.
    rows: Vec<Vec<u64>>,
    /// Union of all labels ever inserted (bounds eviction queries).
    used: LabelSet,
}

impl DomIndex {
    fn words(&self) -> usize {
        self.slots.len().div_ceil(64)
    }

    /// Registers `id` (with its component-union) as an antichain member.
    pub(crate) fn insert(&mut self, id: u32, union: &LabelSet) {
        let slot = self.slots.len();
        self.slots.push(id);
        let w = self.words();
        if self.alive.len() < w {
            self.alive.resize(w, 0);
            for row in &mut self.rows {
                row.resize(w, 0);
            }
        }
        self.alive[slot / 64] |= 1u64 << (slot % 64);
        for l in union.iter() {
            let ix = l.index();
            if self.rows.len() <= ix {
                self.rows.resize_with(ix + 1, || vec![0u64; w]);
            }
            if self.rows[ix].len() < w {
                self.rows[ix].resize(w, 0);
            }
            self.rows[ix][slot / 64] |= 1u64 << (slot % 64);
            self.used.insert(l);
        }
    }

    /// Tombstones the slot of `id` (must be a current member).
    pub(crate) fn remove(&mut self, id: u32, union: &LabelSet) {
        let slot = self
            .slots
            .iter()
            .rposition(|&s| s == id)
            .expect("removed id is a current antichain member");
        self.alive[slot / 64] &= !(1u64 << (slot % 64));
        for l in union.iter() {
            self.rows[l.index()][slot / 64] &= !(1u64 << (slot % 64));
        }
    }

    /// Calls `f` with the id of every alive member whose union is a
    /// **superset** of `union` (the only possible dominators of a line
    /// with that union); stops early when `f` returns `true` and reports
    /// whether it did. `buf` is caller-owned query scratch (the parallel
    /// close stage queries the shared index from several workers).
    pub(crate) fn any_superset_candidate<F: FnMut(u32) -> bool>(
        &self,
        union: &LabelSet,
        buf: &mut Vec<u64>,
        f: F,
    ) -> bool {
        buf.clear();
        buf.extend_from_slice(&self.alive);
        for l in union.iter() {
            let Some(row) = self.rows.get(l.index()) else {
                return false; // no member's union contains l
            };
            for (b, &r) in buf.iter_mut().zip(row) {
                *b &= r;
            }
        }
        self.for_each_set_bit(buf, f)
    }

    /// Calls `f` with the id of every alive member whose union is a
    /// **subset** of `union` (the only members a line with that union can
    /// evict); stops early when `f` returns `true` and reports whether it
    /// did.
    pub(crate) fn any_subset_candidate<F: FnMut(u32) -> bool>(
        &self,
        union: &LabelSet,
        buf: &mut Vec<u64>,
        f: F,
    ) -> bool {
        buf.clear();
        buf.extend_from_slice(&self.alive);
        for l in self.used.difference(union).iter() {
            let row = &self.rows[l.index()];
            for (b, &r) in buf.iter_mut().zip(row) {
                *b &= !r;
            }
        }
        self.for_each_set_bit(buf, f)
    }

    /// Iterates ids of set bits in `buf`, in slot order.
    fn for_each_set_bit<F: FnMut(u32) -> bool>(&self, buf: &[u64], mut f: F) -> bool {
        for (wi, &word) in buf.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let bit = bits & bits.wrapping_neg();
                let slot = wi * 64 + bit.trailing_zeros() as usize;
                if f(self.slots[slot]) {
                    return true;
                }
                bits ^= bit;
            }
        }
        false
    }
}

/// Content hash of a line (xor-multiply mix over the raw bitset words).
///
/// Alphabets rarely use more than the first 64 labels, so the upper three
/// words of most sets are zero: those are folded in only when set, with a
/// position-dependent rotation so sparsity stays unambiguous.
fn hash_line(line: &[LabelSet]) -> u64 {
    #[inline]
    fn mix(h: u64, w: u64) -> u64 {
        let h = (h ^ w).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^ (h >> 33)
    }
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
    for s in line {
        let words = s.words();
        h = mix(h, words[0]);
        for (k, &w) in words.iter().enumerate().skip(1) {
            if w != 0 {
                h = mix(h, w.rotate_left(21 * k as u32));
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;

    fn set(ixs: &[usize]) -> LabelSet {
        ixs.iter().map(|&i| Label::from_index(i)).collect()
    }

    #[test]
    fn intern_dedups_and_addresses_flat() {
        let mut pool = LinePool::new(2);
        let a = [set(&[0]), set(&[0, 1])];
        let b = [set(&[0]), set(&[1])];
        let (ia, fresh_a) = pool.intern(&a);
        let (ib, fresh_b) = pool.intern(&b);
        let (ia2, fresh_a2) = pool.intern(&a);
        assert!(fresh_a && fresh_b && !fresh_a2);
        assert_eq!(ia, ia2);
        assert_ne!(ia, ib);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.get(ia), &a);
        assert_eq!(pool.get(ib), &b);
        assert_eq!(pool.lines().count(), 2);
    }

    #[test]
    fn sig_prefilter_is_sound_and_useful() {
        let mut pool = LinePool::new(2);
        let (big, _) = pool.intern(&[set(&[0, 1]), set(&[0, 1, 2])]);
        let (small, _) = pool.intern(&[set(&[0]), set(&[1, 2])]);
        let (other, _) = pool.intern(&[set(&[3]), set(&[3, 4])]);
        // big really dominates small → filter must not reject.
        assert!(pool.may_dominate(big, small));
        // other's union is disjoint → rejected without matching.
        assert!(!pool.may_dominate(big, other));
        // small's sizes (1,2) vs big's (2,3) pass, but reverse fails.
        assert!(!pool.may_dominate(small, big));
    }
}
