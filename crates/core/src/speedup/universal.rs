//! The *universal* half of a speedup step: maximal "good lines".
//!
//! Given a constraint `C` of arity `r`, a **line** is a multiset
//! `(X₁, …, X_r)` of non-empty label sets. A line is **good** if *every*
//! choice `x_i ∈ X_i` yields a configuration of `C` — this is Property 1
//! (for `g_{1/2}`) and Property 4 (for `h₁`) of the paper. The simplified
//! problems of Theorem 2 keep only the ⊆-*maximal* good lines
//! (Properties 5 and 6).
//!
//! # Algorithm
//!
//! We enumerate maximal good lines by a *merge closure*:
//!
//! 1. Seed with `C`'s configurations viewed as lines of singletons (these
//!    are trivially good).
//! 2. Repeatedly **merge** two good lines: for an alignment σ of their
//!    positions and a distinguished position `j`, form
//!    `(A₁∩B_{σ(1)}, …, A_j∪B_{σ(j)}, …)`. Any choice from the merged line
//!    picks its `j`-entry from `A_j` or `B_{σ(j)}` and all other entries
//!    from intersections, so it is a choice of `A` or of `B`; hence merges
//!    of good lines are good (*soundness*).
//! 3. Keep only a dominating antichain (lines not componentwise-contained
//!    in another kept line, up to alignment).
//!
//! *Completeness:* any good line is produced by iterated merges of the
//! seeds — split some `X_j = {a} ⊎ rest` and merge the two (inductively
//! reachable) sub-lines with the identity alignment at `j`. Pruning
//! dominated lines preserves completeness because merging is monotone in
//! both arguments, so the invariant "every good line is dominated by a kept
//! line" survives; at a fixpoint the kept antichain is exactly the set of
//! maximal good lines. Tests cross-check against a brute-force oracle.

use crate::config::Config;
use crate::constraint::Constraint;
use crate::labelset::LabelSet;
use std::collections::HashSet;

/// A multiset of label sets, canonically sorted. See module docs.
pub type Line = Vec<LabelSet>;

/// Canonicalizes a line (sorts its components).
pub fn canonical(mut line: Line) -> Line {
    line.sort_unstable();
    line
}

/// Whether every choice `x_i ∈ line[i]` is a configuration of `c`.
///
/// Identical components are grouped so that choices are enumerated as
/// combinations-with-repetition rather than the full product.
pub fn line_good(line: &[LabelSet], c: &Constraint) -> bool {
    if line.len() != c.arity() || line.iter().any(LabelSet::is_empty) {
        return false;
    }
    // Group identical sets: (set, count).
    let sorted = canonical(line.to_vec());
    let mut groups: Vec<(LabelSet, usize)> = Vec::new();
    for s in sorted {
        match groups.last_mut() {
            Some((g, n)) if *g == s => *n += 1,
            _ => groups.push((s, 1)),
        }
    }
    let mut chosen: Vec<crate::label::Label> = Vec::with_capacity(c.arity());
    all_choices_ok(&groups, 0, &mut chosen, c)
}

fn all_choices_ok(
    groups: &[(LabelSet, usize)],
    gi: usize,
    chosen: &mut Vec<crate::label::Label>,
    c: &Constraint,
) -> bool {
    if gi == groups.len() {
        return c.contains(&Config::new(chosen.clone()));
    }
    let (set, count) = &groups[gi];
    let elems: Vec<crate::label::Label> = set.iter().collect();
    // Multisets of size `count` from `elems` (combinations with repetition).
    fn rec(
        elems: &[crate::label::Label],
        start: usize,
        left: usize,
        groups: &[(LabelSet, usize)],
        gi: usize,
        chosen: &mut Vec<crate::label::Label>,
        c: &Constraint,
    ) -> bool {
        if left == 0 {
            return all_choices_ok(groups, gi + 1, chosen, c);
        }
        for i in start..elems.len() {
            chosen.push(elems[i]);
            let ok = rec(elems, i, left - 1, groups, gi, chosen, c);
            chosen.pop();
            if !ok {
                return false;
            }
        }
        true
    }
    rec(&elems, 0, *count, groups, gi, chosen, c)
}

/// Whether line `a` dominates line `b`: some alignment σ has
/// `b[i] ⊆ a[σ(i)]` for all `i` (σ a bijection of positions).
pub fn dominates(a: &[LabelSet], b: &[LabelSet]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let mut used = vec![false; n];
    fn assign(b: &[LabelSet], a: &[LabelSet], used: &mut [bool], i: usize) -> bool {
        if i == b.len() {
            return true;
        }
        for j in 0..a.len() {
            if !used[j] && b[i].is_subset(&a[j]) {
                used[j] = true;
                if assign(b, a, used, i + 1) {
                    used[j] = false;
                    return true;
                }
                used[j] = false;
            }
        }
        false
    }
    assign(b, a, &mut used, 0)
}

/// All canonical merges of two lines (over all alignments and distinguished
/// positions), dropping results with empty components.
///
/// Alignments range over the *distinct* permutations of `b`'s multiset of
/// sets (lines typically repeat few distinct sets, so this is far smaller
/// than n! — the difference between Δ = 7 finishing in milliseconds and in
/// minutes).
fn merges(a: &[LabelSet], b: &[LabelSet], out: &mut HashSet<Line>) {
    let n = a.len();
    if n == 0 {
        return;
    }
    // Group b's distinct sets with multiplicities.
    let mut distinct: Vec<LabelSet> = Vec::new();
    let mut remaining: Vec<usize> = Vec::new();
    for s in b {
        match distinct.iter().position(|d| d == s) {
            Some(ix) => remaining[ix] += 1,
            None => {
                distinct.push(*s);
                remaining.push(1);
            }
        }
    }
    let mut assignment: Vec<usize> = Vec::with_capacity(n);
    unique_perms(a, &distinct, &mut remaining, &mut assignment, out);

    fn unique_perms(
        a: &[LabelSet],
        distinct: &[LabelSet],
        remaining: &mut Vec<usize>,
        assignment: &mut Vec<usize>,
        out: &mut HashSet<Line>,
    ) {
        let n = a.len();
        if assignment.len() == n {
            emit(a, distinct, assignment, out);
            return;
        }
        for d in 0..distinct.len() {
            if remaining[d] > 0 {
                remaining[d] -= 1;
                assignment.push(d);
                unique_perms(a, distinct, remaining, assignment, out);
                assignment.pop();
                remaining[d] += 1;
            }
        }
    }

    fn emit(a: &[LabelSet], distinct: &[LabelSet], assignment: &[usize], out: &mut HashSet<Line>) {
        let n = a.len();
        // Precompute intersections; bail early on an empty one (a line
        // with an empty non-distinguished component is dead for every j
        // except the empty position itself).
        for j in 0..n {
            let mut line: Line = Vec::with_capacity(n);
            let mut ok = true;
            for i in 0..n {
                let bi = &distinct[assignment[i]];
                let s = if i == j { a[i].union(bi) } else { a[i].intersection(bi) };
                if s.is_empty() {
                    ok = false;
                    break;
                }
                line.push(s);
            }
            if ok {
                out.insert(canonical(line));
            }
        }
    }
}

/// Extends a label to position `i` if every choice of the other
/// components combined with it stays in `c`.
fn can_extend(line: &[LabelSet], i: usize, l: crate::label::Label, c: &Constraint) -> bool {
    // Group the other components, then enumerate their choices.
    let mut groups: Vec<(LabelSet, usize)> = Vec::new();
    for (j, s) in line.iter().enumerate() {
        if j == i {
            continue;
        }
        match groups.iter_mut().find(|(g, _)| g == s) {
            Some((_, n)) => *n += 1,
            None => groups.push((*s, 1)),
        }
    }
    let mut chosen = vec![l];
    all_choices_ok(&groups, 0, &mut chosen, c)
}

/// Componentwise closure: repeatedly maximize each component given the
/// others, until fixpoint. The result dominates the input and is still
/// good; maximal good lines are exactly the closed good lines that no
/// other closed line strictly dominates.
fn close_line(mut line: Line, c: &Constraint, universe: &LabelSet) -> Line {
    loop {
        let mut changed = false;
        for i in 0..line.len() {
            let missing = universe.difference(&line[i]);
            for l in missing.iter() {
                if can_extend(&line, i, l, c) {
                    line[i].insert(l);
                    changed = true;
                }
            }
        }
        if !changed {
            return canonical(line);
        }
    }
}

/// Enumerates all ⊆-maximal good lines of `c` (the simplified universal
/// transform of Theorem 2). Lines never contain the empty set: dropping the
/// degenerate lines with an empty component is the paper's compression
/// convention (§4.2) — they cannot occur in a correct solution because the
/// existential sibling constraint cannot pick an element from ∅.
pub fn maximal_good_lines(c: &Constraint) -> Vec<Line> {
    if c.arity() == 2 {
        return maximal_good_pairs(c);
    }
    // Antichain of known good lines, and a work queue of unprocessed ones.
    // Every enqueued line is closed (componentwise maximal), which keeps
    // the state space near the antichain of maximal lines instead of the
    // exponentially larger space of all good lines.
    let universe = c.used_labels();
    let mut antichain: Vec<Line> = Vec::new();
    let mut seen: HashSet<Line> = HashSet::new();
    let mut queue: Vec<Line> = Vec::new();

    for cfg in c.iter() {
        let line: Line = canonical(cfg.iter().map(LabelSet::singleton).collect());
        let line = close_line(line, c, &universe);
        if seen.insert(line.clone()) {
            queue.push(line);
        }
    }

    while let Some(line) = queue.pop() {
        // Skip if already dominated by the antichain.
        if antichain.iter().any(|m| m != &line && dominates(m, &line)) {
            continue;
        }
        // Merge against every line currently in the antichain, and itself.
        let mut new_lines: HashSet<Line> = HashSet::new();
        merges(&line, &line, &mut new_lines);
        for m in &antichain {
            merges(&line, m, &mut new_lines);
        }
        // Install `line` into the antichain, evicting dominated entries.
        antichain.retain(|m| !dominates(&line, m));
        antichain.push(line);
        for nl in new_lines {
            if seen.contains(&nl) || antichain.iter().any(|m| dominates(m, &nl)) {
                continue;
            }
            let closed = close_line(nl, c, &universe);
            if !seen.contains(&closed) && !antichain.iter().any(|m| dominates(m, &closed)) {
                seen.insert(closed.clone());
                queue.push(closed);
            }
        }
    }

    // Final pass: keep only maximal lines.
    let mut result: Vec<Line> = Vec::new();
    for (i, l) in antichain.iter().enumerate() {
        let dominated = antichain
            .iter()
            .enumerate()
            .any(|(j, m)| j != i && dominates(m, l) && !dominates(l, m));
        let duplicate = result.contains(l);
        if !dominated && !duplicate {
            result.push(l.clone());
        }
    }
    result.sort();
    result
}

/// Arity-2 fast path: maximal good pairs are exactly the *formal
/// concepts* of the symmetric compatibility relation — closed pairs
/// `(Y, cl(Y))` with `cl(S) = {x : ∀s∈S, {x,s} ∈ c}`. Every concept
/// extent is an intersection of single-label closures, so the ∩-closure
/// of `{cl({s})}` enumerates them all.
fn maximal_good_pairs(c: &Constraint) -> Vec<Line> {
    let universe = c.used_labels();
    let cl = |s: &LabelSet| -> LabelSet {
        let mut out = LabelSet::empty();
        for x in universe.iter() {
            if s.iter().all(|y| c.contains_labels(&[x, y])) {
                out.insert(x);
            }
        }
        out
    };
    // ∩-closure of the single-label closures (plus the full universe).
    let mut extents: Vec<LabelSet> = vec![universe];
    for l in universe.iter() {
        let base = cl(&LabelSet::singleton(l));
        let mut new_items: Vec<LabelSet> = Vec::new();
        for e in &extents {
            let meet = e.intersection(&base);
            if !extents.contains(&meet) && !new_items.contains(&meet) {
                new_items.push(meet);
            }
        }
        if !extents.contains(&base) && !new_items.contains(&base) {
            new_items.push(base);
        }
        extents.extend(new_items);
    }
    let mut out: Vec<Line> = Vec::new();
    for e in extents {
        if e.is_empty() {
            continue;
        }
        let partner = cl(&e);
        if partner.is_empty() || cl(&partner) != e {
            continue; // not a concept (or degenerate)
        }
        let line = canonical(vec![e, partner]);
        if !out.contains(&line) {
            out.push(line);
        }
    }
    out.sort();
    out
}

/// Brute-force oracle: all good lines over subsets of `universe`, maximal
/// ones only. Exponential; used by tests and the unsimplified transform on
/// tiny instances.
pub fn maximal_good_lines_bruteforce(c: &Constraint, universe: &LabelSet) -> Vec<Line> {
    let subsets = crate::labelset::nonempty_subsets(universe);
    let r = c.arity();
    let mut all: Vec<Line> = Vec::new();
    let mut cur: Line = Vec::with_capacity(r);
    fn rec(
        subsets: &[LabelSet],
        start: usize,
        left: usize,
        cur: &mut Line,
        c: &Constraint,
        all: &mut Vec<Line>,
    ) {
        if left == 0 {
            if line_good(cur, c) {
                all.push(cur.clone());
            }
            return;
        }
        for i in start..subsets.len() {
            cur.push(subsets[i]);
            rec(subsets, i, left - 1, cur, c, all);
            cur.pop();
        }
    }
    rec(&subsets, 0, r, &mut cur, c, &mut all);
    let mut maximal: Vec<Line> = Vec::new();
    for (i, l) in all.iter().enumerate() {
        if !all.iter().enumerate().any(|(j, m)| j != i && m != l && dominates(m, l)) {
            maximal.push(l.clone());
        }
    }
    maximal.sort();
    maximal.dedup();
    maximal
}

/// All good lines (not only maximal) over subsets of `universe`; the
/// unsimplified Theorem-1 transform. Exponential in `universe.len()`.
pub fn all_good_lines_bruteforce(c: &Constraint, universe: &LabelSet) -> Vec<Line> {
    let subsets = crate::labelset::nonempty_subsets(universe);
    let r = c.arity();
    let mut all: Vec<Line> = Vec::new();
    let mut cur: Line = Vec::with_capacity(r);
    fn rec(
        subsets: &[LabelSet],
        start: usize,
        left: usize,
        cur: &mut Line,
        c: &Constraint,
        all: &mut Vec<Line>,
    ) {
        if left == 0 {
            if line_good(cur, c) {
                all.push(cur.clone());
            }
            return;
        }
        for i in start..subsets.len() {
            cur.push(subsets[i]);
            rec(subsets, i, left - 1, cur, c, all);
            cur.pop();
        }
    }
    rec(&subsets, 0, r, &mut cur, c, &mut all);
    all.sort();
    all.dedup();
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;

    fn l(i: usize) -> Label {
        Label::from_index(i)
    }

    fn cfg(ixs: &[usize]) -> Config {
        Config::new(ixs.iter().map(|&i| l(i)).collect())
    }

    fn set(ixs: &[usize]) -> LabelSet {
        ixs.iter().map(|&i| l(i)).collect()
    }

    /// Sinkless-coloring edge constraint: {0,0} and {0,1} allowed.
    fn sc_edge() -> Constraint {
        Constraint::from_configs(2, [cfg(&[0, 0]), cfg(&[0, 1])]).unwrap()
    }

    #[test]
    fn line_good_basics() {
        let c = sc_edge();
        assert!(line_good(&[set(&[0]), set(&[0, 1])], &c));
        assert!(!line_good(&[set(&[0, 1]), set(&[0, 1])], &c)); // {1,1} not allowed
        assert!(!line_good(&[set(&[1]), set(&[1])], &c));
        assert!(!line_good(&[LabelSet::empty(), set(&[0])], &c)); // empty component
    }

    #[test]
    fn sinkless_coloring_edge_has_unique_maximal_line() {
        // Paper §4.4: the only maximal element of g_{1/2} is {{0},{0,1}}.
        let lines = maximal_good_lines(&sc_edge());
        assert_eq!(lines, vec![canonical(vec![set(&[0]), set(&[0, 1])])]);
    }

    #[test]
    fn matches_bruteforce_on_coloring() {
        // 3-coloring edge constraint: all pairs of distinct colors.
        let c = Constraint::from_configs(2, [cfg(&[0, 1]), cfg(&[0, 2]), cfg(&[1, 2])]).unwrap();
        let fast = maximal_good_lines(&c);
        let slow = maximal_good_lines_bruteforce(&c, &LabelSet::first_n(3));
        assert_eq!(fast, slow);
        // Maximal disjoint pairs {Y, complement-ish}: {0}{1,2}, {1}{0,2}, {2}{0,1}.
        assert_eq!(fast.len(), 3);
    }

    #[test]
    fn matches_bruteforce_on_arity3() {
        // "at least one 1": node constraint of sinkless orientation, Δ=3,
        // labels {0,1}: configs 001, 011, 111.
        let c = Constraint::from_configs(3, [cfg(&[0, 0, 1]), cfg(&[0, 1, 1]), cfg(&[1, 1, 1])])
            .unwrap();
        let fast = maximal_good_lines(&c);
        let slow = maximal_good_lines_bruteforce(&c, &LabelSet::first_n(2));
        assert_eq!(fast, slow);
        // Unique maximal line: ({1},{0,1},{0,1}).
        assert_eq!(fast, vec![canonical(vec![set(&[1]), set(&[0, 1]), set(&[0, 1])])]);
    }

    #[test]
    fn matches_bruteforce_randomized() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(20190226);
        for trial in 0..30 {
            let n = rng.gen_range(2..=4);
            let arity = rng.gen_range(2..=3);
            let univ = LabelSet::first_n(n);
            let all = crate::config::all_multisets(n, arity);
            let mut c = Constraint::new(arity).unwrap();
            let mut any = false;
            for cfg in all {
                if rng.gen_bool(0.45) {
                    c.insert(cfg).unwrap();
                    any = true;
                }
            }
            if !any {
                continue;
            }
            let fast = maximal_good_lines(&c);
            let slow = maximal_good_lines_bruteforce(&c, &univ);
            assert_eq!(fast, slow, "trial {trial} mismatch for constraint {c:?}");
        }
    }

    #[test]
    fn dominates_respects_alignment() {
        let a = vec![set(&[0, 1]), set(&[2])];
        let b = vec![set(&[2]), set(&[0])];
        assert!(dominates(&a, &b)); // align ({2}→{2}, {0}→{0,1})
        assert!(!dominates(&b, &a));
        assert!(dominates(&a, &a));
    }

    #[test]
    fn all_good_lines_superset_of_maximal() {
        let c = sc_edge();
        let univ = LabelSet::first_n(2);
        let all = all_good_lines_bruteforce(&c, &univ);
        let max = maximal_good_lines_bruteforce(&c, &univ);
        for m in &max {
            assert!(all.contains(m));
        }
        assert!(all.len() >= max.len());
    }
}
