//! The *universal* half of a speedup step: maximal "good lines".
//!
//! Given a constraint `C` of arity `r`, a **line** is a multiset
//! `(X₁, …, X_r)` of non-empty label sets. A line is **good** if *every*
//! choice `x_i ∈ X_i` yields a configuration of `C` — this is Property 1
//! (for `g_{1/2}`) and Property 4 (for `h₁`) of the paper. The simplified
//! problems of Theorem 2 keep only the ⊆-*maximal* good lines
//! (Properties 5 and 6).
//!
//! # Algorithm
//!
//! We enumerate maximal good lines by a *merge closure*:
//!
//! 1. Seed with `C`'s configurations viewed as lines of singletons (these
//!    are trivially good).
//! 2. Repeatedly **merge** two good lines: for an alignment σ of their
//!    positions and a distinguished position `j`, form
//!    `(A₁∩B_{σ(1)}, …, A_j∪B_{σ(j)}, …)`. Any choice from the merged line
//!    picks its `j`-entry from `A_j` or `B_{σ(j)}` and all other entries
//!    from intersections, so it is a choice of `A` or of `B`; hence merges
//!    of good lines are good (*soundness*).
//! 3. Keep only a dominating antichain (lines not componentwise-contained
//!    in another kept line, up to alignment).
//!
//! *Completeness:* any good line is produced by iterated merges of the
//! seeds — split some `X_j = {a} ⊎ rest` and merge the two (inductively
//! reachable) sub-lines with the identity alignment at `j`. Pruning
//! dominated lines preserves completeness because merging is monotone in
//! both arguments, so the invariant "every good line is dominated by a kept
//! line" survives; at a fixpoint the kept antichain is exactly the set of
//! maximal good lines. Tests cross-check against a brute-force oracle.
//!
//! # Hot-core representation
//!
//! Three layers keep the closure fast (see the README's Performance
//! section for measurements):
//!
//! * **Trie-backed universal checks.** "Every choice of this line is in
//!   `C`" ([`line_good`], and the `can_extend` probes of the componentwise
//!   closure) runs as a set-branching DFS over the constraint's cached
//!   [`ConfigTrie`](crate::trie::ConfigTrie): branch on the multiplicity of
//!   the smallest assignable label, advance the trie along the run of equal
//!   labels, recurse. Choices sharing a sorted prefix share the walk, a
//!   missing trie edge refutes a whole subtree of choices at once, and the
//!   inner loop is bitmask tests — no allocation, no per-choice sort, no
//!   `BTreeSet` probe.
//! * **Interned lines.** The engine stores every distinct line once in a
//!   flat arena with `u32` ids (`pool::LinePool`). Deduplication is a hash
//!   probe plus slice compare, and each line carries a component-size /
//!   component-union signature that rejects most domination queries before
//!   the alignment matcher runs. The matcher works on candidate bitmasks,
//!   greedy-first with a backtracking fallback. Merge emission prunes at
//!   the source: when the aligned pair at the distinguished position is
//!   ⊆-comparable, the result is dominated by one of the operands and is
//!   never materialized.
//! * **Round-parallel closure.** The work queue is processed in rounds:
//!   all queued lines merge (against the antichain, each other, and
//!   themselves) in parallel chunks under [`std::thread::scope`], and the
//!   surviving candidates close componentwise in parallel; interning and
//!   antichain updates happen single-threaded at the barriers. Workers emit
//!   in item order and the barrier consumes chunk outputs in item order, so
//!   ids, processing order, and output are **bit-identical for every
//!   thread count** (property-tested); [`maximal_good_lines`] sizes the
//!   pool from `available_parallelism`, overridable via the
//!   `ROUNDELIM_THREADS` environment variable.

use crate::constraint::Constraint;
use crate::label::Label;
use crate::labelset::LabelSet;
use crate::profile::{span, Stage};
use crate::speedup::pool::{DomIndex, LinePool};
use crate::trie::ConfigTrie;

/// A multiset of label sets, canonically sorted. See module docs.
pub type Line = Vec<LabelSet>;

/// Canonicalizes a line (sorts its components).
pub fn canonical(mut line: Line) -> Line {
    line.sort_unstable();
    line
}

/// Groups a line's components as `(set, multiplicity)` pairs into `out`.
///
/// Works on unsorted input (group order is irrelevant to the universal
/// check), so callers need neither a clone nor a sort.
fn group_components(line: &[LabelSet], skip: usize, out: &mut Vec<(LabelSet, usize)>) {
    for (j, s) in line.iter().enumerate() {
        if j == skip {
            continue;
        }
        match out.iter_mut().find(|(g, _)| g == s) {
            Some((_, n)) => *n += 1,
            None => out.push((*s, 1)),
        }
    }
}

/// Whether every choice `x_i ∈ line[i]` is a configuration of `c`.
///
/// Identical components are grouped and the grouped line is checked by a
/// single set-branching DFS over `c`'s trie index — see
/// [`ConfigTrie::all_choices_contained`]. The input need not be sorted and
/// is not copied.
pub fn line_good(line: &[LabelSet], c: &Constraint) -> bool {
    if line.len() != c.arity() || line.iter().any(LabelSet::is_empty) {
        return false;
    }
    let mut groups: Vec<(LabelSet, usize)> = Vec::with_capacity(line.len());
    group_components(line, usize::MAX, &mut groups);
    c.trie().all_choices_contained(&groups)
}

/// Whether line `a` dominates line `b`: some alignment σ has
/// `b[i] ⊆ a[σ(i)]` for all `i` (σ a bijection of positions).
pub fn dominates(a: &[LabelSet], b: &[LabelSet]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    if n > 64 {
        return dominates_general(a, b);
    }
    // cand[i]: bitmask of a-positions that can host b[i].
    let mut cand = [0u64; 64];
    for (i, bi) in b.iter().enumerate() {
        let mut mask = 0u64;
        for (j, aj) in a.iter().enumerate() {
            if bi.is_subset(aj) {
                mask |= 1 << j;
            }
        }
        if mask == 0 {
            return false;
        }
        cand[i] = mask;
    }
    // Greedy-first matching over the masks; backtracking only on a jam.
    crate::speedup::existential::matches_masks(&cand[..n])
}

/// Fallback matcher for lines longer than 64 components (no bitmasks).
fn dominates_general(a: &[LabelSet], b: &[LabelSet]) -> bool {
    let n = a.len();
    let mut used = vec![false; n];
    fn assign(b: &[LabelSet], a: &[LabelSet], used: &mut [bool], i: usize) -> bool {
        if i == b.len() {
            return true;
        }
        for j in 0..a.len() {
            if !used[j] && b[i].is_subset(&a[j]) {
                used[j] = true;
                if assign(b, a, used, i + 1) {
                    used[j] = false;
                    return true;
                }
                used[j] = false;
            }
        }
        false
    }
    assign(b, a, &mut used, 0)
}

/// Domination between interned lines, signature pre-filter first.
fn dominates_ids(pool: &LinePool, a: u32, b: u32) -> bool {
    a != b && pool.may_dominate(a, b) && dominates(pool.get(a), pool.get(b))
}

/// Whether any antichain member dominates line `id`: the signature-bucket
/// index narrows the antichain to members whose union contains `id`'s
/// (usually none), and only those run the per-pair filter and matcher.
/// Accounted to the domination stage; the single point every antichain
/// filter goes through. `buf` is per-caller query scratch.
fn dominated_by_any(pool: &LinePool, dom: &DomIndex, id: u32, buf: &mut Vec<u64>) -> bool {
    let _sp = span(Stage::Domination);
    dom.any_superset_candidate(&pool.union_of(id), buf, |m| dominates_ids(pool, m, id))
}

/// All canonical merges of two lines (over all alignments and distinguished
/// positions), dropping results with empty components and results equal to
/// `a` itself (the caller always knows `a`). Each surviving merge is
/// canonicalized in the reusable scratch buffers and handed to `emit`
/// (typically an interning sink) — no per-candidate allocation.
///
/// Alignments range over the *distinct* permutations of `b`'s multiset of
/// sets (lines typically repeat few distinct sets, so this is far smaller
/// than n! — the difference between Δ = 7 finishing in milliseconds and in
/// minutes). Per alignment, the componentwise intersections are computed
/// once and shared by every distinguished position.
fn merges<F: FnMut(&[LabelSet])>(
    a: &[LabelSet],
    b: &[LabelSet],
    scratch: &mut MergeScratch,
    emit: &mut F,
) {
    let n = a.len();
    if n == 0 {
        return;
    }
    // Group b's distinct sets with multiplicities.
    let mut distinct: Vec<LabelSet> = Vec::new();
    let mut remaining: Vec<usize> = Vec::new();
    for s in b {
        match distinct.iter().position(|d| d == s) {
            Some(ix) => remaining[ix] += 1,
            None => {
                distinct.push(*s);
                remaining.push(1);
            }
        }
    }
    let mut assignment: Vec<usize> = Vec::with_capacity(n);
    unique_perms(a, &distinct, &mut remaining, &mut assignment, scratch, emit);

    fn unique_perms<F: FnMut(&[LabelSet])>(
        a: &[LabelSet],
        distinct: &[LabelSet],
        remaining: &mut Vec<usize>,
        assignment: &mut Vec<usize>,
        scratch: &mut MergeScratch,
        emit: &mut F,
    ) {
        let n = a.len();
        if assignment.len() == n {
            emit_merges(a, distinct, assignment, scratch, emit);
            return;
        }
        for d in 0..distinct.len() {
            if remaining[d] > 0 {
                remaining[d] -= 1;
                assignment.push(d);
                unique_perms(a, distinct, remaining, assignment, scratch, emit);
                assignment.pop();
                remaining[d] += 1;
            }
        }
    }

    fn emit_merges<F: FnMut(&[LabelSet])>(
        a: &[LabelSet],
        distinct: &[LabelSet],
        assignment: &[usize],
        scratch: &mut MergeScratch,
        emit: &mut F,
    ) {
        let n = a.len();
        // Intersections are shared by every distinguished position:
        // compute them once per alignment. Two or more empty intersections
        // kill the whole alignment (a line with an empty non-distinguished
        // component is dead for every j except the empty position itself);
        // exactly one empty at `p` leaves only j = p viable.
        let inter = &mut scratch.inter;
        inter.clear();
        let mut only_j = usize::MAX; // MAX: all viable; n: none viable
        for i in 0..n {
            let s = a[i].intersection(&distinct[assignment[i]]);
            if s.is_empty() {
                only_j = if only_j == usize::MAX { i } else { n };
            }
            inter.push(s);
        }
        if only_j == n {
            return;
        }
        let j_range = if only_j == usize::MAX { 0..n } else { only_j..only_j + 1 };
        for j in j_range {
            let bj = &distinct[assignment[j]];
            // Every non-distinguished component is an intersection, so the
            // result is dominated by `a` (identity alignment) whenever
            // `bσ(j) ⊆ a[j]`, and by `b` (via σ⁻¹) whenever
            // `a[j] ⊆ bσ(j)`. Both operands are in the antichain-or-batch
            // by the time candidates are filtered, so comparable aligned
            // pairs can never contribute a new maximal line — only
            // incomparable ones are worth emitting. (This subsumes the
            // result-equals-`a` and equal-pair cases.)
            if bj.is_subset(&a[j]) || a[j].is_subset(bj) {
                continue;
            }
            let line = &mut scratch.line;
            line.clear();
            line.extend_from_slice(inter);
            line[j] = a[j].union(bj);
            line.sort_unstable();
            emit(line);
        }
    }
}

/// Reusable buffers for [`merges`]: per-alignment intersections and the
/// candidate line under construction. One per worker.
#[derive(Debug, Clone, Default)]
struct MergeScratch {
    inter: Vec<LabelSet>,
    line: Vec<LabelSet>,
}

/// Extends a label to one position if every choice of the other (already
/// grouped) components combined with it stays in the constraint: one trie
/// DFS. The closure probes every missing label of a position against the
/// *same* sibling groups, so the grouping is hoisted out of the label
/// loop. The forced singleton rides as its own trailing group — two groups
/// with equal sets enumerate the same choice multisets as one merged
/// group, so coverage is unchanged.
///
/// Probes run the **plain** DFS, not the memoized one
/// ([`ConfigTrie::all_choices_contained_memo`]): measured across the bench
/// sweep (weak2 Δ=3..13, coloring k≤7, the autolb families), the
/// completeness-annotated trie DFS answers probes faster than the memo's
/// canonicalize-and-hash per state — at Δ=13 the memoized close stage
/// costs 3× the plain one. The memo stays available (and property-tested)
/// for workloads with heavier probe repetition.
fn can_extend_grouped(l: Label, trie: &ConfigTrie, scratch: &mut CloseScratch) -> bool {
    scratch.groups.push((LabelSet::singleton(l), 1));
    let CloseScratch { groups, dfs } = scratch;
    let ok = trie.all_choices_contained_scratch(groups, dfs);
    scratch.groups.pop();
    ok
}

/// Reusable buffers for [`close_line`] probes: the grouped components and
/// the trie DFS working space. One per worker; no per-probe allocation.
#[derive(Debug, Default)]
struct CloseScratch {
    groups: Vec<(LabelSet, usize)>,
    dfs: crate::trie::DfsScratch,
}

/// Componentwise closure, in place: maximize each component given the
/// others, then re-canonicalize. The result dominates the input and is
/// still good; maximal good lines are exactly the closed good lines that
/// no other closed line strictly dominates.
///
/// One pass over `(position, missing label)` pairs reaches the fixpoint:
/// successful extensions only *grow* components, which makes every later
/// `can_extend` probe strictly harder (more choices must stay inside the
/// constraint), so a pair that fails once can never succeed later and a
/// second pass would find nothing new.
///
/// **Delta re-closure:** canonical lines keep equal components adjacent,
/// and a position whose component equals its predecessor's sees the very
/// same sibling grouping and missing-label set — *provided the
/// predecessor's probes changed nothing*. Such positions are skipped
/// outright (their probes would fail identically); only the groups the
/// pass has actually affected are re-probed. High-degree lines repeat few
/// distinct components many times, so this collapses the per-line probe
/// count from Δ positions to the number of distinct groups. Equality with
/// the skip-free closure is property-tested.
fn close_line(line: &mut Line, trie: &ConfigTrie, universe: &LabelSet, scratch: &mut CloseScratch) {
    // (component value at probe time, whether that probe grew anything)
    let mut prev: Option<(LabelSet, bool)> = None;
    for i in 0..line.len() {
        if let Some((set, grew)) = prev {
            if !grew && set == line[i] {
                // Identical component, identical siblings, nothing changed
                // since the previous probe: the same probes fail the same
                // way.
                continue;
            }
        }
        let before = line[i];
        let missing = universe.difference(&line[i]);
        if missing.is_empty() {
            prev = Some((before, false));
            continue;
        }
        // The sibling groups are invariant while probing position `i` —
        // only `line[i]` changes, and it is excluded from the grouping.
        scratch.groups.clear();
        group_components(line, i, &mut scratch.groups);
        for l in missing.iter() {
            if can_extend_grouped(l, trie, scratch) {
                line[i].insert(l);
            }
        }
        prev = Some((before, line[i] != before));
    }
    line.sort_unstable();
}

/// [`close_line`] without the delta skip: probes every position
/// unconditionally. Oracle for the delta-equality property test.
#[cfg(test)]
fn close_line_full(
    line: &mut Line,
    trie: &ConfigTrie,
    universe: &LabelSet,
    scratch: &mut CloseScratch,
) {
    for i in 0..line.len() {
        let missing = universe.difference(&line[i]);
        if missing.is_empty() {
            continue;
        }
        scratch.groups.clear();
        group_components(line, i, &mut scratch.groups);
        for l in missing.iter() {
            if can_extend_grouped(l, trie, scratch) {
                line[i].insert(l);
            }
        }
    }
    line.sort_unstable();
}

/// Number of worker threads [`maximal_good_lines`] uses: the workspace
/// convention ([`crate::par::resolve_threads`]). Resolved once per process
/// (the environment probe and `available_parallelism` syscall cost more
/// than a small closure).
fn default_threads() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| crate::par::resolve_threads(0))
}

/// Below this many work items a stage runs inline: spawning costs more
/// than the work it would offload.
const PAR_MIN_ITEMS: usize = 16;

/// Chunks cut per worker by [`par_chunks`]. Oversubscribing the executor
/// lets stealing — not the weight model — absorb mispredicted chunk
/// costs: a worker that drains its own chunks early steals the
/// stragglers' queue instead of idling at the round barrier.
const OVERSUB: usize = 4;

/// Maps `f` over contiguous chunks of `items` on the shared work-stealing
/// executor ([`crate::par::par_map`]), returning chunk results in chunk
/// order. About [`OVERSUB`] chunks are cut per worker, with boundaries
/// balanced by `weight(index)` — stage 1's per-item cost falls roughly
/// linearly with the batch index (item `i` merges only against later
/// items), so equal-size chunks would skew badly. Boundaries are a pure
/// function of `(items.len(), threads, weight)`; callers that consume
/// results in order and emit per item in item order stay deterministic
/// for every thread count (and in fact for arbitrary boundaries —
/// property-tested). `min_items` is the inline-run threshold
/// ([`PAR_MIN_ITEMS`] in production; tests lower it to force the chunked
/// path onto small inputs).
fn par_chunks<T, R, F, W>(items: &[T], threads: usize, min_items: usize, weight: W, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
    W: Fn(usize) -> u64,
{
    if threads <= 1 || items.len() < min_items.max(2) {
        return vec![f(items)];
    }
    // Greedy contiguous partition into ≤ `threads * OVERSUB` weight-
    // balanced chunks.
    let chunks = threads * OVERSUB;
    let total: u64 = (0..items.len()).map(&weight).sum();
    let target = total.div_ceil(chunks as u64).max(1);
    let mut bounds: Vec<usize> = Vec::with_capacity(chunks + 1);
    bounds.push(0);
    let mut acc = 0u64;
    for i in 0..items.len() {
        acc += weight(i);
        if acc >= target && bounds.len() < chunks && i + 1 < items.len() {
            bounds.push(i + 1);
            acc = 0;
        }
    }
    bounds.push(items.len());
    let parts: Vec<&[T]> = bounds.windows(2).map(|w| &items[w[0]..w[1]]).collect();
    crate::par::par_map(&parts, threads, |part: &&[T]| f(part))
}

/// Enumerates all ⊆-maximal good lines of `c` (the simplified universal
/// transform of Theorem 2), using all available cores. Lines never contain
/// the empty set: dropping the degenerate lines with an empty component is
/// the paper's compression convention (§4.2) — they cannot occur in a
/// correct solution because the existential sibling constraint cannot pick
/// an element from ∅.
pub fn maximal_good_lines(c: &Constraint) -> Vec<Line> {
    maximal_good_lines_threaded(c, default_threads())
}

/// [`maximal_good_lines`] with an explicit worker-thread count.
///
/// The output — and every intermediate interning decision — is identical
/// for every `threads` value; `threads` only sets how many cores the merge
/// and closure stages may use. `threads = 0` is treated as 1.
pub fn maximal_good_lines_threaded(c: &Constraint, threads: usize) -> Vec<Line> {
    maximal_good_lines_impl(c, threads, PAR_MIN_ITEMS)
}

/// Engine body with an explicit parallel-stage threshold, so tests can
/// force the chunked code paths onto small constraints (the production
/// threshold keeps tiny workloads inline, which would otherwise leave the
/// parallel branches unexercised by any fast-running test).
fn maximal_good_lines_impl(c: &Constraint, threads: usize, par_min: usize) -> Vec<Line> {
    if c.arity() == 2 {
        return maximal_good_pairs(c);
    }
    let threads = threads.max(1);
    let trie = c.trie();
    let universe = *trie.universe();

    // Interned lines; the pool doubles as the "ever emitted" set, while
    // `enqueued` (indexed by id) marks the subset that entered the work
    // queue — a merge candidate that is already componentwise-closed is
    // interned once but must still be processed. Every enqueued line is
    // closed (componentwise maximal), which keeps the state space near the
    // antichain of maximal lines instead of the exponentially larger space
    // of all good lines.
    let mut pool = LinePool::new(c.arity());
    let mut enqueued: Vec<bool> = Vec::new();
    let mut antichain: Vec<u32> = Vec::new();
    let mut dom = DomIndex::default();
    let mut dombuf: Vec<u64> = Vec::new();
    let mut queue: Vec<u32> = Vec::new();
    let mut close_scratch = CloseScratch::default();
    let mut merge_scratch = MergeScratch::default();
    let mut candidates: Vec<u32> = Vec::new();
    let mut line_buf: Line = Vec::new();
    let mut partner_buf: Line = Vec::new();

    for cfg in c.iter() {
        // A seed dominated by an already-closed seed line contributes
        // nothing: merging is monotone in both arguments, so every line
        // reachable through the dominated seed is dominated by a line
        // reachable through its dominator (the same argument that lets the
        // closure skip dominated queue entries). Skipping the closure here
        // saves the lion's share of the seeding cost on constraints whose
        // configurations collapse onto few maximal lines. For a line of
        // singletons, domination is exactly the existential matching
        // question, whose matcher shares one candidate mask per run of
        // equal labels.
        if queue
            .iter()
            .any(|&q| crate::speedup::existential::config_matches(cfg.labels(), pool.get(q)))
        {
            continue;
        }
        let mut line: Line = cfg.iter().map(LabelSet::singleton).collect();
        {
            let _sp = span(Stage::Close);
            close_line(&mut line, trie, &universe, &mut close_scratch);
        }
        let (id, _) = pool.intern(&line);
        enqueued.resize(pool.len(), false);
        if !enqueued[id as usize] {
            enqueued[id as usize] = true;
            queue.push(id);
        }
    }

    // Round-based closure: drain the whole queue per round. Queue order is
    // a pure function of the constraint (workers emit in item order and
    // barriers consume chunk outputs in item order), so processing order —
    // and with it every interned id — is identical for every thread count.
    while !queue.is_empty() {
        let mut batch = std::mem::take(&mut queue);
        // Skip lines the antichain already dominates.
        batch.retain(|&id| !dominated_by_any(&pool, &dom, id, &mut dombuf));

        // Stage 1: merge every batch line with itself, the antichain, and
        // every later batch line.
        candidates.clear();
        if threads > 1 && batch.len() >= par_min {
            // Workers intern into chunk-local pools (first occurrence in
            // item order survives), so concatenating chunk outputs
            // reproduces the sequential emission stream. Item `bi` merges
            // against the antichain plus the `len - bi - 1` later batch
            // items, which is the chunk-balancing weight.
            let batch_ref = &batch;
            let pool_ref = &pool;
            let antichain_ref = &antichain;
            let pair_weight = |bi: usize| (antichain.len() + batch.len() - bi) as u64;
            let chunk_pools: Vec<LinePool> = par_chunks(
                &index_range(batch.len()),
                threads,
                par_min,
                pair_weight,
                |indices: &[usize]| {
                    let _sp = span(Stage::Merge);
                    let mut local = LinePool::new(c.arity());
                    let mut scratch = MergeScratch::default();
                    for &bi in indices {
                        let line = pool_ref.get(batch_ref[bi]);
                        let mut sink = |cand: &[LabelSet]| {
                            local.intern(cand);
                        };
                        merges(line, line, &mut scratch, &mut sink);
                        for &m in antichain_ref {
                            merges(line, pool_ref.get(m), &mut scratch, &mut sink);
                        }
                        for &bj in &batch_ref[bi + 1..] {
                            merges(line, pool_ref.get(bj), &mut scratch, &mut sink);
                        }
                    }
                    local
                },
            );
            for local in &chunk_pools {
                for cand in local.lines() {
                    let (id, fresh) = pool.intern(cand);
                    if fresh {
                        candidates.push(id);
                    }
                }
            }
        } else {
            // Single-worker fast path: intern straight into the global
            // pool — no chunk-local pools, no second interning pass.
            // Operand lines are copied out of the pool so the interning
            // sink may borrow it mutably; the copies are trivial next to
            // the alignment enumeration they feed.
            fn sink(pool: &mut LinePool, candidates: &mut Vec<u32>, cand: &[LabelSet]) {
                let (id, fresh) = pool.intern(cand);
                if fresh {
                    candidates.push(id);
                }
            }
            let _sp = span(Stage::Merge);
            let scratch = &mut merge_scratch;
            for bi in 0..batch.len() {
                line_buf.clear();
                line_buf.extend_from_slice(pool.get(batch[bi]));
                merges(&line_buf, &line_buf, scratch, &mut |cand| {
                    sink(&mut pool, &mut candidates, cand)
                });
                for &m in &antichain {
                    partner_buf.clear();
                    partner_buf.extend_from_slice(pool.get(m));
                    merges(&line_buf, &partner_buf, scratch, &mut |cand| {
                        sink(&mut pool, &mut candidates, cand)
                    });
                }
                for &bj in batch.iter().skip(bi + 1) {
                    partner_buf.clear();
                    partner_buf.extend_from_slice(pool.get(bj));
                    merges(&line_buf, &partner_buf, scratch, &mut |cand| {
                        sink(&mut pool, &mut candidates, cand)
                    });
                }
            }
        }

        // Install the batch, evicting dominated antichain entries (the
        // index narrows the eviction scan to members whose union the new
        // line's contains).
        for &id in &batch {
            if dominated_by_any(&pool, &dom, id, &mut dombuf) {
                continue;
            }
            let _sp = span(Stage::Domination);
            let mut evicted: Vec<u32> = Vec::new();
            dom.any_subset_candidate(&pool.union_of(id), &mut dombuf, |m| {
                if dominates_ids(&pool, id, m) {
                    evicted.push(m);
                }
                false
            });
            for &m in &evicted {
                dom.remove(m, &pool.union_of(m));
            }
            if !evicted.is_empty() {
                antichain.retain(|m| !evicted.contains(m));
            }
            antichain.push(id);
            dom.insert(id, &pool.union_of(id));
        }
        // Stage 2: close the surviving candidates and enqueue the fresh
        // closures.
        if threads > 1 && candidates.len() >= par_min {
            let pool_ref = &pool;
            let dom_ref = &dom;
            let closed_chunks: Vec<Vec<Option<Line>>> = par_chunks(
                &candidates,
                threads,
                par_min,
                |_| 1,
                |ids: &[u32]| {
                    let mut close_scratch = CloseScratch::default();
                    let mut dombuf: Vec<u64> = Vec::new();
                    ids.iter()
                        .map(|&id| {
                            if dominated_by_any(pool_ref, dom_ref, id, &mut dombuf) {
                                return None;
                            }
                            let _sp = span(Stage::Close);
                            let mut line = pool_ref.get(id).to_vec();
                            close_line(&mut line, trie, &universe, &mut close_scratch);
                            Some(line)
                        })
                        .collect()
                },
            );
            for closed in closed_chunks.into_iter().flatten().flatten() {
                let (cid, _) = pool.intern(&closed);
                enqueued.resize(pool.len(), false);
                if !enqueued[cid as usize] && !dominated_by_any(&pool, &dom, cid, &mut dombuf) {
                    enqueued[cid as usize] = true;
                    queue.push(cid);
                }
            }
        } else {
            // Single-worker fast path: close and enqueue in one sweep.
            // Closing depends only on the line and the trie, so the
            // interleaving matches the barrier version candidate for
            // candidate.
            for &id in &candidates {
                if dominated_by_any(&pool, &dom, id, &mut dombuf) {
                    continue;
                }
                line_buf.clear();
                line_buf.extend_from_slice(pool.get(id));
                {
                    let _sp = span(Stage::Close);
                    close_line(&mut line_buf, trie, &universe, &mut close_scratch);
                }
                let (cid, _) = pool.intern(&line_buf);
                enqueued.resize(pool.len(), false);
                if !enqueued[cid as usize] && !dominated_by_any(&pool, &dom, cid, &mut dombuf) {
                    enqueued[cid as usize] = true;
                    queue.push(cid);
                }
            }
        }
    }

    // Final pass: keep only maximal lines. Ids are unique and lines
    // canonical, so mutual domination between distinct entries is
    // impossible and no duplicate check is needed; the signature filter
    // rejects most candidate pairs before the alignment matcher runs.
    let mut result: Vec<Line> = antichain
        .iter()
        .filter(|&&id| !dominated_by_any(&pool, &dom, id, &mut dombuf))
        .map(|&id| pool.get(id).to_vec())
        .collect();
    result.sort();
    result
}

/// `0..n` as a materialized slice for [`par_chunks`].
fn index_range(n: usize) -> Vec<usize> {
    (0..n).collect()
}

/// Arity-2 fast path: maximal good pairs are exactly the *formal
/// concepts* of the symmetric compatibility relation — closed pairs
/// `(Y, cl(Y))` with `cl(S) = {x : ∀s∈S, {x,s} ∈ c}`. Every concept
/// extent is an intersection of single-label closures, so the ∩-closure
/// of `{cl({s})}` enumerates them all.
fn maximal_good_pairs(c: &Constraint) -> Vec<Line> {
    use std::collections::BTreeSet;
    let universe = c.used_labels();
    let trie = c.trie();
    let cl = |s: &LabelSet| -> LabelSet {
        let mut out = LabelSet::empty();
        for x in universe.iter() {
            if s.iter().all(|y| {
                let pair = if x <= y { [x, y] } else { [y, x] };
                trie.contains_sorted(&pair)
            }) {
                out.insert(x);
            }
        }
        out
    };
    // ∩-closure of the single-label closures (plus the full universe),
    // deduplicated in an ordered set instead of O(n) vector scans.
    let mut extents: BTreeSet<LabelSet> = BTreeSet::new();
    extents.insert(universe);
    for l in universe.iter() {
        let base = cl(&LabelSet::singleton(l));
        let mut new_items: Vec<LabelSet> = Vec::new();
        for e in &extents {
            let meet = e.intersection(&base);
            if !extents.contains(&meet) {
                new_items.push(meet);
            }
        }
        new_items.push(base);
        extents.extend(new_items);
    }
    let mut out: BTreeSet<Line> = BTreeSet::new();
    for e in extents {
        if e.is_empty() {
            continue;
        }
        let partner = cl(&e);
        if partner.is_empty() || cl(&partner) != e {
            continue; // not a concept (or degenerate)
        }
        out.insert(canonical(vec![e, partner]));
    }
    out.into_iter().collect()
}

/// Brute-force oracle: all good lines over subsets of `universe`, maximal
/// ones only. Exponential; used by tests and the unsimplified transform on
/// tiny instances.
pub fn maximal_good_lines_bruteforce(c: &Constraint, universe: &LabelSet) -> Vec<Line> {
    let subsets = crate::labelset::nonempty_subsets(universe);
    let r = c.arity();
    let mut all: Vec<Line> = Vec::new();
    let mut cur: Line = Vec::with_capacity(r);
    fn rec(
        subsets: &[LabelSet],
        start: usize,
        left: usize,
        cur: &mut Line,
        c: &Constraint,
        all: &mut Vec<Line>,
    ) {
        if left == 0 {
            if line_good(cur, c) {
                all.push(cur.clone());
            }
            return;
        }
        for i in start..subsets.len() {
            cur.push(subsets[i]);
            rec(subsets, i, left - 1, cur, c, all);
            cur.pop();
        }
    }
    rec(&subsets, 0, r, &mut cur, c, &mut all);
    let mut maximal: Vec<Line> = Vec::new();
    for (i, l) in all.iter().enumerate() {
        if !all.iter().enumerate().any(|(j, m)| j != i && m != l && dominates(m, l)) {
            maximal.push(l.clone());
        }
    }
    maximal.sort();
    maximal.dedup();
    maximal
}

/// All good lines (not only maximal) over subsets of `universe`; the
/// unsimplified Theorem-1 transform. Exponential in `universe.len()`.
pub fn all_good_lines_bruteforce(c: &Constraint, universe: &LabelSet) -> Vec<Line> {
    let subsets = crate::labelset::nonempty_subsets(universe);
    let r = c.arity();
    let mut all: Vec<Line> = Vec::new();
    let mut cur: Line = Vec::with_capacity(r);
    fn rec(
        subsets: &[LabelSet],
        start: usize,
        left: usize,
        cur: &mut Line,
        c: &Constraint,
        all: &mut Vec<Line>,
    ) {
        if left == 0 {
            if line_good(cur, c) {
                all.push(cur.clone());
            }
            return;
        }
        for i in start..subsets.len() {
            cur.push(subsets[i]);
            rec(subsets, i, left - 1, cur, c, all);
            cur.pop();
        }
    }
    rec(&subsets, 0, r, &mut cur, c, &mut all);
    all.sort();
    all.dedup();
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    fn l(i: usize) -> Label {
        Label::from_index(i)
    }

    fn cfg(ixs: &[usize]) -> Config {
        Config::new(ixs.iter().map(|&i| l(i)).collect())
    }

    fn set(ixs: &[usize]) -> LabelSet {
        ixs.iter().map(|&i| l(i)).collect()
    }

    /// Sinkless-coloring edge constraint: {0,0} and {0,1} allowed.
    fn sc_edge() -> Constraint {
        Constraint::from_configs(2, [cfg(&[0, 0]), cfg(&[0, 1])]).unwrap()
    }

    #[test]
    fn line_good_basics() {
        let c = sc_edge();
        assert!(line_good(&[set(&[0]), set(&[0, 1])], &c));
        assert!(line_good(&[set(&[0, 1]), set(&[0])], &c)); // unsorted input
        assert!(!line_good(&[set(&[0, 1]), set(&[0, 1])], &c)); // {1,1} not allowed
        assert!(!line_good(&[set(&[1]), set(&[1])], &c));
        assert!(!line_good(&[LabelSet::empty(), set(&[0])], &c)); // empty component
    }

    #[test]
    fn sinkless_coloring_edge_has_unique_maximal_line() {
        // Paper §4.4: the only maximal element of g_{1/2} is {{0},{0,1}}.
        let lines = maximal_good_lines(&sc_edge());
        assert_eq!(lines, vec![canonical(vec![set(&[0]), set(&[0, 1])])]);
    }

    #[test]
    fn matches_bruteforce_on_coloring() {
        // 3-coloring edge constraint: all pairs of distinct colors.
        let c = Constraint::from_configs(2, [cfg(&[0, 1]), cfg(&[0, 2]), cfg(&[1, 2])]).unwrap();
        let fast = maximal_good_lines(&c);
        let slow = maximal_good_lines_bruteforce(&c, &LabelSet::first_n(3));
        assert_eq!(fast, slow);
        // Maximal disjoint pairs {Y, complement-ish}: {0}{1,2}, {1}{0,2}, {2}{0,1}.
        assert_eq!(fast.len(), 3);
    }

    #[test]
    fn matches_bruteforce_on_arity3() {
        // "at least one 1": node constraint of sinkless orientation, Δ=3,
        // labels {0,1}: configs 001, 011, 111.
        let c = Constraint::from_configs(3, [cfg(&[0, 0, 1]), cfg(&[0, 1, 1]), cfg(&[1, 1, 1])])
            .unwrap();
        let fast = maximal_good_lines(&c);
        let slow = maximal_good_lines_bruteforce(&c, &LabelSet::first_n(2));
        assert_eq!(fast, slow);
        // Unique maximal line: ({1},{0,1},{0,1}).
        assert_eq!(fast, vec![canonical(vec![set(&[1]), set(&[0, 1]), set(&[0, 1])])]);
    }

    #[test]
    fn matches_bruteforce_randomized() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(20190226);
        for trial in 0..30 {
            let n = rng.gen_range(2..=4);
            let arity = rng.gen_range(2..=3);
            let univ = LabelSet::first_n(n);
            let all = crate::config::all_multisets(n, arity);
            let mut c = Constraint::new(arity).unwrap();
            let mut any = false;
            for cfg in all {
                if rng.gen_bool(0.45) {
                    c.insert(cfg).unwrap();
                    any = true;
                }
            }
            if !any {
                continue;
            }
            let fast = maximal_good_lines(&c);
            let slow = maximal_good_lines_bruteforce(&c, &univ);
            assert_eq!(fast, slow, "trial {trial} mismatch for constraint {c:?}");
        }
    }

    #[test]
    fn delta_reclosure_equals_full_reclosure() {
        use rand::{Rng, SeedableRng};
        // The probe-skip in `close_line` (equal adjacent components whose
        // predecessor's probes changed nothing) must close every line to
        // exactly what the skip-free pass produces — including lines with
        // high component multiplicities, where the skip actually fires.
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xDE17A);
        for trial in 0..80 {
            let n = rng.gen_range(2..=5);
            let arity = rng.gen_range(3..=6);
            let mut c = Constraint::new(arity).unwrap();
            for m in crate::config::all_multisets(n, arity) {
                if rng.gen_bool(0.4) {
                    c.insert(m).unwrap();
                }
            }
            if c.is_empty() {
                continue;
            }
            let trie = c.trie();
            let universe = *trie.universe();
            for _ in 0..20 {
                // Random canonical line, biased toward repeated components.
                let mut distinct: Vec<LabelSet> = Vec::new();
                for _ in 0..rng.gen_range(1..=2usize) {
                    let mut s = LabelSet::empty();
                    for i in 0..n {
                        if rng.gen_bool(0.5) {
                            s.insert(Label::from_index(i));
                        }
                    }
                    if s.is_empty() {
                        s.insert(Label::from_index(rng.gen_range(0..n)));
                    }
                    distinct.push(s);
                }
                let mut line: Line =
                    (0..arity).map(|_| distinct[rng.gen_range(0..distinct.len())]).collect();
                line.sort_unstable();
                let mut with_delta = line.clone();
                let mut without = line;
                close_line(&mut with_delta, trie, &universe, &mut CloseScratch::default());
                close_line_full(&mut without, trie, &universe, &mut CloseScratch::default());
                assert_eq!(with_delta, without, "trial {trial} constraint {c:?}");
            }
        }
    }

    #[test]
    fn forced_parallel_paths_match_sequential() {
        use rand::{Rng, SeedableRng};
        // Production thresholds keep small batches inline, so this test
        // drops `par_min` to 1: every round takes the chunk-pool merge
        // path and the chunked close path, with real scoped threads
        // (par_chunks spawns from 2 items once the threshold allows).
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x5EED);
        for trial in 0..10 {
            let n = rng.gen_range(3usize..=5);
            let arity = rng.gen_range(3usize..=4);
            let mut c = Constraint::new(arity).unwrap();
            for m in crate::config::all_multisets(n, arity) {
                if rng.gen_bool(0.5) {
                    c.insert(m).unwrap();
                }
            }
            if c.is_empty() {
                continue;
            }
            let sequential = maximal_good_lines_impl(&c, 1, PAR_MIN_ITEMS);
            for threads in [2usize, 4] {
                let forced = maximal_good_lines_impl(&c, threads, 1);
                assert_eq!(forced, sequential, "trial {trial} threads {threads}");
            }
        }
    }

    #[test]
    fn threaded_output_is_thread_count_invariant() {
        // Arity-3 constraint rich enough to fill several rounds.
        let c = Constraint::from_configs(
            3,
            [
                cfg(&[0, 0, 1]),
                cfg(&[0, 1, 1]),
                cfg(&[1, 1, 1]),
                cfg(&[0, 1, 2]),
                cfg(&[1, 2, 2]),
                cfg(&[0, 0, 2]),
            ],
        )
        .unwrap();
        let one = maximal_good_lines_threaded(&c, 1);
        for threads in [2, 4, 8] {
            assert_eq!(maximal_good_lines_threaded(&c, threads), one, "threads={threads}");
        }
        assert_eq!(maximal_good_lines_threaded(&c, 0), one, "threads=0 clamps to 1");
    }

    #[test]
    fn dominates_respects_alignment() {
        let a = vec![set(&[0, 1]), set(&[2])];
        let b = vec![set(&[2]), set(&[0])];
        assert!(dominates(&a, &b)); // align ({2}→{2}, {0}→{0,1})
        assert!(!dominates(&b, &a));
        assert!(dominates(&a, &a));
    }

    #[test]
    fn dominates_bitmask_agrees_with_general() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..500 {
            let n = rng.gen_range(1usize..=5);
            let labels = rng.gen_range(2usize..=4);
            let rand_line = |rng: &mut rand::rngs::StdRng| -> Line {
                (0..n)
                    .map(|_| {
                        let mut s = LabelSet::empty();
                        for i in 0..labels {
                            if rng.gen_bool(0.5) {
                                s.insert(l(i));
                            }
                        }
                        if s.is_empty() {
                            s.insert(l(0));
                        }
                        s
                    })
                    .collect()
            };
            let a = rand_line(&mut rng);
            let b = rand_line(&mut rng);
            assert_eq!(dominates(&a, &b), dominates_general(&a, &b), "a={a:?} b={b:?}");
        }
    }

    #[test]
    fn all_good_lines_superset_of_maximal() {
        let c = sc_edge();
        let univ = LabelSet::first_n(2);
        let all = all_good_lines_bruteforce(&c, &univ);
        let max = maximal_good_lines_bruteforce(&c, &univ);
        for m in &max {
            assert!(all.contains(m));
        }
        assert!(all.len() >= max.len());
    }
}
