//! # roundelim-auto
//!
//! Automated lower/upper-bound search for round elimination — the
//! "autolb/autoub" subsystem on top of `roundelim-core`'s speedup engine
//! (Brandt, PODC 2019).
//!
//! The paper's lower bounds (§2.1, §4.4–§4.6) all follow one recipe:
//! iterate the speedup, interleave hand-picked relaxations, and stop at a
//! fixed point (⇒ unbounded bound) or a 0-round problem (⇒ bound = the
//! step count). This crate automates the recipe end to end:
//!
//! * [`cache`] — a canonical-form memo cache deduplicating the explored
//!   problems up to isomorphism and memoizing speedup steps and 0-round
//!   verdicts per class;
//! * [`moves`] — candidate relaxations (label merges, label-set
//!   coarsenings) and hardenings (label/configuration drops) generated
//!   from the constraint structure, each carrying its witness label map;
//! * [`score`] — the beam priority (small alphabets first);
//! * [`search`] — the deterministic parallel beam search itself,
//!   [`search::autolb`] and [`search::autoub`];
//! * [`certificate`] — replayable [`certificate::Certificate`]s checked by
//!   an independent verifier that uses only `roundelim-core` primitives,
//!   so search bugs cannot produce wrong bounds;
//! * [`checkpoint`] — crash-safe boundary snapshots of a running search,
//!   written atomically and checksummed, from which a killed search
//!   resumes bit-identically;
//! * [`failpoint`] — the fault-injection layer (`ROUNDELIM_FAILPOINTS`)
//!   behind the crash-recovery test harness;
//! * [`json`] — the self-contained JSON reader/writer behind certificate
//!   files and the CLI's `--json` output.
//!
//! ## Quick start
//!
//! ```
//! use roundelim_auto::search::{autolb, SearchOptions, Verdict};
//! use roundelim_core::problem::Problem;
//!
//! // Sinkless orientation at Δ=3 (§4.4): the search rediscovers the
//! // fixed point with no hand-supplied relaxations …
//! let so = Problem::parse("name: so\nnode: O O O | O O I | O I I\nedge: O I")?;
//! let out = autolb(&so, &SearchOptions::default())?;
//! assert_eq!(out.verdict, Verdict::Unbounded);
//! // … and every verdict ships a certificate that replays independently.
//! out.certificate.unwrap().verify().unwrap();
//! # Ok::<(), roundelim_core::error::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binenc;
pub mod cache;
pub mod certificate;
pub mod checkpoint;
pub mod failpoint;
pub mod json;
pub mod moves;
pub mod score;
pub mod search;

pub use cache::{CanonCache, NodeId};
pub use certificate::{CertError, CertVerdict, Certificate, Direction, Edge};
pub use search::{
    autolb, autoub, CancelToken, CheckpointConf, Outcome, Progress, ProgressHook, SearchOptions,
    SearchStats, StopCause, Verdict,
};
